"""Tests for the derandomized Luby selection steps (Sections 3.3, 4.3)."""

import numpy as np
import pytest

from repro.core import (
    Params,
    good_nodes_matching,
    good_nodes_mis,
    luby_matching_step,
    luby_mis_step,
    sparsify_edges,
    sparsify_nodes,
)
from repro.core.luby_step import first_k_arcs
from repro.graphs import gnp_random_graph
from repro.mpc import MPCContext
from repro.verify import is_independent_set, is_matching


def setup_matching(g, params=None):
    params = params or Params()
    good = good_nodes_matching(g, params)
    ctx = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
    fid: list[str] = []
    spars = sparsify_edges(g, good, params, ctx, fid)
    return good, spars, ctx, fid, params


def setup_mis(g, params=None):
    params = params or Params()
    good = good_nodes_mis(g, params)
    ctx = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
    fid: list[str] = []
    spars = sparsify_nodes(g, good, params, ctx, fid)
    return good, spars, ctx, fid, params


# --------------------------------------------------------------------- #
# first_k_arcs helper
# --------------------------------------------------------------------- #


def test_first_k_arcs_caps_per_group():
    groups = np.array([0, 0, 0, 1, 1, 2])
    units = np.array([10, 11, 12, 20, 21, 30])
    g2, u2 = first_k_arcs(groups, units, 2)
    assert (g2 == 0).sum() == 2
    assert (g2 == 1).sum() == 2
    assert (g2 == 2).sum() == 1


def test_first_k_arcs_stable_prefix():
    groups = np.array([5, 5, 5])
    units = np.array([1, 2, 3])
    _, u2 = first_k_arcs(groups, units, 2)
    assert u2.tolist() == [1, 2]


def test_first_k_arcs_empty():
    g2, u2 = first_k_arcs(np.array([], dtype=int), np.array([], dtype=int), 3)
    assert g2.size == 0 and u2.size == 0


# --------------------------------------------------------------------- #
# matching step
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_matching_step_returns_valid_matching(seed):
    g = gnp_random_graph(80, 0.1, seed=seed)
    good, spars, ctx, fid, params = setup_matching(g)
    eids, info = luby_matching_step(g, spars.e_star_mask, good, params, ctx, fid)
    mask = np.zeros(g.m, dtype=bool)
    mask[eids] = True
    assert is_matching(g, mask)
    assert eids.size > 0


def test_matching_step_meets_paper_target():
    """Lemma 13: achievable weight >= W_B / 109 (scan target satisfied)."""
    g = gnp_random_graph(80, 0.1, seed=4)
    good, spars, ctx, fid, params = setup_matching(g)
    _, info = luby_matching_step(g, spars.e_star_mask, good, params, ctx, fid)
    assert info.selection.satisfied
    assert info.selection.value >= info.target


def test_matching_step_matched_edges_in_e_star():
    g = gnp_random_graph(60, 0.15, seed=5)
    good, spars, ctx, fid, params = setup_matching(g)
    eids, _ = luby_matching_step(g, spars.e_star_mask, good, params, ctx, fid)
    assert np.all(spars.e_star_mask[eids])


def test_matching_step_rejects_empty_estar():
    g = gnp_random_graph(30, 0.2, seed=6)
    good, spars, ctx, fid, params = setup_matching(g)
    with pytest.raises(ValueError):
        luby_matching_step(g, np.zeros(g.m, dtype=bool), good, params, ctx, fid)


def test_matching_step_charges_gather_and_seed():
    g = gnp_random_graph(60, 0.15, seed=7)
    good, spars, ctx, fid, params = setup_matching(g)
    before = dict(ctx.ledger.by_category)
    luby_matching_step(g, spars.e_star_mask, good, params, ctx, fid)
    assert ctx.ledger.by_category["luby_gather"] > before.get("luby_gather", 0)
    assert ctx.ledger.by_category["luby_seed"] > before.get("luby_seed", 0)


def test_matching_step_isolated_estar_edge_always_matched():
    """An E*-edge of E*-degree 0 is a z-local-minimum trivially (Lemma 13
    first case)."""
    from repro.graphs import Graph

    g = Graph.from_edges(4, [(0, 1), (2, 3)])
    params = Params()
    good = good_nodes_matching(g, params)
    ctx = MPCContext(n=4, m=2)
    e_star = np.ones(2, dtype=bool)
    eids, _ = luby_matching_step(g, e_star, good, params, ctx, [])
    assert set(eids.tolist()) == {0, 1}


def test_matching_step_deterministic():
    g = gnp_random_graph(60, 0.15, seed=8)
    a = luby_matching_step(g, *_sel_args(g))[0]
    b = luby_matching_step(g, *_sel_args(g))[0]
    assert np.array_equal(a, b)


def _sel_args(g):
    good, spars, ctx, fid, params = setup_matching(g)
    return spars.e_star_mask, good, params, ctx, fid


# --------------------------------------------------------------------- #
# MIS step
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_mis_step_returns_independent_set(seed):
    g = gnp_random_graph(80, 0.1, seed=seed)
    good, spars, ctx, fid, params = setup_mis(g)
    i_mask, info = luby_mis_step(g, spars.q_prime_mask, good, params, ctx, fid)
    assert is_independent_set(g, i_mask)
    assert i_mask.any()


def test_mis_step_i_subset_of_q_prime():
    g = gnp_random_graph(60, 0.15, seed=4)
    good, spars, ctx, fid, params = setup_mis(g)
    i_mask, _ = luby_mis_step(g, spars.q_prime_mask, good, params, ctx, fid)
    assert np.all(~i_mask | spars.q_prime_mask)


def test_mis_step_meets_paper_target():
    """Lemma 21: achievable covered weight >= 0.01 delta W_B."""
    g = gnp_random_graph(80, 0.1, seed=5)
    good, spars, ctx, fid, params = setup_mis(g)
    _, info = luby_mis_step(g, spars.q_prime_mask, good, params, ctx, fid)
    assert info.selection.satisfied
    assert info.selection.value >= info.target


def test_mis_step_isolated_q_node_joins():
    """A Q'-node with no Q'-neighbour joins I (Lemma 21 first case)."""
    from repro.graphs import Graph

    g = Graph.from_edges(3, [(0, 1)])  # node 2 isolated
    params = Params()
    good = good_nodes_mis(g, params)
    ctx = MPCContext(n=3, m=1)
    q = np.array([True, False, True])  # 0 has no Q'-neighbour, 2 isolated
    i_mask, _ = luby_mis_step(g, q, good, params, ctx, [])
    assert i_mask[0] and i_mask[2]


def test_mis_step_rejects_empty_q():
    g = gnp_random_graph(30, 0.2, seed=6)
    good, spars, ctx, fid, params = setup_mis(g)
    with pytest.raises(ValueError):
        luby_mis_step(g, np.zeros(g.n, dtype=bool), good, params, ctx, fid)


def test_mis_step_deterministic():
    g = gnp_random_graph(60, 0.15, seed=9)

    def run():
        good, spars, ctx, fid, params = setup_mis(g)
        return luby_mis_step(g, spars.q_prime_mask, good, params, ctx, fid)[0]

    assert np.array_equal(run(), run())


def test_conditional_expectation_strategy_small_graph():
    """The literal Section-2.4 strategy end-to-end on a small instance."""
    g = gnp_random_graph(24, 0.3, seed=10)
    params = Params(strategy="conditional_expectation", enumeration_cap=1 << 16)
    good = good_nodes_mis(g, params)
    ctx = MPCContext(n=g.n, m=g.m)
    fid: list[str] = []
    spars = sparsify_nodes(g, good, params, ctx, fid)
    i_mask, info = luby_mis_step(g, spars.q_prime_mask, good, params, ctx, fid)
    assert is_independent_set(g, i_mask)
    assert info.selection.strategy == "conditional_expectation"
    # The probabilistic-method guarantee: chosen value >= family mean.
    assert info.selection.value >= info.selection.family_mean - 1e-9
