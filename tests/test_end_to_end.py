"""Larger integration tests: the full pipelines at benchmark scale.

These are slower tests (seconds, not milliseconds) that exercise the entire
stack on realistic workloads and assert the theorem-level facts a user
would rely on.
"""

import numpy as np
import pytest

from repro import maximal_independent_set, maximal_matching
from repro.analysis import (
    fit_geometric_decay,
    matching_iteration_bound,
    mis_iteration_bound,
)
from repro.cclique import cc_mis
from repro.congest import congest_mis
from repro.core import Params, deterministic_maximal_matching, deterministic_mis
from repro.graphs import (
    gnp_random_graph,
    power_law_graph,
    random_bipartite_graph,
    random_regular_graph,
)
from repro.verify import verify_matching_pairs, verify_mis_nodes


def test_full_pipeline_medium_gnp():
    g = gnp_random_graph(1000, 0.01, seed=500)
    params = Params()
    mi = deterministic_mis(g, params)
    mm = deterministic_maximal_matching(g, params)
    assert verify_mis_nodes(g, mi.independent_set)
    assert verify_matching_pairs(g, mm.pairs)
    assert mi.iterations <= mis_iteration_bound(g.m, params.delta_value)
    assert mm.iterations <= matching_iteration_bound(g.m, params.delta_value)
    assert mi.max_machine_words <= mi.space_limit
    assert mm.max_machine_words <= mm.space_limit


def test_full_pipeline_power_law():
    """Heavy-tailed degrees: the degree-class machinery earns its keep."""
    g = power_law_graph(1200, 4, seed=501)
    mi = deterministic_mis(g)
    mm = deterministic_maximal_matching(g)
    assert verify_mis_nodes(g, mi.independent_set)
    assert verify_matching_pairs(g, mm.pairs)
    # Classes above 4 must have appeared (hubs) => real sparsification ran.
    assert any(rec.stages for rec in mm.records)


def test_full_pipeline_bipartite():
    g = random_bipartite_graph(300, 300, 0.02, seed=502)
    mm = maximal_matching(g)
    assert verify_matching_pairs(g, mm.pairs)
    mi = maximal_independent_set(g)
    assert verify_mis_nodes(g, mi.independent_set)
    # An MIS of a bipartite graph has at least half of one side's
    # non-dominated structure; sanity: at least max(n_left-matched, ...).
    assert len(mi.independent_set) >= 300 - mm.pairs.shape[0]


def test_geometric_decay_at_scale():
    g = gnp_random_graph(2000, 0.005, seed=503)
    mi = deterministic_mis(g)
    trace = [rec.edges_before for rec in mi.records]
    assert fit_geometric_decay(trace) < 0.9


def test_lowdeg_at_scale():
    g = random_regular_graph(5000, 6, seed=504)
    res = maximal_independent_set(g)  # dispatches to Section 5
    assert verify_mis_nodes(g, res.independent_set)
    assert res.rounds <= 30  # flat, tiny round count


def test_three_models_agree_on_correctness():
    """MPC, CONGESTED CLIQUE and CONGEST runs on the same graph all
    produce valid (generally different) MISs."""
    g = gnp_random_graph(200, 0.08, seed=505)
    a = deterministic_mis(g).independent_set
    b = cc_mis(g).solution
    c = congest_mis(g).independent_set
    for sol in (a, b, c):
        assert verify_mis_nodes(g, sol)


def test_reproducibility_across_parameter_echo():
    """Same params -> same everything, including the trace."""
    g = gnp_random_graph(400, 0.03, seed=506)
    p = Params(eps=0.6, c=4)
    r1 = deterministic_mis(g, p)
    r2 = deterministic_mis(g, p)
    assert np.array_equal(r1.independent_set, r2.independent_set)
    assert [rec.selection_trials for rec in r1.records] == [
        rec.selection_trials for rec in r2.records
    ]
    assert r1.rounds_by_category == r2.rounds_by_category


@pytest.mark.parametrize("eps", [0.3, 0.5, 0.9])
def test_fully_scalable_in_eps(eps):
    """Theorem 1 is 'fully scalable': any constant eps works."""
    g = gnp_random_graph(300, 0.05, seed=507)
    res = deterministic_mis(g, Params(eps=eps))
    assert verify_mis_nodes(g, res.independent_set)
