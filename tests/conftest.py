"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core import Params
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    power_law_graph,
    random_tree,
    star_graph,
)

# Keep hypothesis fast and deterministic in CI-like runs.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def params() -> Params:
    return Params()


@pytest.fixture
def small_gnp() -> Graph:
    return gnp_random_graph(60, 0.15, seed=7)


@pytest.fixture
def medium_gnp() -> Graph:
    return gnp_random_graph(200, 0.05, seed=11)


@pytest.fixture(
    params=[
        ("gnp", lambda: gnp_random_graph(80, 0.1, seed=3)),
        ("powerlaw", lambda: power_law_graph(120, 3, seed=5)),
        ("complete", lambda: complete_graph(25)),
        ("star", lambda: star_graph(60)),
        ("cycle", lambda: cycle_graph(40)),
        ("grid", lambda: grid_graph(8, 8)),
        ("tree", lambda: random_tree(90, seed=9)),
        ("path", lambda: path_graph(30)),
    ],
    ids=lambda p: p[0],
)
def any_graph(request) -> Graph:
    """A diverse zoo of graph shapes for correctness sweeps."""
    return request.param[1]()


def edges_from_numpy(arr: np.ndarray) -> list[tuple[int, int]]:
    return [(int(a), int(b)) for a, b in arr.tolist()]
