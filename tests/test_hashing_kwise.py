"""Tests for the polynomial k-wise independent family (paper Lemma 6)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing import KWiseHashFamily, make_family


def test_family_metadata():
    fam = KWiseHashFamily(q=13, k=2)
    assert fam.size == 169
    assert fam.domain == 13
    assert fam.range == 13
    assert fam.independence == 2
    assert fam.seed_bits == 8  # ceil(log2 168) = 8


def test_rejects_composite_field():
    with pytest.raises(ValueError):
        KWiseHashFamily(q=12, k=2)


def test_rejects_bad_k():
    with pytest.raises(ValueError):
        KWiseHashFamily(q=13, k=0)


def test_rejects_oversized_field():
    with pytest.raises(ValueError):
        KWiseHashFamily(q=2**31 + 11, k=2)


def test_seed_codec_roundtrip_small():
    fam = KWiseHashFamily(q=7, k=3)
    for seed in range(fam.size):
        coeffs = fam.coefficients(seed)
        assert fam.seed_from_coefficients(coeffs) == seed


@given(st.integers(min_value=0, max_value=13**4 - 1))
def test_seed_codec_roundtrip_hypothesis(seed):
    fam = KWiseHashFamily(q=13, k=4)
    assert fam.seed_from_coefficients(fam.coefficients(seed)) == seed


def test_linear_coefficient_in_low_digit():
    """Scan order must reach non-constant functions first (seed digit order)."""
    fam = KWiseHashFamily(q=13, k=2)
    # seeds 1..q-1 decode to a_1 = seed, a_0 = 0: genuine linear maps.
    for seed in range(1, 13):
        a0, a1 = fam.coefficients(seed)
        assert a0 == 0 and a1 == seed


def test_evaluation_matches_horner():
    fam = KWiseHashFamily(q=101, k=3)
    seed = fam.seed_from_coefficients((5, 17, 42))
    xs = np.arange(101, dtype=np.int64)
    got = fam.evaluate(seed, xs)
    want = (42 * xs**2 + 17 * xs + 5) % 101
    assert np.array_equal(got.astype(np.int64), want)


def test_evaluate_rejects_out_of_domain():
    fam = KWiseHashFamily(q=13, k=2)
    with pytest.raises(ValueError):
        fam.evaluate(1, np.array([13]))


def test_evaluate_many_consistency():
    fam = KWiseHashFamily(q=31, k=2)
    seeds = np.arange(fam.size, dtype=np.int64)
    for x in [0, 1, 17, 30]:
        many = fam.evaluate_many(seeds, x)
        single = np.array([int(fam.evaluate(int(s), np.array([x]))[0]) for s in seeds])
        assert np.array_equal(many.astype(np.int64), single)


def test_pairwise_independence_exact():
    """Definition 5, verified exhaustively on a small field: for any two
    distinct points, the value pair is uniform over [q]^2."""
    q = 5
    fam = KWiseHashFamily(q=q, k=2)
    for x1, x2 in itertools.combinations(range(q), 2):
        counts = np.zeros((q, q), dtype=np.int64)
        for seed in range(fam.size):
            v = fam.evaluate(seed, np.array([x1, x2]))
            counts[int(v[0]), int(v[1])] += 1
        assert np.all(counts == fam.size // (q * q))


def test_3wise_independence_exact():
    q = 3
    fam = KWiseHashFamily(q=q, k=3)
    counts = np.zeros((q, q, q), dtype=np.int64)
    for seed in range(fam.size):
        v = fam.evaluate(seed, np.array([0, 1, 2]))
        counts[int(v[0]), int(v[1]), int(v[2])] += 1
    assert np.all(counts == fam.size // q**3)


def test_single_point_uniform():
    q = 7
    fam = KWiseHashFamily(q=q, k=2)
    for x in range(q):
        counts = np.zeros(q, dtype=np.int64)
        for seed in range(fam.size):
            counts[int(fam.evaluate(seed, np.array([x]))[0])] += 1
        assert np.all(counts == fam.size // q)


def test_threshold_probability():
    fam = KWiseHashFamily(q=101, k=2)
    assert fam.threshold(0.0) == 0
    assert fam.threshold(1.0) == 101
    t = fam.threshold(0.25)
    assert abs(t / 101 - 0.25) < 1.0 / 101


def test_threshold_rejects_bad_prob():
    fam = KWiseHashFamily(q=101, k=2)
    with pytest.raises(ValueError):
        fam.threshold(1.5)


def test_sample_indicator_rate_exact_over_family():
    """Averaged over the whole family, the sampling rate equals t/q exactly
    (each point is marginally uniform)."""
    q = 13
    fam = KWiseHashFamily(q=q, k=2)
    prob = 0.4
    t = fam.threshold(prob)
    xs = np.arange(q, dtype=np.int64)
    total = 0
    for seed in range(fam.size):
        total += int(fam.sample_indicator(seed, xs, prob).sum())
    assert total == fam.size * q * t // q / 1 * 1  # == size * q * (t/q)
    assert total == fam.size * t  # equivalent closed form


def test_make_family_covers_universe():
    fam = make_family(universe=1000, k=2)
    assert fam.q >= 1000
    xs = np.arange(1000, dtype=np.int64)
    fam.evaluate(3, xs)  # must not raise


def test_make_family_min_q_floor():
    fam = make_family(universe=10, k=2, min_q=257)
    assert fam.q >= 257
