"""Failure injection and edge cases across the stack.

Covers the guard rails: slack escalation under impossible budgets, key-space
guards, degenerate graphs, parameter validation, dispatch corner cases.
"""

import numpy as np
import pytest

from repro.core import (
    Params,
    deterministic_maximal_matching,
    deterministic_mis,
    good_nodes_matching,
    sparsify_edges,
)
from repro.core.api import uses_lowdeg_path
from repro.core.stage import MachineGroupSpec, node_level_spec
from repro.graphs import Graph, complete_graph, gnp_random_graph, star_graph
from repro.mpc import MPCContext, chunk_items_by_group
from repro.verify import verify_matching_pairs, verify_mis_nodes


# --------------------------------------------------------------------- #
# Params validation
# --------------------------------------------------------------------- #


def test_params_rejects_bad_eps():
    with pytest.raises(ValueError):
        Params(eps=0.0)
    with pytest.raises(ValueError):
        Params(eps=1.5)


def test_params_rejects_bad_delta():
    with pytest.raises(ValueError):
        Params(eps=0.5, delta=0.6)  # delta > eps


def test_params_rejects_odd_c():
    with pytest.raises(ValueError):
        Params(c=3)
    with pytest.raises(ValueError):
        Params(c=5)


def test_params_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        Params(strategy="mystery")


def test_params_with_update():
    p = Params().with_(eps=0.75)
    assert p.eps == 0.75
    assert p.delta_value == pytest.approx(0.75 / 8)


def test_params_derived_quantities_consistent():
    p = Params(eps=0.5)
    n = 4096
    assert p.chunk_size(n) == int(np.ceil(n ** (4 * p.delta_value)))
    assert p.sample_prob(n) == pytest.approx(n ** (-p.delta_value))
    assert p.degree_cap(n) == pytest.approx(2 * n ** (4 * p.delta_value))


# --------------------------------------------------------------------- #
# slack escalation (failure injection)
# --------------------------------------------------------------------- #


def test_slack_escalation_records_fidelity_events():
    """With an absurdly small scan budget, the stage search must escalate
    (and record it) instead of silently failing."""
    g = complete_graph(40)
    params = Params(max_scan_trials=1, max_slack_escalations=2)
    good = good_nodes_matching(g, params)
    ctx = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
    fid: list[str] = []
    res = sparsify_edges(g, good, params, ctx, fid)
    assert res.num_edges > 0  # still produces a usable E*
    assert any("escalat" in e for e in fid)


def test_escalation_exhaustion_is_not_silent():
    g = complete_graph(40)
    params = Params(max_scan_trials=1, max_slack_escalations=0)
    good = good_nodes_matching(g, params)
    ctx = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
    fid: list[str] = []
    sparsify_edges(g, good, params, ctx, fid)
    assert any("exhausted" in e or "escalat" in e for e in fid)


# --------------------------------------------------------------------- #
# stage spec validation
# --------------------------------------------------------------------- #


def test_machine_group_spec_shape_checks():
    grouping = chunk_items_by_group(np.array([0, 0, 1]), 2)
    with pytest.raises(ValueError):
        MachineGroupSpec(
            name="bad", grouping=grouping, unit_ids=np.array([1, 2])
        )
    with pytest.raises(ValueError):
        MachineGroupSpec(
            name="bad",
            grouping=grouping,
            unit_ids=np.array([1, 2, 3]),
            weights=np.array([0.5]),
        )


def test_node_level_spec_is_one_machine_per_group():
    groups = np.array([4, 4, 7, 7, 7, 9])
    spec = node_level_spec("t", groups, np.arange(6))
    assert spec.virtual
    assert spec.grouping.num_machines == 3
    assert sorted(spec.grouping.group_of_machine.tolist()) == [4, 7, 9]


# --------------------------------------------------------------------- #
# degenerate graphs
# --------------------------------------------------------------------- #


def test_two_isolated_nodes():
    g = Graph.empty(2)
    assert deterministic_mis(g).independent_set.tolist() == [0, 1]


def test_self_loop_only_input_becomes_edgeless():
    g = Graph.from_edges(3, [(1, 1)])
    assert g.m == 0
    assert deterministic_mis(g).independent_set.tolist() == [0, 1, 2]


def test_disconnected_components_handled():
    g = Graph.from_edges(10, [(0, 1), (2, 3), (5, 6), (6, 7), (7, 5)])
    mi = deterministic_mis(g)
    mm = deterministic_maximal_matching(g)
    assert verify_mis_nodes(g, mi.independent_set)
    assert verify_matching_pairs(g, mm.pairs)
    assert 4 in mi.independent_set  # isolated nodes always join
    assert 8 in mi.independent_set and 9 in mi.independent_set


def test_star_extreme_degree_skew():
    """Hub in the top degree class, leaves in class 1."""
    g = star_graph(200)
    mi = deterministic_mis(g)
    assert verify_mis_nodes(g, mi.independent_set)
    # Either the hub alone or all the leaves.
    assert len(mi.independent_set) in (1, 199)


def test_double_star():
    """Two hubs sharing an edge: adversarial for degree classes."""
    edges = [(0, 1)]
    edges += [(0, i) for i in range(2, 60)]
    edges += [(1, i) for i in range(60, 118)]
    g = Graph.from_edges(118, edges)
    mi = deterministic_mis(g)
    mm = deterministic_maximal_matching(g)
    assert verify_mis_nodes(g, mi.independent_set)
    assert verify_matching_pairs(g, mm.pairs)


# --------------------------------------------------------------------- #
# dispatch corner cases
# --------------------------------------------------------------------- #


def test_dispatch_edgeless_graph_prefers_lowdeg():
    assert uses_lowdeg_path(Graph.empty(5), Params())


def test_dispatch_accounts_for_line_graph_degree():
    """Matching dispatch must consider Delta(L(G)) = 2 Delta - 2."""
    params = Params()
    g = gnp_random_graph(100, 0.08, seed=1)
    mis_path = uses_lowdeg_path(g, params, for_matching=False)
    mm_path = uses_lowdeg_path(g, params, for_matching=True)
    # The matching rule is at least as strict.
    assert (not mis_path) or mm_path in (True, False)
    if mm_path:
        assert mis_path


def test_space_factor_controls_dispatch():
    g = gnp_random_graph(100, 0.08, seed=2)
    roomy = Params(space_factor=10_000.0)
    tight = Params(space_factor=4.0)
    assert uses_lowdeg_path(g, roomy)
    assert not uses_lowdeg_path(g, tight)
