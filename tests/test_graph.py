"""Tests for the CSR Graph structure."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graphs import Graph


def small_edge_lists():
    return st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=80
    )


def test_empty_graph():
    g = Graph.empty(5)
    assert g.n == 5 and g.m == 0
    assert g.max_degree() == 0
    assert np.all(g.isolated_mask())


def test_zero_vertices():
    g = Graph.empty(0)
    assert g.n == 0 and g.m == 0
    assert g.max_degree() == 0


def test_from_edges_dedup_and_selfloops():
    g = Graph.from_edges(4, [(0, 1), (1, 0), (2, 2), (1, 2), (1, 2)])
    assert g.m == 2
    assert g.has_edge(0, 1) and g.has_edge(2, 1)
    assert not g.has_edge(2, 2)


def test_from_edges_rejects_out_of_range():
    with pytest.raises(ValueError):
        Graph.from_edges(3, [(0, 5)])


def test_canonical_orientation():
    g = Graph.from_edges(5, [(4, 1), (3, 0)])
    assert np.all(g.edges_u < g.edges_v)


def test_degrees_and_neighbors():
    g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
    assert g.degrees().tolist() == [3, 2, 2, 1]
    assert sorted(g.neighbors(0).tolist()) == [1, 2, 3]
    assert g.degree(3) == 1
    assert g.max_degree() == 3


def test_incident_edge_ids_match_endpoints():
    g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 3)])
    for v in range(4):
        for eid in g.incident_edge_ids(v).tolist():
            assert v in (int(g.edges_u[eid]), int(g.edges_v[eid]))


def test_edge_degrees_full():
    # path 0-1-2-3: middle edge adjacent to both others
    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    d = g.edge_degrees()
    by_pair = {
        (int(u), int(v)): int(x)
        for u, v, x in zip(g.edges_u, g.edges_v, d)
    }
    assert by_pair[(0, 1)] == 1
    assert by_pair[(1, 2)] == 2
    assert by_pair[(2, 3)] == 1


def test_edge_degrees_with_mask():
    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    mask = np.array([True, False, True])
    d = g.edge_degrees(mask)
    assert d[1] == 0  # off-mask edge reports 0
    assert d[0] == 0 and d[2] == 0  # masked edges no longer adjacent


def test_degrees_within_mask():
    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    mask = np.array([True, True, False])
    assert g.degrees_within(mask).tolist() == [1, 2, 1, 0]


def test_degrees_toward_subset():
    g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
    sel = np.array([False, True, True, False])
    assert g.degrees_toward(sel).tolist() == [2, 0, 0, 0]


def test_remove_vertices_keeps_ids():
    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    g2 = g.remove_vertices(np.array([False, True, False, False]))
    assert g2.n == 4
    assert g2.m == 1
    assert g2.has_edge(2, 3)
    assert g2.degree(1) == 0


def test_keep_edges():
    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    g2 = g.keep_edges(np.array([True, False, True]))
    assert g2.m == 2
    assert g2.has_edge(0, 1) and g2.has_edge(2, 3) and not g2.has_edge(1, 2)


def test_relabel():
    g = Graph.from_edges(3, [(0, 1), (1, 2)])
    g2 = g.relabel(np.array([2, 1, 0]), 3)
    assert g2.has_edge(2, 1) and g2.has_edge(1, 0)


def test_equality_and_hash():
    a = Graph.from_edges(3, [(0, 1)])
    b = Graph.from_edges(3, [(1, 0)])
    c = Graph.from_edges(3, [(0, 2)])
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_to_networkx_roundtrip():
    g = Graph.from_edges(5, [(0, 1), (2, 3), (3, 4)])
    nxg = g.to_networkx()
    assert nxg.number_of_nodes() == 5
    assert nxg.number_of_edges() == 3
    assert nxg.has_edge(3, 4)


@given(small_edge_lists())
def test_csr_consistent_with_edge_list(edges):
    g = Graph.from_edges(20, edges)
    # Every canonical edge appears exactly twice in the arc lists.
    deg = np.zeros(20, dtype=int)
    for u, v in zip(g.edges_u.tolist(), g.edges_v.tolist()):
        deg[u] += 1
        deg[v] += 1
    assert np.array_equal(deg, g.degrees())
    # Neighbour sets symmetric.
    for v in range(20):
        for u in g.neighbors(v).tolist():
            assert v in g.neighbors(u).tolist()


@given(small_edge_lists())
def test_sum_degrees_is_twice_m(edges):
    g = Graph.from_edges(20, edges)
    assert int(g.degrees().sum()) == 2 * g.m


@given(small_edge_lists(), st.integers(0, 19))
def test_remove_vertex_drops_exactly_its_edges(edges, v):
    g = Graph.from_edges(20, edges)
    mask = np.zeros(20, dtype=bool)
    mask[v] = True
    g2 = g.remove_vertices(mask)
    assert g2.m == g.m - g.degree(v)
    assert g2.degree(v) == 0
