"""End-to-end tests for the O(log n) drivers (Theorems 7 and 14)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import matching_iteration_bound, mis_iteration_bound
from repro.core import Params, deterministic_maximal_matching, deterministic_mis
from repro.graphs import Graph, gnp_random_graph
from repro.verify import verify_matching_pairs, verify_mis_nodes


# --------------------------------------------------------------------- #
# correctness across the graph zoo
# --------------------------------------------------------------------- #


def test_matching_correct_on_zoo(any_graph):
    res = deterministic_maximal_matching(any_graph)
    assert verify_matching_pairs(any_graph, res.pairs)


def test_mis_correct_on_zoo(any_graph):
    res = deterministic_mis(any_graph)
    assert verify_mis_nodes(any_graph, res.independent_set)


def test_empty_graph_mis_is_all_nodes():
    g = Graph.empty(7)
    res = deterministic_mis(g)
    assert res.independent_set.tolist() == list(range(7))
    assert res.iterations == 0


def test_empty_graph_matching_is_empty():
    g = Graph.empty(7)
    res = deterministic_maximal_matching(g)
    assert res.pairs.size == 0


def test_single_edge():
    g = Graph.from_edges(2, [(0, 1)])
    mm = deterministic_maximal_matching(g)
    assert mm.pairs.tolist() == [[0, 1]]
    mis = deterministic_mis(g)
    assert len(mis.independent_set) == 1


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10)
def test_matching_correct_on_random_gnp(seed):
    g = gnp_random_graph(60, 0.1, seed=seed)
    res = deterministic_maximal_matching(g)
    assert verify_matching_pairs(g, res.pairs)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10)
def test_mis_correct_on_random_gnp(seed):
    g = gnp_random_graph(60, 0.1, seed=seed)
    res = deterministic_mis(g)
    assert verify_mis_nodes(g, res.independent_set)


# --------------------------------------------------------------------- #
# determinism (the headline property)
# --------------------------------------------------------------------- #


def test_matching_fully_deterministic(medium_gnp):
    a = deterministic_maximal_matching(medium_gnp)
    b = deterministic_maximal_matching(medium_gnp)
    assert np.array_equal(a.pairs, b.pairs)
    assert a.rounds == b.rounds
    assert a.iterations == b.iterations


def test_mis_fully_deterministic(medium_gnp):
    a = deterministic_mis(medium_gnp)
    b = deterministic_mis(medium_gnp)
    assert np.array_equal(a.independent_set, b.independent_set)
    assert a.rounds == b.rounds


# --------------------------------------------------------------------- #
# progress / iteration bounds (the O(log n) claims)
# --------------------------------------------------------------------- #


def test_matching_iterations_within_paper_bound(medium_gnp):
    params = Params()
    res = deterministic_maximal_matching(medium_gnp, params)
    bound = matching_iteration_bound(medium_gnp.m, params.delta_value)
    assert res.iterations <= bound


def test_mis_iterations_within_paper_bound(medium_gnp):
    params = Params()
    res = deterministic_mis(medium_gnp, params)
    bound = mis_iteration_bound(medium_gnp.m, params.delta_value)
    assert res.iterations <= bound


def test_matching_per_iteration_progress(medium_gnp):
    """Every iteration removes at least delta |E| / 536 edges (Sec 3.3)."""
    params = Params()
    res = deterministic_maximal_matching(medium_gnp, params)
    for rec in res.records:
        if rec.selection_satisfied:
            min_removed = params.delta_value * rec.edges_before / 536.0
            assert rec.edges_before - rec.edges_after >= min_removed


def test_mis_per_iteration_progress(medium_gnp):
    """Every iteration removes at least delta^2 |E| / 400 edges (Sec 4.4)."""
    params = Params()
    res = deterministic_mis(medium_gnp, params)
    for rec in res.records:
        if rec.selection_satisfied:
            min_removed = params.delta_value**2 * rec.edges_before / 400.0
            assert rec.edges_before - rec.edges_after >= min_removed


def test_edge_trace_strictly_decreasing(medium_gnp):
    res = deterministic_mis(medium_gnp)
    for rec in res.records:
        assert rec.edges_after < rec.edges_before


def test_rounds_scale_with_iterations(medium_gnp):
    res = deterministic_maximal_matching(medium_gnp)
    # O(1) charged rounds per iteration: total / iterations bounded.
    assert res.rounds <= 80 * res.iterations


# --------------------------------------------------------------------- #
# space accounting (Theorem 7/14 space claims)
# --------------------------------------------------------------------- #


def test_space_within_limit(medium_gnp):
    mm = deterministic_maximal_matching(medium_gnp)
    assert mm.max_machine_words <= mm.space_limit
    mi = deterministic_mis(medium_gnp)
    assert mi.max_machine_words <= mi.space_limit


def test_records_expose_seed_bits(medium_gnp):
    res = deterministic_mis(medium_gnp)
    for rec in res.records:
        assert rec.seed_bits > 0


def test_eps_parameter_changes_space():
    g = gnp_random_graph(150, 0.05, seed=12)
    lo = deterministic_mis(g, Params(eps=0.4))
    hi = deterministic_mis(g, Params(eps=0.8))
    assert lo.space_limit < hi.space_limit
    assert verify_mis_nodes(g, lo.independent_set)
    assert verify_mis_nodes(g, hi.independent_set)


def test_iteration_cap_raises():
    g = gnp_random_graph(60, 0.1, seed=13)
    with pytest.raises(RuntimeError):
        deterministic_mis(g, max_iterations=0)
