"""CSR adjacency backend: lazy build, cache/invalidation, npz round-trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    gnp_random_graph,
    graph_fingerprint,
    graph_from_npz_bytes,
    graph_to_npz_bytes,
)


@pytest.fixture
def g() -> Graph:
    return gnp_random_graph(40, 0.15, seed=11)


# --------------------------------------------------------------------- #
# Lazy build + caching
# --------------------------------------------------------------------- #


def test_csr_is_lazy_and_cached(g):
    assert not g.csr_is_built
    a = g.adjacency_csr()
    assert g.csr_is_built
    assert g.adjacency_csr() is a  # cached, not rebuilt


def test_csr_matches_adjacency(g):
    dense = g.adjacency_csr().toarray()
    expect = np.zeros((g.n, g.n), dtype=np.int64)
    for u, v in g.edge_array().tolist():
        expect[u, v] = expect[v, u] = 1
    assert np.array_equal(dense, expect)


def test_csr_matvec_gives_degrees(g):
    ones = np.ones(g.n, dtype=np.int64)
    assert np.array_equal(g.adjacency_csr() @ ones, g.degrees())


def test_invalidate_csr_rebuilds(g):
    a = g.adjacency_csr()
    g.invalidate_csr()
    assert not g.csr_is_built
    b = g.adjacency_csr()
    assert b is not a
    assert np.array_equal(a.toarray(), b.toarray())


# --------------------------------------------------------------------- #
# Invalidate-on-mutation semantics
# --------------------------------------------------------------------- #


def test_backing_arrays_are_frozen(g):
    """In-place mutation is refused, so a cached CSR can never go stale."""
    for name in ("edges_u", "edges_v", "indptr", "indices", "arc_edge_ids"):
        arr = getattr(g, name)
        with pytest.raises(ValueError):
            arr[0] = 0


def test_mutating_operations_return_fresh_cache(g):
    parent_csr = g.adjacency_csr()
    kill = np.zeros(g.n, dtype=bool)
    kill[:5] = True
    child = g.remove_vertices(kill)
    assert not child.csr_is_built  # new instance, empty cache
    child_csr = child.adjacency_csr()
    # The child's adjacency reflects the removal...
    assert child_csr[:5].count_nonzero() == 0
    assert child_csr[:, :5].count_nonzero() == 0
    # ...and the parent's cached matrix is untouched.
    assert g.adjacency_csr() is parent_csr
    assert parent_csr.count_nonzero() == 2 * g.m


def test_keep_edges_fresh_cache(g):
    g.adjacency_csr()
    mask = np.zeros(g.m, dtype=bool)
    mask[: g.m // 2] = True
    child = g.keep_edges(mask)
    assert not child.csr_is_built
    assert child.adjacency_csr().count_nonzero() == 2 * child.m


# --------------------------------------------------------------------- #
# from_csr_arrays fast path
# --------------------------------------------------------------------- #


def test_from_csr_arrays_round_trip(g):
    h = Graph.from_csr_arrays(
        g.n, g.edges_u, g.edges_v, g.indptr, g.indices, g.arc_edge_ids
    )
    assert h == g
    assert np.array_equal(h.indptr, g.indptr)
    assert np.array_equal(h.indices, g.indices)
    assert np.array_equal(h.arc_edge_ids, g.arc_edge_ids)


@pytest.mark.parametrize(
    "corrupt",
    [
        lambda a: a.__setitem__("indptr", a["indptr"][:-1]),
        lambda a: a.__setitem__("indptr", a["indptr"][::-1].copy()),
        lambda a: a.__setitem__("indices", a["indices"] + a["n"]),
        lambda a: a.__setitem__("arc_edge_ids", a["arc_edge_ids"] * 0 - 1),
        lambda a: a.__setitem__("edges_u", a["edges_v"].copy()),
    ],
)
def test_from_csr_arrays_validates(g, corrupt):
    arrays = {
        "n": g.n,
        "edges_u": g.edges_u.copy(),
        "edges_v": g.edges_v.copy(),
        "indptr": g.indptr.copy(),
        "indices": g.indices.copy(),
        "arc_edge_ids": g.arc_edge_ids.copy(),
    }
    corrupt(arrays)
    with pytest.raises(ValueError):
        Graph.from_csr_arrays(
            arrays["n"],
            arrays["edges_u"],
            arrays["edges_v"],
            arrays["indptr"],
            arrays["indices"],
            arrays["arc_edge_ids"],
        )


def test_from_csr_arrays_empty_graph():
    e = Graph.empty(5)
    h = Graph.from_csr_arrays(
        5, e.edges_u, e.edges_v, e.indptr, e.indices, e.arc_edge_ids
    )
    assert h == e


# --------------------------------------------------------------------- #
# npz round-trip of CSR buffers
# --------------------------------------------------------------------- #


def test_npz_round_trip_with_csr(g):
    blob = graph_to_npz_bytes(g, include_csr=True)
    h = graph_from_npz_bytes(blob)
    assert h == g
    assert np.array_equal(h.indptr, g.indptr)
    assert np.array_equal(h.indices, g.indices)
    assert np.array_equal(h.arc_edge_ids, g.arc_edge_ids)


def test_npz_round_trip_without_csr(g):
    h = graph_from_npz_bytes(graph_to_npz_bytes(g))
    assert h == g


def test_npz_csr_payload_is_larger_but_same_fingerprint(g):
    plain = graph_to_npz_bytes(g)
    with_csr = graph_to_npz_bytes(g, include_csr=True)
    assert len(with_csr) > len(plain)
    assert graph_fingerprint(graph_from_npz_bytes(plain)) == graph_fingerprint(
        graph_from_npz_bytes(with_csr)
    )


def test_npz_csr_round_trip_solves_identically(g):
    from repro.baselines.luby import luby_mis_randomized

    h = graph_from_npz_bytes(graph_to_npz_bytes(g, include_csr=True))
    a = luby_mis_randomized(g, 5)
    b = luby_mis_randomized(h, 5)
    assert np.array_equal(a.solution, b.solution)
    assert a.edge_trace == b.edge_trace
