"""Tests for the randomized baselines and sequential oracles."""

import numpy as np
import pytest

from repro.baselines import (
    ghaffari_mis,
    greedy_matching,
    greedy_mis,
    israeli_itai_matching,
    luby_matching_randomized,
    luby_mis_pairwise,
    luby_mis_randomized,
    pram_bitwise_derandomized_mis,
)
from repro.graphs import Graph, complete_graph, gnp_random_graph, star_graph
from repro.verify import verify_matching_pairs, verify_mis_nodes


# --------------------------------------------------------------------- #
# greedy oracles
# --------------------------------------------------------------------- #


def test_greedy_mis_correct(any_graph):
    assert verify_mis_nodes(any_graph, greedy_mis(any_graph))


def test_greedy_matching_correct(any_graph):
    assert verify_matching_pairs(any_graph, greedy_matching(any_graph))


def test_greedy_mis_lexicographic_star_takes_hub():
    g = star_graph(5)
    assert greedy_mis(g).tolist() == [0]  # hub first blocks all leaves


# --------------------------------------------------------------------- #
# randomized Luby variants
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_luby_mis_randomized_correct(seed):
    g = gnp_random_graph(80, 0.1, seed=7)
    res = luby_mis_randomized(g, seed=seed)
    assert verify_mis_nodes(g, res.solution)
    assert res.iterations >= 1
    assert len(res.edge_trace) == res.iterations


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_luby_mis_pairwise_correct(seed):
    g = gnp_random_graph(80, 0.1, seed=8)
    res = luby_mis_pairwise(g, seed=seed)
    assert verify_mis_nodes(g, res.solution)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_luby_matching_correct(seed):
    g = gnp_random_graph(80, 0.1, seed=9)
    res = luby_matching_randomized(g, seed=seed)
    assert verify_matching_pairs(g, res.solution)


def test_luby_iterations_logarithmic():
    """O(log n) iterations in practice on dense-ish inputs."""
    g = gnp_random_graph(300, 0.05, seed=10)
    res = luby_mis_randomized(g, seed=0)
    assert res.iterations <= 6 * np.log2(g.m + 2)


def test_luby_edge_trace_decreasing():
    g = gnp_random_graph(120, 0.08, seed=11)
    res = luby_mis_randomized(g, seed=1)
    trace = list(res.edge_trace)
    assert all(a >= b for a, b in zip(trace, trace[1:]))


def test_luby_pairwise_vs_full_similar_iterations():
    """Luby's observation: pairwise independence costs ~nothing."""
    g = gnp_random_graph(250, 0.05, seed=12)
    full = np.mean([luby_mis_randomized(g, seed=s).iterations for s in range(3)])
    pair = np.mean([luby_mis_pairwise(g, seed=s).iterations for s in range(3)])
    assert pair <= 3 * full + 2


def test_luby_on_empty_and_trivial():
    g = Graph.empty(5)
    res = luby_mis_randomized(g, seed=0)
    assert res.solution.tolist() == [0, 1, 2, 3, 4]
    assert res.iterations == 0


# --------------------------------------------------------------------- #
# Israeli-Itai
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [0, 1])
def test_israeli_itai_correct(seed):
    g = gnp_random_graph(80, 0.1, seed=13)
    res = israeli_itai_matching(g, seed=seed)
    assert verify_matching_pairs(g, res.solution)
    assert res.rounds == 2 * res.iterations


def test_israeli_itai_complete_graph():
    g = complete_graph(20)
    res = israeli_itai_matching(g, seed=3)
    assert verify_matching_pairs(g, res.solution)
    assert res.solution.shape[0] == 10  # perfect matching on K20


# --------------------------------------------------------------------- #
# Ghaffari
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [0, 1])
def test_ghaffari_correct(seed):
    g = gnp_random_graph(80, 0.1, seed=14)
    res = ghaffari_mis(g, seed=seed)
    assert verify_mis_nodes(g, res.solution)


def test_ghaffari_terminates_on_clique():
    g = complete_graph(30)
    res = ghaffari_mis(g, seed=0)
    assert verify_mis_nodes(g, res.solution)
    assert len(res.solution) == 1


# --------------------------------------------------------------------- #
# PRAM bitwise derandomization
# --------------------------------------------------------------------- #


def test_pram_bitwise_correct_and_deterministic():
    g = gnp_random_graph(40, 0.15, seed=15)
    a = pram_bitwise_derandomized_mis(g)
    b = pram_bitwise_derandomized_mis(g)
    assert verify_mis_nodes(g, a.solution)
    assert np.array_equal(a.solution, b.solution)


def test_pram_bitwise_round_structure():
    """rounds = iterations * (seed_bits + 1): the Theta(log^2 n) shape."""
    g = gnp_random_graph(40, 0.15, seed=16)
    res = pram_bitwise_derandomized_mis(g)
    assert res.rounds > res.iterations  # strictly worse than O(1)/iteration
    assert res.rounds % res.iterations == 0 or res.rounds >= res.iterations


def test_pram_bitwise_family_cap():
    g = gnp_random_graph(30, 0.2, seed=17)
    with pytest.raises(ValueError):
        pram_bitwise_derandomized_mis(g, min_q=5000)
