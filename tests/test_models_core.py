"""Tests for the columnar round-execution core (repro.models).

Covers the message-plane router, the ``REPRO_ENGINE_BACKEND`` gate, the
columnar/legacy parity of every engine-layer call site, the shared
``RoundLedger`` protocol across all three model simulators, and the
hypothesis-driven ledger invariants (rounds monotone, category charges sum
to the total, space ceilings raising exactly at the boundary).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cclique import CongestedCliqueContext
from repro.congest import CongestContext
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    star_graph,
)
from repro.models import (
    MessageBlock,
    ModelSnapshot,
    Plane,
    RoundLedgerProtocol,
    concat_planes,
    cross_model_run,
    resolve_engine_backend,
    route_block,
)
from repro.mpc import (
    CapacityExceededError,
    MPCContext,
    MPCEngine,
    SpaceExceededError,
    distributed_degrees,
    distributed_luby_mis,
    distributed_node_aggregate,
    distributed_sort,
    distributed_sort_packed,
    packed_arc_plane,
    word_size,
)


# --------------------------------------------------------------------- #
# Planes and routing
# --------------------------------------------------------------------- #


def test_plane_word_cost_matches_tuples():
    p = Plane("minz", np.arange(10).reshape(5, 2))
    # five ("minz", a, b) tuples cost 3 words each
    assert p.word_cost == 5 * 3 == sum(word_size(("minz", 1, 2)) for _ in range(5))


def test_raw_block_costs_one_word_per_row():
    blk = MessageBlock("", np.zeros(4, dtype=np.int64), np.arange(4))
    assert blk.words_per_row == 1
    with pytest.raises(ValueError):
        MessageBlock("", np.zeros(2, dtype=np.int64), np.arange(4).reshape(2, 2))


def test_route_block_splits_by_destination():
    dest = np.array([2, 0, 2, 1, 0], dtype=np.int64)
    data = np.arange(10).reshape(5, 2)
    routed = dict(route_block(MessageBlock("t", dest, data), 3))
    assert sorted(routed) == [0, 1, 2]
    assert np.array_equal(routed[0].data, data[[1, 4]])
    assert np.array_equal(routed[1].data, data[[3]])
    assert np.array_equal(routed[2].data, data[[0, 2]])


def test_route_block_rejects_bad_destination():
    blk = MessageBlock("t", np.array([0, 5]), np.zeros((2, 1)))
    with pytest.raises(ValueError, match="nonexistent machine"):
        route_block(blk, 3)
    blk = MessageBlock("t", np.array([-1]), np.zeros((1, 1)))
    with pytest.raises(ValueError, match="nonexistent machine"):
        route_block(blk, 3)


def test_concat_planes_preserves_delivery_order():
    items = [Plane("a", np.array([[1, 0]])), 7, Plane("a", np.array([[2, 1]]))]
    got = concat_planes(items, "a", 2)
    assert np.array_equal(got, np.array([[1, 0], [2, 1]]))
    assert concat_planes(items, "missing", 2).shape == (0, 2)


def test_resolve_engine_backend(monkeypatch):
    assert resolve_engine_backend() == "columnar"
    assert resolve_engine_backend("legacy") == "legacy"
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", "legacy")
    assert resolve_engine_backend() == "legacy"
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", "bogus")
    with pytest.raises(ValueError, match="unknown engine backend"):
        resolve_engine_backend()


# --------------------------------------------------------------------- #
# round_packed semantics
# --------------------------------------------------------------------- #


def test_round_packed_keeps_self_rows_without_charging():
    eng = MPCEngine(num_machines=2, space=8)

    def step(mid, items):
        if mid == 0:
            # two rows to self, one row out: only the external row is sent
            blk = MessageBlock(
                "t", np.array([0, 0, 1]), np.array([[1], [2], [3]])
            )
            return [], [blk]
        return [], []

    eng.round_packed(step)
    assert eng.rounds_executed == 1
    # 2 self rows stayed on machine 0, 1 row delivered to machine 1
    assert concat_planes(eng.storage[0], "t", 1)[:, 0].tolist() == [1, 2]
    assert concat_planes(eng.storage[1], "t", 1)[:, 0].tolist() == [3]
    assert eng.words_moved == 2  # one external (tag + value) row


def test_round_packed_send_capacity_enforced():
    eng = MPCEngine(num_machines=2, space=5)

    def step(mid, items):
        if mid == 0:
            # 3 tagged rows of width 1 = 6 words > S = 5
            return [], [MessageBlock("t", np.ones(3, dtype=np.int64),
                                     np.zeros((3, 1)))]
        return [], []

    with pytest.raises(CapacityExceededError, match="sent"):
        eng.round_packed(step)


def test_round_packed_receive_capacity_enforced():
    eng = MPCEngine(num_machines=3, space=4)

    def step(mid, items):
        if mid in (0, 1):
            return [], [MessageBlock("t", np.full(2, 2), np.zeros((2, 1)))]
        return [], []

    with pytest.raises(CapacityExceededError, match="received"):
        eng.round_packed(step)


def test_round_packed_rejects_unknown_destination():
    eng = MPCEngine(num_machines=2, space=64)
    with pytest.raises(ValueError, match="nonexistent machine"):
        eng.round_packed(
            lambda mid, items: (
                [],
                [MessageBlock("t", np.array([7]), np.zeros((1, 1)))]
                if mid == 0
                else [],
            )
        )


# --------------------------------------------------------------------- #
# Columnar / legacy parity of the engine call sites
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "make,machines,space",
    [
        (lambda: gnp_random_graph(40, 0.15, seed=5), 4, 1024),
        (lambda: cycle_graph(30), 3, 512),
        (lambda: complete_graph(12), 3, 512),
        (lambda: star_graph(25), 3, 512),
        (lambda: Graph.empty(5), 2, 64),
    ],
)
def test_distributed_luby_columnar_matches_legacy(make, machines, space):
    g = make()
    col = distributed_luby_mis(g, machines, space, engine_backend="columnar")
    obj = distributed_luby_mis(g, machines, space, engine_backend="legacy")
    assert np.array_equal(col[0], obj[0])
    assert col[1:] == obj[1:]


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_distributed_luby_columnar_parity_hypothesis(seed):
    g = gnp_random_graph(28, 0.18, seed=seed)
    col = distributed_luby_mis(g, 4, 768, engine_backend="columnar")
    obj = distributed_luby_mis(g, 4, 768, engine_backend="legacy")
    assert np.array_equal(col[0], obj[0])
    assert col[1:] == obj[1:]


def test_distributed_luby_accepts_shipped_arc_plane():
    g = gnp_random_graph(30, 0.2, seed=8)
    plane = packed_arc_plane(g)
    a = distributed_luby_mis(g, 4, 512)
    b = distributed_luby_mis(g, 4, 512, arc_plane=plane)
    assert np.array_equal(a[0], b[0]) and a[1:] == b[1:]


def test_distributed_luby_stats_out_snapshot():
    """``stats_out`` exposes the engine's snapshot without changing the
    public return tuple; both backends report identical bills."""
    g = gnp_random_graph(30, 0.2, seed=9)
    out_col: dict = {}
    out_obj: dict = {}
    col = distributed_luby_mis(g, 4, 512, stats_out=out_col)
    obj = distributed_luby_mis(
        g, 4, 512, engine_backend="legacy", stats_out=out_obj
    )
    snap_col, snap_obj = out_col["snapshot"], out_obj["snapshot"]
    assert snap_col.model == "mpc-engine"
    assert snap_col.rounds == col[1] == obj[1]
    assert snap_col.words_moved == snap_obj.words_moved > 0
    assert snap_col.max_words_seen == snap_obj.max_words_seen > 0


def test_cross_model_matching_edgeless_keeps_all_rows():
    """Regression: the CONGEST matching early-return used to ship no
    snapshot, silently dropping the congest row from the report."""
    run = cross_model_run(Graph.empty(5), "matching")
    assert [s.model for s in run.snapshots] == [
        "mpc", "congested-clique", "congest"
    ]
    assert run.snapshot_for("congest").rounds == 0
    assert run.all_verified


def test_distributed_sort_packed_matches_object_sort():
    values = [5, 3, 8, 1, 9, 2, 7, 7, 0, -4, 11, 6]
    obj = MPCEngine(num_machines=4, space=64)
    obj.load_balanced(values)
    col = MPCEngine(num_machines=4, space=64)
    col.load_balanced(values)
    for mid in range(4):
        col.storage[mid] = [np.asarray(col.storage[mid], dtype=np.int64)]
    r_obj = distributed_sort(obj)
    r_col = distributed_sort_packed(col)
    assert r_obj == r_col == 3
    packed = np.concatenate(
        [it for st_ in col.storage for it in st_ if isinstance(it, np.ndarray)]
    )
    assert packed.tolist() == obj.all_items() == sorted(values)


def test_distributed_sort_packed_single_machine_and_capacity():
    eng = MPCEngine(num_machines=1, space=64)
    eng.storage[0] = [np.array([3, 1, 2], dtype=np.int64)]
    assert distributed_sort_packed(eng) == 0
    assert eng.storage[0][0].tolist() == [1, 2, 3]
    big = MPCEngine(num_machines=10, space=50)
    with pytest.raises(ValueError, match="sample sort"):
        distributed_sort_packed(big)


def test_distributed_degrees_columnar_matches_legacy():
    g = gnp_random_graph(50, 0.12, seed=1)
    d_col, r_col = distributed_degrees(g, 6, 256, engine_backend="columnar")
    d_obj, r_obj = distributed_degrees(g, 6, 256, engine_backend="legacy")
    assert np.array_equal(d_col, d_obj)
    assert np.array_equal(d_col, g.degrees())
    assert r_col == r_obj == 4


def test_distributed_aggregate_columnar_matches_legacy():
    g = gnp_random_graph(40, 0.15, seed=3)
    d = g.degrees().astype(float)
    a_col, r_col = distributed_node_aggregate(
        g, lambda v, u: 1.0 / d[u], 5, 512, engine_backend="columnar"
    )
    a_obj, r_obj = distributed_node_aggregate(
        g, lambda v, u: 1.0 / d[u], 5, 512, engine_backend="legacy"
    )
    assert np.allclose(a_col, a_obj)
    assert r_col == r_obj == 4


# --------------------------------------------------------------------- #
# The shared RoundLedger protocol
# --------------------------------------------------------------------- #


def _implementations():
    return [
        MPCEngine(num_machines=3, space=32),
        MPCContext(n=20, m=30),
        CongestedCliqueContext(n=20, space_per_node=64),
        CongestContext(gnp_random_graph(20, 0.2, seed=4), space_per_node=64),
    ]


def test_all_simulators_implement_protocol():
    for impl in _implementations():
        assert isinstance(impl, RoundLedgerProtocol)
        snap = impl.model_snapshot()
        assert isinstance(snap, ModelSnapshot)
        assert snap.rounds == impl.rounds
        assert ModelSnapshot.from_dict(snap.to_dict()) == snap


def test_snapshot_ceilings_reflect_model():
    eng, ctx, cc, cg = _implementations()
    assert eng.space_ceiling == eng.bandwidth_ceiling == 32
    assert ctx.space_ceiling == ctx.S
    assert cc.bandwidth_ceiling == 20  # Lenzen: n messages per node
    assert cg.bandwidth_ceiling == 2 * cg.graph.m


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["sort", "phase", "seed_fix", "route"]),
            st.integers(0, 5),
            st.integers(0, 100),
        ),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_ledger_invariants_hypothesis(charges):
    """Rounds monotone; per-category charges sum to the total; words too."""
    for impl in _implementations():
        seen = [impl.rounds]
        for category, rounds, words in charges:
            impl.charge(category, rounds, words=words)
            seen.append(impl.rounds)
        assert all(b >= a for a, b in zip(seen, seen[1:]))  # monotone
        by_cat = impl.rounds_by_category()
        charged = sum(rounds for _, rounds, _ in charges)
        assert sum(by_cat.values()) == charged
        assert impl.rounds - seen[0] == charged
        assert impl.words_moved >= sum(w for _, _, w in charges)


@given(st.integers(1, 200))
@settings(max_examples=25, deadline=None)
def test_space_ceiling_boundary_engine(limit):
    """Exactly at the ceiling is legal; one word past it raises."""
    eng = MPCEngine(num_machines=1, space=limit)
    eng.load_balanced([0] * limit)  # exactly S words: fine
    assert eng.max_load_seen == limit
    with pytest.raises(SpaceExceededError):
        MPCEngine(num_machines=1, space=limit).load_balanced([0] * (limit + 1))


@given(st.integers(1, 200))
@settings(max_examples=25, deadline=None)
def test_space_ceiling_boundary_clique_and_congest(limit):
    cc = CongestedCliqueContext(n=8, space_per_node=limit)
    cc.observe_node_words(0, limit)  # boundary: fine
    assert cc.max_words_seen == limit
    with pytest.raises(SpaceExceededError):
        cc.observe_node_words(0, limit + 1)

    cg = CongestContext(cycle_graph(8), space_per_node=limit)
    cg.observe_node_words(3, limit)
    assert cg.max_words_seen == limit
    with pytest.raises(SpaceExceededError):
        cg.observe_node_words(3, limit + 1)


@given(st.integers(1, 200))
@settings(max_examples=25, deadline=None)
def test_space_ceiling_boundary_mpc_context(limit):
    ctx = MPCContext(n=10, m=10)
    tracker = type(ctx.space)(limit_per_machine=limit)
    tracker.observe_single(0, limit)
    assert tracker.max_machine_words == limit
    with pytest.raises(SpaceExceededError):
        tracker.observe_single(0, limit + 1)


def test_clique_unbounded_space_never_raises():
    cc = CongestedCliqueContext(n=4)  # space_per_node=None
    cc.observe_node_words(0, 10**9)
    assert cc.max_words_seen == 10**9


# --------------------------------------------------------------------- #
# Cross-model runner and report
# --------------------------------------------------------------------- #


def test_cross_model_run_mis():
    g = gnp_random_graph(60, 0.08, seed=2)
    run = cross_model_run(g, "mis")
    assert run.all_verified
    models = [s.model for s in run.snapshots]
    assert models == ["mpc", "congested-clique", "congest"]
    assert all(s.rounds > 0 for s in run.snapshots)
    assert dict(run.solution_sizes)["mpc"] > 0
    rebuilt = run.to_dict()
    assert rebuilt["problem"] == "mis" and len(rebuilt["snapshots"]) == 3


def test_cross_model_run_matching():
    g = gnp_random_graph(50, 0.1, seed=6)
    run = cross_model_run(g, "matching")
    assert run.all_verified
    assert run.snapshot_for("congest").rounds > run.snapshot_for(
        "congested-clique"
    ).rounds  # the tree cost is the point of the comparison


def test_cross_model_run_rejects_unknown_problem():
    with pytest.raises(ValueError, match="mis|matching"):
        cross_model_run(Graph.empty(3), "coloring")


def test_cross_model_report_renders():
    from repro.analysis import cross_model_report

    g = gnp_random_graph(40, 0.12, seed=3)
    run = cross_model_run(g, "mis")
    text = cross_model_report(run)
    assert "congested-clique" in text
    assert "congest" in text
    assert "round / communication bill per model" in text
    assert "verified: yes" in text
