"""Tests for graph powers, line graphs and the Linial coloring stack."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    Graph,
    ball_sizes,
    cycle_graph,
    distance2_coloring,
    gnp_random_graph,
    greedy_coloring,
    grid_graph,
    line_graph,
    line_graph_size,
    linial_coloring,
    matching_from_line_mis,
    path_graph,
    r_hop_balls,
    square_graph,
    star_graph,
    validate_coloring,
    validate_distance2_coloring,
)
from repro.verify import is_maximal_matching

# --------------------------------------------------------------------- #
# square graph / balls
# --------------------------------------------------------------------- #


def test_square_of_path():
    g = path_graph(5)  # 0-1-2-3-4
    g2 = square_graph(g)
    assert g2.has_edge(0, 2) and g2.has_edge(0, 1)
    assert not g2.has_edge(0, 3)


def test_square_matches_networkx_power():
    g = gnp_random_graph(40, 0.1, seed=1)
    g2 = square_graph(g)
    nx2 = nx.power(g.to_networkx(), 2)
    assert g2.m == nx2.number_of_edges()


def test_r_hop_balls_match_bfs():
    g = gnp_random_graph(30, 0.15, seed=2)
    nxg = g.to_networkx()
    for r in (1, 2, 3):
        balls = r_hop_balls(g, r)
        for v in range(g.n):
            want = {
                u
                for u, d in nx.single_source_shortest_path_length(nxg, v, cutoff=r).items()
                if u != v
            }
            assert set(balls[v].tolist()) == want


def test_r_hop_zero():
    g = path_graph(4)
    balls = r_hop_balls(g, 0)
    assert all(b.size == 0 for b in balls)


def test_r_hop_max_ball_guard():
    g = star_graph(30)
    with pytest.raises(ValueError):
        r_hop_balls(g, 1, max_ball=5)


def test_ball_sizes_star():
    g = star_graph(10)
    sizes = ball_sizes(g, 2)
    assert sizes[0] == 9  # hub reaches all leaves in 1 hop
    assert np.all(sizes[1:] == 9)  # leaves reach hub + other leaves in 2


# --------------------------------------------------------------------- #
# line graph
# --------------------------------------------------------------------- #


def test_line_graph_of_path():
    g = path_graph(4)  # edges 0-1, 1-2, 2-3
    lg = line_graph(g)
    assert lg.n == 3
    assert lg.m == 2  # a path again


def test_line_graph_of_star_is_clique():
    g = star_graph(5)
    lg = line_graph(g)
    assert lg.n == 4
    assert lg.m == 6  # K4


def test_line_graph_size_formula():
    g = gnp_random_graph(25, 0.2, seed=3)
    assert line_graph_size(g) == line_graph(g).m


def test_line_graph_matches_networkx():
    g = gnp_random_graph(20, 0.2, seed=4)
    lg = line_graph(g)
    nxl = nx.line_graph(g.to_networkx())
    assert lg.m == nxl.number_of_edges()


def test_line_graph_cap():
    g = star_graph(100)
    with pytest.raises(ValueError):
        line_graph(g, max_edges=10)


def test_line_graph_degree_bound():
    g = gnp_random_graph(30, 0.2, seed=5)
    lg = line_graph(g)
    assert lg.max_degree() <= 2 * g.max_degree() - 2


def test_matching_from_line_mis():
    g = cycle_graph(6)
    lg = line_graph(g)
    # MIS of the line graph computed greedily.
    from repro.baselines import greedy_mis

    mis = greedy_mis(lg)
    mask = np.zeros(lg.n, dtype=bool)
    mask[mis] = True
    eids = matching_from_line_mis(g, mask)
    emask = np.zeros(g.m, dtype=bool)
    emask[eids] = True
    assert is_maximal_matching(g, emask)


# --------------------------------------------------------------------- #
# coloring
# --------------------------------------------------------------------- #


def test_greedy_coloring_valid_and_bounded():
    g = gnp_random_graph(60, 0.1, seed=6)
    res = greedy_coloring(g)
    assert validate_coloring(g, res.colors)
    assert res.num_colors <= g.max_degree() + 1


def test_linial_coloring_valid():
    g = gnp_random_graph(60, 0.1, seed=7)
    res = linial_coloring(g)
    assert validate_coloring(g, res.colors)
    assert res.num_colors <= g.n


def test_linial_reduces_palette_when_degree_small():
    # n large relative to Delta^2 log^2: Linial must beat the trivial ids.
    g = cycle_graph(400)
    res = linial_coloring(g)
    assert res.num_colors < 400
    assert validate_coloring(g, res.colors)


def test_linial_on_edgeless():
    g = Graph.empty(10)
    res = linial_coloring(g)
    assert res.num_colors == 1
    assert validate_coloring(g, res.colors)


def test_distance2_coloring_validity():
    g = grid_graph(7, 7)
    res = distance2_coloring(g)
    assert validate_distance2_coloring(g, res.colors)


def test_distance2_distinct_within_two_hops():
    g = path_graph(6)
    res = distance2_coloring(g)
    c = res.colors
    assert c[0] != c[1] and c[0] != c[2]
    assert c[1] != c[3]


def test_validate_coloring_detects_violation():
    g = path_graph(3)
    assert not validate_coloring(g, np.array([0, 0, 1]))
    assert validate_coloring(g, np.array([0, 1, 0]))
