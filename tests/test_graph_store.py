"""Out-of-core graph store: streaming bit-identity, shard build, integrity.

The load-bearing property is **bit-identity**: a streamed generator and its
in-memory twin must produce byte-identical canonical arrays (hence the same
content fingerprint) for every seed, or the store's content addressing would
silently fork the cache.  Hypothesis drives the seeds; the shard builder is
additionally forced through multi-shard plans via a tiny shard target.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.graphs.store as store_mod
from repro.graphs import (
    Graph,
    GraphStore,
    StoreCorruptError,
    StoreMissError,
    gnp_block_graph,
    gnp_random_graph,
    graph_fingerprint,
    graph_from_npz_bytes,
    graph_to_npz_bytes,
    open_stored_graph,
)
from repro.graphs.generators import (
    bounded_degree_graph,
    power_law_graph,
    random_regular_graph,
)
from repro.graphs.io import graph_fingerprint_stream
from repro.graphs.store import NpyAppendWriter, build_csr_shards
from repro.graphs.streaming import (
    STREAMING_GENERATORS,
    _triu_pair_of_flat,
    stream_blocks,
)

ARRAYS = ("edges_u", "edges_v", "indptr", "indices", "arc_edge_ids")


def graph_from_stream(name: str, **kwargs) -> Graph:
    blocks = [b for b in stream_blocks(name, **kwargs) if b.size]
    edges = (
        np.concatenate(blocks) if blocks else np.empty((0, 2), dtype=np.int64)
    )
    return Graph.from_edges(kwargs["n"], edges)


def assert_same_graph(a: Graph, b: Graph) -> None:
    assert a.n == b.n
    for name in ARRAYS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    assert graph_fingerprint(a) == graph_fingerprint(b)


# --------------------------------------------------------------------- #
# Streaming bit-identity vs the in-memory generators
# --------------------------------------------------------------------- #


class TestStreamingBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 120),
        p=st.floats(0.0, 0.3),
        seed=st.integers(0, 2**31),
    )
    def test_gnp_stream_matches_in_memory(self, n, p, seed):
        expected = gnp_random_graph(n, p, seed=seed)
        got = graph_from_stream("gnp_random_graph", n=n, p=p, seed=seed)
        assert_same_graph(expected, got)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(2, 100), seed=st.integers(0, 2**31))
    def test_gnp_stream_chunking_invariance(self, n, seed):
        # Tiny blocks vs one big block: same Bernoulli stream, same graph.
        from repro.graphs.streaming import stream_gnp_random_graph

        small = np.concatenate(
            list(stream_gnp_random_graph(n, 0.15, seed, block_pairs=7))
        )
        big = np.concatenate(
            list(stream_gnp_random_graph(n, 0.15, seed, block_pairs=1 << 22))
        )
        assert np.array_equal(small, big)

    @settings(max_examples=15, deadline=None)
    @given(
        nd=st.sampled_from([(10, 3), (24, 4), (60, 3), (80, 6)]),
        seed=st.integers(0, 2**31),
    )
    def test_regular_stream_matches_in_memory(self, nd, seed):
        n, d = nd
        expected = random_regular_graph(n, d, seed=seed)
        got = graph_from_stream("random_regular_graph", n=n, d=d, seed=seed)
        assert_same_graph(expected, got)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(4, 90),
        max_deg=st.integers(1, 6),
        seed=st.integers(0, 2**31),
    )
    def test_bounded_degree_stream_matches_in_memory(self, n, max_deg, seed):
        expected = bounded_degree_graph(n, max_deg, 0.7, seed=seed)
        got = graph_from_stream(
            "bounded_degree_graph", n=n, max_deg=max_deg, p_fill=0.7, seed=seed
        )
        assert_same_graph(expected, got)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(2, 90),
        attach=st.integers(1, 4),
        seed=st.integers(0, 2**31),
    )
    def test_power_law_stream_matches_in_memory(self, n, attach, seed):
        expected = power_law_graph(n, attach, seed=seed)
        got = graph_from_stream(
            "power_law_graph", n=n, attach=attach, seed=seed
        )
        assert_same_graph(expected, got)

    def test_small_block_flush_boundaries(self):
        # Force mid-stream flushes in the sequential generators.
        from repro.graphs.streaming import (
            stream_bounded_degree_graph,
            stream_power_law_graph,
        )

        a = np.concatenate(
            list(stream_power_law_graph(50, 2, 3, block_edges=5))
        )
        b = np.concatenate(list(stream_power_law_graph(50, 2, 3)))
        assert np.array_equal(a, b)
        a = np.concatenate(
            list(stream_bounded_degree_graph(40, 4, 0.8, 3, block_edges=3))
        )
        b = np.concatenate(list(stream_bounded_degree_graph(40, 4, 0.8, 3)))
        assert np.array_equal(a, b)

    def test_gnp_block_graph_is_a_registered_generator(self):
        from repro.runtime.spec import GENERATOR_NAMES, GraphSource

        assert "gnp_block_graph" in GENERATOR_NAMES
        src = GraphSource.generator("gnp_block_graph", n=64, p=0.1, seed=2)
        assert_same_graph(src.resolve(), gnp_block_graph(64, 0.1, 2))

    def test_every_streaming_generator_has_a_twin(self):
        import repro.graphs.generators as gens

        for name in STREAMING_GENERATORS:
            assert hasattr(gens, name)


class TestTriuInverse:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 200))
    def test_matches_triu_indices(self, n):
        iu, ju = np.triu_indices(n, k=1)
        flat = np.arange(iu.size, dtype=np.int64)
        i, j = _triu_pair_of_flat(n, flat)
        assert np.array_equal(i, iu)
        assert np.array_equal(j, ju)


# --------------------------------------------------------------------- #
# npy writer + sharded CSR build
# --------------------------------------------------------------------- #


class TestNpyAppendWriter:
    def test_roundtrip_and_mmap(self, tmp_path):
        path = tmp_path / "a.npy"
        w = NpyAppendWriter(path)
        w.append(np.arange(5))
        w.append(np.arange(5, 12))
        w.close()
        arr = np.load(path)
        assert np.array_equal(arr, np.arange(12))
        mm = np.load(path, mmap_mode="r")
        assert isinstance(mm, np.memmap) and not mm.flags.writeable
        assert np.array_equal(np.asarray(mm), np.arange(12))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.npy"
        w = NpyAppendWriter(path)
        w.close()
        assert np.load(path).size == 0


class TestShardedBuild:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(2, 150),
        p=st.floats(0.01, 0.2),
        seed=st.integers(0, 1000),
    )
    def test_multi_shard_build_matches_from_edges(self, n, p, seed):
        # Tiny shard target forces many shards; the written arrays must be
        # byte-identical to the one-shot in-memory construction.  Fixtures
        # are function-scoped (a hypothesis health-check violation under
        # @given), so the patch and temp dir are managed inline.
        import shutil
        import tempfile
        from pathlib import Path

        saved = store_mod.TARGET_ARCS_PER_SHARD
        store_mod.TARGET_ARCS_PER_SHARD = 64
        out = Path(tempfile.mkdtemp(prefix="shards-"))
        try:
            expected = gnp_random_graph(n, p, seed=seed)
            meta = build_csr_shards(
                out,
                n,
                stream_blocks("gnp_random_graph", n=n, p=p, seed=seed),
                est_edges=expected.m,
            )
            assert meta["m"] == expected.m
            got = Graph.from_mmap(n, out, validate=True)
            assert_same_graph(expected, got)
            fp = graph_fingerprint_stream(
                n,
                [np.load(out / "edges_u.npy", mmap_mode="r")],
                [np.load(out / "edges_v.npy", mmap_mode="r")],
            )
            assert fp == graph_fingerprint(expected)
        finally:
            store_mod.TARGET_ARCS_PER_SHARD = saved
            shutil.rmtree(out, ignore_errors=True)

    def test_duplicate_and_loop_edges_canonicalised(self, tmp_path):
        blocks = iter(
            [
                np.array([[1, 0], [0, 1], [2, 2], [3, 1]], dtype=np.int64),
                np.array([[0, 1], [1, 3]], dtype=np.int64),
            ]
        )
        meta = build_csr_shards(tmp_path, 4, blocks)
        g = Graph.from_mmap(4, tmp_path, validate=True)
        assert meta["m"] == 2 == g.m
        assert_same_graph(
            Graph.from_edges(4, [(0, 1), (1, 3)]), g
        )

    def test_out_of_range_endpoint_rejected(self, tmp_path):
        blocks = iter([np.array([[0, 7]], dtype=np.int64)])
        with pytest.raises(ValueError, match="out of range"):
            build_csr_shards(tmp_path / "x", 4, blocks)


# --------------------------------------------------------------------- #
# GraphStore behaviour
# --------------------------------------------------------------------- #


class TestGraphStore:
    def test_put_open_roundtrip_and_dedup(self, tmp_path):
        store = GraphStore(tmp_path)
        g = gnp_random_graph(120, 0.05, seed=4)
        info = store.put_graph(g, source="test")
        assert info.fingerprint == graph_fingerprint(g)
        assert (info.n, info.m) == (g.n, g.m)
        assert len(store) == 1
        # Content-addressed: same graph again is one entry.
        store.put_graph(g)
        assert len(store) == 1
        assert_same_graph(g, store.open(info.fingerprint, validate=True))

    def test_mmap_parity_with_npz_roundtrip_on_solver_output(self, tmp_path):
        # The mmap-opened Graph must behave identically to the npz path on
        # real solver output, not just raw arrays.
        from repro.api import SolveRequest, solve

        g = gnp_random_graph(150, 0.04, seed=8)
        store = GraphStore(tmp_path)
        fp = store.put_graph(g).fingerprint
        via_store = store.open(fp)
        via_npz = graph_from_npz_bytes(graph_to_npz_bytes(g, include_csr=True))
        assert_same_graph(via_npz, via_store)
        r1 = solve(SolveRequest(problem="mis", model="simulated", graph=via_store))
        r2 = solve(SolveRequest(problem="mis", model="simulated", graph=via_npz))
        assert r1.verified and r2.verified
        assert r1.solution_size == r2.solution_size
        assert np.array_equal(r1.solution, r2.solution)

    def test_ensure_generator_hit_miss(self, tmp_path):
        store = GraphStore(tmp_path)
        args = dict(n=80, p=0.05, seed=3)
        miss = store.ensure_generator("gnp_random_graph", args)
        assert not miss.hit
        hit = store.ensure_generator("gnp_random_graph", args)
        assert hit.hit and hit.fingerprint == miss.fingerprint
        assert miss.fingerprint == graph_fingerprint(gnp_random_graph(**args))

    def test_open_missing_raises(self, tmp_path):
        store = GraphStore(tmp_path)
        with pytest.raises(StoreMissError):
            store.open("deadbeef")
        with pytest.raises(StoreMissError):
            open_stored_graph(tmp_path, "deadbeef")

    def test_corruption_detected_on_open_and_verify(self, tmp_path):
        store = GraphStore(tmp_path)
        fp = store.put_graph(gnp_random_graph(90, 0.06, seed=1)).fingerprint
        assert store.verify(fp) == []
        victim = store._object_dir(fp) / "indices.npy"
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])
        assert any("indices" in p for p in store.verify(fp))
        with pytest.raises(StoreCorruptError):
            open_stored_graph(tmp_path, fp)
        victim.unlink()
        with pytest.raises(StoreCorruptError, match="missing"):
            open_stored_graph(tmp_path, fp)

    def test_lru_budget_eviction_and_replay(self, tmp_path):
        store = GraphStore(tmp_path)
        fps = [
            store.put_graph(gnp_random_graph(60, 0.1, seed=s)).fingerprint
            for s in range(4)
        ]
        store.open(fps[0])  # refresh: seed-0 becomes most recent
        per = store._lru[fps[0]]
        store.gc(max_bytes=2 * per + per // 2)
        kept = store.keys()
        assert fps[0] in kept and len(kept) == 2
        # A fresh instance replays index.jsonl to the same state.
        again = GraphStore(tmp_path)
        assert again.keys() == kept
        assert again.disk_usage() == store.disk_usage()

    def test_constructor_budget_evicts_on_put(self, tmp_path):
        g0 = gnp_random_graph(60, 0.1, seed=0)
        probe = GraphStore(tmp_path / "probe").put_graph(g0)
        store = GraphStore(tmp_path / "s", max_bytes=probe.nbytes + 10)
        store.put_graph(g0)
        fp1 = store.put_graph(gnp_random_graph(60, 0.1, seed=1)).fingerprint
        assert store.keys() == [fp1]

    def test_gc_removes_orphans_and_tmp(self, tmp_path):
        store = GraphStore(tmp_path)
        store.put_graph(gnp_random_graph(40, 0.1, seed=0))
        (store.objects_dir / ".tmp-put-dead").mkdir()
        orphan = store.objects_dir / ("f" * 64)
        orphan.mkdir()
        (orphan / "meta.json").write_text("{}")
        res = store.gc()
        assert res["removed_tmp"] == 1 and res["removed_orphans"] == 1
        assert len(store) == 1

    def test_index_compaction(self, tmp_path):
        store = GraphStore(tmp_path)
        fp = store.put_graph(gnp_random_graph(30, 0.1, seed=0)).fingerprint
        for _ in range(200):
            store.open(fp)
        ops = [
            json.loads(line)
            for line in store.index_path.read_text().splitlines()
        ]
        assert len(ops) < 200  # compaction rewrote the log
        assert GraphStore(tmp_path).keys() == [fp]

    def test_stats_shape(self, tmp_path):
        store = GraphStore(tmp_path)
        store.put_graph(gnp_random_graph(50, 0.08, seed=2), source="lbl")
        s = store.stats()
        assert s["entries"] == 1 and s["disk_bytes"] > 0
        (obj,) = s["objects"]
        assert obj["n"] == 50 and obj["source"] == "lbl"

    def test_empty_graph_roundtrip(self, tmp_path):
        store = GraphStore(tmp_path)
        info = store.put_graph(Graph.empty(7))
        g = store.open(info.fingerprint, validate=True)
        assert g.n == 7 and g.m == 0
