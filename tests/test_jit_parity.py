"""The ``jit`` backend must be bit-identical to ``csr``/``batched`` everywhere.

The numba kernels in :mod:`repro.graphs.kernels_jit` are plain-Python
nopython-compatible bodies, so every parity property here runs in *both*
regimes: interpreted where numba is missing (this exercises the exact code
numba would compile) and compiled where it is present.  Only the end-to-end
solver runs are numba-gated -- without numba the resolvers fall back to the
numpy backends by design, so the jit code path would not be reached.

The fallback contract itself (degrade to ``csr``/``batched`` with a
one-time :class:`JitFallbackWarning` and a ``kernels.jit_fallbacks``
counter, never an error) is pinned by hiding numba via ``sys.modules``.
"""

from __future__ import annotations

import sys
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lowdeg import _a_set_weight, lowdeg_mis
from repro.core.params import Params
from repro.core.stage import MachineGroupSpec, StageGoodness
from repro.derand.seed_jit import make_lowdeg_objective, make_stage_objective
from repro.derand.strategies import resolve_seed_backend
from repro.graphs import gnp_random_graph
from repro.graphs import kernels, kernels_jit
from repro.graphs.coloring import _linial_step, distance2_coloring
from repro.graphs.kernels import kernel_backend_scope, resolve_backend
from repro.hashing.families import make_color_family
from repro.hashing.kwise import KWiseHashFamily
from repro.mpc.partition import chunk_items_by_group
from repro.obs.metrics import METRICS

HAS_NUMBA = kernels_jit.available()

needs_numba = pytest.mark.skipif(
    not HAS_NUMBA, reason="compiled end-to-end path needs numba"
)


# --------------------------------------------------------------------- #
# Backend resolution and fallback semantics
# --------------------------------------------------------------------- #


def test_jit_is_a_registered_backend():
    assert "jit" in kernels.BACKENDS
    from repro.derand.strategies import SEED_BACKENDS

    assert "jit" in SEED_BACKENDS


def test_resolution_without_numba_degrades_with_warning_and_counter():
    """Hiding numba must resolve jit -> csr/batched: warn once, count twice."""
    hidden = dict(numba=None)
    saved = {k: sys.modules.get(k) for k in hidden}
    sys.modules.update(hidden)  # force `from numba import njit` to fail
    kernels_jit._reset_for_tests()
    before = METRICS.export().get("kernels.jit_fallbacks", 0)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert not kernels_jit.available()
            assert resolve_backend("jit") == "csr"
            assert resolve_seed_backend("jit") == "batched"
        fallback_warnings = [
            w for w in caught
            if issubclass(w.category, kernels_jit.JitFallbackWarning)
        ]
        assert len(fallback_warnings) == 1  # one-time, not per resolution
        after = METRICS.export().get("kernels.jit_fallbacks", 0)
        assert after - before == 2  # ...but the counter sees every fallback
    finally:
        for k, v in saved.items():
            if v is None:
                sys.modules.pop(k, None)
            else:
                sys.modules[k] = v
        kernels_jit._reset_for_tests()


def test_resolution_with_numba_present_keeps_jit():
    if not HAS_NUMBA:
        pytest.skip("needs numba installed")
    assert resolve_backend("jit") == "jit"
    assert resolve_seed_backend("jit") == "jit"


def test_kernel_backend_scope_accepts_jit():
    with kernel_backend_scope("jit"):
        assert resolve_backend() in ("jit", "csr")  # csr iff numba missing


# --------------------------------------------------------------------- #
# Segment kernels: jit twins vs csr builders
# --------------------------------------------------------------------- #


@given(
    st.lists(st.integers(0, 6), min_size=0, max_size=10),
    st.integers(0, 2**31),
)
@settings(max_examples=40)
def test_segment_block_kernels_match_csr(seg_sizes, seed):
    rng = np.random.default_rng(seed)
    sizes = np.asarray(seg_sizes, dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(sizes)])
    total = int(indptr[-1])
    width = max(total, 1)
    cols = rng.integers(0, width, size=total)
    S = 5
    vals = rng.integers(0, 1 << 40, size=(S, width), dtype=np.uint64)
    fill = np.uint64(np.iinfo(np.uint64).max)
    mask = rng.random((S, width)) < 0.4
    item_mask = rng.random((S, total)) < 0.4

    min_csr = kernels.segment_min_block_fn(cols, indptr, width)(vals, fill)
    min_jit = kernels_jit.segment_min_block_fn(cols, indptr, width)(vals, fill)
    assert np.array_equal(min_csr, min_jit)

    any_csr = kernels.segment_any_block_fn(cols, indptr, width)(mask)
    any_jit = kernels_jit.segment_any_block_fn(cols, indptr, width)(mask)
    assert np.array_equal(any_csr, any_jit)

    cnt_csr = kernels.segment_count_2d(item_mask, indptr)
    cnt_jit = kernels_jit.segment_count_2d(item_mask, indptr)
    assert np.array_equal(cnt_csr, cnt_jit)


def test_segment_builders_dispatch_through_switchboard():
    """`backend="jit"` on the csr builders must route (or degrade) cleanly."""
    rng = np.random.default_rng(0)
    indptr = np.array([0, 3, 3, 7])
    cols = rng.integers(0, 8, size=7)
    vals = rng.integers(0, 100, size=(3, 8), dtype=np.uint64)
    fill = np.uint64(2**63)
    via_switch = kernels.segment_min_block_fn(cols, indptr, 8, backend="jit")(
        vals, fill
    )
    plain = kernels.segment_min_block_fn(cols, indptr, 8)(vals, fill)
    assert np.array_equal(via_switch, plain)


# --------------------------------------------------------------------- #
# Fused stage seed-scan objective
# --------------------------------------------------------------------- #


def _stage_goodness(rng, k, q=257):
    fam = KWiseHashFamily(q=q, k=k)

    def spec(n_items, n_groups, weights=None, up=True, lo=True):
        groups = np.sort(rng.integers(0, n_groups, size=n_items))
        units = rng.integers(0, q, size=n_items).astype(np.int64)
        return MachineGroupSpec(
            name=f"g{n_groups}",
            grouping=chunk_items_by_group(groups, 8),
            unit_ids=units,
            weights=weights,
            check_upper=up,
            check_lower=lo,
        )

    specs = [
        spec(120, 11, up=True, lo=False),
        spec(90, 7, up=True, lo=True),
        spec(80, 5, weights=rng.random(80), up=True, lo=False),
        spec(60, 6, up=False, lo=True),
    ]
    mus, bases = [], []
    for s in specs:
        nm = s.grouping.num_machines
        mus.append(rng.random(nm) * 4.0)
        bases.append(rng.random(nm) * 3.0 + 0.5)
    return StageGoodness(fam, 77, specs, mus, bases), fam


@pytest.mark.parametrize("k", [1, 2, 4])
@pytest.mark.parametrize("kappa", [1.0, 1.5])
def test_stage_objective_matches_counts(k, kappa):
    rng = np.random.default_rng(5 + k)
    goodness, fam = _stage_goodness(rng, k)
    fused = make_stage_objective(goodness, kappa)
    blocks = [
        np.arange(1, 120),  # contiguous run
        np.arange(250, 270) % fam.size,  # spans a digit-0 rollover (q=257)
        rng.integers(0, fam.size, size=60),  # arbitrary block
        np.array([3]),  # scalar
    ]
    for seeds in blocks:
        seeds = np.asarray(seeds, dtype=np.int64)
        assert np.array_equal(goodness.counts(seeds, kappa), fused(seeds))


@given(st.integers(0, 2**31), st.integers(2, 40))
@settings(max_examples=25)
def test_stage_objective_property(seed, block):
    rng = np.random.default_rng(seed)
    goodness, fam = _stage_goodness(rng, 3)
    fused = make_stage_objective(goodness, 1.0)
    start = int(rng.integers(0, fam.size - block))
    seeds = np.arange(start, start + block, dtype=np.int64)
    assert np.array_equal(goodness.counts(seeds, 1.0), fused(seeds))


# --------------------------------------------------------------------- #
# Fused low-degree Luby phase objective
# --------------------------------------------------------------------- #


def _lowdeg_setup(g):
    n = g.n
    coloring = distance2_coloring(g)
    family = make_color_family(coloring.num_colors)
    colors = coloring.colors.astype(np.int64)
    a_mask, _ = _a_set_weight(g)
    deg = g.degrees()
    live = np.nonzero(deg > 0)[0].astype(np.int64)
    deg_sel = (deg * a_mask).astype(np.int64)
    key_dtype = np.uint32 if family.range * (n + 1) + n < 2**32 else np.uint64
    stride_k = key_dtype(n + 1)
    maxkey_k = key_dtype(np.iinfo(key_dtype).max)
    live_k = live.astype(key_dtype)
    nbr_min_fn = kernels.segment_min_block_fn(g.indices, g.indptr, n)
    nbr_any_fn = kernels.segment_any_block_fn(g.indices, g.indptr, n)

    def numpy_objective(seeds):
        z = family.evaluate_colors_batch(seeds, colors[live]).astype(key_dtype)
        key_full = np.full((z.shape[0], n), maxkey_k, dtype=key_dtype)
        key_full[:, live] = z * stride_k + live_k[None, :]
        nbr_min = nbr_min_fn(key_full, maxkey_k)
        i_mask = np.zeros(key_full.shape, dtype=bool)
        i_mask[:, live] = key_full[:, live] < nbr_min[:, live]
        covered = nbr_any_fn(i_mask)
        return ((covered | i_mask) @ deg_sel).astype(np.float64)

    fused = make_lowdeg_objective(
        family, colors[live], live, g.indices, g.indptr, deg_sel, n
    )
    return numpy_objective, fused, family


@pytest.mark.parametrize("gseed", [3, 11])
def test_lowdeg_objective_matches_numpy(gseed):
    g = gnp_random_graph(120, 0.05, seed=gseed)
    numpy_objective, fused, family = _lowdeg_setup(g)
    rng = np.random.default_rng(gseed)
    for seeds in (
        np.arange(1, 80, dtype=np.int64),
        rng.integers(0, family.size, size=40).astype(np.int64),
        np.array([1], dtype=np.int64),
    ):
        assert np.array_equal(numpy_objective(seeds), fused(seeds))


def test_lowdeg_objective_with_dead_nodes():
    """Nodes removed mid-run (degree 0) must stay out of selection."""
    g = gnp_random_graph(80, 0.06, seed=2)
    # Simulate a mid-run graph: kill a third of the nodes.
    kill = np.zeros(g.n, dtype=bool)
    kill[::3] = True
    g = g.remove_vertices(kill)
    numpy_objective, fused, _ = _lowdeg_setup(g)
    seeds = np.arange(1, 50, dtype=np.int64)
    assert np.array_equal(numpy_objective(seeds), fused(seeds))


# --------------------------------------------------------------------- #
# Linial clash kernel
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("gseed", [1, 9])
def test_linial_step_jit_matches_both_numpy_paths(gseed):
    g = gnp_random_graph(70, 0.08, seed=gseed)
    colors = np.arange(g.n, dtype=np.int64)
    palette = g.n
    legacy = _linial_step(g, colors, palette, backend="legacy")
    csr = _linial_step(g, colors, palette, backend="csr")
    assert legacy[1] == csr[1]
    assert np.array_equal(legacy[0], csr[0])
    if HAS_NUMBA:
        jit = _linial_step(g, colors, palette, backend="jit")
    else:
        # Resolver would degrade to csr; exercise the kernel body directly
        # through the same branch _linial_step takes when numba is present.
        from repro.graphs.coloring import _poly_digits
        from repro.hashing.primes import next_prime

        delta = g.max_degree()
        q = next_prime(max(delta + 2, 3))
        while True:
            d = 0
            while q ** (d + 1) < palette:
                d += 1
            if q > d * delta:
                break
            q = next_prime(q + 1)
        coeffs = _poly_digits(colors, q, d)
        xs = np.arange(q, dtype=np.int64)
        vander = np.ones((q, d + 1), dtype=np.int64)
        for j in range(1, d + 1):
            vander[:, j] = (vander[:, j - 1] * xs) % q
        evals = (coeffs @ vander.T) % q
        x_of = kernels_jit.linial_first_free(evals, g.indices, g.indptr)
        jit = (x_of * q + evals[np.arange(g.n), x_of], q * q)
    assert jit[1] == csr[1]
    assert np.array_equal(jit[0], csr[0])


# --------------------------------------------------------------------- #
# End-to-end solves under the jit backends (compiled path only)
# --------------------------------------------------------------------- #


@needs_numba
def test_lowdeg_mis_end_to_end_jit_identical():
    g = gnp_random_graph(150, 0.04, seed=13)
    base = lowdeg_mis(g, Params())
    jit = lowdeg_mis(
        g, Params(kernel_backend="jit", seed_backend="jit")
    )
    assert np.array_equal(base.independent_set, jit.independent_set)
    assert base.iterations == jit.iterations
    assert base.rounds == jit.rounds


@needs_numba
def test_stage_solve_end_to_end_jit_identical():
    from repro.core.matching import deterministic_maximal_matching

    g = gnp_random_graph(120, 0.06, seed=17)
    base = deterministic_maximal_matching(g, Params())
    jit = deterministic_maximal_matching(
        g, Params(kernel_backend="jit", seed_backend="jit")
    )
    assert np.array_equal(base.pairs, jit.pairs)
    assert base.iterations == jit.iterations


def test_jit_backend_solve_never_errors_without_numba():
    """Requesting jit in a numba-less env must solve via the fallback."""
    g = gnp_random_graph(60, 0.08, seed=4)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", kernels_jit.JitFallbackWarning)
        res = lowdeg_mis(g, Params(kernel_backend="jit", seed_backend="jit"))
    base = lowdeg_mis(g, Params())
    assert np.array_equal(res.independent_set, base.independent_set)
