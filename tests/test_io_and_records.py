"""Tests for edge-list I/O and result-record helpers."""

import numpy as np
import pytest

from repro.core import deterministic_maximal_matching, deterministic_mis
from repro.core.records import IterationRecord
from repro.graphs import Graph, gnp_random_graph, read_edge_list, write_edge_list


# --------------------------------------------------------------------- #
# io
# --------------------------------------------------------------------- #


def test_edge_list_roundtrip(tmp_path):
    g = gnp_random_graph(30, 0.2, seed=1)
    p = tmp_path / "g.edges"
    write_edge_list(g, p)
    g2 = read_edge_list(p)
    assert g == g2


def test_edge_list_header_preserves_isolated_tail(tmp_path):
    g = Graph.from_edges(10, [(0, 1)])  # nodes 2..9 isolated
    p = tmp_path / "g.edges"
    write_edge_list(g, p)
    g2 = read_edge_list(p)
    assert g2.n == 10


def test_edge_list_n_override(tmp_path):
    g = Graph.from_edges(3, [(0, 1)])
    p = tmp_path / "g.edges"
    write_edge_list(g, p)
    g2 = read_edge_list(p, n=8)
    assert g2.n == 8 and g2.m == 1


def test_edge_list_infers_n_without_header(tmp_path):
    p = tmp_path / "g.edges"
    p.write_text("0 3\n1 2\n")
    g = read_edge_list(p)
    assert g.n == 4 and g.m == 2


def test_edge_list_skips_comments_and_blanks(tmp_path):
    p = tmp_path / "g.edges"
    p.write_text("# comment\n\n0 1\n# another\n1 2\n")
    g = read_edge_list(p)
    assert g.m == 2


def test_edge_list_empty_graph(tmp_path):
    g = Graph.empty(4)
    p = tmp_path / "g.edges"
    write_edge_list(g, p)
    assert read_edge_list(p) == g


# --------------------------------------------------------------------- #
# records
# --------------------------------------------------------------------- #


def test_matching_result_masks():
    g = gnp_random_graph(40, 0.15, seed=2)
    res = deterministic_maximal_matching(g)
    mask = res.matching_mask(g.n)
    assert mask.sum() == 2 * res.pairs.shape[0]
    assert np.array_equal(np.nonzero(mask)[0], res.matched_nodes)


def test_mis_result_mask():
    g = gnp_random_graph(40, 0.15, seed=3)
    res = deterministic_mis(g)
    mask = res.mis_mask(g.n)
    assert mask.sum() == len(res.independent_set)


def test_iteration_record_removed_fraction():
    rec = IterationRecord(
        iteration=1, edges_before=100, edges_after=40, i_star=1,
        num_good_nodes=5, weight_b=10.0, stages=tuple(),
        selection_value=1.0, selection_target=1.0, selection_trials=1,
        selection_satisfied=True, seed_bits=8, nodes_removed=3,
    )
    assert rec.removed_fraction == pytest.approx(0.6)


def test_iteration_record_zero_edges():
    rec = IterationRecord(
        iteration=1, edges_before=0, edges_after=0, i_star=1,
        num_good_nodes=0, weight_b=0.0, stages=tuple(),
        selection_value=0.0, selection_target=0.0, selection_trials=0,
        selection_satisfied=True, seed_bits=1, nodes_removed=0,
    )
    assert rec.removed_fraction == 0.0


def test_rounds_by_category_sums_to_total():
    g = gnp_random_graph(60, 0.1, seed=4)
    res = deterministic_mis(g)
    cats = {k: v for k, v in res.rounds_by_category.items() if k != "total"}
    assert sum(cats.values()) == res.rounds
    assert res.rounds_by_category["total"] == res.rounds
