"""Tests for Section-3.1 graph bookkeeping on the literal engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, complete_graph, gnp_random_graph, star_graph
from repro.mpc import (
    CapacityExceededError,
    SpaceExceededError,
    distributed_degrees,
    distributed_node_aggregate,
)


def test_degrees_match_oracle():
    g = gnp_random_graph(50, 0.12, seed=1)
    deg, rounds = distributed_degrees(g, num_machines=6, space=256)
    assert np.array_equal(deg, g.degrees())
    assert rounds == 4  # 3 (sort) + 1 (count & route home): the O(1) claim


def test_degrees_on_star():
    g = star_graph(30)
    deg, rounds = distributed_degrees(g, num_machines=4, space=256)
    assert np.array_equal(deg, g.degrees())
    assert rounds == 4


def test_degrees_on_complete_graph():
    g = complete_graph(16)
    deg, rounds = distributed_degrees(g, num_machines=4, space=512)
    assert np.array_equal(deg, g.degrees())


def test_degrees_rounds_constant_in_size():
    small = gnp_random_graph(20, 0.2, seed=2)
    large = gnp_random_graph(80, 0.1, seed=2)
    _, r1 = distributed_degrees(small, num_machines=4, space=512)
    _, r2 = distributed_degrees(large, num_machines=4, space=512)
    assert r1 == r2 == 4


def test_insufficient_space_raises_model_error():
    g = complete_graph(20)  # 380 arcs
    with pytest.raises((SpaceExceededError, CapacityExceededError)):
        distributed_degrees(g, num_machines=4, space=32)


def test_aggregate_inverse_degrees():
    """The Section-4.1 quantity sum_{u ~ v} 1/d(u), computed distributedly."""
    g = gnp_random_graph(40, 0.15, seed=3)
    d = g.degrees().astype(float)
    want = np.zeros(g.n)
    np.add.at(want, g.edges_u, 1.0 / d[g.edges_v])
    np.add.at(want, g.edges_v, 1.0 / d[g.edges_u])
    got, rounds = distributed_node_aggregate(
        g, lambda v, u: 1.0 / d[u], num_machines=5, space=512
    )
    assert np.allclose(got, want, atol=1e-4)
    assert rounds == 4


def test_aggregate_constant_weights_equals_degrees():
    g = gnp_random_graph(30, 0.2, seed=4)
    got, _ = distributed_node_aggregate(
        g, lambda v, u: 1.0, num_machines=4, space=512
    )
    assert np.allclose(got, g.degrees())


@given(st.integers(0, 10_000))
@settings(max_examples=8)
def test_degrees_hypothesis_random_graphs(seed):
    g = gnp_random_graph(25, 0.2, seed=seed)
    deg, _ = distributed_degrees(g, num_machines=4, space=512)
    assert np.array_equal(deg, g.degrees())


# --------------------------------------------------------------------- #
# full distributed Luby MIS on the engine
# --------------------------------------------------------------------- #

from repro.mpc import distributed_luby_mis  # noqa: E402
from repro.verify import verify_mis_nodes  # noqa: E402
from repro.graphs import cycle_graph, path_graph  # noqa: E402


@pytest.mark.parametrize(
    "make,machines,space",
    [
        (lambda: gnp_random_graph(30, 0.2, seed=1), 4, 512),
        (lambda: cycle_graph(24), 3, 256),
        (lambda: complete_graph(12), 3, 512),
        (lambda: path_graph(15), 3, 256),
        (lambda: star_graph(20), 3, 512),
    ],
)
def test_distributed_luby_correct(make, machines, space):
    g = make()
    mis, rounds, phases = distributed_luby_mis(g, machines, space)
    assert verify_mis_nodes(g, mis)
    assert phases >= 1
    assert rounds == 10 * phases  # exactly 10 engine rounds per phase


def test_distributed_luby_rounds_per_phase_constant():
    """The O(1) rounds-per-iteration claim, on real messages."""
    small = gnp_random_graph(16, 0.3, seed=2)
    large = gnp_random_graph(48, 0.12, seed=2)
    _, r1, p1 = distributed_luby_mis(small, 3, 512)
    _, r2, p2 = distributed_luby_mis(large, 5, 512)
    assert r1 / p1 == r2 / p2 == 10


def test_distributed_luby_deterministic():
    g = gnp_random_graph(30, 0.2, seed=3)
    a = distributed_luby_mis(g, 4, 512)
    b = distributed_luby_mis(g, 4, 512)
    assert np.array_equal(a[0], b[0])
    assert a[1:] == b[1:]


def test_distributed_luby_edgeless():
    g = Graph.empty(6)
    mis, rounds, phases = distributed_luby_mis(g, 2, 64)
    assert mis.tolist() == [0, 1, 2, 3, 4, 5]
    assert phases == 0
