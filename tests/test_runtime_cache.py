"""ResultCache: hit/miss/eviction semantics and cross-process determinism."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.core import result_to_payload
from repro.core.api import maximal_independent_set
from repro.graphs import gnp_random_graph, graph_fingerprint
from repro.runtime import GraphSource, JobSpec, ResultCache, Scheduler

from test_runtime_spec import subprocess_env


def put_dummy(cache: ResultCache, key: str, size: int = 4) -> None:
    cache.put(
        key,
        job={"status": "ok", "solution_size": size},
        arrays={"solution": np.arange(size, dtype=np.int64)},
    )


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("a" * 64) is None
    assert cache.stats.misses == 1
    put_dummy(cache, "a" * 64)
    entry = cache.get("a" * 64)
    assert entry is not None
    assert cache.stats.hits == 1
    assert entry.job["solution_size"] == 4
    assert np.array_equal(entry.arrays()["solution"], np.arange(4))
    assert entry.load_result() is None  # no records payload stored


def test_lru_eviction(tmp_path):
    cache = ResultCache(tmp_path, max_entries=2)
    put_dummy(cache, "k1")
    put_dummy(cache, "k2")
    assert cache.get("k1") is not None  # refresh k1 => k2 is now LRU
    put_dummy(cache, "k3")
    assert cache.stats.evictions == 1
    assert len(cache) == 2
    assert cache.get("k2") is None  # evicted
    assert cache.get("k1") is not None
    assert cache.get("k3") is not None
    # evicted object files are gone from disk
    assert not (tmp_path / "objects" / "k2.json").exists()
    assert not (tmp_path / "objects" / "k2.npz").exists()


def test_persistence_across_instances(tmp_path):
    first = ResultCache(tmp_path)
    put_dummy(first, "k1")
    first.get("k1")  # touch op in the log too
    second = ResultCache(tmp_path)
    assert len(second) == 1
    entry = second.get("k1")
    assert entry is not None
    assert np.array_equal(entry.arrays()["solution"], np.arange(4))


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    put_dummy(cache, "k1")
    put_dummy(cache, "k2")
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.get("k1") is None
    assert len(ResultCache(tmp_path)) == 0


def test_index_compaction_preserves_entries(tmp_path):
    cache = ResultCache(tmp_path, max_entries=4)
    for i in range(40):  # plenty of put+evict churn to trigger compaction
        put_dummy(cache, f"key{i:03d}")
    assert len(cache) == 4
    again = ResultCache(tmp_path, max_entries=4)
    assert sorted(again.keys()) == sorted(cache.keys())


def test_index_stays_bounded_under_warm_only_reads(tmp_path):
    """All-hit workloads (touch ops, no puts) must still compact the log."""
    cache = ResultCache(tmp_path)
    put_dummy(cache, "k1")
    for _ in range(500):
        assert cache.get("k1") is not None
    line_count = sum(1 for _ in cache.index_path.open())
    assert line_count <= 4 * 1 + 64 + 1  # compaction threshold for 1 entry
    assert len(ResultCache(tmp_path)) == 1


def test_full_result_payload_round_trip_through_cache(tmp_path):
    g = gnp_random_graph(60, 0.1, seed=3)
    res = maximal_independent_set(g)
    meta, arrays = result_to_payload(res)
    cache = ResultCache(tmp_path)
    cache.put("k", job={"status": "ok"}, arrays=arrays, result_meta=meta)
    loaded = cache.get("k").load_result()
    assert np.array_equal(loaded.independent_set, res.independent_set)
    assert loaded.records == res.records
    assert loaded.rounds == res.rounds


@pytest.mark.parametrize("problem", ["mis", "matching"])
def test_cached_result_identical_across_processes(tmp_path, problem):
    """Store via the scheduler here; a fresh process must read back the
    byte-identical solution for the same spec."""
    spec = JobSpec(
        problem, GraphSource.generator("gnp_random_graph", n=80, p=0.08, seed=5)
    )
    cache = ResultCache(tmp_path / "cache")
    batch = Scheduler(workers=1, cache=cache).run([spec])
    assert batch.all_ok and batch.stats.cache_hits == 0
    key = spec.cache_key(graph_fingerprint(spec.source.resolve()))
    local = cache.get(key).arrays()["solution"]

    script = (
        "import sys, hashlib\n"
        "from repro.runtime import JobSpec, ResultCache\n"
        "from repro.graphs import graph_fingerprint\n"
        "cache_dir, spec_json = sys.argv[1], sys.stdin.read()\n"
        "spec = JobSpec.from_json(spec_json)\n"
        "cache = ResultCache(cache_dir)\n"
        "key = spec.cache_key(graph_fingerprint(spec.source.resolve()))\n"
        "arr = cache.get(key).arrays()['solution']\n"
        "print(key)\n"
        "print(hashlib.sha256(arr.tobytes()).hexdigest())\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path / "cache")],
        input=spec.to_json(),
        capture_output=True,
        text=True,
        check=True,
        env=subprocess_env(),
    )
    child_key, child_digest = proc.stdout.split()
    assert child_key == key
    import hashlib

    assert child_digest == hashlib.sha256(local.tobytes()).hexdigest()


# ---------------------------------------------------------------------- #
# Concurrency contract (the serve layer makes concurrent access the norm)
# ---------------------------------------------------------------------- #


def test_torn_meta_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path)
    put_dummy(cache, "a" * 64)
    # Simulate crash debris / out-of-band tampering: a truncated meta file.
    (cache.objects_dir / f"{'a' * 64}.json").write_text('{"job": {"sta')
    assert cache.get("a" * 64) is None  # tolerant read: miss, no raise
    assert cache.stats.misses == 1
    put_dummy(cache, "a" * 64)  # and the slot is reusable afterwards
    assert cache.get("a" * 64) is not None


def test_put_leaves_no_tmp_files(tmp_path):
    cache = ResultCache(tmp_path)
    put_dummy(cache, "b" * 64)
    leftovers = [p.name for p in cache.objects_dir.iterdir() if "tmp" in p.name]
    assert leftovers == []  # atomic renames: nothing half-written survives


def test_concurrent_threads_share_one_cache_instance(tmp_path):
    """The serve batcher thread and event loop share one ResultCache; a
    storm of interleaved get/put from many threads must neither raise nor
    corrupt entries."""
    import threading

    cache = ResultCache(tmp_path, max_entries=16)
    keys = [format(i, "064x") for i in range(8)]
    errors: list[Exception] = []

    def hammer(worker: int) -> None:
        try:
            for round_no in range(30):
                key = keys[(worker + round_no) % len(keys)]
                if (worker + round_no) % 3 == 0:
                    put_dummy(cache, key, size=4)
                else:
                    entry = cache.get(key)
                    if entry is not None:
                        assert entry.job["solution_size"] == 4
                        assert len(entry.arrays()["solution"]) == 4
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    # Every surviving entry is whole: readable meta + loadable arrays.
    for key in cache.keys():
        entry = cache.get(key)
        assert entry is not None and len(entry.arrays()["solution"]) == 4


def test_fresh_reader_sees_writers_entries(tmp_path):
    writer = ResultCache(tmp_path)
    put_dummy(writer, "c" * 64)
    reader = ResultCache(tmp_path)  # replays the index log on open
    entry = reader.get("c" * 64)
    assert entry is not None
    assert np.array_equal(entry.arrays()["solution"], np.arange(4))
