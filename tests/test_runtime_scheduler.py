"""Scheduler: parallel fan-out, structured failures, retries, cache reruns."""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.runtime import (
    GraphSource,
    JobSpec,
    ResultCache,
    Scheduler,
    build_suite,
    get_suite,
    list_suites,
)
from repro.verify import verify_mis_nodes


def gnp_spec(problem="mis", n=60, seed=3, **kw) -> JobSpec:
    return JobSpec(
        problem,
        GraphSource.generator("gnp_random_graph", n=n, p=0.1, seed=seed),
        **kw,
    )


def test_single_job_runs_and_verifies():
    batch = Scheduler(workers=1).run([gnp_spec()])
    (res,) = batch.results
    assert res.ok and res.verified
    assert res.graph_n == 60
    assert res.worker_pid > 0
    assert res.rounds > 0
    assert res.path in ("lowdeg", "general")


def test_worker_exception_is_structured_failure_not_pool_crash():
    """A deliberately failing job (invalid eps => Params raises in the
    worker) must come back as a structured JobResult while healthy jobs in
    the same batch — and later batches on the same scheduler — succeed."""
    bad = gnp_spec(eps=-1.0, tag="bad")
    good1, good2 = gnp_spec(seed=1, tag="g1"), gnp_spec(seed=2, tag="g2")
    sched = Scheduler(workers=2)
    batch = sched.run([good1, bad, good2])
    by_tag = {r.spec.tag: r for r in batch.results}
    assert [r.spec.tag for r in batch.results] == ["g1", "bad", "g2"]  # order kept
    assert by_tag["g1"].ok and by_tag["g2"].ok
    failed = by_tag["bad"]
    assert failed.status == "error"
    assert failed.error_type == "ValueError"
    assert "eps" in failed.error_message
    assert "Traceback" in failed.error_traceback
    assert batch.stats.errors == 1 and batch.stats.ok == 2
    assert not batch.all_ok and batch.failures() == [failed]
    # the pool survived: run again
    assert sched.run([gnp_spec(seed=9)]).all_ok


def test_unresolvable_source_is_structured_failure(tmp_path):
    spec = JobSpec("mis", GraphSource.from_file(str(tmp_path / "missing.edges")))
    batch = Scheduler(workers=1).run([spec])
    (res,) = batch.results
    assert res.status == "error"
    assert res.error_type == "FileNotFoundError"
    assert "input resolution failed" in res.error_message


def test_retries_are_counted():
    bad = gnp_spec(eps=-1.0)
    batch = Scheduler(workers=1, retries=2).run([bad])
    (res,) = batch.results
    assert res.status == "error"
    assert res.attempts == 3  # 1 initial + 2 retries
    assert batch.stats.retries_used == 2


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="per-job timeout needs SIGALRM"
)
def test_timeout_is_structured():
    slow = gnp_spec(n=2500, seed=0)  # well over 10ms of solving
    batch = Scheduler(workers=1, timeout=0.01).run([slow])
    (res,) = batch.results
    assert res.status == "timeout"
    assert res.error_type == "JobTimeout"
    assert batch.stats.timeouts == 1


def test_parallel_batch_matches_inline_solutions(tmp_path):
    """Worker-process results equal an in-process solve (determinism)."""
    from repro.core.api import maximal_independent_set

    specs = [gnp_spec(seed=s, tag=f"s{s}") for s in range(4)]
    cache = ResultCache(tmp_path)
    batch = Scheduler(workers=2, cache=cache).run(specs)
    assert batch.all_ok
    from repro.graphs import graph_fingerprint

    for spec, res in zip(specs, batch.results):
        g = spec.source.resolve()
        inline = maximal_independent_set(g, eps=spec.eps)
        key = spec.cache_key(graph_fingerprint(g))
        stored = cache.get(key).arrays()["solution"]
        assert np.array_equal(stored, inline.independent_set)
        assert verify_mis_nodes(g, stored)
        assert res.solution_size == inline.independent_set.size


def test_cache_rerun_hits_without_recompute(tmp_path):
    specs = [gnp_spec(seed=s) for s in range(3)]
    cache = ResultCache(tmp_path)
    sched = Scheduler(workers=2, cache=cache)
    cold = sched.run(specs)
    warm = sched.run(specs)
    assert cold.stats.cache_hits == 0
    assert warm.stats.cache_hits == 3 and warm.stats.cache_hit_rate == 1.0
    assert all(r.cache_hit for r in warm.results)
    for c, w in zip(cold.results, warm.results):
        assert (c.solution_size, c.rounds, c.iterations) == (
            w.solution_size,
            w.rounds,
            w.iterations,
        )
    # cached results skipped the pool entirely
    assert all(r.attempts == 0 for r in warm.results)


def test_shared_source_resolved_once_still_all_jobs_run():
    src = GraphSource.generator("gnp_random_graph", n=50, p=0.1, seed=0)
    specs = [JobSpec("mis", src), JobSpec("matching", src), JobSpec("vc", src)]
    batch = Scheduler(workers=2).run(specs)
    assert batch.all_ok
    fps = {r.fingerprint for r in batch.results}
    assert len(fps) == 1  # same content fingerprint for all three


def test_suite_registry_and_sizes():
    names = [s.name for s in list_suites()]
    for expected in ("scaling-sweep", "degree-regime", "derived-problems",
                     "throughput-micro", "cross-model"):
        assert expected in names
    assert len(build_suite("scaling-sweep")) >= 20
    assert len(build_suite("throughput-micro")) == 20
    assert len(build_suite("cross-model")) == 15
    assert get_suite("degree-regime").description
    with pytest.raises(KeyError, match="unknown suite"):
        build_suite("nope")


def test_derived_problems_run_through_scheduler():
    src = GraphSource.generator("random_regular_graph", n=60, d=4, seed=2)
    specs = [JobSpec("vc", src), JobSpec("coloring", src), JobSpec("ruling2", src)]
    batch = Scheduler(workers=1).run(specs)
    assert batch.all_ok
    assert all(r.verified for r in batch.results)


def test_cached_model_jobs_load_result_with_snapshot(tmp_path):
    """Cached model jobs rebuild the full SolveResult envelope, snapshot
    included.  (Regression lineage: these entries once stored a result_meta
    without a 'kind' tag, so load_result() raised.)"""
    from repro.api import SolveResult
    from repro.graphs.io import graph_fingerprint
    from repro.models import ModelSnapshot
    from repro.runtime import ResultCache

    cache = ResultCache(tmp_path / "cache")
    src = GraphSource.generator("gnp_random_graph", n=50, p=0.1, seed=7)
    specs = [JobSpec(p, src) for p in ("cc_mis", "congest_mis", "engine_mis")]
    batch = Scheduler(workers=1, cache=cache).run(specs)
    assert batch.all_ok
    fp = graph_fingerprint(src.resolve())
    for spec in specs:
        hit = cache.get(spec.cache_key(fp))
        res = hit.load_result()
        assert isinstance(res, SolveResult)
        assert isinstance(res.snapshot, ModelSnapshot)
        assert res.snapshot.rounds > 0
        assert res.rounds == res.snapshot.rounds


def test_old_cache_formats_still_load(tmp_path):
    """Pre-facade cache entries (bare records / tagged snapshots) load."""
    import numpy as np

    from repro.core import result_to_payload
    from repro.core.api import maximal_independent_set
    from repro.graphs import gnp_random_graph
    from repro.models import ModelSnapshot
    from repro.runtime import ResultCache

    cache = ResultCache(tmp_path / "cache")
    g = gnp_random_graph(40, 0.1, seed=1)
    res = maximal_independent_set(g)
    meta, arrays = result_to_payload(res)
    cache.put("a" * 64, job={"status": "ok"}, arrays=arrays, result_meta=meta)
    loaded = cache.get("a" * 64).load_result()
    assert np.array_equal(loaded.independent_set, res.independent_set)

    snap = ModelSnapshot(model="congest", rounds=7, words_moved=3)
    cache.put(
        "b" * 64,
        job={"status": "ok"},
        arrays={"solution": np.arange(3)},
        result_meta={"kind": "model_snapshot", "model_snapshot": snap.to_dict()},
    )
    assert cache.get("b" * 64).load_result() == snap


def test_cross_model_problems_run_through_scheduler():
    """One input billed under every model through the runtime, with the
    packed arc plane shipped to the engine job."""
    src = GraphSource.generator("gnp_random_graph", n=80, p=0.06, seed=5)
    specs = [
        JobSpec(problem, src, tag=problem)
        for problem in ("mis", "cc_mis", "congest_mis", "engine_mis")
    ]
    batch = Scheduler(workers=2).run(specs)
    assert batch.all_ok
    by_tag = {r.spec.tag: r for r in batch.results}
    assert all(r.verified for r in batch.results)
    assert by_tag["cc_mis"].path == "congested-clique"
    assert by_tag["congest_mis"].path == "congest"
    assert by_tag["engine_mis"].path == "mpc-engine"
    # CONGEST pays the tree cost; the clique run is O(log Delta) rounds
    assert by_tag["congest_mis"].rounds > by_tag["cc_mis"].rounds
    assert by_tag["engine_mis"].space_limit > 0


def test_engine_job_uses_shipped_arc_plane(monkeypatch):
    """The worker consumes the scheduler-shipped packed arc buffer instead
    of re-encoding the edge list."""
    from repro.graphs.io import arc_plane_from_npz_bytes, graph_to_npz_bytes
    from repro.runtime.worker import run_job

    src = GraphSource.generator("gnp_random_graph", n=40, p=0.1, seed=1)
    g = src.resolve()
    npz = graph_to_npz_bytes(g, include_csr=True, include_arc_plane=True)
    assert arc_plane_from_npz_bytes(npz) is not None
    assert arc_plane_from_npz_bytes(graph_to_npz_bytes(g)) is None

    seen = {}
    import repro.runtime.worker as worker_mod
    real = worker_mod.execute_spec

    def spy(spec, graph, *, arc_plane=None):
        seen["arc_plane"] = arc_plane
        return real(spec, graph, arc_plane=arc_plane)

    monkeypatch.setattr(worker_mod, "execute_spec", spy)
    out = run_job({"spec": JobSpec("engine_mis", src).to_dict(),
                   "graph_npz": npz, "timeout": None})
    assert out["status"] == "ok" and out["verified"]
    assert seen["arc_plane"] is not None and seen["arc_plane"].size == 2 * g.m
