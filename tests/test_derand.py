"""Tests for seed selection strategies and concentration estimators."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.derand import (
    bellare_rompel_bound,
    chebyshev_bound,
    paper_nominal_slack,
    select_seed,
    slack_for_failure,
)

# --------------------------------------------------------------------- #
# conditional expectation (the Section-2.4 guarantee)
# --------------------------------------------------------------------- #


def test_cond_exp_beats_mean_simple():
    values = [0.0, 10.0, 2.0, 3.0]
    sel = select_seed(4, lambda s: values[s], strategy="conditional_expectation")
    assert sel.satisfied
    assert sel.value >= np.mean(values)
    assert sel.family_mean == pytest.approx(np.mean(values))


def test_cond_exp_single_seed():
    sel = select_seed(1, lambda s: 5.0, strategy="conditional_expectation")
    assert sel.seed == 0 and sel.value == 5.0


def test_cond_exp_is_prefix_descent_not_argmax():
    """The method follows subtree means, which can miss the global argmax --
    but never the mean.  Construct a case where argmax hides in the
    low-mean half."""
    # left half [0,1]: values 6, 6 (mean 6); right half [2,3]: 0, 11 (mean 5.5)
    values = [6.0, 6.0, 0.0, 11.0]
    sel = select_seed(4, lambda s: values[s], strategy="conditional_expectation")
    assert sel.seed in (0, 1)  # descended into the higher-mean half
    assert sel.value >= np.mean(values)


def test_cond_exp_non_power_of_two():
    values = [1.0, 2.0, 3.0, 4.0, 100.0]
    sel = select_seed(5, lambda s: values[s], strategy="conditional_expectation")
    assert sel.value >= np.mean(values)


def test_cond_exp_enumeration_cap():
    with pytest.raises(ValueError):
        select_seed(
            1 << 20, lambda s: 0.0, strategy="conditional_expectation",
            enumeration_cap=1 << 16,
        )


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=64))
def test_cond_exp_always_at_least_mean(values):
    sel = select_seed(
        len(values), lambda s: values[s], strategy="conditional_expectation"
    )
    assert sel.value >= np.mean(values) - 1e-9


# --------------------------------------------------------------------- #
# scan
# --------------------------------------------------------------------- #


def test_scan_stops_at_first_hit():
    values = [1.0, 2.0, 9.0, 9.0]
    sel = select_seed(4, lambda s: values[s], strategy="scan", target=9.0)
    assert sel.seed == 2
    assert sel.trials == 3
    assert sel.satisfied


def test_scan_returns_best_on_exhaustion():
    values = [1.0, 5.0, 2.0]
    sel = select_seed(3, lambda s: values[s], strategy="scan", target=100.0)
    assert not sel.satisfied
    assert sel.seed == 1 and sel.value == 5.0


def test_scan_respects_max_trials():
    calls = []
    sel = select_seed(
        1000,
        lambda s: calls.append(s) or 0.0,
        strategy="scan",
        target=1.0,
        max_trials=10,
    )
    assert len(calls) == 10
    assert not sel.satisfied


def test_scan_start_offset():
    values = [100.0] + [0.0] * 9 + [7.0]
    sel = select_seed(
        11, lambda s: values[s], strategy="scan", target=7.0, start=1
    )
    assert sel.seed == 10  # seed 0 skipped


def test_scan_requires_target():
    with pytest.raises(ValueError):
        select_seed(4, lambda s: 0.0, strategy="scan")


# --------------------------------------------------------------------- #
# best_of / misc
# --------------------------------------------------------------------- #


def test_best_of_takes_argmax_of_prefix():
    values = [3.0, 9.0, 1.0, 50.0]
    sel = select_seed(4, lambda s: values[s], strategy="best_of", best_of_k=3)
    assert sel.seed == 1  # 50.0 lives outside the prefix


def test_unknown_strategy():
    with pytest.raises(ValueError):
        select_seed(4, lambda s: 0.0, strategy="bogus")


def test_empty_family():
    with pytest.raises(ValueError):
        select_seed(0, lambda s: 0.0, strategy="scan", target=0.0)


# --------------------------------------------------------------------- #
# estimators
# --------------------------------------------------------------------- #


def test_bellare_rompel_monotone_in_lambda():
    assert bellare_rompel_bound(4, 100, 50) < bellare_rompel_bound(4, 100, 20)


def test_bellare_rompel_caps_at_one():
    assert bellare_rompel_bound(4, 100, 0.001) == 1.0


def test_bellare_rompel_requires_even_c_ge_4():
    with pytest.raises(ValueError):
        bellare_rompel_bound(3, 10, 5)
    with pytest.raises(ValueError):
        bellare_rompel_bound(2, 10, 5)


def test_chebyshev_bound():
    assert chebyshev_bound(25, 10) == 0.25
    assert chebyshev_bound(25, 1) == 1.0


def test_slack_for_failure_inverts_chebyshev():
    lam = slack_for_failure(2, t=100, fail_prob=0.01, p=0.5)
    assert chebyshev_bound(100 * 0.25, lam) <= 0.01 + 1e-12


def test_slack_for_failure_inverts_bellare_rompel():
    lam = slack_for_failure(4, t=100, fail_prob=0.01)
    assert bellare_rompel_bound(4, 100, lam) <= 0.01 + 1e-12


def test_slack_for_failure_zero_items():
    assert slack_for_failure(4, t=0, fail_prob=0.5) == 0.0


def test_slack_for_failure_rejects_bad_prob():
    with pytest.raises(ValueError):
        slack_for_failure(4, t=10, fail_prob=0.0)


def test_paper_nominal_slack_shape():
    loads = np.array([4.0, 16.0])
    s = paper_nominal_slack(1024, 0.0625, loads)
    # n^{0.1 delta} ~ 1.04: close to sqrt(loads)
    assert s[0] == pytest.approx(2.0, rel=0.1)
    assert s[1] == pytest.approx(4.0, rel=0.1)
