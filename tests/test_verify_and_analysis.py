"""Tests for the solution checkers and the analysis helpers."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    fit_geometric_decay,
    fit_linear,
    lowdeg_round_bound,
    matching_iteration_bound,
    mis_iteration_bound,
    per_machine_space,
    render_series,
    render_table,
    seed_bits_colors,
    seed_bits_ids,
    total_space_bound,
)
from repro.graphs import Graph, gnp_random_graph, path_graph
from repro.verify import (
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    verify_matching_pairs,
    verify_mis_nodes,
)


# --------------------------------------------------------------------- #
# verify
# --------------------------------------------------------------------- #


def test_independent_set_checks():
    g = path_graph(4)
    assert is_independent_set(g, np.array([True, False, True, False]))
    assert not is_independent_set(g, np.array([True, True, False, False]))


def test_maximal_independent_set_checks():
    g = path_graph(4)
    assert is_maximal_independent_set(g, np.array([True, False, True, False]))
    # independent but not maximal: node 3 uncovered
    assert not is_maximal_independent_set(g, np.array([True, False, False, False]))


def test_matching_checks():
    g = path_graph(4)  # edges (0,1),(1,2),(2,3)
    assert is_matching(g, np.array([True, False, True]))
    assert not is_matching(g, np.array([True, True, False]))


def test_maximal_matching_checks():
    g = path_graph(4)
    assert is_maximal_matching(g, np.array([True, False, True]))
    assert not is_maximal_matching(g, np.array([True, False, False]))
    assert is_maximal_matching(g, np.array([False, True, False]))


def test_verify_matching_pairs_rejects_non_edges():
    g = path_graph(4)
    assert not verify_matching_pairs(g, np.array([[0, 2]]))


def test_verify_matching_pairs_rejects_overlap():
    g = path_graph(4)
    assert not verify_matching_pairs(g, np.array([[0, 1], [1, 2]]))


def test_verify_mis_nodes_rejects_out_of_range():
    g = path_graph(4)
    assert not verify_mis_nodes(g, np.array([7]))


def test_checkers_agree_with_networkx():
    g = gnp_random_graph(40, 0.15, seed=1)
    nxg = g.to_networkx()
    mis = nx.maximal_independent_set(nxg, seed=0)
    assert verify_mis_nodes(g, np.array(sorted(mis)))
    mm = nx.maximal_matching(nxg)
    pairs = np.array([[u, v] for u, v in mm])
    assert verify_matching_pairs(g, pairs)


def test_empty_graph_edge_cases():
    g = Graph.empty(3)
    assert is_maximal_independent_set(g, np.ones(3, dtype=bool))
    assert not is_maximal_independent_set(g, np.zeros(3, dtype=bool))
    assert is_maximal_matching(g, np.zeros(0, dtype=bool))


# --------------------------------------------------------------------- #
# analysis.theory
# --------------------------------------------------------------------- #


def test_iteration_bounds_logarithmic():
    b1 = matching_iteration_bound(1000, 0.0625)
    b2 = matching_iteration_bound(1000**2, 0.0625)
    assert b2 == pytest.approx(2 * b1, rel=0.01)  # log-linear in log m


def test_mis_bound_bigger_than_matching():
    # delta^2/400 < delta/536 for delta < 400/536... at delta = 1/16 MIS is slower.
    assert mis_iteration_bound(1000, 0.0625) > matching_iteration_bound(1000, 0.0625)


def test_iteration_bounds_trivial_m():
    assert matching_iteration_bound(1, 0.1) == 1.0
    assert mis_iteration_bound(0, 0.1) == 1.0


def test_lowdeg_round_bound_monotone():
    assert lowdeg_round_bound(10**6, 8) > lowdeg_round_bound(10**6, 4)
    assert lowdeg_round_bound(10**9, 4) > lowdeg_round_bound(10**3, 4)


def test_space_formulas():
    assert per_machine_space(256, 0.5, factor=32) == 32 * 16
    assert total_space_bound(100, 50, 0.5) > 50


def test_seed_bits():
    assert seed_bits_ids(1024) == 20
    assert seed_bits_colors(16) == 8
    assert seed_bits_colors(16) < seed_bits_ids(10**6)


# --------------------------------------------------------------------- #
# analysis.progress
# --------------------------------------------------------------------- #


def test_fit_linear_exact():
    fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r2 == pytest.approx(1.0)
    assert fit.predict(10) == pytest.approx(21.0)


def test_fit_linear_requires_two_points():
    with pytest.raises(ValueError):
        fit_linear([1], [2])


@given(
    st.floats(-5, 5),
    st.floats(-10, 10),
    st.lists(st.floats(0, 100), min_size=3, max_size=20, unique=True),
)
def test_fit_linear_recovers_exact_lines(slope, intercept, xs):
    ys = [slope * x + intercept for x in xs]
    fit = fit_linear(xs, ys)
    assert fit.slope == pytest.approx(slope, abs=1e-6)
    assert fit.intercept == pytest.approx(intercept, abs=1e-5)


def test_fit_geometric_decay_exact():
    trace = [1000, 500, 250, 125]
    assert fit_geometric_decay(trace) == pytest.approx(0.5)


def test_fit_geometric_decay_short_trace():
    assert fit_geometric_decay([10]) == 0.0
    assert fit_geometric_decay([]) == 0.0


# --------------------------------------------------------------------- #
# analysis.tables
# --------------------------------------------------------------------- #


def test_render_table_contains_data():
    out = render_table("T", ["a", "bb"], [[1, 2.5], [30, 0.001]], footnote="note")
    assert "== T ==" in out
    assert "bb" in out
    assert "30" in out
    assert "note" in out


def test_render_table_alignment():
    out = render_table("T", ["x"], [[1], [100]])
    lines = out.splitlines()
    assert len(lines[2]) == len(lines[3])  # rows equally wide


def test_render_series():
    out = render_series("S", [1, 2], [10.0, 20.0], "n", "rounds")
    assert "n=" in out and "rounds=" in out and "#" in out
