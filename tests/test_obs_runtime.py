"""Tracing and metrics through the runtime layer and the trace CLI.

Covers the worker/scheduler plumbing: per-job traces captured inside pool
processes ride back through ``result_meta`` and land next to the cached
arrays; cache hits report lookup accounting in ``JobResult.meta`` instead
of overwriting the stored solve's ``wall_time``.
"""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.runtime import GraphSource, JobSpec, ResultCache, Scheduler
from repro.runtime.spec import JobResult


def gnp_spec(problem="mis", n=50, seed=3, **kw) -> JobSpec:
    return JobSpec(
        problem,
        GraphSource.generator("gnp_random_graph", n=n, p=0.1, seed=seed),
        **kw,
    )


# --------------------------------------------------------------------- #
# Worker-side capture through the process pool
# --------------------------------------------------------------------- #


def test_traced_batch_ships_spans_through_pool(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    sched = Scheduler(workers=2, cache=cache, trace=True)
    batch = sched.run([gnp_spec(seed=1), gnp_spec(seed=2)])
    assert batch.all_ok
    for res in batch.results:
        assert res.meta.get("trace_spans", 0) > 0
    # The spans themselves were stored with the cached result.
    for spec, res in zip(
        [gnp_spec(seed=1), gnp_spec(seed=2)], batch.results
    ):
        entry = cache.get(spec.cache_key(res.fingerprint))
        assert entry is not None
        spans = entry.trace()
        assert spans and any(s["name"] == "solve" for s in spans)
        rebuilt = entry.load_result()
        assert rebuilt.trace == spans


def test_untraced_batch_has_no_trace_meta(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    batch = Scheduler(workers=1, cache=cache, trace=False).run([gnp_spec()])
    (res,) = batch.results
    assert res.ok
    assert "trace_spans" not in res.meta
    entry = cache.get(gnp_spec().cache_key(res.fingerprint))
    assert entry is not None and entry.trace() is None


def test_scheduler_trace_default_follows_ambient_tracing(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    from repro.obs import trace as obs_trace

    obs_trace.refresh_env()
    assert Scheduler().trace is False
    monkeypatch.setenv("REPRO_TRACE", "1")
    obs_trace.refresh_env()
    try:
        assert Scheduler().trace is True
    finally:
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        obs_trace.refresh_env()
    assert Scheduler(trace=False).trace is False


# --------------------------------------------------------------------- #
# Cache-hit accounting
# --------------------------------------------------------------------- #


def test_cache_hit_meta_preserves_stored_wall_time(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    sched = Scheduler(workers=1, cache=cache)
    spec = gnp_spec()
    (first,) = sched.run([spec]).results
    assert first.ok and not first.cache_hit
    assert first.meta.get("cache_hit") is None

    batch = sched.run([spec])
    (hit,) = batch.results
    assert hit.cache_hit
    assert hit.meta["cache_hit"] is True
    assert hit.meta["lookup_time"] >= 0.0
    # The stored solve's wall_time survives; lookup cost is separate.
    assert hit.wall_time == first.wall_time
    assert batch.stats.cache_hits == 1
    assert batch.stats.cache_misses == 0


def test_batch_stats_counts_misses_and_payload(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    sched = Scheduler(workers=1, cache=cache)
    stats = sched.run([gnp_spec(seed=1), gnp_spec(seed=2)]).stats
    assert stats.cache_misses == 2 and stats.cache_hits == 0
    payload = sched.run([gnp_spec(seed=1), gnp_spec(seed=3)]).stats.to_payload()
    assert payload["cache_hits"] == 1
    assert payload["cache_misses"] == 1
    assert json.loads(json.dumps(payload)) == payload


def test_uncached_scheduler_counts_no_misses():
    stats = Scheduler(workers=1).run([gnp_spec()]).stats
    assert stats.cache_hits == 0 and stats.cache_misses == 0


# --------------------------------------------------------------------- #
# JobResult meta round trip
# --------------------------------------------------------------------- #


def test_job_result_meta_json_roundtrip():
    res = JobResult(
        spec=gnp_spec(),
        meta={"cache_hit": True, "lookup_time": 0.001, "trace_spans": 7},
    )
    back = JobResult.from_dict(json.loads(res.to_json()))
    assert back.meta == res.meta


def test_job_result_meta_defaults_empty():
    res = JobResult(spec=gnp_spec())
    assert res.meta == {}
    assert JobResult.from_dict(res.to_dict()).meta == {}


# --------------------------------------------------------------------- #
# `repro trace` CLI
# --------------------------------------------------------------------- #


def test_trace_record_summarize_export_cli(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    perfetto_path = tmp_path / "t.perfetto.json"
    rc = main(
        [
            "trace", "record",
            "--problem", "mis", "--model", "mpc-engine",
            "--n", "80", "--p", "0.08",
            "--out", str(trace_path),
            "--perfetto", str(perfetto_path),
        ]
    )
    assert rc == 0
    assert "engine.round" in capsys.readouterr().out

    doc = json.loads(perfetto_path.read_text())
    assert any(
        e["name"] == "engine.round" and e["ph"] == "X"
        for e in doc["traceEvents"]
    )

    assert main(["trace", "summarize", str(trace_path)]) == 0
    assert "engine.round" in capsys.readouterr().out

    summary_json = tmp_path / "summary.json"
    assert main(
        ["trace", "summarize", str(trace_path), "--json", str(summary_json)]
    ) == 0
    summary = json.loads(summary_json.read_text())
    assert summary["by_name"]["engine.round"]["count"] > 0

    assert main(["trace", "top", str(trace_path), "-k", "3"]) == 0
    assert main(
        ["trace", "diff", str(trace_path), str(trace_path)]
    ) == 0

    out2 = tmp_path / "t2.perfetto.json"
    assert main(["trace", "export", str(trace_path), "--out", str(out2)]) == 0
    assert json.loads(out2.read_text())["traceEvents"]


def test_trace_summarize_json_stdout(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    main(
        [
            "trace", "record", "--problem", "mis", "--model", "simulated",
            "--n", "60", "--p", "0.08", "--out", str(trace_path),
        ]
    )
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace_path), "--json", "-"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["spans"] > 0


def test_trace_conformance_cli(capsys):
    rc = main(
        [
            "trace", "conformance",
            "--problem", "mis", "--model", "simulated",
            "--sizes", "48,96", "--reps", "2",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "rounds" in out and "words_moved" in out


def test_trace_conformance_all_cli(capsys):
    """--all sweeps the full registry matrix and exits 0 when claims hold."""
    from repro.api import REGISTRY

    rc = main(
        ["trace", "conformance", "--all", "--sizes", "32,64", "--reps", "1"]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    assert f"{len(REGISTRY.entries())} registry entries" in out
    for entry in REGISTRY.entries():
        assert f"{entry.problem}/{entry.model}" in out
    assert "FAIL" not in out


def test_trace_conformance_all_json(tmp_path, capsys):
    rc = main(
        [
            "trace", "conformance", "--all",
            "--sizes", "32,64", "--reps", "1", "--json", "-",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    payload = json.loads(out[out.index("{"):])
    from repro.api import REGISTRY

    assert len(payload["reports"]) == len(REGISTRY.entries())
    assert all(r["conformant"] is not False for r in payload["reports"])


def test_solve_json_stdout(capsys):
    rc = main(
        [
            "solve", "--problem", "mis",
            "--model", "simulated", "--n", "60", "--p", "0.08",
            "--json", "-",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert payload["problem"] == "mis"


def test_env_trace_writes_jsonl_through_solve_cli(tmp_path, monkeypatch):
    from repro.obs import trace as obs_trace

    dest = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(dest))
    obs_trace.refresh_env()
    try:
        rc = main(
            [
                "solve", "--problem", "mis",
                "--model", "simulated", "--n", "50", "--p", "0.1",
            ]
        )
    finally:
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        obs_trace.refresh_env()
    assert rc == 0
    from repro.obs.sinks import read_jsonl

    spans = read_jsonl(dest)
    assert any(s["name"] == "solve" for s in spans)
