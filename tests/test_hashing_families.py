"""Tests for product and color hash families."""


import numpy as np
import pytest

from repro.hashing import (
    KWiseHashFamily,
    make_color_family,
    make_product_family,
    ProductHashFamily,
)


def test_product_family_metadata():
    fam = make_product_family(100, k=2, min_q=101)
    assert fam.range == fam.f0.q * fam.f1.q
    assert fam.size == fam.f0.size * fam.f1.size
    assert fam.domain >= 100
    assert fam.f0.q != fam.f1.q  # distinct consecutive primes


def test_product_rejects_mismatched_k():
    with pytest.raises(ValueError):
        ProductHashFamily(KWiseHashFamily(q=11, k=2), KWiseHashFamily(q=13, k=3))


def test_product_seed_split_roundtrip():
    fam = make_product_family(10, k=2, min_q=11)
    for seed in [0, 1, fam.f0.size, fam.size - 1]:
        s0, s1 = fam.split_seed(seed)
        assert s1 * fam.f0.size + s0 == seed


def test_product_split_rejects_out_of_range():
    fam = make_product_family(10, k=2, min_q=11)
    with pytest.raises(ValueError):
        fam.split_seed(fam.size)


def test_product_evaluate_combines_components():
    fam = make_product_family(10, k=2, min_q=11)
    xs = np.arange(fam.domain, dtype=np.int64)
    seed = 12345 % fam.size
    s0, s1 = fam.split_seed(seed)
    v = fam.evaluate(seed, xs)
    v0 = fam.f0.evaluate(s0, xs)
    v1 = fam.f1.evaluate(s1, xs)
    assert np.array_equal(v, v1 * np.uint64(fam.f0.q) + v0)


def test_product_pairwise_independence_exact_tiny():
    """Exhaustive: pair values uniform over the product range for 2 points."""
    f0 = KWiseHashFamily(q=3, k=2)
    f1 = KWiseHashFamily(q=5, k=2)
    fam = ProductHashFamily(f0, f1)
    r = fam.range
    counts = np.zeros((r, r), dtype=np.int64)
    for seed in range(fam.size):
        v = fam.evaluate(seed, np.array([0, 2]))
        counts[int(v[0]), int(v[1])] += 1
    assert np.all(counts == fam.size // (r * r))


def test_product_threshold_and_indicator():
    fam = make_product_family(50, k=2, min_q=53)
    xs = np.arange(50, dtype=np.int64)
    mask = fam.sample_indicator(7, xs, 0.5)
    assert mask.dtype == bool
    t = fam.threshold(0.5)
    assert np.array_equal(mask, fam.evaluate(7, xs) < np.uint64(t))


def test_color_family_seed_bits_scale_with_colors():
    small = make_color_family(16)
    big = make_color_family(4096)
    assert small.seed_bits < big.seed_bits
    assert small.range >= 16
    assert big.range >= 4096


def test_color_family_evaluates_colors():
    fam = make_color_family(10)
    colors = np.array([0, 3, 9, 9, 1], dtype=np.int64)
    z = fam.evaluate_colors(2, colors)
    assert z.shape == (5,)
    # equal colors hash equally -- the whole point of the renaming trick
    assert z[2] == z[3]


def test_color_family_pairwise_on_colors():
    fam = make_color_family(5)
    q = fam.base.q
    counts = np.zeros((q, q), dtype=np.int64)
    for seed in fam.seeds():
        v = fam.evaluate_colors(seed, np.array([1, 4]))
        counts[int(v[0]), int(v[1])] += 1
    assert np.all(counts == fam.size // (q * q))
