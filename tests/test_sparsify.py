"""Tests for the deterministic sparsification stages (Sections 3.2, 4.2)."""

import numpy as np

from repro.core import (
    Params,
    good_nodes_matching,
    good_nodes_mis,
    sparsify_edges,
    sparsify_nodes,
)
from repro.mpc import MPCContext
from repro.graphs import complete_graph, gnp_random_graph, power_law_graph


def run_edge_sparsify(g, params=None):
    params = params or Params()
    good = good_nodes_matching(g, params)
    ctx = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
    fid: list[str] = []
    res = sparsify_edges(g, good, params, ctx, fid)
    return g, good, res, ctx, fid


def run_node_sparsify(g, params=None):
    params = params or Params()
    good = good_nodes_mis(g, params)
    ctx = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
    fid: list[str] = []
    res = sparsify_nodes(g, good, params, ctx, fid)
    return g, good, res, ctx, fid


# --------------------------------------------------------------------- #
# edge sparsification
# --------------------------------------------------------------------- #


def test_low_class_skips_stages():
    # A sparse graph whose chosen class is <= 4: E* must equal E_0 verbatim.
    g = gnp_random_graph(200, 0.015, seed=1)
    gr, good, res, ctx, fid = run_edge_sparsify(g)
    if good.i_star <= 4:
        assert res.num_stages == 0
        assert np.array_equal(res.e_star_mask, good.e0_mask)


def test_dense_graph_runs_i_minus_4_stages():
    g = complete_graph(40)
    gr, good, res, ctx, fid = run_edge_sparsify(g)
    assert good.i_star > 4
    assert res.num_stages == good.i_star - 4
    assert all(s.kind == "edges" for s in res.stages)


def test_e_star_subset_of_e0():
    g = complete_graph(40)
    gr, good, res, *_ = run_edge_sparsify(g)
    assert np.all(~res.e_star_mask | good.e0_mask)


def test_stage_records_monotone_shrink():
    g = complete_graph(40)
    _, _, res, *_ = run_edge_sparsify(g)
    for s in res.stages:
        assert 0 < s.items_after <= s.items_before
        assert 0 < s.sample_prob < 1


def test_invariant_bounds_hold_when_all_good():
    """Goodness of all machines implies the per-node invariant bounds
    (Lemmas 10-11): the recorded ratios must certify it."""
    g = complete_graph(40)
    _, _, res, *_ = run_edge_sparsify(g)
    for s in res.stages:
        if s.all_good:
            assert s.degree_bound_ratio <= 1.0 + 1e-9
            assert s.retention_bound_ratio >= 1.0 - 1e-9 or s.retention_bound_ratio == float("inf")


def test_measured_decay_tracks_ideal():
    """Measured per-stage retention within a factor ~2 of n^{-j delta}."""
    g = complete_graph(40)
    _, _, res, *_ = run_edge_sparsify(g)
    last = res.stages[-1]
    assert last.degree_decay_measured <= 2.5 * last.degree_decay_ideal + 0.1
    assert last.retention_decay_measured >= 0.3 * last.retention_decay_ideal


def test_final_degrees_bounded():
    """d_{E*}(v) = O(n^{4 delta}): the property enabling 2-hop gathering."""
    params = Params()
    g = complete_graph(40)
    _, _, res, *_ = run_edge_sparsify(g, params)
    d = g.degrees_within(res.e_star_mask)
    # Allow the finite-size constant: 4x the asymptotic 2 n^{4 delta}.
    assert d.max() <= 4 * params.degree_cap(g.n) + 4


def test_machine_loads_respect_chunk():
    g = complete_graph(40)
    params = Params()
    _, _, res, *_ = run_edge_sparsify(g, params)
    chunk = params.chunk_size(g.n)
    for s in res.stages:
        assert s.max_load <= chunk


def test_rounds_charged_per_stage():
    g = complete_graph(40)
    *_, ctx, fid = run_edge_sparsify(g)
    assert ctx.ledger.by_category["sparsify_seed"] > 0
    assert ctx.ledger.by_category["sparsify_distribute"] > 0


def test_empty_e0_returns_empty():
    from repro.graphs import Graph

    g = Graph.empty(10)
    params = Params()
    good = good_nodes_matching(g, params)
    ctx = MPCContext(n=10, m=0)
    res = sparsify_edges(g, good, params, ctx, [])
    assert res.num_edges == 0
    assert res.num_stages == 0


def test_determinism_edge_sparsify():
    a = run_edge_sparsify(complete_graph(35))[2]
    b = run_edge_sparsify(complete_graph(35))[2]
    assert np.array_equal(a.e_star_mask, b.e_star_mask)
    assert [s.seed for s in a.stages] == [s.seed for s in b.stages]


# --------------------------------------------------------------------- #
# node sparsification
# --------------------------------------------------------------------- #


def test_node_sparsify_subset_of_q0():
    g = complete_graph(40)
    _, good, res, *_ = run_node_sparsify(g)
    assert np.all(~res.q_prime_mask | good.q0_mask)


def test_node_sparsify_runs_stages_on_dense():
    g = complete_graph(40)
    _, good, res, *_ = run_node_sparsify(g)
    assert good.i_star > 4
    assert res.num_stages == good.i_star - 4
    assert all(s.kind == "nodes" for s in res.stages)


def test_node_invariants_when_all_good():
    g = complete_graph(40)
    _, _, res, *_ = run_node_sparsify(g)
    for s in res.stages:
        if s.all_good:
            assert s.degree_bound_ratio <= 1.0 + 1e-9


def test_q_prime_internal_degrees_bounded():
    params = Params()
    g = complete_graph(40)
    _, _, res, *_ = run_node_sparsify(g, params)
    d_q = g.degrees_toward(res.q_prime_mask)
    assert d_q[res.q_prime_mask].max(initial=0) <= 4 * params.degree_cap(g.n) + 4


def test_node_sparsify_never_empties():
    """The emptied-guard keeps Q' non-empty (needed by the Luby step)."""
    for seed in range(5):
        g = power_law_graph(120, 4, seed=seed)
        _, good, res, *_ = run_node_sparsify(g)
        if good.q0_mask.any():
            assert res.q_prime_mask.any()


def test_determinism_node_sparsify():
    a = run_node_sparsify(complete_graph(35))[2]
    b = run_node_sparsify(complete_graph(35))[2]
    assert np.array_equal(a.q_prime_mask, b.q_prime_mask)


def test_c2_family_also_works():
    """Ablation: pairwise (c=2) sparsification still satisfies invariants."""
    params = Params(c=2)
    g = complete_graph(40)
    _, _, res, *_ = run_edge_sparsify(g, params)
    assert res.num_edges > 0
    for s in res.stages:
        if s.all_good:
            assert s.degree_bound_ratio <= 1.0 + 1e-9
