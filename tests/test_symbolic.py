"""Edge cases of the symbolic cost-model checker (repro.obs.symbolic).

The happy paths — real sweeps conforming to registry declarations — are
covered by test_obs.py and the CI conformance smoke; this file pins the
checker's *judgement calls*: near-flat series under loose bounds,
single-size sweeps, missing symbols, dominance-order ties, and the
declaration validation that keeps typos from fitting garbage.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import symbolic as sym


def _rows(ns, **extra):
    return [{"n": n, "m": 3 * n, "delta": 8, **extra} for n in ns]


# --------------------------------------------------------------------- #
# Parsing and declaration validation
# --------------------------------------------------------------------- #


def test_parse_expr_vocabulary_and_shorthands():
    expr = sym.parse_expr("depth * seed_bits * log(delta)")
    assert {str(s) for s in expr.free_symbols} == {"depth", "seed_bits", "delta"}
    # loglog(x) is shorthand for log(log(x)) — same parsed expression.
    assert sym.parse_expr("loglog(n)") == sym.parse_expr("log(log(n))")


def test_parse_expr_rejects_unknown_symbols_by_name():
    with pytest.raises(ValueError, match="unknown symbols.*'deltta'"):
        sym.parse_expr("log(deltta) + loglog(n)")


def test_parse_expr_rejects_garbage():
    with pytest.raises(ValueError, match="unparseable"):
        sym.parse_expr("log(n) +* m")


def test_parse_cost_model_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown cost_model keys.*'round'"):
        sym.parse_cost_model({"round": "log(n)"})


def test_parse_cost_model_rejects_unknown_stream_metrics():
    spec = {"phases": {"stage": {"words_moved": "m"}}}
    with pytest.raises(ValueError, match="stage.*unknown stream metrics"):
        sym.parse_cost_model(spec)


def test_parse_cost_model_roundtrip_claims():
    model = sym.parse_cost_model(
        {
            "rounds": "log(delta) + loglog(n)",
            "phases": {"stage": {"rounds": "log(delta)"}},
            "refs": ("Theorem 1",),
            "notes": "caveat",
        }
    )
    claims = list(model.claims())
    assert [(c, m) for c, m, _ in claims] == [
        (None, "rounds"),
        ("stage", "rounds"),
    ]
    assert model.refs == ("Theorem 1",)
    assert sym.render_claim(claims[0][2]) == "O(log(delta) + log(log(n)))"


def test_parse_cost_model_none_passthrough():
    assert sym.parse_cost_model(None) is None


# --------------------------------------------------------------------- #
# Evaluation and symbol defaults
# --------------------------------------------------------------------- #


def test_evaluate_expr_clamps_log():
    # log is log(max(x, 2)): delta = 1 evaluates as log(2), never 0 or
    # negative, so claimed series stay positive and ratios stay finite.
    expr = sym.parse_expr("log(delta)")
    assert sym.evaluate_expr(expr, {"delta": 1}) == pytest.approx(math.log(2))


def test_symbol_defaults_derives_seed_bits_and_depth():
    row = sym.symbol_defaults({"n": 1024})
    assert row["seed_bits"] == 10
    assert row["depth"] == math.ceil(math.log(1024))
    # Explicit values are never overridden.
    row = sym.symbol_defaults({"n": 1024, "seed_bits": 3})
    assert row["seed_bits"] == 3


def test_symbol_defaults_never_invents_gamma():
    row = sym.symbol_defaults({"n": 1024})
    assert "gamma" not in row
    assert "machines" not in row
    assert "space" not in row


def test_missing_symbols_are_reported_not_guessed():
    expr = sym.parse_expr("n / gamma**2")
    with pytest.raises(KeyError, match="gamma"):
        sym.evaluate_expr(expr, {"n": 64})
    record = sym.check_series(_rows([64, 128]), [1.0, 2.0], expr)
    assert record["ok"] is None
    assert "gamma" in record["status"]


# --------------------------------------------------------------------- #
# Series checking: fit, dominance, and their interaction
# --------------------------------------------------------------------- #


def test_tight_fit_is_conformant_and_tight():
    rows = _rows([64, 128, 256, 512])
    expr = sym.parse_expr("m")
    values = [2.0 * r["m"] for r in rows]
    record = sym.check_series(rows, values, expr)
    assert record["ok"] and record["tight"]
    assert record["constant"] == pytest.approx(2.0)
    assert record["r2"] == pytest.approx(1.0)


def test_near_flat_series_passes_via_dominance():
    # Round counts that stay flat while the claim allows log n growth:
    # the constant fit is poor but the series never outgrows the bound.
    rows = _rows([64, 256, 1024, 4096])
    expr = sym.parse_expr("log(n)")
    values = [7.0, 7.0, 8.0, 7.0]
    record = sym.check_series(rows, values, expr)
    assert record["ok"] is True
    assert record["growth_ok"] is True
    assert record["ratio_growth"] < 1.0  # ratio shrinks under a loose bound


def test_outgrowing_series_fails_both_criteria():
    # A Theta(n) series declared O(log n) must be called non-conformant.
    rows = _rows([64, 256, 1024, 4096])
    expr = sym.parse_expr("log(n)")
    values = [float(r["n"]) for r in rows]
    record = sym.check_series(rows, values, expr)
    assert record["ok"] is False
    assert record["tight"] is False
    assert record["ratio_growth"] > sym.GROWTH_SLACK


def test_single_size_sweep_has_no_growth_verdict():
    rows = _rows([256])
    expr = sym.parse_expr("log(n)")
    # One point: the constant fit is trivially exact (flat-series branch),
    # growth is unassessable — ok comes from the fit alone.
    record = sym.check_series(rows, [5.0], expr)
    assert record["growth_ok"] is None
    assert record["ratio_growth"] is None
    assert record["ok"] is True and record["tight"] is True


def test_all_zero_series_growth_unassessable():
    growth = sym.growth_check([0.0, 0.0, 0.0], [1.0, 2.0, 3.0])
    assert growth["growth_ok"] is None


def test_fit_constant_flat_series_r2_branch():
    # Perfectly reproduced constant series: ss_tot = 0, r2 snaps to 1.
    fit = sym.fit_constant([3.0, 3.0, 3.0], [1.0, 1.0, 1.0])
    assert fit["r2"] == 1.0 and fit["fit_ok"]
    # Constant measured vs growing claim: ss_tot = 0 but residuals real.
    fit = sym.fit_constant([3.0, 3.0, 3.0], [1.0, 10.0, 100.0])
    assert fit["r2"] == 0.0


# --------------------------------------------------------------------- #
# Dominance ordering
# --------------------------------------------------------------------- #


def test_compare_growth_strict_orderings():
    assert sym.compare_growth("1", "log(n)") == "lt"
    assert sym.compare_growth("log(n)", "loglog(n)") == "gt"
    assert sym.compare_growth("log(delta) + loglog(n)", "log(n)") == "lt"
    assert sym.compare_growth("m", "n * log(n)") == "lt"


def test_compare_growth_ties():
    # m and n genuinely tie on the sparse schedule (m = Theta(n)), and
    # constant-factor re-spellings of one order tie by construction.
    assert sym.compare_growth("m", "n") == "eq"
    assert sym.compare_growth("2 * log(n)", "log(n)") == "eq"


def test_dominance_order_sorts_and_keeps_ties_stable():
    ordered = sym.dominance_order(["n * log(n)", "m", "log(n)", "n", "1"])
    assert [str(e) for e in ordered] == ["1", "log(n)", "m", "n", "n*log(n)"]
