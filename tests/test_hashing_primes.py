"""Tests for repro.hashing.primes."""

import pytest
from hypothesis import given, strategies as st

from repro.hashing import is_prime, next_prime, prev_prime


KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 101, 257, 65537, 2**31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 15, 100, 65536, 2**31, 561, 41041]  # incl. Carmichael


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes(p):
    assert is_prime(p)


@pytest.mark.parametrize("c", KNOWN_COMPOSITES)
def test_known_composites(c):
    assert not is_prime(c)


def test_negative_not_prime():
    assert not is_prime(-7)


def test_next_prime_basics():
    assert next_prime(0) == 2
    assert next_prime(2) == 2
    assert next_prime(3) == 3
    assert next_prime(4) == 5
    assert next_prime(14) == 17
    assert next_prime(2**16) == 65537


def test_prev_prime_basics():
    assert prev_prime(2) == 2
    assert prev_prime(3) == 3
    assert prev_prime(10) == 7
    assert prev_prime(65537) == 65537


def test_prev_prime_below_two_raises():
    with pytest.raises(ValueError):
        prev_prime(1)


@given(st.integers(min_value=2, max_value=200_000))
def test_next_prime_is_minimal_prime_at_least_n(n):
    q = next_prime(n)
    assert q >= n
    assert is_prime(q)
    # Nothing between n and q is prime.
    for k in range(n, q):
        assert not is_prime(k)


@given(st.integers(min_value=2, max_value=10_000))
def test_trial_division_agreement(n):
    """Miller-Rabin agrees with trial division on a sampled range."""
    def slow(n):
        if n < 2:
            return False
        d = 2
        while d * d <= n:
            if n % d == 0:
                return False
            d += 1
        return True

    assert is_prime(n) == slow(n)
