"""Tests for good-node selection -- the paper's Lemma 3, Corollaries 8/15/16.

These are *theorems*, so the tests assert the exact inequalities on a zoo of
graphs, not just plausibility.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import degree_class_of, good_nodes_matching, good_nodes_mis
from repro.graphs import Graph, gnp_random_graph


# --------------------------------------------------------------------- #
# degree classes
# --------------------------------------------------------------------- #


def test_degree_class_isolated_is_zero():
    cls = degree_class_of(np.array([0, 1, 5]), n=100, delta=0.125)
    assert cls[0] == 0
    assert cls[1] >= 1


def test_degree_class_boundaries():
    n, delta = 256, 0.25  # n^delta = 4: classes [1,4), [4,16), [16,64), [64,256)
    cls = degree_class_of(np.array([1, 3, 4, 15, 16, 63, 64, 255]), n, delta)
    assert cls.tolist() == [1, 1, 2, 2, 3, 3, 4, 4]


def test_degree_class_clipped_to_num_classes():
    cls = degree_class_of(np.array([10**6]), n=4, delta=0.5)
    assert cls[0] <= 2  # 1/delta = 2 classes


@given(st.integers(1, 10_000), st.sampled_from([0.0625, 0.125, 0.25]))
def test_degree_class_membership_property(d, delta):
    n = 10_000
    cls = int(degree_class_of(np.array([d]), n, delta)[0])
    num_classes = int(np.ceil(1.0 / delta - 1e-9))
    assert 1 <= cls <= num_classes
    lo = n ** ((cls - 1) * delta)
    # Within floating slack, d >= n^{(i-1) delta} (upper edge may clip).
    assert d >= lo * (1 - 1e-6)


# --------------------------------------------------------------------- #
# matching good nodes (Lemma 3, Corollary 8)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_lemma3_weight_of_x(seed, params):
    g = gnp_random_graph(100, 0.08, seed=seed)
    good = good_nodes_matching(g, params)
    deg = g.degrees()
    assert float(deg[good.x_mask].sum()) >= 0.5 * g.m  # Lemma 3


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_corollary8_class_weight(seed, params):
    g = gnp_random_graph(100, 0.08, seed=seed)
    good = good_nodes_matching(g, params)
    assert good.weight_b >= (params.delta_value / 2.0) * g.m  # Corollary 8


def test_x_membership_definition(params):
    g = gnp_random_graph(50, 0.15, seed=4)
    good = good_nodes_matching(g, params)
    deg = g.degrees()
    for v in range(g.n):
        if deg[v] == 0:
            assert not good.x_mask[v]
            continue
        low = sum(1 for u in g.neighbors(v).tolist() if deg[u] <= deg[v])
        assert bool(good.x_mask[v]) == (3 * low >= deg[v])


def test_e0_is_union_of_xv(params):
    g = gnp_random_graph(50, 0.15, seed=5)
    good = good_nodes_matching(g, params)
    deg = g.degrees()
    for e in range(g.m):
        u, v = int(g.edges_u[e]), int(g.edges_v[e])
        in_xu = good.b_mask[u] and deg[v] <= deg[u]
        in_xv = good.b_mask[v] and deg[u] <= deg[v]
        assert bool(good.e0_mask[e]) == (in_xu or in_xv)
        assert bool(good.in_x_of_u[e]) == in_xu
        assert bool(good.in_x_of_v[e]) == in_xv


def test_b_nodes_have_x_at_least_third(params):
    """|X(v)| >= d(v)/3 for v in B -- the property Lemma 12 needs."""
    g = gnp_random_graph(80, 0.1, seed=6)
    good = good_nodes_matching(g, params)
    x_count = np.zeros(g.n)
    np.add.at(x_count, g.edges_u[good.in_x_of_u], 1)
    np.add.at(x_count, g.edges_v[good.in_x_of_v], 1)
    deg = g.degrees()
    b = np.nonzero(good.b_mask)[0]
    assert b.size > 0
    assert np.all(3 * x_count[b] >= deg[b])


def test_matching_good_nodes_on_regular_graph(params):
    """On a regular graph all nodes are in X (all neighbours tie)."""
    from repro.graphs import cycle_graph

    g = cycle_graph(30)
    good = good_nodes_matching(g, params)
    assert good.x_mask.sum() == 30
    assert good.e0_mask.sum() == g.m


# --------------------------------------------------------------------- #
# MIS good nodes (Corollaries 15, 16)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_corollary15_weight_of_a(seed, params):
    g = gnp_random_graph(100, 0.08, seed=seed)
    good = good_nodes_mis(g, params)
    deg = g.degrees()
    assert float(deg[good.a_mask].sum()) >= 0.5 * g.m  # Corollary 15


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_corollary16_class_weight(seed, params):
    g = gnp_random_graph(100, 0.08, seed=seed)
    good = good_nodes_mis(g, params)
    assert good.weight_b >= (params.delta_value / 2.0) * g.m  # Corollary 16


def test_x_subset_of_a(params):
    """Lemma: X ⊆ A (nodes with many low-degree neighbours satisfy the
    inverse-degree sum condition)."""
    g = gnp_random_graph(70, 0.12, seed=7)
    gm = good_nodes_matching(g, params)
    gi = good_nodes_mis(g, params)
    assert np.all(gi.a_mask[gm.x_mask])


def test_b_definition_mis(params):
    g = gnp_random_graph(50, 0.15, seed=8)
    good = good_nodes_mis(g, params)
    deg = g.degrees().astype(float)
    i = good.i_star
    for v in range(g.n):
        if deg[v] == 0:
            assert not good.b_mask[v]
            continue
        s = sum(
            1.0 / deg[u]
            for u in g.neighbors(v).tolist()
            if good.class_of[u] == i
        )
        assert bool(good.b_mask[v]) == (s >= params.delta_value / 3.0 - 1e-9)


def test_q0_is_chosen_class(params):
    g = gnp_random_graph(50, 0.15, seed=9)
    good = good_nodes_mis(g, params)
    deg = g.degrees()
    expect = (good.class_of == good.i_star) & (deg > 0)
    assert np.array_equal(good.q0_mask, expect)


def test_empty_graph_good_nodes(params):
    g = Graph.empty(10)
    gm = good_nodes_matching(g, params)
    gi = good_nodes_mis(g, params)
    assert gm.num_good == 0 and gi.num_good == 0
    assert gm.weight_b == 0 and gi.weight_b == 0
