"""The bench aggregation step: ``summarize_results`` + ``scripts/bench_report.py``.

The summary merge is the one bench helper CI depends on for its uploaded
artifact, so it gets a real test: timing columns collapse to the winning
backend, timing-less cases and prior summaries are skipped, and a corrupt
artifact is reported instead of aborting the merge.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from _common import summarize_results  # noqa: E402


def _write(path: Path, doc: dict) -> None:
    path.write_text(json.dumps(doc))


def _results_dir(tmp_path: Path) -> Path:
    d = tmp_path / "results"
    d.mkdir()
    _write(
        d / "BENCH_alpha.json",
        {
            "bench": "alpha",
            "mode": "smoke",
            "cases": {
                "scan": {
                    "csr_s": 0.4,
                    "jit_s": 0.1,
                    "speedup": 4.0,
                    "identical": True,
                },
                "no_timings": {"rows": 12},
            },
        },
    )
    _write(
        d / "BENCH_summary.json",
        {"bench": "summary", "cases": {"ghost": {"x_s": 1.0}}},
    )
    (d / "BENCH_broken.json").write_text("{not json")
    return d


def test_summarize_results_merges_and_skips(tmp_path):
    summary = summarize_results(_results_dir(tmp_path))
    assert summary["bench_count"] == 1
    assert summary["unreadable"] == ["BENCH_broken.json"]
    alpha = summary["benches"]["alpha"]
    assert alpha["mode"] == "smoke"
    assert list(alpha["cases"]) == ["scan"]  # timing-less case dropped
    scan = alpha["cases"]["scan"]
    assert scan["best_backend"] == "jit"
    assert scan["best_s"] == 0.1
    assert scan["timings"] == {"csr": 0.4, "jit": 0.1}
    assert scan["speedup"] == 4.0 and scan["identical"] is True


def test_bench_report_cli_emits_summary_artifact(tmp_path):
    results = _results_dir(tmp_path)
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "scripts" / "bench_report.py"),
            "--results-dir",
            str(results),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "best=jit" in proc.stdout
    assert "BENCH_broken.json" in proc.stderr
    # The artifact lands in the repo results dir via emit_json.
    doc = json.loads(
        (REPO / "benchmarks" / "results" / "BENCH_summary.json").read_text()
    )
    assert doc["bench"] == "summary"
    assert doc["benches"]["alpha"]["cases"]["scan"]["best_backend"] == "jit"


def test_bench_report_cli_fails_on_empty_sweep(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "scripts" / "bench_report.py"),
            "--results-dir",
            str(empty),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "no BENCH_*.json" in proc.stderr
