"""Tests for the Section-5 low-degree algorithm and the API dispatch."""

import numpy as np
import pytest

from repro import maximal_independent_set, maximal_matching
from repro.analysis import lowdeg_round_bound
from repro.core import (
    Params,
    deterministic_mis,
    lowdeg_maximal_matching,
    lowdeg_mis,
    phases_per_stage,
)
from repro.core.api import uses_lowdeg_path
from repro.graphs import (
    Graph,
    bounded_degree_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    random_regular_graph,
)
from repro.verify import verify_matching_pairs, verify_mis_nodes


# --------------------------------------------------------------------- #
# phases_per_stage
# --------------------------------------------------------------------- #


def test_phases_per_stage_at_least_one():
    assert phases_per_stage(100, 50, Params()) == 1


def test_phases_per_stage_grows_with_n():
    p = Params(delta=0.25)
    small = phases_per_stage(2**8, 2, p)
    large = phases_per_stage(2**24, 2, p)
    assert large > small


# --------------------------------------------------------------------- #
# correctness
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "make",
    [
        lambda: bounded_degree_graph(200, 4, 0.9, seed=1),
        lambda: grid_graph(12, 12),
        lambda: cycle_graph(80),
        lambda: random_regular_graph(150, 6, seed=2),
        lambda: hypercube_graph(6),
    ],
)
def test_lowdeg_mis_correct(make):
    g = make()
    res = lowdeg_mis(g)
    assert verify_mis_nodes(g, res.independent_set)


@pytest.mark.parametrize(
    "make",
    [
        lambda: bounded_degree_graph(150, 4, 0.9, seed=3),
        lambda: grid_graph(10, 10),
        lambda: cycle_graph(60),
    ],
)
def test_lowdeg_matching_correct(make):
    g = make()
    res = lowdeg_maximal_matching(g)
    assert verify_matching_pairs(g, res.pairs)


def test_lowdeg_mis_empty_graph():
    res = lowdeg_mis(Graph.empty(5))
    assert res.independent_set.tolist() == [0, 1, 2, 3, 4]


def test_lowdeg_matching_empty_graph():
    res = lowdeg_maximal_matching(Graph.empty(5))
    assert res.pairs.size == 0


def test_lowdeg_deterministic():
    g = grid_graph(10, 10)
    a = lowdeg_mis(g)
    b = lowdeg_mis(g)
    assert np.array_equal(a.independent_set, b.independent_set)
    assert a.rounds == b.rounds


# --------------------------------------------------------------------- #
# round accounting: the O(log Delta + log log n) shape
# --------------------------------------------------------------------- #


def test_lowdeg_beats_general_path_on_rounds():
    g = grid_graph(12, 12)
    low = lowdeg_mis(g)
    gen = deterministic_mis(g)
    assert low.rounds < gen.rounds


def test_lowdeg_round_bound_holds():
    g = random_regular_graph(200, 6, seed=4)
    res = lowdeg_mis(g)
    # Generous explicit constants; the *shape* is what matters.
    assert res.rounds <= lowdeg_round_bound(g.n, g.max_degree(), 12.0, 12.0)


def test_lowdeg_stage_compression_recorded():
    g = grid_graph(12, 12)
    res = lowdeg_mis(g)
    assert res.stages_compressed >= 1
    assert res.stages_compressed <= res.iterations


def test_lowdeg_uses_color_seeds():
    g = grid_graph(12, 12)
    res = lowdeg_mis(g)
    assert res.num_colors >= 1
    for rec in res.records:
        assert rec.seed_bits > 0


def test_lowdeg_space_within_limit():
    g = random_regular_graph(150, 5, seed=5)
    res = lowdeg_mis(g)
    assert res.max_machine_words <= res.space_limit


# --------------------------------------------------------------------- #
# dispatch
# --------------------------------------------------------------------- #


def test_dispatch_low_degree_goes_lowdeg():
    g = grid_graph(10, 10)
    params = Params()
    assert uses_lowdeg_path(g, params)


def test_dispatch_dense_goes_general():
    g = gnp_random_graph(100, 0.5, seed=6)
    params = Params()
    assert not uses_lowdeg_path(g, params)


def test_dispatch_paper_rule_is_stricter():
    g = grid_graph(10, 10)  # Delta = 4 > n^{delta} at this n
    params = Params()
    assert not uses_lowdeg_path(g, params, paper_rule=True)


def test_api_mis_dispatch_and_correctness():
    for g in [grid_graph(9, 9), gnp_random_graph(90, 0.3, seed=7)]:
        res = maximal_independent_set(g)
        assert verify_mis_nodes(g, res.independent_set)


def test_api_matching_dispatch_and_correctness():
    for g in [grid_graph(9, 9), gnp_random_graph(90, 0.3, seed=8)]:
        res = maximal_matching(g)
        assert verify_matching_pairs(g, res.pairs)


def test_api_force_paths():
    g = grid_graph(8, 8)
    gen = maximal_independent_set(g, force="general")
    low = maximal_independent_set(g, force="lowdeg")
    assert verify_mis_nodes(g, gen.independent_set)
    assert verify_mis_nodes(g, low.independent_set)
    with pytest.raises(ValueError):
        maximal_independent_set(g, force="bogus")


def test_api_matching_force_paths():
    g = grid_graph(8, 8)
    gen = maximal_matching(g, force="general")
    low = maximal_matching(g, force="lowdeg")
    assert verify_matching_pairs(g, gen.pairs)
    assert verify_matching_pairs(g, low.pairs)
    with pytest.raises(ValueError):
        maximal_matching(g, force="bogus")
