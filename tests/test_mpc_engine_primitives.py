"""Tests for the literal MPC engine and the Lemma-4 primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpc import (
    CapacityExceededError,
    MPCEngine,
    SpaceExceededError,
    broadcast_word,
    distributed_prefix_sums,
    distributed_sort,
    word_size,
)


def test_word_size():
    assert word_size(5) == 1
    assert word_size((1, 2, 3)) == 3
    assert word_size([1, 2]) == 2


def test_word_size_counts_nested_contents_recursively():
    """Regression: a tuple containing an ndarray used to be charged
    ``len(tuple)`` words, so a 3-slot message could smuggle an arbitrarily
    large array past the capacity checks."""
    arr = np.arange(1000)
    assert word_size(("payload", arr, 7)) == 1 + 1000 + 1
    assert word_size([("a", 1), ("b", (2, 3))]) == 2 + 3
    assert word_size((np.arange(4), [np.arange(5)])) == 9


def test_engine_charges_nested_array_messages_fully():
    """A machine cannot send an oversized array inside a small tuple."""
    eng = MPCEngine(num_machines=2, space=8)
    eng.storage[0] = [1]

    def step(mid, items):
        if mid == 0:
            return [], [(1, ("blob", np.arange(50)))]
        return items, []

    with pytest.raises(CapacityExceededError):
        eng.round(step)


def test_engine_load_balanced():
    eng = MPCEngine(num_machines=4, space=10)
    eng.load_balanced(range(10))
    assert eng.all_items() == list(range(10))
    assert max(eng.machine_load(i) for i in range(4)) <= 3


def test_engine_reuse_resets_accounting():
    """Reloading input starts a fresh computation: rounds and the space
    high-water mark must not leak from the previous run."""
    eng = MPCEngine(num_machines=2, space=16)
    eng.load_balanced(range(16))
    eng.round(lambda mid, items: (items, []))
    assert eng.rounds_executed == 1
    assert eng.max_load_seen == 8

    eng.load_balanced(range(4))
    assert eng.rounds_executed == 0
    assert eng.max_load_seen == 2
    assert eng.all_items() == list(range(4))


def test_engine_rejects_overload_on_load():
    eng = MPCEngine(num_machines=2, space=3)
    with pytest.raises(SpaceExceededError):
        eng.load_balanced(range(10))


def test_engine_round_moves_messages():
    eng = MPCEngine(num_machines=2, space=10)
    eng.load_balanced([1, 2])

    def step(mid, items):
        if mid == 0:
            return [], [(1, x) for x in items]
        return items, []

    eng.round(step)
    assert eng.storage[0] == []
    assert sorted(eng.storage[1]) == [1, 2]
    assert eng.rounds_executed == 1


def test_engine_send_capacity_enforced():
    eng = MPCEngine(num_machines=2, space=3)
    eng.storage[0] = [1, 2, 3]

    def step(mid, items):
        if mid == 0:
            return [], [(1, x) for x in items + [99]]  # 4 words > S
        return items, []

    with pytest.raises(CapacityExceededError):
        eng.round(step)


def test_engine_receive_capacity_enforced():
    eng = MPCEngine(num_machines=3, space=2)
    eng.storage[0] = [1, 2]
    eng.storage[1] = [3, 4]

    def step(mid, items):
        if mid in (0, 1):
            return [], [(2, x) for x in items]
        return items, []

    with pytest.raises(CapacityExceededError):
        eng.round(step)


def test_engine_rejects_unknown_destination():
    eng = MPCEngine(num_machines=2, space=4)
    eng.storage[0] = [1]
    with pytest.raises(ValueError):
        eng.round(lambda mid, items: (items, [(7, 1)] if mid == 0 else []))


def test_broadcast_reaches_everyone():
    eng = MPCEngine(num_machines=9, space=20)
    rounds = broadcast_word(eng, "tok")
    for mid in range(9):
        assert ("bcast", "tok") in eng.storage[mid]
    assert rounds <= 3


def test_prefix_sums_single_level():
    eng = MPCEngine(num_machines=4, space=32)
    eng.load_balanced([1, 2, 3, 4, 5, 6, 7, 8])
    rounds = distributed_prefix_sums(eng)
    assert eng.all_items() == [1, 3, 6, 10, 15, 21, 28, 36]
    assert rounds <= 5


def test_prefix_sums_multi_level():
    # Force the multi-level path: fanout = space // 6 = 4 < M = 5.
    eng = MPCEngine(num_machines=5, space=24)
    eng.load_balanced([1] * 10)
    rounds = distributed_prefix_sums(eng)
    assert eng.all_items() == list(range(1, 11))
    assert rounds <= 7


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=40))
def test_prefix_sums_hypothesis(values):
    eng = MPCEngine(num_machines=4, space=64)
    eng.load_balanced(values)
    distributed_prefix_sums(eng)
    assert eng.all_items() == list(np.cumsum(values))


def test_sort_correct_and_constant_rounds():
    eng = MPCEngine(num_machines=4, space=64)
    data = [5, 3, 8, 1, 9, 2, 7, 7, 0, -4, 11, 6]
    eng.load_balanced(data)
    rounds = distributed_sort(eng)
    assert eng.all_items() == sorted(data)
    assert rounds == 3  # sample, splitters, partition


def test_sort_single_machine():
    eng = MPCEngine(num_machines=1, space=64)
    eng.load_balanced([3, 1, 2])
    assert distributed_sort(eng) == 0
    assert eng.all_items() == [1, 2, 3]


def test_sort_requires_sample_capacity():
    eng = MPCEngine(num_machines=10, space=50)  # 10*9 = 90 > 50
    eng.load_balanced(range(40))
    with pytest.raises(ValueError):
        distributed_sort(eng)


@given(st.lists(st.integers(0, 1000), max_size=48))
def test_sort_hypothesis(values):
    eng = MPCEngine(num_machines=4, space=256)
    eng.load_balanced(values)
    distributed_sort(eng)
    assert eng.all_items() == sorted(values)


def test_sort_respects_space_throughout():
    """Sorting adversarially skewed input never exceeds machine space."""
    eng = MPCEngine(num_machines=4, space=64)
    eng.load_balanced([0] * 20 + list(range(20)))
    distributed_sort(eng)
    assert eng.max_load_seen <= 64
