"""Tests for the CONGEST extension (model + derandomized MIS)."""

import numpy as np
import pytest

from repro.congest import CongestContext, bfs_depth, congest_mis
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.verify import verify_mis_nodes

# --------------------------------------------------------------------- #
# model
# --------------------------------------------------------------------- #


def test_bfs_depth_path():
    assert bfs_depth(path_graph(10)) == 9


def test_bfs_depth_star():
    assert bfs_depth(star_graph(10)) <= 2


def test_bfs_depth_complete():
    assert bfs_depth(complete_graph(10)) == 1


def test_bfs_depth_disconnected_takes_max():
    g = Graph.from_edges(8, [(0, 1), (2, 3), (3, 4), (4, 5), (5, 6)])
    assert bfs_depth(g) == 4


def test_bfs_depth_edgeless():
    assert bfs_depth(Graph.empty(5)) == 0


def test_context_charges_scale_with_depth():
    shallow = CongestContext(star_graph(20))
    deep = CongestContext(path_graph(20))
    shallow.charge_upcast()
    deep.charge_upcast()
    assert deep.rounds > shallow.rounds


def test_seed_fix_bill():
    ctx = CongestContext(path_graph(5))  # depth 4
    ctx.charge_seed_fix(10)
    assert ctx.rounds == 2 * 4 * 10


# --------------------------------------------------------------------- #
# congest_mis
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("mode", ["voting", "color-compressed"])
def test_congest_mis_correct(mode):
    g = grid_graph(7, 7)
    res = congest_mis(g, mode=mode)
    assert verify_mis_nodes(g, res.independent_set)
    assert res.mode == mode


def test_congest_mis_rejects_bad_mode():
    with pytest.raises(ValueError):
        congest_mis(path_graph(4), mode="nope")


def test_congest_color_compression_saves_rounds():
    """The paper's conclusion, quantified: O(log Delta)-bit seeds beat
    O(log n)-bit seeds by the seed-length ratio per phase."""
    g = grid_graph(8, 8)
    cc = congest_mis(g, mode="color-compressed")
    vt = congest_mis(g, mode="voting")
    assert cc.seed_bits_per_phase < vt.seed_bits_per_phase
    assert cc.rounds < vt.rounds


def test_congest_rounds_scale_with_depth():
    shallow = gnp_random_graph(64, 0.2, seed=3)  # small diameter
    deep = cycle_graph(64)  # diameter n/2
    rs = congest_mis(shallow, mode="voting")
    rd = congest_mis(deep, mode="voting")
    assert rd.bfs_depth > rs.bfs_depth
    # Per-phase cost dominated by D: deep graph pays much more per phase.
    assert rd.rounds / max(rd.phases, 1) > rs.rounds / max(rs.phases, 1)


def test_congest_mis_deterministic():
    g = grid_graph(6, 6)
    a = congest_mis(g)
    b = congest_mis(g)
    assert np.array_equal(a.independent_set, b.independent_set)
    assert a.rounds == b.rounds


def test_congest_mis_edgeless():
    res = congest_mis(Graph.empty(5))
    assert res.independent_set.tolist() == [0, 1, 2, 3, 4]
    assert res.phases == 0


def test_congest_trace_decreasing():
    g = gnp_random_graph(80, 0.1, seed=4)
    res = congest_mis(g)
    trace = list(res.edge_trace)
    assert all(a > b for a, b in zip(trace, trace[1:])) or len(trace) <= 1


# --------------------------------------------------------------------- #
# congest matching (line-graph reduction)
# --------------------------------------------------------------------- #

from repro.congest import congest_maximal_matching  # noqa: E402
from repro.verify import is_maximal_matching  # noqa: E402


def test_congest_matching_maximal():
    g = grid_graph(6, 6)
    res = congest_maximal_matching(g)
    mask = np.zeros(g.m, dtype=bool)
    mask[res.independent_set] = True
    assert is_maximal_matching(g, mask)


def test_congest_matching_empty():
    res = congest_maximal_matching(Graph.empty(4))
    assert res.independent_set.size == 0
    assert res.rounds == 0


def test_congest_matching_modes_agree_on_validity():
    g = cycle_graph(30)
    for mode in ("voting", "color-compressed"):
        res = congest_maximal_matching(g, mode=mode)
        mask = np.zeros(g.m, dtype=bool)
        mask[res.independent_set] = True
        assert is_maximal_matching(g, mask)
