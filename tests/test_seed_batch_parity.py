"""Batched-vs-scalar seed-search parity, wrap-around scans, parallel scan.

The contract under test: the ``batched`` and ``scalar`` seed backends
produce *bit-identical* :class:`~repro.derand.strategies.SeedSelection`
outcomes -- same seed, value, trial count, ``satisfied`` flag and
``family_mean`` -- for every strategy and every call site, for arbitrary
family sizes, starts and targets.  The batched engine only changes how
many seeds are evaluated per objective call, never which seed wins.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cclique.mis_cc import cc_maximal_matching, cc_mis
from repro.congest.mis_congest import congest_mis
from repro.core import Params, lowdeg_mis
from repro.core.api import maximal_independent_set, maximal_matching
from repro.derand.strategies import (
    ConditionalExpectationError,
    scan_regions,
    select_seed,
    select_seed_batch,
)
from repro.graphs import cycle_graph, gnp_random_graph
from repro.graphs.kernels import (
    group_order_indptr,
    segment_any_block_fn,
    segment_min_2d,
    segment_min_block_fn,
)
from repro.hashing.families import make_product_family
from repro.hashing.kwise import make_family


def _vector_objective(values: np.ndarray):
    arr = np.asarray(values, dtype=np.float64)
    return lambda seeds: arr[np.asarray(seeds, dtype=np.int64)]


# --------------------------------------------------------------------- #
# Strategy-level parity (hypothesis)
# --------------------------------------------------------------------- #


@settings(max_examples=200, deadline=None)
@given(
    values=st.lists(
        st.floats(-100, 100, allow_nan=False), min_size=1, max_size=80
    ),
    start=st.integers(0, 300),
    target=st.floats(-120, 120),
    max_trials=st.integers(1, 120),
    chunk=st.integers(1, 64),
    data=st.data(),
)
def test_scan_parity_all_fields(values, start, target, max_trials, chunk, data):
    vals = np.array(values)
    kw = dict(strategy="scan", target=target, max_trials=max_trials, start=start)
    a = select_seed_batch(
        vals.size, _vector_objective(vals), backend="scalar", **kw
    )
    b = select_seed_batch(
        vals.size,
        _vector_objective(vals),
        backend="batched",
        chunk_size=chunk,
        **kw,
    )
    assert a == b


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.floats(-100, 100, allow_nan=False), min_size=1, max_size=64
    ),
    chunk=st.integers(1, 64),
)
def test_cond_exp_parity(values, chunk):
    vals = np.array(values)
    a = select_seed_batch(
        vals.size,
        _vector_objective(vals),
        strategy="conditional_expectation",
        backend="scalar",
    )
    b = select_seed_batch(
        vals.size,
        _vector_objective(vals),
        strategy="conditional_expectation",
        backend="batched",
        chunk_size=chunk,
    )
    assert a == b
    assert a.family_mean == b.family_mean


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.floats(-100, 100, allow_nan=False), min_size=1, max_size=64
    ),
    k=st.integers(1, 80),
    chunk=st.integers(1, 64),
)
def test_best_of_parity(values, k, chunk):
    vals = np.array(values)
    a = select_seed_batch(
        vals.size, _vector_objective(vals), strategy="best_of", best_of_k=k,
        backend="scalar",
    )
    b = select_seed_batch(
        vals.size, _vector_objective(vals), strategy="best_of", best_of_k=k,
        backend="batched", chunk_size=chunk,
    )
    assert a == b


def test_scalar_adapter_matches_batch_engine():
    values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    a = select_seed(8, lambda s: values[s], strategy="scan", target=9.0, start=2)
    b = select_seed_batch(
        8, _vector_objective(values), strategy="scan", target=9.0, start=2
    )
    assert a == b


# --------------------------------------------------------------------- #
# Wrap-around scan semantics (satellite: no silently-lost regions)
# --------------------------------------------------------------------- #


def test_scan_start_past_end_wraps():
    # Old behaviour: start >= family_size clamped to the last seed only.
    # Now the scan covers the whole wrapped order [1, size).
    values = [100.0, 0.0, 0.0, 7.0, 0.0]
    sel = select_seed(5, lambda s: values[s], strategy="scan", target=7.0, start=9)
    assert sel.satisfied and sel.seed == 3


def test_scan_wraps_to_cover_prefix():
    # start=3: scans 3, 4, then wraps to 1, 2 (seed 0 stays skipped).
    values = [50.0, 8.0, 0.0, 0.0, 0.0]
    sel = select_seed(5, lambda s: values[s], strategy="scan", target=8.0, start=3)
    assert sel.satisfied and sel.seed == 1
    assert sel.trials == 3  # seeds 3, 4, 1


def test_scan_wrap_skips_seed_zero():
    values = [10.0, 0.0, 0.0]
    sel = select_seed(3, lambda s: values[s], strategy="scan", target=10.0, start=1)
    assert not sel.satisfied  # seed 0 (the constant-zero hash) never scanned
    assert sel.trials == 2


def test_scan_start_zero_covers_everything():
    values = [1.0, 2.0, 3.0]
    sel = select_seed(3, lambda s: values[s], strategy="scan", target=3.0, start=0)
    assert sel.satisfied and sel.seed == 2 and sel.trials == 3


def test_scan_regions_normalises_start():
    regions, first = scan_regions(10, 12)
    assert first == 1 + (12 - 1) % 9
    covered = [s for lo, hi in regions for s in range(lo, hi)]
    assert sorted(covered) == list(range(1, 10))
    # family of {0} with a skip request still scans seed 0
    assert scan_regions(1, 1) == ([(0, 1)], 0)


def test_scan_trials_capped_by_wrapped_family():
    calls = []
    sel = select_seed(
        6,
        lambda s: calls.append(s) or 0.0,
        strategy="scan",
        target=1.0,
        max_trials=100,
        start=4,
    )
    assert not sel.satisfied
    assert sel.trials == 5  # seeds 4, 5, 1, 2, 3 -- never seed 0, never twice
    assert calls == [4, 5, 1, 2, 3]


# --------------------------------------------------------------------- #
# Conditional-expectation invariant raises (not assert)
# --------------------------------------------------------------------- #


def test_cond_exp_invariant_error_is_real_exception():
    with pytest.raises(ConditionalExpectationError):
        select_seed(
            4, lambda s: float("nan"), strategy="conditional_expectation"
        )


# --------------------------------------------------------------------- #
# Hashing batch parity (hypothesis)
# --------------------------------------------------------------------- #


@settings(max_examples=50, deadline=None)
@given(
    universe=st.integers(2, 400),
    k=st.integers(1, 4),
    s0=st.integers(0, 1000),
    count=st.integers(1, 80),
)
def test_evaluate_batch_matches_evaluate(universe, k, s0, count):
    fam = make_family(universe, k=k, min_q=5)
    count = min(count, fam.size)
    s0 = s0 % (fam.size - count + 1)
    xs = np.arange(min(universe, fam.q), dtype=np.int64)
    seeds = np.arange(s0, s0 + count, dtype=np.int64)
    block = fam.evaluate_batch(seeds, xs)
    for i in (0, count // 2, count - 1):
        assert np.array_equal(block[i], fam.evaluate(int(seeds[i]), xs))


@settings(max_examples=30, deadline=None)
@given(universe=st.integers(2, 200), s0=st.integers(0, 500), count=st.integers(1, 50))
def test_product_batch_matches_evaluate(universe, s0, count):
    fam = make_product_family(universe, k=2, min_q=5)
    xs = np.arange(fam.domain, dtype=np.int64)
    seeds = np.arange(s0, s0 + count, dtype=np.int64)
    block = fam.evaluate_batch(seeds, xs)
    for i in (0, count - 1):
        assert np.array_equal(block[i], fam.evaluate(int(seeds[i]), xs))


def test_evaluate_batch_rejects_out_of_range_run():
    fam = make_family(10, k=2, min_q=5)
    bad = np.arange(fam.size - 2, fam.size + 3, dtype=np.int64)
    with pytest.raises(ValueError):
        fam.evaluate_batch(bad, np.arange(5))
    with pytest.raises(ValueError):
        fam.indicator_batch(bad, np.arange(5), 3)


def test_evaluate_batch_arbitrary_seed_order():
    fam = make_family(100, k=2)
    xs = np.arange(50, dtype=np.int64)
    seeds = np.array([9, 3, 77, 3, 0], dtype=np.int64)  # non-contiguous
    block = fam.evaluate_batch(seeds, xs)
    for i, s in enumerate(seeds):
        assert np.array_equal(block[i], fam.evaluate(int(s), xs))


# --------------------------------------------------------------------- #
# Block-kernel parity (padded table vs scatter fallback)
# --------------------------------------------------------------------- #


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_segment_min_block_fn_matches_reference(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    m = data.draw(st.integers(1, 12))
    sizes = rng.integers(0, 6, m)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    width = 30
    cols = rng.integers(0, width, indptr[-1])
    vals = rng.integers(0, 1000, (3, width)).astype(np.uint64)
    fill = np.uint64(2**63 - 1)
    ref = segment_min_2d(vals[:, cols], indptr, fill)
    got = segment_min_block_fn(cols, indptr, width)(vals, fill)
    assert np.array_equal(ref, got)


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_segment_any_block_fn_matches_reference(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    m = data.draw(st.integers(1, 12))
    sizes = rng.integers(0, 6, m)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    width = 30
    cols = rng.integers(0, width, indptr[-1])
    mask = rng.random((3, width)) < 0.3
    ref = np.zeros((3, m), dtype=bool)
    for i in range(m):
        seg = cols[indptr[i] : indptr[i + 1]]
        if seg.size:
            ref[:, i] = mask[:, seg].any(axis=1)
    got = segment_any_block_fn(cols, indptr, width)(mask)
    assert np.array_equal(ref, got)


def test_group_order_indptr_monotone_fast_path():
    groups = np.array([0, 0, 2, 2, 2, 5])
    order, indptr = group_order_indptr(groups, 6)
    assert np.array_equal(order, np.arange(6))
    assert indptr.tolist() == [0, 2, 2, 5, 5, 5, 6]
    shuffled = np.array([2, 0, 5, 2, 0, 2])
    order2, indptr2 = group_order_indptr(shuffled, 6)
    assert np.array_equal(shuffled[order2], groups)
    assert np.array_equal(indptr2, indptr)


# --------------------------------------------------------------------- #
# Call-site parity: every solver, both backends, identical outcomes
# --------------------------------------------------------------------- #


def _backend_params(backend: str) -> Params:
    return Params(seed_backend=backend, seed_chunk=16)


@pytest.mark.parametrize("n,p,seed", [(60, 0.1, 1), (120, 0.05, 2)])
def test_deterministic_mis_backend_parity(n, p, seed):
    g = gnp_random_graph(n, p, seed=seed)
    a = maximal_independent_set(g, params=_backend_params("scalar"), force="general")
    b = maximal_independent_set(g, params=_backend_params("batched"), force="general")
    assert np.array_equal(a.independent_set, b.independent_set)
    assert a.rounds == b.rounds
    for ra, rb in zip(a.records, rb_list := list(b.records)):
        assert ra.selection_trials == rb.selection_trials
        assert ra.selection_value == rb.selection_value
        assert ra.selection_satisfied == rb.selection_satisfied
    assert len(a.records) == len(rb_list)


def test_deterministic_matching_backend_parity():
    g = gnp_random_graph(80, 0.08, seed=5)
    a = maximal_matching(g, params=_backend_params("scalar"), force="general")
    b = maximal_matching(g, params=_backend_params("batched"), force="general")
    assert np.array_equal(a.pairs, b.pairs)
    assert a.rounds == b.rounds


@pytest.mark.parametrize("graph_fn", [lambda: cycle_graph(64), lambda: gnp_random_graph(90, 0.05, seed=3)])
def test_lowdeg_backend_parity(graph_fn):
    g = graph_fn()
    a = lowdeg_mis(g, _backend_params("scalar"))
    b = lowdeg_mis(g, _backend_params("batched"))
    assert np.array_equal(a.independent_set, b.independent_set)
    assert [r.selection_trials for r in a.records] == [
        r.selection_trials for r in b.records
    ]
    assert [r.selection_value for r in a.records] == [
        r.selection_value for r in b.records
    ]
    assert [r.selection_satisfied for r in a.records] == [
        r.selection_satisfied for r in b.records
    ]


@pytest.mark.parametrize("fn", [cc_mis, cc_maximal_matching])
def test_cclique_backend_parity(fn, monkeypatch):
    g = gnp_random_graph(70, 0.12, seed=9)
    monkeypatch.setenv("REPRO_SEED_BACKEND", "scalar")
    a = fn(g)
    monkeypatch.setenv("REPRO_SEED_BACKEND", "batched")
    b = fn(g)
    assert np.array_equal(a.solution, b.solution)
    assert a.rounds == b.rounds
    assert a.edge_trace == b.edge_trace


@pytest.mark.parametrize("mode", ["voting", "color-compressed"])
def test_congest_backend_parity(mode, monkeypatch):
    g = gnp_random_graph(60, 0.1, seed=13)
    monkeypatch.setenv("REPRO_SEED_BACKEND", "scalar")
    a = congest_mis(g, mode=mode)
    monkeypatch.setenv("REPRO_SEED_BACKEND", "batched")
    b = congest_mis(g, mode=mode)
    assert np.array_equal(a.independent_set, b.independent_set)
    assert a.rounds == b.rounds


def test_env_backend_resolution(monkeypatch):
    from repro.derand.strategies import resolve_seed_backend

    assert resolve_seed_backend(None) == "batched"
    monkeypatch.setenv("REPRO_SEED_BACKEND", "scalar")
    assert resolve_seed_backend(None) == "scalar"
    assert resolve_seed_backend("batched") == "batched"
    monkeypatch.setenv("REPRO_SEED_BACKEND", "bogus")
    with pytest.raises(ValueError):
        resolve_seed_backend(None)


# --------------------------------------------------------------------- #
# lowdeg phase-offset regression (satellite)
# --------------------------------------------------------------------- #


def test_lowdeg_phase_offsets_stay_in_family():
    """Late-phase scan starts must rotate within the family, and the scan
    must still be able to cover every non-zero seed (the old arithmetic
    could pin every phase to start=1 or clamp the scanned region)."""
    g = cycle_graph(48)  # small palette -> small family, many phases
    params = Params(max_scan_trials=1 << 14)  # trials >> family size
    res = lowdeg_mis(g, params)
    assert res.iterations >= 2
    for rec in res.records:
        # a wrapped scan never evaluates more than the family's non-zero
        # seeds, whatever the budget
        assert rec.selection_trials <= (1 << rec.seed_bits)


def test_lowdeg_deep_phase_start_wraps_not_clamps():
    # With family.size - 1 as the modulus, consecutive phases get distinct
    # rotating offsets; the result must stay a valid MIS either way.
    from repro.verify import is_independent_set, is_maximal_independent_set

    g = gnp_random_graph(70, 0.06, seed=21)
    res = lowdeg_mis(g, Params(max_scan_trials=7))
    mask = np.zeros(g.n, dtype=bool)
    mask[res.independent_set] = True
    assert is_independent_set(g, mask)
    assert is_maximal_independent_set(g, mask)


# --------------------------------------------------------------------- #
# Parallel scan (runtime layer)
# --------------------------------------------------------------------- #


def test_stage_search_parallel_matches_serial():
    from repro.core.stage import MachineGroupSpec, run_stage_seed_search
    from repro.mpc.partition import chunk_items_by_group

    g = gnp_random_graph(200, 0.05, seed=4)
    family = make_family(200, k=4)
    params = Params()
    eids = np.arange(g.m, dtype=np.int64) % family.q
    spec = MachineGroupSpec(
        name="A",
        grouping=chunk_items_by_group(g.edges_u.astype(np.int64), 8),
        unit_ids=eids,
    )
    prob = params.sample_prob(g.n)
    serial = run_stage_seed_search(
        family, prob, [spec], params, g.n, [], scan_start=1
    )
    par = run_stage_seed_search(
        family,
        prob,
        [spec],
        params.with_(seed_scan_workers=2),
        g.n,
        [],
        scan_start=1,
    )
    assert serial.selection == par.selection
    assert serial.seed == par.seed
    assert serial.trials == par.trials
    assert serial.all_good == par.all_good


def test_parallel_scan_unsatisfied_best_seed():
    from repro.runtime.seed_scan import parallel_scan

    # Identity objective (module-level so it pickles to workers).
    sel = parallel_scan(
        _idobj,
        {"scale": 1.0},
        40,
        target=10_000.0,
        max_trials=25,
        start=5,
        chunk_size=4,
        workers=2,
    )
    assert not sel.satisfied
    assert sel.trials == 25
    # best over the wrapped order starting at 5 within 25 trials
    assert sel.seed == 29


def _idobj(payload, seeds):
    return np.asarray(seeds, dtype=np.float64) * payload["scale"]
