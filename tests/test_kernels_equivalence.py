"""Vectorized (csr) and legacy kernels must be bit-identical everywhere.

The CSR backend is only allowed to change *how fast* answers arrive, never
the answers: same RNG stream, same MIS/matching sets, same traces, same
engine accounting.  These tests pin that contract with hypothesis property
tests on seeded random graphs plus targeted regressions for the MPC engine
and the runtime cache under the CSR backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.greedy import greedy_matching, greedy_mis
from repro.baselines.israeli_itai import israeli_itai_matching
from repro.baselines.luby import (
    luby_matching_randomized,
    luby_mis_pairwise,
    luby_mis_randomized,
)
from repro.core.good_nodes import good_nodes_mis
from repro.core.params import Params
from repro.graphs import Graph, gnp_random_graph
from repro.graphs.coloring import linial_coloring
from repro.graphs.kernels import resolve_backend, segment_min, segment_sum
from repro.mpc.distributed_luby import distributed_luby_mis
from repro.verify import verify_matching_pairs, verify_mis_nodes


# --------------------------------------------------------------------- #
# Backend resolution
# --------------------------------------------------------------------- #


def test_resolve_backend_defaults_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    assert resolve_backend() == "csr"
    assert resolve_backend("legacy") == "legacy"
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "legacy")
    assert resolve_backend() == "legacy"
    with pytest.raises(ValueError):
        resolve_backend("simd")


# --------------------------------------------------------------------- #
# Segment kernels vs a python reference
# --------------------------------------------------------------------- #


@given(
    st.lists(st.integers(0, 6), min_size=0, max_size=12),
    st.integers(0, 2**31),
)
@settings(max_examples=50)
def test_segment_kernels_match_reference(seg_sizes, seed):
    rng = np.random.default_rng(seed)
    sizes = np.asarray(seg_sizes, dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(sizes)])
    values = rng.integers(-50, 50, size=int(indptr[-1])).astype(np.int64)
    mins = segment_min(values, indptr, np.int64(999))
    sums = segment_sum(values, indptr)
    for i, size in enumerate(seg_sizes):
        seg = values[indptr[i] : indptr[i + 1]]
        assert sums[i] == seg.sum()
        assert mins[i] == (seg.min() if size else 999)


# --------------------------------------------------------------------- #
# Solver equivalence on seeded random graphs (hypothesis)
# --------------------------------------------------------------------- #


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 32))
    density = draw(st.integers(0, 3))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    p = [0.02, 0.1, 0.3, 0.8][density]
    mask = rng.random((n, n)) < p
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if mask[i, j]]
    return Graph.from_edges(n, edges)


def _same_result(a, b) -> bool:
    return (
        np.array_equal(a.solution, b.solution)
        and a.edge_trace == b.edge_trace
        and a.iterations == b.iterations
        and a.rounds == b.rounds
    )


@given(random_graphs(), st.integers(0, 2**31))
def test_luby_mis_backends_identical(g, seed):
    a = luby_mis_randomized(g, seed, backend="legacy")
    b = luby_mis_randomized(g, seed, backend="csr")
    assert _same_result(a, b)
    assert verify_mis_nodes(g, b.solution)


@given(random_graphs(), st.integers(0, 2**31))
def test_luby_pairwise_backends_identical(g, seed):
    a = luby_mis_pairwise(g, seed, backend="legacy")
    b = luby_mis_pairwise(g, seed, backend="csr")
    assert _same_result(a, b)
    assert verify_mis_nodes(g, b.solution)


@given(random_graphs(), st.integers(0, 2**31))
def test_luby_matching_backends_identical(g, seed):
    a = luby_matching_randomized(g, seed, backend="legacy")
    b = luby_matching_randomized(g, seed, backend="csr")
    assert _same_result(a, b)
    assert verify_matching_pairs(g, b.solution)


@given(random_graphs(), st.integers(0, 2**31))
def test_israeli_itai_backends_identical(g, seed):
    a = israeli_itai_matching(g, seed, backend="legacy")
    b = israeli_itai_matching(g, seed, backend="csr")
    assert _same_result(a, b)
    assert verify_matching_pairs(g, b.solution)


@given(random_graphs())
def test_greedy_backends_identical(g):
    a = greedy_mis(g, backend="legacy")
    assert np.array_equal(a, greedy_mis(g, backend="csr"))
    assert np.array_equal(a, greedy_mis(g))  # default is the sequential scan
    b = greedy_matching(g, backend="legacy")
    assert np.array_equal(b, greedy_matching(g, backend="csr"))
    assert np.array_equal(b, greedy_matching(g))


@given(random_graphs())
def test_good_nodes_mis_backends_identical(g):
    params = Params()
    a = good_nodes_mis(g, params, backend="legacy")
    b = good_nodes_mis(g, params, backend="csr")
    assert a.i_star == b.i_star
    assert np.array_equal(a.b_mask, b.b_mask)
    assert np.array_equal(a.a_mask, b.a_mask)
    assert np.array_equal(a.q0_mask, b.q0_mask)


def test_linial_coloring_backends_identical(any_graph, monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    a = linial_coloring(any_graph)
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "legacy")
    b = linial_coloring(any_graph)
    assert a.num_colors == b.num_colors
    assert np.array_equal(a.colors, b.colors)


# --------------------------------------------------------------------- #
# MPC engine accounting under the CSR backend
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "make,machines,space",
    [
        (lambda: gnp_random_graph(30, 0.2, seed=1), 4, 512),
        (lambda: gnp_random_graph(48, 0.12, seed=2), 5, 512),
    ],
)
def test_distributed_luby_backends_identical(make, machines, space):
    g = make()
    mis_a, rounds_a, phases_a = distributed_luby_mis(
        g, machines, space, backend="legacy"
    )
    mis_b, rounds_b, phases_b = distributed_luby_mis(g, machines, space, backend="csr")
    assert np.array_equal(mis_a, mis_b)
    assert (rounds_a, phases_a) == (rounds_b, phases_b)
    assert rounds_b == 10 * phases_b  # engine accounting is unchanged
    assert verify_mis_nodes(g, mis_b)


def test_engine_word_size_counts_arrays():
    from repro.mpc.engine import word_size

    assert word_size(np.arange(7)) == 7
    assert word_size(np.empty(0, dtype=np.int64)) == 0
    assert word_size((1, 2, 3)) == 3
    assert word_size(5) == 1


# --------------------------------------------------------------------- #
# Vectorised estimator accounting
# --------------------------------------------------------------------- #


def test_stage_search_reports_certified_slacks():
    from repro.core.stage import node_level_spec, run_stage_seed_search
    from repro.derand.estimators import slack_for_failure
    from repro.hashing.kwise import make_family

    group_of = np.repeat(np.arange(10, dtype=np.int64), 5)
    units = np.arange(50, dtype=np.int64)
    spec = node_level_spec("certified-test", group_of, units)
    family = make_family(universe=64, k=2)
    outcome = run_stage_seed_search(family, 0.5, [spec], Params(), 64, [])
    assert len(outcome.certified_lambdas) == 1
    cert = outcome.certified_lambdas[0]
    assert cert.shape == outcome.lambdas[0].shape
    assert np.all(cert > 0)
    # The array solver must agree with the scalar inversion per machine.
    loads = spec.grouping.loads
    share = min(1.0, 1.0 / loads.size)
    p_real = outcome.p_real
    expect = [slack_for_failure(2, float(t), share, p=p_real) for t in loads]
    assert np.allclose(cert, expect)


# --------------------------------------------------------------------- #
# ResultCache LRU touch under the CSR backend
# --------------------------------------------------------------------- #


def test_scheduler_cache_hits_with_csr_payloads(tmp_path):
    from repro.runtime.cache import ResultCache
    from repro.runtime.scheduler import Scheduler
    from repro.runtime.spec import GraphSource, JobSpec

    spec = JobSpec(
        problem="mis",
        source=GraphSource.generator("gnp_random_graph", n=40, p=0.15, seed=3),
    )
    cache = ResultCache(tmp_path / "cache")
    sched = Scheduler(workers=1, cache=cache)
    first = sched.run([spec])
    assert first.all_ok and first.stats.cache_hits == 0
    second = sched.run([spec])
    assert second.all_ok and second.stats.cache_hits == 1
    assert second.results[0].solution_size == first.results[0].solution_size


def test_cache_lru_touch_protects_recently_read(tmp_path):
    from repro.runtime.cache import ResultCache

    cache = ResultCache(tmp_path / "cache", max_entries=2)
    arrays = {"solution": np.arange(3, dtype=np.int64)}
    cache.put("k1", job={"status": "ok"}, arrays=arrays)
    cache.put("k2", job={"status": "ok"}, arrays=arrays)
    assert cache.get("k1") is not None  # touch: k1 becomes most recent
    cache.put("k3", job={"status": "ok"}, arrays=arrays)  # evicts k2, not k1
    assert cache.keys() == ["k1", "k3"]
    assert cache.get("k2") is None
    assert cache.stats.evictions == 1
