"""Tests for ledger, space tracker, context and machine partitioning."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpc import (
    MPCContext,
    RoundCosts,
    RoundLedger,
    SpaceExceededError,
    SpaceTracker,
    chunk_items_by_group,
)

# --------------------------------------------------------------------- #
# RoundLedger / RoundCosts
# --------------------------------------------------------------------- #


def test_ledger_accumulates_by_category():
    led = RoundLedger()
    led.charge("a", 2)
    led.charge("b", 3)
    led.charge("a", 1)
    assert led.total == 6
    assert led.by_category["a"] == 3
    assert led.by_category["b"] == 3
    snap = led.snapshot()
    assert snap["total"] == 6


def test_ledger_rejects_negative():
    led = RoundLedger()
    with pytest.raises(ValueError):
        led.charge("x", -1)


def test_round_costs_gather_rhop_logarithmic():
    c = RoundCosts()
    assert c.gather_rhop(1) == c.gather_2hop
    assert c.gather_rhop(2) == c.gather_2hop
    assert c.gather_rhop(8) == 3 * c.gather_2hop
    assert c.gather_rhop(9) == 4 * c.gather_2hop


def test_round_costs_seed_fix_chunks():
    c = RoundCosts()
    # 40-bit seed fixed log2(S)=10 bits at a time -> 4 chunks x 2 rounds.
    assert c.seed_fix(40, 10) == 4 * (c.aggregate + c.broadcast)
    assert c.seed_fix(1, 10) == 1 * (c.aggregate + c.broadcast)


def test_convenience_chargers():
    led = RoundLedger()
    led.charge_sort()
    led.charge_prefix_sum()
    led.charge_gather_2hop()
    led.charge_seed_fix(20, 10)
    assert led.total == 1 + 1 + 2 + 2 * 2


# --------------------------------------------------------------------- #
# SpaceTracker
# --------------------------------------------------------------------- #


def test_space_tracker_highwater():
    t = SpaceTracker(limit_per_machine=100)
    t.observe_loads([10, 50, 30])
    t.observe_loads([20, 20])
    assert t.max_machine_words == 50
    assert t.max_total_words == 90


def test_space_tracker_raises_per_machine():
    t = SpaceTracker(limit_per_machine=40)
    with pytest.raises(SpaceExceededError) as ei:
        t.observe_loads([10, 41], "test phase")
    assert ei.value.machine == 1
    assert "test phase" in str(ei.value)


def test_space_tracker_raises_total():
    t = SpaceTracker(limit_per_machine=100, limit_total=50)
    with pytest.raises(SpaceExceededError):
        t.observe_loads([30, 30])


def test_space_tracker_numpy_input():
    t = SpaceTracker(limit_per_machine=10)
    t.observe_loads(np.array([1, 2, 3]))
    assert t.max_machine_words == 3


def test_observe_single():
    t = SpaceTracker(limit_per_machine=10)
    t.observe_single(0, 7)
    assert t.max_machine_words == 7
    with pytest.raises(SpaceExceededError):
        t.observe_single(0, 11)


# --------------------------------------------------------------------- #
# MPCContext
# --------------------------------------------------------------------- #


def test_context_space_formula():
    ctx = MPCContext(n=256, m=1000, eps=0.5, space_factor=32.0)
    assert ctx.S == 32 * 16
    assert ctx.num_machines >= (256 + 2000) // ctx.S


def test_context_rejects_bad_eps():
    with pytest.raises(ValueError):
        MPCContext(n=10, m=5, eps=0.0)


def test_context_chunk_bits():
    ctx = MPCContext(n=1024, m=100, eps=0.5)
    assert ctx.chunk_bits == int(np.log2(ctx.S))


def test_context_charges_flow_to_ledger():
    ctx = MPCContext(n=100, m=50)
    ctx.charge_sort("s")
    ctx.charge_seed_fix(64, "f")
    assert ctx.rounds > 1
    assert ctx.ledger.by_category["s"] == 1


def test_context_total_budget_scales():
    small = MPCContext(n=100, m=100).total_space_budget
    big = MPCContext(n=1000, m=100).total_space_budget
    assert big > small


# --------------------------------------------------------------------- #
# chunk_items_by_group
# --------------------------------------------------------------------- #


def test_chunking_basic():
    groups = np.array([0, 0, 0, 0, 0, 1, 1, 2])
    g = chunk_items_by_group(groups, chunk_size=2)
    # group 0 -> 3 machines (2,2,1), group 1 -> 1 machine (2), group 2 -> 1.
    assert g.num_machines == 5
    assert g.loads.tolist() == [2, 2, 1, 2, 1]
    assert g.group_of_machine.tolist() == [0, 0, 0, 1, 2]


def test_chunking_items_stay_in_their_group():
    groups = np.array([3, 1, 3, 1, 3, 7])
    g = chunk_items_by_group(groups, chunk_size=2)
    for item, machine in enumerate(g.machine_of_item.tolist()):
        assert g.group_of_machine[machine] == groups[item]


def test_chunking_at_most_one_remainder_per_group():
    """The paper's 'n^{4 delta} items on all but at most one machine'."""
    rng = np.random.default_rng(0)
    groups = rng.integers(0, 20, size=500)
    g = chunk_items_by_group(groups, chunk_size=7)
    for grp in np.unique(groups):
        loads = g.loads[g.machines_of_group(grp)]
        assert (loads < 7).sum() <= 1
        assert loads.max() <= 7


def test_chunking_empty():
    g = chunk_items_by_group(np.array([], dtype=np.int64), 5)
    assert g.num_machines == 0
    assert g.num_items == 0


def test_chunking_rejects_bad_chunk():
    with pytest.raises(ValueError):
        chunk_items_by_group(np.array([1, 2]), 0)


@given(
    st.lists(st.integers(0, 9), min_size=1, max_size=200),
    st.integers(1, 10),
)
def test_chunking_properties_hypothesis(group_list, chunk):
    groups = np.asarray(group_list, dtype=np.int64)
    g = chunk_items_by_group(groups, chunk)
    # loads sum to item count; every load in [1, chunk]
    assert int(g.loads.sum()) == groups.size
    assert g.loads.min() >= 1 and g.loads.max() <= chunk
    # machine count = sum of per-group ceil(count / chunk)
    want = sum(
        -(-int((groups == grp).sum()) // chunk) for grp in np.unique(groups)
    )
    assert g.num_machines == want
