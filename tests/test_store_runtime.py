"""Store-backed dispatch through the batch runtime.

Three contracts:

* **Parity** — a store-backed batch produces identical results (fingerprint,
  solution size, verification) to the historical pickled-npz path, across
  the whole registry matrix at small n.
* **Dispatch volume** — store keys instead of buffers: per-job shipped bytes
  drop by far more than the 2x the bench gate asserts, and the counters
  (``bytes_shipped``, ``store_hits`` / ``store_misses``) land in
  ``BatchStats.to_payload``.
* **Robustness** — a corrupt or missing shard degrades to regenerate-and-
  warn (``store_fallback`` in ``JobResult.meta``, ``store_fallbacks``
  counter), never a job failure.
"""

from __future__ import annotations

import os

import pytest

from repro.graphs import GraphStore
from repro.obs.metrics import METRICS
from repro.runtime import (
    GraphSource,
    JobSpec,
    ResolvedSource,
    Scheduler,
    build_suite,
    get_suite,
)
from repro.runtime.worker import run_job


def _small_specs() -> list[JobSpec]:
    specs = []
    for seed in (0, 1):
        src = GraphSource.generator("gnp_random_graph", n=120, p=0.05, seed=seed)
        for problem in ("mis", "matching"):
            specs.append(JobSpec(problem, src, tag=f"{problem}-s{seed}"))
    return specs


def _assert_batches_match(a, b):
    assert a.all_ok, [r.error_message for r in a.failures()]
    assert b.all_ok, [r.error_message for r in b.failures()]
    for ra, rb in zip(a.results, b.results):
        assert ra.fingerprint == rb.fingerprint, ra.spec.tag
        assert ra.solution_size == rb.solution_size, ra.spec.tag
        assert ra.rounds == rb.rounds, ra.spec.tag
        assert ra.verified == rb.verified, ra.spec.tag


class TestStoreBackedParity:
    def test_same_results_as_npz_path(self, tmp_path):
        specs = _small_specs()
        base = Scheduler(workers=2).run(specs)
        store = Scheduler(workers=2, store=GraphStore(tmp_path)).run(specs)
        _assert_batches_match(base, store)

    def test_registry_matrix_parity(self, tmp_path):
        # Every (problem, model) entry — including the engine rows, whose
        # arc plane is derived worker-side on the store path — must agree
        # with the npz path bit for bit.
        specs = build_suite("registry-matrix")
        base = Scheduler(workers=2).run(specs)
        store = Scheduler(workers=2, store=GraphStore(tmp_path)).run(specs)
        _assert_batches_match(base, store)

    def test_non_streaming_source_goes_through_store(self, tmp_path):
        # grid_graph has no streaming variant: resolved in-memory, put into
        # the store, still dispatched by key.
        spec = JobSpec("mis", GraphSource.generator("grid_graph", rows=8, cols=8))
        store = GraphStore(tmp_path)
        batch = Scheduler(store=store).run([spec])
        assert batch.all_ok
        assert batch.results[0].fingerprint in store


class TestDispatchVolume:
    def test_store_ships_fraction_of_npz_bytes(self, tmp_path):
        # 8 jobs on one source: the npz path ships the buffer 8 times, the
        # store path ships 8 key strings.
        src = GraphSource.generator("gnp_random_graph", n=400, p=0.03, seed=5)
        specs = [
            JobSpec("mis", src, eps=0.5 + i / 100, tag=f"j{i}") for i in range(8)
        ]
        base = Scheduler().run(specs)
        store = Scheduler(store=GraphStore(tmp_path)).run(specs)
        _assert_batches_match(base, store)
        assert base.stats.bytes_shipped > 8 * 1024
        assert store.stats.bytes_shipped * 2 < base.stats.bytes_shipped
        payload = store.stats.to_payload()
        assert payload["bytes_shipped"] == store.stats.bytes_shipped
        assert payload["store_misses"] == 1
        assert payload["store_hits"] == 0

    def test_second_batch_hits_store(self, tmp_path):
        specs = _small_specs()
        before = METRICS.counters_snapshot()
        Scheduler(store=GraphStore(tmp_path)).run(specs)
        second = Scheduler(store=GraphStore(tmp_path)).run(specs)
        delta = METRICS.delta(before, METRICS.counters_snapshot())
        assert second.stats.store_hits == 2  # two distinct sources
        assert second.stats.store_misses == 0
        assert delta.get("store.shard_hits", 0) >= 2
        assert delta.get("store.shard_misses", 0) >= 2
        assert delta.get("runtime.bytes_shipped", 0) > 0

    def test_env_var_opt_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_STORE", str(tmp_path))
        sched = Scheduler()
        assert sched.store is not None
        assert os.fspath(sched.store.root) == str(tmp_path)
        monkeypatch.delenv("REPRO_GRAPH_STORE")
        assert Scheduler().store is None


class TestShardFallback:
    def _corrupt(self, store: GraphStore, fingerprint: str, how: str) -> None:
        victim = store._object_dir(fingerprint) / "indices.npy"
        if how == "truncate":
            data = victim.read_bytes()
            victim.write_bytes(data[: len(data) // 2])
        else:
            victim.unlink()

    @pytest.mark.parametrize("how", ["truncate", "delete"])
    def test_corrupt_shard_regenerates_with_warning(self, tmp_path, how):
        spec = _small_specs()[0]
        store = GraphStore(tmp_path)
        first = Scheduler(store=store).run([spec])
        assert first.all_ok
        fp = first.results[0].fingerprint
        self._corrupt(store, fp, how)
        before = METRICS.counters_snapshot()
        batch = Scheduler(store=GraphStore(tmp_path)).run([spec])
        r = batch.results[0]
        assert r.ok, r.error_message  # degraded, not failed
        assert r.solution_size == first.results[0].solution_size
        warn = r.meta["store_fallback"]
        assert warn["fingerprint"] == fp
        assert warn["error_type"] == "StoreCorruptError"
        assert warn["error_message"]
        assert batch.stats.store_fallbacks == 1
        assert batch.stats.to_payload()["store_fallbacks"] == 1
        delta = METRICS.delta(before, METRICS.counters_snapshot())
        assert delta.get("store.fallbacks", 0) >= 1

    def test_missing_object_entirely(self, tmp_path):
        # Worker pointed at a store that lost the whole object directory.
        spec = _small_specs()[0]
        store = GraphStore(tmp_path)
        info = Scheduler(store=store).run([spec])
        fp = info.results[0].fingerprint
        import shutil

        shutil.rmtree(store._object_dir(fp))
        payload = {
            "spec": spec.to_dict(),
            "graph_store": os.fspath(store.root),
            "fingerprint": fp,
            "timeout": None,
            "trace": False,
        }
        out = run_job(payload)
        assert out["status"] == "ok"
        assert out["meta"]["store_fallback"]["error_type"] == "StoreMissError"

    def test_fallback_meta_merges_with_trace_meta(self, tmp_path):
        # Tracing sets meta["trace_spans"]; a fallback must merge, not
        # clobber.
        spec = _small_specs()[0]
        store = GraphStore(tmp_path)
        first = Scheduler(store=store).run([spec])
        self._corrupt(store, first.results[0].fingerprint, "truncate")
        batch = Scheduler(store=GraphStore(tmp_path), trace=True).run([spec])
        r = batch.results[0]
        assert r.ok
        assert "store_fallback" in r.meta and "trace_spans" in r.meta


class TestLargeSweepSuite:
    def test_registered_and_store_ready(self):
        suite = get_suite("large-sweep")
        specs = suite.build()
        assert len(specs) == 3
        from repro.graphs.streaming import STREAMING_GENERATORS

        for spec in specs:
            assert spec.source.kind == "generator"
            assert spec.source.name in STREAMING_GENERATORS
        assert max(dict(s.source.args)["n"] for s in specs) == 1_000_000

    def test_resolved_source_payload_bytes(self):
        npz = ResolvedSource(fingerprint="f" * 64, n=10, m=5, npz=b"x" * 100)
        key = ResolvedSource(fingerprint="f" * 64, n=10, m=5, store_root="/s")
        assert npz.payload_bytes == 100
        assert key.payload_bytes == 64 + 2
