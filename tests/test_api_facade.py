"""The ``repro.api`` facade: registry completeness, envelope round trips,
execution-config threading, and shim-vs-facade parity.

The parity tests are the contract that makes the facade safe to adopt: for
every registry entry, ``solve()`` must return the *bit-identical* solution,
round count and word count that the historical entry point produces for the
same input.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    MODELS,
    PROBLEMS,
    REGISTRY,
    ExecutionConfig,
    SolveRequest,
    SolveResult,
    solve,
)
from repro.cclique.mis_cc import cc_maximal_matching, cc_mis
from repro.congest.mis_congest import congest_maximal_matching, congest_mis
from repro.core.api import maximal_independent_set, maximal_matching
from repro.core.params import Params
from repro.graphs import gnp_random_graph
from repro.models.ledger import ModelSnapshot
from repro.runtime import JobResult, runtime_entry, runtime_problem_name


def small_graph(seed: int = 3, n: int = 60, p: float = 0.1):
    return gnp_random_graph(n, p, seed=seed)


# ---------------------------------------------------------------------- #
# Registry surface
# ---------------------------------------------------------------------- #


def test_registry_has_the_expected_matrix():
    keys = {(e.problem, e.model) for e in REGISTRY.entries()}
    assert ("mis", "simulated") in keys
    assert ("mis", "mpc-engine") in keys
    assert ("mis", "cclique") in keys
    assert ("mis", "congest") in keys
    assert ("matching", "cclique") in keys
    assert ("matching", "congest") in keys
    for problem in ("vc", "coloring", "ruling2"):
        assert (problem, "simulated") in keys
    assert REGISTRY.models("mis") == sorted(MODELS)
    assert set(REGISTRY.problems()) == set(PROBLEMS)


def test_registry_get_unknown_raises_with_catalog():
    with pytest.raises(KeyError, match="known entries"):
        REGISTRY.get("mis", "quantum")


def test_request_validation():
    with pytest.raises(ValueError, match="unknown problem"):
        SolveRequest(problem="tsp")
    with pytest.raises(ValueError, match="unknown model"):
        SolveRequest(problem="mis", model="pram")
    with pytest.raises(ValueError, match="needs a graph"):
        solve(SolveRequest(problem="mis"))


def test_registry_completeness_every_entry_solves_and_round_trips():
    """Acceptance: every (problem, model) entry solves a small graph and the
    SolveResult survives the runtime JSON payload round trip."""
    g = small_graph()
    for entry in REGISTRY.entries():
        res = solve(
            SolveRequest(problem=entry.problem, model=entry.model, graph=g)
        )
        assert isinstance(res, SolveResult)
        assert res.verified, (entry.problem, entry.model)
        assert res.rounds > 0
        if res.solution_kind == "pairs":
            assert res.solution.ndim == 2 and res.solution.shape[1] == 2
            assert res.solution_size == res.solution.shape[0]
        elif res.solution_kind == "nodes":
            assert res.solution_size == res.solution.size
        else:  # colors: one entry per node, size counts distinct colors
            assert res.solution.size == g.n
            assert res.solution_size == len(set(res.solution.tolist()))
        if entry.capabilities.snapshot:
            assert isinstance(res.snapshot, ModelSnapshot)
            assert res.snapshot.rounds == res.rounds
        # Runtime JSON payload round trip (the cache's persistence format).
        meta, arrays = res.to_payload()
        meta = json.loads(json.dumps(meta))  # must be JSON-native
        again = SolveResult.from_payload(meta, arrays)
        assert np.array_equal(again.solution, res.solution)
        for field_name in (
            "problem", "model", "solution_kind", "solution_size", "verified",
            "rounds", "iterations", "words_moved", "max_machine_words",
            "space_limit", "path",
        ):
            assert getattr(again, field_name) == getattr(res, field_name), field_name
        if res.snapshot is not None:
            assert again.snapshot == res.snapshot


def test_runtime_names_cover_the_registry_bijectively():
    seen = set()
    for entry in REGISTRY.entries():
        name = runtime_problem_name(entry.problem, entry.model)
        assert runtime_entry(name) == (entry.problem, entry.model)
        seen.add(name)
    assert len(seen) == len(REGISTRY)


def test_runtime_entry_prefix_collisions_resolve_via_registry():
    """A simulated problem named like a model-prefixed job resolves to
    itself; a name valid under both readings is rejected, not guessed."""
    from repro.api import SolverEntry

    noop = SolverEntry(problem="cc_greedy", model="simulated", fn=lambda *a: None)
    REGISTRY.register(noop)
    try:
        assert runtime_entry("cc_greedy") == ("cc_greedy", "simulated")
        assert runtime_entry("cc_mis") == ("mis", "cclique")
        REGISTRY.register(
            SolverEntry(problem="greedy", model="cclique", fn=lambda *a: None)
        )
        with pytest.raises(ValueError, match="ambiguous runtime problem"):
            runtime_entry("cc_greedy")
    finally:
        REGISTRY._entries.pop(("cc_greedy", "simulated"), None)
        REGISTRY._entries.pop(("greedy", "cclique"), None)


# ---------------------------------------------------------------------- #
# Shim-vs-facade parity (hypothesis)
# ---------------------------------------------------------------------- #


graph_params = st.tuples(
    st.integers(min_value=12, max_value=70),  # n
    st.integers(min_value=0, max_value=6),  # seed
)


@settings(max_examples=8, deadline=None)
@given(graph_params)
def test_parity_mis_cclique(gp):
    n, seed = gp
    g = gnp_random_graph(n, 0.12, seed=seed)
    legacy = cc_mis(g)
    res = solve(SolveRequest(problem="mis", model="cclique", graph=g))
    assert np.array_equal(res.solution, legacy.solution)
    assert res.rounds == legacy.rounds
    assert res.iterations == legacy.phases
    assert res.words_moved == legacy.snapshot.words_moved
    assert res.snapshot == legacy.snapshot


@settings(max_examples=8, deadline=None)
@given(graph_params)
def test_parity_matching_cclique(gp):
    n, seed = gp
    g = gnp_random_graph(n, 0.12, seed=seed)
    legacy = cc_maximal_matching(g)
    res = solve(SolveRequest(problem="matching", model="cclique", graph=g))
    assert np.array_equal(res.solution, legacy.solution)
    assert res.rounds == legacy.rounds
    assert res.words_moved == legacy.snapshot.words_moved


@settings(max_examples=6, deadline=None)
@given(graph_params)
def test_parity_mis_congest(gp):
    n, seed = gp
    g = gnp_random_graph(n, 0.1, seed=seed)
    legacy = congest_mis(g)
    res = solve(SolveRequest(problem="mis", model="congest", graph=g))
    assert np.array_equal(res.solution, legacy.independent_set)
    assert res.rounds == legacy.rounds
    assert res.words_moved == legacy.snapshot.words_moved
    assert res.certificate["bfs_depth"] == legacy.bfs_depth


@settings(max_examples=6, deadline=None)
@given(graph_params)
def test_parity_matching_congest(gp):
    n, seed = gp
    g = gnp_random_graph(n, 0.1, seed=seed)
    legacy = congest_maximal_matching(g)
    res = solve(SolveRequest(problem="matching", model="congest", graph=g))
    if g.m:
        eids = legacy.independent_set
        pairs = np.stack([g.edges_u[eids], g.edges_v[eids]], axis=1)
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
    assert np.array_equal(res.solution, pairs)
    assert res.rounds == legacy.rounds


@settings(max_examples=6, deadline=None)
@given(graph_params)
def test_parity_mis_simulated(gp):
    n, seed = gp
    g = gnp_random_graph(n, 0.1, seed=seed)
    legacy = maximal_independent_set(g)
    res = solve(SolveRequest(problem="mis", model="simulated", graph=g))
    assert np.array_equal(res.solution, legacy.independent_set)
    assert res.rounds == legacy.rounds
    assert res.iterations == legacy.iterations
    assert res.words_moved == legacy.words_moved


@settings(max_examples=4, deadline=None)
@given(graph_params)
def test_parity_matching_simulated_forced_paths(gp):
    n, seed = gp
    g = gnp_random_graph(n, 0.1, seed=seed)
    for force in (None, "general", "lowdeg"):
        legacy = maximal_matching(g, force=force)
        res = solve(
            SolveRequest(problem="matching", model="simulated", graph=g, force=force)
        )
        assert np.array_equal(res.solution, legacy.pairs)
        assert res.rounds == legacy.rounds


def test_parity_mis_engine():
    from repro.api.solvers import engine_space_plan
    from repro.mpc.distributed_luby import distributed_luby_mis

    g = small_graph(seed=5, n=80, p=0.06)
    machines, space = engine_space_plan(g, Params())
    mis, rounds, phases = distributed_luby_mis(g, machines, space)
    res = solve(SolveRequest(problem="mis", model="mpc-engine", graph=g))
    assert np.array_equal(res.solution, mis)
    assert res.rounds == rounds
    assert res.iterations == phases
    assert res.space_limit == space
    # Satellite: the engine's ModelSnapshot is exposed through the envelope
    # while the public (mis, rounds, phases) tuple stays unchanged.
    assert isinstance(res.snapshot, ModelSnapshot)
    assert res.snapshot.model == "mpc-engine"
    assert res.snapshot.rounds == rounds
    assert res.words_moved == res.snapshot.words_moved > 0


# ---------------------------------------------------------------------- #
# ExecutionConfig
# ---------------------------------------------------------------------- #


def test_execution_config_validation_and_round_trip():
    cfg = ExecutionConfig(kernel_backend="csr", seed_chunk=32)
    assert ExecutionConfig.from_dict(cfg.to_dict()) == cfg
    with pytest.raises(ValueError, match="kernel_backend"):
        ExecutionConfig(kernel_backend="gpu")
    with pytest.raises(ValueError, match="seed_chunk"):
        ExecutionConfig(seed_chunk=0)
    with pytest.raises(ValueError, match="seed_scan_workers"):
        ExecutionConfig(seed_scan_workers=-1)


def test_execution_config_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_SEED_BACKEND", "scalar")
    monkeypatch.setenv("REPRO_SEED_CHUNK", "64")
    monkeypatch.setenv("REPRO_CONGEST_PIPELINE_SEED_FIX", "1")
    env = ExecutionConfig.from_env()
    assert env.seed_backend == "scalar"
    assert env.seed_chunk == 64
    assert env.congest_pipeline_seed_fix is True
    # explicit wins over env in resolved()
    cfg = ExecutionConfig(seed_backend="batched").resolved()
    assert cfg.seed_backend == "batched"
    assert cfg.seed_chunk == 64


def test_execution_config_threads_into_params():
    cfg = ExecutionConfig(
        kernel_backend="legacy",
        seed_backend="scalar",
        engine_backend="legacy",
        seed_chunk=16,
        seed_scan_workers=2,
        congest_pipeline_seed_fix=True,
    )
    p = cfg.apply(Params())
    assert p.kernel_backend == "legacy"
    assert p.seed_backend == "scalar"
    assert p.engine_backend == "legacy"
    assert p.seed_chunk == 16
    assert p.seed_scan_workers == 2
    assert p.congest_pipeline_seed_fix is True
    assert ExecutionConfig.from_params(p) == cfg
    # an empty config is the identity
    assert ExecutionConfig().apply(p) is p


def test_solve_with_backend_overrides_is_bit_identical():
    g = small_graph(seed=7)
    base = solve(SolveRequest(problem="mis", model="simulated", graph=g))
    for cfg in (
        ExecutionConfig(kernel_backend="legacy"),
        ExecutionConfig(seed_backend="scalar"),
    ):
        res = solve(
            SolveRequest(problem="mis", model="simulated", graph=g, config=cfg)
        )
        assert np.array_equal(res.solution, base.solution)
        assert res.rounds == base.rounds


def test_seed_backend_config_reaches_cclique_and_congest(monkeypatch):
    """The seed knobs must reach every model's scan, not just simulated.

    Proof by observation: pin the scalar backend through ExecutionConfig
    and count select_seed_batch calls seeing backend="scalar"."""
    import repro.derand.strategies as strategies

    seen: list[str | None] = []
    real = strategies.select_seed_batch

    def spy(*args, **kwargs):
        seen.append(kwargs.get("backend"))
        return real(*args, **kwargs)

    g = small_graph(seed=9, n=40, p=0.15)
    cfg = ExecutionConfig(seed_backend="scalar")
    for module in ("repro.cclique.mis_cc", "repro.congest.mis_congest"):
        import importlib

        monkeypatch.setattr(
            importlib.import_module(module), "select_seed_batch", spy
        )
    for model in ("cclique", "congest"):
        seen.clear()
        solve(SolveRequest(problem="mis", model=model, graph=g, config=cfg))
        assert seen and all(b == "scalar" for b in seen), model


def test_kernel_backend_scope_restores_on_exit():
    from repro.graphs.kernels import kernel_backend_scope, resolve_backend

    assert resolve_backend() == "csr"
    with kernel_backend_scope("legacy"):
        assert resolve_backend() == "legacy"
        with kernel_backend_scope(None):  # no-op scope nests
            assert resolve_backend() == "legacy"
    assert resolve_backend() == "csr"
    with pytest.raises(ValueError, match="unknown kernel backend"):
        with kernel_backend_scope("gpu"):
            pass  # pragma: no cover


# ---------------------------------------------------------------------- #
# Words-moved wiring (ROADMAP satellite)
# ---------------------------------------------------------------------- #


def test_mpc_context_words_moved_positive_for_both_paths():
    g = small_graph(seed=2, n=70, p=0.1)
    for force in ("general", "lowdeg"):
        res = solve(
            SolveRequest(problem="mis", model="simulated", graph=g, force=force)
        )
        assert res.words_moved > 0, force
        assert res.snapshot.words_moved == res.words_moved
        assert res.raw.words_moved == res.words_moved


def test_cross_model_report_shows_mpc_words(capsys):
    from repro.analysis import cross_model_report
    from repro.models import cross_model_run

    g = small_graph(seed=4, n=80, p=0.08)
    run = cross_model_run(g, "mis")
    mpc = run.snapshot_for("mpc")
    assert mpc.words_moved > 0
    text = cross_model_report(run)
    row = next(line for line in text.splitlines() if line.strip().startswith("mpc"))
    assert str(mpc.words_moved) in row


def test_cross_model_engine_row_opt_in():
    from repro.models import cross_model_run

    g = small_graph(seed=4, n=60, p=0.08)
    run = cross_model_run(g, "mis", include_engine=True)
    assert {s.model for s in run.snapshots} == {
        "mpc", "congested-clique", "congest", "mpc-engine"
    }
    assert run.all_verified
    assert run.snapshot_for("mpc-engine").words_moved > 0


# ---------------------------------------------------------------------- #
# CONGEST pipelined seed fix (ablation satellite)
# ---------------------------------------------------------------------- #


def test_congest_pipeline_seed_fix_same_mis_fewer_rounds():
    g = small_graph(seed=6, n=70, p=0.08)
    base = solve(SolveRequest(problem="mis", model="congest", graph=g))
    piped = solve(
        SolveRequest(
            problem="mis",
            model="congest",
            graph=g,
            config=ExecutionConfig(congest_pipeline_seed_fix=True),
        )
    )
    # Identical deterministic output; only the round bill changes.
    assert np.array_equal(piped.solution, base.solution)
    assert piped.rounds < base.rounds
    assert piped.words_moved == base.words_moved  # same votes move
    assert piped.snapshot.detail["pipeline_seed_fix"] is True
    assert base.snapshot.detail["pipeline_seed_fix"] is False


def test_congest_pipeline_charge_formula():
    from repro.congest.model import CongestContext

    g = small_graph(seed=8, n=40, p=0.15)
    seq = CongestContext(g)
    pipe = CongestContext(g, pipeline_seed_fix=True)
    bits = 10
    seq.charge_seed_fix(bits)
    pipe.charge_seed_fix(bits)
    depth = max(1, seq.depth)
    assert seq.rounds == 2 * depth * bits
    assert pipe.rounds == 2 * depth + 2 * (bits - 1)
    assert seq.words_moved == pipe.words_moved == 2 * g.n * bits


# ---------------------------------------------------------------------- #
# Facade through the runtime (worker dispatch is registry-driven)
# ---------------------------------------------------------------------- #


def test_new_registry_problems_are_batch_runnable():
    """cc_matching / congest_matching exist purely because the registry
    enumerates them — no worker or spec change was needed."""
    from repro.runtime import GraphSource, JobSpec, Scheduler

    src = GraphSource.generator("gnp_random_graph", n=50, p=0.1, seed=3)
    specs = [JobSpec("cc_matching", src), JobSpec("congest_matching", src)]
    batch = Scheduler(workers=1).run(specs)
    assert batch.all_ok
    assert all(r.verified for r in batch.results)
    assert batch.results[0].path == "congested-clique"
    assert batch.results[1].path == "congest"


def test_registry_matrix_suite_covers_every_entry():
    from repro.runtime import build_suite

    specs = build_suite("registry-matrix")
    assert len(specs) == len(REGISTRY)
    assert {runtime_entry(s.problem) for s in specs} == {
        (e.problem, e.model) for e in REGISTRY.entries()
    }


def test_register_new_problem_is_instantly_batch_runnable():
    """The registry axes are open: a brand-new problem key registered once
    is solvable through the facade and runnable through the runtime with no
    table edits anywhere."""
    from repro.api import SolverEntry
    from repro.api.registry import SolverRegistry
    from repro.runtime import GraphSource, JobSpec, Scheduler

    # A scratch registry accepts arbitrary axes.
    scratch = SolverRegistry()
    scratch.register(SolverEntry(problem="spanner", model="simulated", fn=lambda *a: None))
    assert ("spanner", "simulated") in scratch
    with pytest.raises(ValueError, match="non-empty"):
        scratch.register(SolverEntry(problem="", model="simulated", fn=lambda *a: None))

    # End to end on the live registry: register, solve, batch, deregister.
    def _solve_iso(graph, request, params):
        iso = np.nonzero(graph.degrees() == 0)[0].astype(np.int64)
        return SolveResult(
            problem="isolated",
            model="simulated",
            solution=iso,
            solution_kind="nodes",
            solution_size=int(iso.size),
            verified=True,
            certificate={"verifier": "degrees==0", "ok": True},
            rounds=1,
            iterations=1,
            words_moved=graph.n,
            max_machine_words=0,
            space_limit=0,
        )

    from repro.api import REGISTRY as live

    entry = SolverEntry(problem="isolated", model="simulated", fn=_solve_iso)
    live.register(entry)
    try:
        g = small_graph(seed=11, n=30, p=0.05)
        res = solve(SolveRequest(problem="isolated", graph=g))
        assert res.rounds == 1
        # Late-registered problems pass JobSpec validation and run.
        spec = JobSpec(
            "isolated", GraphSource.generator("gnp_random_graph", n=30, p=0.05, seed=11)
        )
        batch = Scheduler(workers=1).run([spec])
        assert batch.all_ok
    finally:
        live._entries.pop(("isolated", "simulated"), None)


def test_cmd_solve_unknown_problem_is_friendly(capsys):
    from repro.__main__ import main

    rc = main(["solve", "--problem", "bogus", "--n", "20", "--p", "0.1"])
    assert rc == 2
    assert "unknown problem" in capsys.readouterr().err


def test_cross_model_run_respects_params_scan_trials():
    """Regression: cross_model_run used to clobber params.max_scan_trials
    back to 512 unconditionally."""
    from unittest.mock import patch

    from repro.models import cross_model_run

    g = small_graph(seed=12, n=40, p=0.1)
    captured = []
    import repro.api as api_mod

    real = api_mod.solve

    def spy(request, **kw):
        captured.append(request.params.max_scan_trials)
        return real(request, **kw)

    with patch.object(api_mod, "solve", side_effect=spy):
        cross_model_run(g, "mis", params=Params(max_scan_trials=64))
    assert captured and all(v == 64 for v in captured)


def test_worker_payload_round_trips_jobresult():
    from repro.graphs.io import graph_to_npz_bytes
    from repro.runtime import JobSpec, GraphSource
    from repro.runtime.worker import run_job

    spec = JobSpec(
        "cc_mis", GraphSource.generator("gnp_random_graph", n=40, p=0.1, seed=2)
    )
    g = spec.source.resolve()
    out = run_job(
        {"spec": spec.to_dict(), "graph_npz": graph_to_npz_bytes(g), "timeout": None}
    )
    assert out["status"] == "ok"
    assert out["result_meta"]["kind"] == "solve_result"
    res = SolveResult.from_payload(out["result_meta"], out["arrays"])
    legacy = cc_mis(g)
    assert np.array_equal(res.solution, legacy.solution)
    assert res.rounds == legacy.rounds
    # and the flattened fields feed a JSON-round-trippable JobResult
    doc = {
        k: v
        for k, v in out.items()
        if k not in ("result_meta", "arrays")
    }
    jr = JobResult(spec=spec, **{k: doc[k] for k in (
        "status", "wall_time", "worker_pid", "fingerprint", "graph_n",
        "graph_m", "solution_size", "iterations", "rounds",
        "max_machine_words", "space_limit", "verified", "path",
    )})
    assert JobResult.from_json(jr.to_json()) == jr
