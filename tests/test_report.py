"""Tests for the run-report renderer and its CLI hook."""


from repro.__main__ import main
from repro.analysis import run_report
from repro.core import deterministic_maximal_matching, deterministic_mis
from repro.core.lowdeg import lowdeg_mis
from repro.graphs import gnp_random_graph, grid_graph


def test_mis_report_contains_sections():
    g = gnp_random_graph(100, 0.1, seed=1)
    res = deterministic_mis(g)
    rpt = run_report(res)
    assert "deterministic MIS run report" in rpt
    assert "per-iteration progress" in rpt
    assert "round ledger" in rpt
    assert f"solution size: {len(res.independent_set)}" in rpt


def test_matching_report_has_stage_table_when_dense():
    g = gnp_random_graph(120, 0.25, seed=2)
    res = deterministic_maximal_matching(g)
    rpt = run_report(res, title="custom title")
    assert "# custom title" in rpt
    assert "sparsification stages" in rpt


def test_lowdeg_report_mentions_stage_compression():
    g = grid_graph(9, 9)
    res = lowdeg_mis(g)
    rpt = run_report(res)
    assert "Section-5 run" in rpt
    assert "colors" in rpt


def test_report_deterministic():
    g = gnp_random_graph(80, 0.1, seed=3)
    a = run_report(deterministic_mis(g))
    b = run_report(deterministic_mis(g))
    assert a == b


def test_report_numbers_match_records():
    g = gnp_random_graph(80, 0.1, seed=4)
    res = deterministic_mis(g)
    rpt = run_report(res)
    assert f"charged MPC rounds: {res.rounds}" in rpt
    for rec in res.records:
        assert str(rec.edges_before) in rpt


def test_cli_report_flag(tmp_path, capsys):
    out = tmp_path / "r.md"
    rc = main(["demo", "--n", "60", "--p", "0.1", "--algo", "mis",
               "--report", str(out)])
    assert rc == 0
    assert out.exists()
    assert "run report" in out.read_text() or "MIS on" in out.read_text()
