"""Tests for graph generators (shape properties + determinism by seed)."""

import numpy as np
import pytest

from repro.graphs import (
    bounded_degree_graph,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    power_law_graph,
    random_bipartite_graph,
    random_regular_graph,
    random_tree,
    star_graph,
)


def test_path_graph():
    g = path_graph(5)
    assert g.m == 4
    assert g.max_degree() == 2
    assert g.degree(0) == 1 and g.degree(4) == 1


def test_path_trivial():
    assert path_graph(1).m == 0
    assert path_graph(0).n == 0


def test_cycle_graph():
    g = cycle_graph(6)
    assert g.m == 6
    assert np.all(g.degrees() == 2)


def test_cycle_small_degenerates_to_path():
    assert cycle_graph(2).m == 1


def test_star_graph():
    g = star_graph(7)
    assert g.m == 6
    assert g.degree(0) == 6
    assert all(g.degree(v) == 1 for v in range(1, 7))


def test_complete_graph():
    g = complete_graph(6)
    assert g.m == 15
    assert np.all(g.degrees() == 5)


def test_complete_bipartite():
    g = complete_bipartite_graph(3, 4)
    assert g.n == 7 and g.m == 12
    assert all(g.degree(v) == 4 for v in range(3))
    assert all(g.degree(v) == 3 for v in range(3, 7))


def test_grid_graph():
    g = grid_graph(3, 4)
    assert g.n == 12
    assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
    assert g.max_degree() == 4


def test_hypercube():
    g = hypercube_graph(4)
    assert g.n == 16
    assert np.all(g.degrees() == 4)
    assert g.m == 32


def test_caterpillar():
    g = caterpillar_graph(4, 2)
    assert g.n == 4 + 8
    assert g.m == 3 + 8
    assert g.degree(0) == 3  # one spine neighbour + two legs


def test_empty():
    g = empty_graph(9)
    assert g.n == 9 and g.m == 0


def test_gnp_determinism():
    a = gnp_random_graph(50, 0.2, seed=42)
    b = gnp_random_graph(50, 0.2, seed=42)
    c = gnp_random_graph(50, 0.2, seed=43)
    assert a == b
    assert a != c  # overwhelmingly likely


def test_gnp_extremes():
    assert gnp_random_graph(20, 0.0, seed=1).m == 0
    assert gnp_random_graph(20, 1.0, seed=1).m == 190


def test_gnp_rejects_bad_p():
    with pytest.raises(ValueError):
        gnp_random_graph(10, 1.5, seed=0)


def test_gnp_density_plausible():
    g = gnp_random_graph(200, 0.1, seed=5)
    expected = 0.1 * 199 * 200 / 2
    assert 0.7 * expected < g.m < 1.3 * expected


def test_random_tree_is_tree():
    g = random_tree(40, seed=3)
    assert g.m == 39
    nxg = g.to_networkx()
    import networkx as nx

    assert nx.is_connected(nxg)


def test_random_bipartite_sides():
    g = random_bipartite_graph(10, 15, 0.5, seed=2)
    # No edge within a side.
    for u, v in zip(g.edges_u.tolist(), g.edges_v.tolist()):
        assert (u < 10) != (v < 10)


def test_random_regular_degree_cap():
    g = random_regular_graph(60, 6, seed=4)
    assert g.max_degree() <= 6
    assert g.degrees().mean() > 4  # most stubs survive


def test_random_regular_rejects_odd_product():
    with pytest.raises(ValueError):
        random_regular_graph(5, 3, seed=0)


def test_random_regular_rejects_d_ge_n():
    with pytest.raises(ValueError):
        random_regular_graph(4, 4, seed=0)


def test_bounded_degree_respects_cap():
    g = bounded_degree_graph(150, 5, 0.8, seed=6)
    assert g.max_degree() <= 5


def test_bounded_degree_density():
    g = bounded_degree_graph(200, 4, 0.9, seed=7)
    assert g.m >= 0.5 * 0.9 * 200 * 4 / 2  # roughly achieves the target


def test_power_law_determinism_and_skew():
    a = power_law_graph(150, 2, seed=8)
    b = power_law_graph(150, 2, seed=8)
    assert a == b
    deg = a.degrees()
    # Heavy tail: max degree far above the median.
    assert deg.max() >= 4 * np.median(deg[deg > 0])


def test_power_law_small_n_complete():
    g = power_law_graph(3, 3, seed=1)
    assert g.m == 3  # K3


def test_power_law_rejects_bad_attach():
    with pytest.raises(ValueError):
        power_law_graph(10, 0, seed=1)
