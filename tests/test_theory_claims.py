"""Declared registry cost claims must stay inside the paper's theorems.

``repro.analysis.theory.THEORY_BOUNDS`` states the paper ceiling per
``(problem, model)`` envelope total; :func:`check_claim_dominance` compares
every declared claim asymptotically (``compare_growth`` on the sparse-graph
growth schedule).  This suite is the strict gate: *every* declared total
claim must be covered by a ceiling on file and must not outgrow it — a
registry edit that loosens a claim past the theorem fails here, and a new
entry with claims must ship its bound row.
"""

from __future__ import annotations

import pytest

from repro.analysis.theory import THEORY_BOUNDS, check_claim_dominance
from repro.api import REGISTRY
from repro.obs import symbolic


def test_every_declared_total_claim_has_a_dominating_bound():
    records = check_claim_dominance()
    assert records, "registry declares no total claims? sweep wiring broken"
    uncovered = [r for r in records if r["ok"] is None]
    assert not uncovered, (
        "claims with no theorem ceiling on file (add a THEORY_BOUNDS row): "
        + ", ".join(f"{r['problem']}/{r['model']}:{r['metric']}" for r in uncovered)
    )
    violated = [r for r in records if not r["ok"]]
    assert not violated, (
        "claims that outgrow their paper ceiling: "
        + ", ".join(
            f"{r['problem']}/{r['model']}:{r['metric']} "
            f"(claim {r['claim']} vs bound {r['bound']})"
            for r in violated
        )
    )


def test_bounds_table_keys_exist_in_registry():
    """A THEORY_BOUNDS row for a nonexistent entry is a stale declaration."""
    known = {(e.problem, e.model) for e in REGISTRY.entries()}
    stale = [k for k in THEORY_BOUNDS if k not in known]
    assert not stale, f"THEORY_BOUNDS rows without a registry entry: {stale}"


def test_bounds_parse_in_the_symbolic_vocabulary():
    for key, metrics in THEORY_BOUNDS.items():
        for metric, bound in metrics.items():
            expr = symbolic.parse_expr(bound)  # raises on unknown symbols
            assert symbolic.compare_growth(expr, expr) == "eq", (key, metric)


def test_dominance_detects_a_blown_up_claim():
    """The comparator must actually flag a claim past its ceiling."""
    assert symbolic.compare_growth("n * log(n)", "log(n)") == "gt"
    assert symbolic.compare_growth("log(delta)", "log(delta) + loglog(n)") in (
        "lt",
        "eq",
    )


@pytest.mark.parametrize(
    "slow,fast",
    [("loglog(n)", "log(n)"), ("log(n)", "n"), ("n", "n * log(n)")],
)
def test_dominance_order_sorts_by_growth(slow, fast):
    ordered = symbolic.dominance_order([fast, slow])
    assert str(ordered[0]) == str(symbolic.parse_expr(slow))
