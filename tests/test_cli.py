"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main
from repro.graphs import gnp_random_graph, write_edge_list


def test_demo_mis(capsys):
    rc = main(["demo", "--n", "60", "--p", "0.1", "--algo", "mis"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "MIS on Graph" in out
    assert "verified: True" in out


def test_demo_matching(capsys):
    rc = main(["demo", "--n", "60", "--p", "0.1", "--algo", "matching"])
    assert rc == 0
    assert "|M| =" in capsys.readouterr().out


def test_demo_vc(capsys):
    rc = main(["demo", "--n", "50", "--p", "0.1", "--algo", "vc"])
    assert rc == 0
    assert "2-approx cert" in capsys.readouterr().out


def test_demo_coloring(capsys):
    rc = main(["demo", "--n", "30", "--p", "0.1", "--algo", "coloring"])
    assert rc == 0
    assert "proper: True" in capsys.readouterr().out


def test_file_input_and_output(tmp_path, capsys):
    g = gnp_random_graph(40, 0.15, seed=5)
    inp = tmp_path / "g.edges"
    outp = tmp_path / "mis.txt"
    write_edge_list(g, inp)
    rc = main(["mis", str(inp), "--out", str(outp)])
    assert rc == 0
    ids = [int(line) for line in outp.read_text().split()]
    from repro.verify import verify_mis_nodes

    assert verify_mis_nodes(g, np.asarray(ids))


def test_matching_output_format(tmp_path, capsys):
    g = gnp_random_graph(30, 0.2, seed=6)
    inp = tmp_path / "g.edges"
    outp = tmp_path / "mm.txt"
    write_edge_list(g, inp)
    rc = main(["matching", str(inp), "--out", str(outp)])
    assert rc == 0
    pairs = [tuple(map(int, line.split())) for line in outp.read_text().splitlines()]
    from repro.verify import verify_matching_pairs

    assert verify_matching_pairs(g, np.asarray(pairs).reshape(-1, 2))


def test_force_flag(capsys):
    rc = main(["demo", "--n", "40", "--p", "0.1", "--algo", "mis",
               "--force", "general"])
    assert rc == 0


def test_eps_flag(capsys):
    rc = main(["demo", "--n", "40", "--p", "0.1", "--eps", "0.8"])
    assert rc == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_algo():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["demo", "--algo", "bogus"])
