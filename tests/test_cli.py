"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main
from repro.graphs import gnp_random_graph, write_edge_list


def test_demo_mis(capsys):
    rc = main(["demo", "--n", "60", "--p", "0.1", "--algo", "mis"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "MIS on Graph" in out
    assert "verified: True" in out


def test_demo_matching(capsys):
    rc = main(["demo", "--n", "60", "--p", "0.1", "--algo", "matching"])
    assert rc == 0
    assert "|M| =" in capsys.readouterr().out


def test_demo_vc(capsys):
    rc = main(["demo", "--n", "50", "--p", "0.1", "--algo", "vc"])
    assert rc == 0
    assert "2-approx cert" in capsys.readouterr().out


def test_demo_coloring(capsys):
    rc = main(["demo", "--n", "30", "--p", "0.1", "--algo", "coloring"])
    assert rc == 0
    assert "proper: True" in capsys.readouterr().out


def test_file_input_and_output(tmp_path, capsys):
    g = gnp_random_graph(40, 0.15, seed=5)
    inp = tmp_path / "g.edges"
    outp = tmp_path / "mis.txt"
    write_edge_list(g, inp)
    rc = main(["mis", str(inp), "--out", str(outp)])
    assert rc == 0
    ids = [int(line) for line in outp.read_text().split()]
    from repro.verify import verify_mis_nodes

    assert verify_mis_nodes(g, np.asarray(ids))


def test_matching_output_format(tmp_path, capsys):
    g = gnp_random_graph(30, 0.2, seed=6)
    inp = tmp_path / "g.edges"
    outp = tmp_path / "mm.txt"
    write_edge_list(g, inp)
    rc = main(["matching", str(inp), "--out", str(outp)])
    assert rc == 0
    pairs = [tuple(map(int, line.split())) for line in outp.read_text().splitlines()]
    from repro.verify import verify_matching_pairs

    assert verify_matching_pairs(g, np.asarray(pairs).reshape(-1, 2))


def test_force_flag(capsys):
    rc = main(["demo", "--n", "40", "--p", "0.1", "--algo", "mis",
               "--force", "general"])
    assert rc == 0


def test_eps_flag(capsys):
    rc = main(["demo", "--n", "40", "--p", "0.1", "--eps", "0.8"])
    assert rc == 0


def test_crossmodel_command(tmp_path, capsys):
    out = tmp_path / "xm.md"
    js = tmp_path / "xm.json"
    rc = main(["crossmodel", "--n", "80", "--p", "0.06", "--seed", "2",
               "--out", str(out), "--json", str(js)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "round / communication bill per model" in text
    assert "congested-clique" in text
    assert out.read_text().startswith("# cross-model")
    import json as _json

    doc = _json.loads(js.read_text())
    assert doc["all_verified"] is True
    assert {s["model"] for s in doc["snapshots"]} == {
        "mpc", "congested-clique", "congest"
    }


def test_crossmodel_matching_from_file(tmp_path, capsys):
    g = gnp_random_graph(40, 0.12, seed=3)
    inp = tmp_path / "g.edges"
    write_edge_list(g, inp)
    rc = main(["crossmodel", "--input", str(inp), "--problem", "matching"])
    assert rc == 0
    assert "cross-model matching" in capsys.readouterr().out


def test_batch_list_suites(capsys):
    rc = main(["batch", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scaling-sweep" in out
    assert "throughput-micro" in out


def test_batch_requires_suite(capsys):
    rc = main(["batch"])
    assert rc == 2


def test_batch_runs_suite_and_caches(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    cache_dir = str(tmp_path / "cache")
    json_path = str(tmp_path / "batch.json")
    args = ["batch", "--suite", "throughput-micro", "--workers", "2",
            "--cache-dir", cache_dir]
    rc = main(args + ["--json", json_path])
    assert rc == 0
    out = capsys.readouterr().out
    assert "20/20 ok" in out
    assert "cache hits: 0/20" in out

    import json as _json

    doc = _json.loads((tmp_path / "batch.json").read_text())
    cold_wall = doc["stats"]["wall_time"]
    assert doc["stats"]["ok"] == 20

    # immediate re-run: served from cache, measurably faster
    rc = main(args + ["--json", json_path])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cache hits: 20/20" in out
    doc = _json.loads((tmp_path / "batch.json").read_text())
    assert doc["stats"]["cache_hits"] == 20
    assert doc["stats"]["wall_time"] < cold_wall

    # cache stats / clear round trip
    rc = main(["cache", "stats", "--cache-dir", cache_dir])
    assert rc == 0
    assert "entries: 20" in capsys.readouterr().out
    rc = main(["cache", "clear", "--cache-dir", cache_dir])
    assert rc == 0
    assert "cleared 20" in capsys.readouterr().out


def test_batch_report_and_jsonl_outputs(tmp_path, capsys):
    report = tmp_path / "report.md"
    jsonl = tmp_path / "results.jsonl"
    rc = main(["batch", "--suite", "derived-problems", "--workers", "1",
               "--no-cache", "--out", str(jsonl), "--report", str(report)])
    assert rc == 0
    text = report.read_text()
    assert "per-problem aggregates" in text
    assert "coloring" in text
    assert "ruling2" in text
    from repro.runtime import JobResult
    from repro.runtime.suites import build_suite

    lines = jsonl.read_text().splitlines()
    results = [JobResult.from_json(line) for line in lines]
    assert len(results) == len(build_suite("derived-problems")) == 9
    assert all(r.ok for r in results)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_algo():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["demo", "--algo", "bogus"])
