"""repro.serve: coalescing, micro-batching, backpressure, drain, transports.

The service-logic tests run against a fake scheduler (deterministic, no
process pool) so they can assert scheduler-level facts — "K identical
concurrent requests produced exactly one scheduler job" — without timing
flakiness.  Two end-to-end tests then run the real thing: one over HTTP
against a live ``asyncio.start_server`` socket, one over the stdio
JSON-lines transport in a subprocess.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.runtime.scheduler import BatchResult, BatchStats
from repro.runtime.spec import JobResult, JobSpec
from repro.serve import (
    Coalescer,
    MicroBatcher,
    ProtocolError,
    SolverService,
    coalesce_key,
    parse_solve,
)

from test_runtime_spec import subprocess_env


def solve_body(seed: int = 0, n: int = 40, **extra) -> dict:
    body = {
        "problem": "mis",
        "model": "cclique",
        "source": {
            "kind": "generator",
            "name": "gnp_random_graph",
            "args": {"n": n, "p": 0.1, "seed": seed},
        },
    }
    body.update(extra)
    return body


class FakeScheduler:
    """Scheduler stand-in: records every batch, sleeps, answers ok."""

    def __init__(self, delay: float = 0.05, fail: bool = False) -> None:
        self.workers = 1
        self.cache = None
        self.persistent = True
        self.delay = delay
        self.fail = fail
        self.calls: list[list[JobSpec]] = []
        self.closed = False

    def warm_up(self) -> None:
        pass

    def close(self) -> None:
        self.closed = True

    def run(self, specs: list[JobSpec]) -> BatchResult:
        self.calls.append(list(specs))
        time.sleep(self.delay)
        if self.fail:
            raise RuntimeError("scheduler exploded")
        results = [
            JobResult(
                spec=s,
                status="ok",
                solution_size=7,
                fingerprint="f" * 64,
                graph_n=40,
                graph_m=80,
            )
            for s in specs
        ]
        return BatchResult(
            results=results, stats=BatchStats(total=len(specs), ok=len(specs))
        )

    @property
    def jobs_run(self) -> int:
        return sum(len(batch) for batch in self.calls)


def make_service(sched: FakeScheduler, **kw) -> SolverService:
    kw.setdefault("batch_delay", 0.02)
    return SolverService(scheduler=sched, **kw)


def run_async(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------- #
# Protocol
# ---------------------------------------------------------------------- #


def test_parse_solve_round_trip():
    job = parse_solve(solve_body(seed=3, timeout=2.5, id="r-1"))
    assert job.spec.problem == "cc_mis"  # model folded into the job name
    assert job.spec.source.name == "gnp_random_graph"
    assert job.timeout == 2.5
    assert job.request_id == "r-1"
    assert not job.include_solution


@pytest.mark.parametrize(
    "body",
    [
        {"problem": "mis"},  # no source
        solve_body(typo=1),  # unknown key
        solve_body(timeout=-1),  # bad timeout
        dict(solve_body(), model="no-such-model"),
        "not an object",
        {"problem": "", "source": {}},
    ],
)
def test_parse_solve_rejects(body):
    with pytest.raises(ProtocolError):
        parse_solve(body)


def test_coalesce_key_semantics():
    a = parse_solve(solve_body(seed=1)).spec
    b = parse_solve(solve_body(seed=1)).spec
    c = parse_solve(solve_body(seed=2)).spec
    d = parse_solve(solve_body(seed=1, eps=0.7)).spec
    assert coalesce_key(a) == coalesce_key(b)
    assert coalesce_key(a) != coalesce_key(c)  # different input
    assert coalesce_key(a) != coalesce_key(d)  # different params


# ---------------------------------------------------------------------- #
# Coalescer
# ---------------------------------------------------------------------- #


def test_coalescer_leader_then_followers_then_release():
    async def scenario():
        co = Coalescer()
        fut, leader = co.admit("k")
        assert leader
        fut2, leader2 = co.admit("k")
        assert not leader2 and fut2 is fut
        fut.set_result(42)
        co.finish("k")
        fut3, leader3 = co.admit("k")  # in-flight dedup, not a cache
        assert leader3 and fut3 is not fut
        fut3.set_result(0)
        assert co.stats.leaders == 2 and co.stats.followers == 1

    run_async(scenario())


# ---------------------------------------------------------------------- #
# Coalescing + micro-batching through the service
# ---------------------------------------------------------------------- #


def test_identical_concurrent_requests_one_scheduler_job():
    sched = FakeScheduler(delay=0.2)

    async def scenario():
        svc = make_service(sched)
        await svc.start()
        replies = await asyncio.gather(
            *(svc.handle(solve_body(seed=5)) for _ in range(6))
        )
        await svc.drain()
        return replies

    replies = run_async(scenario())
    assert [code for code, _ in replies] == [200] * 6
    assert all(p["ok"] and p["status"] == "ok" for _, p in replies)
    # The acceptance claim: 6 identical concurrent requests, ONE job.
    assert sched.jobs_run == 1
    assert sum(1 for _, p in replies if p["coalesced"]) == 5


def test_distinct_requests_micro_batch_together():
    sched = FakeScheduler(delay=0.05)

    async def scenario():
        svc = make_service(sched, batch_delay=0.3)
        await svc.start()
        replies = await asyncio.gather(
            *(svc.handle(solve_body(seed=s)) for s in range(4))
        )
        await svc.drain()
        return replies

    replies = run_async(scenario())
    assert all(code == 200 for code, _ in replies)
    assert sched.jobs_run == 4
    assert len(sched.calls) == 1  # one deadline-flushed batch, not 4 pools
    assert not any(p["coalesced"] for _, p in replies)  # distinct keys


def test_batch_failure_propagates_to_all_waiters():
    sched = FakeScheduler(fail=True)

    async def scenario():
        svc = make_service(sched)
        await svc.start()
        replies = await asyncio.gather(
            *(svc.handle(solve_body(seed=s)) for s in range(3))
        )
        svc._draining = True  # the batcher consumer died with the batch;
        await svc.drain()  # drain without resubmitting
        return replies

    replies = run_async(scenario())
    assert [code for code, _ in replies] == [500] * 3
    assert all(p["error"]["type"] == "RuntimeError" for _, p in replies)


# ---------------------------------------------------------------------- #
# Admission control + drain
# ---------------------------------------------------------------------- #


def test_backpressure_rejects_beyond_max_inflight():
    sched = FakeScheduler(delay=0.3)

    async def scenario():
        svc = make_service(sched, max_inflight=2)
        await svc.start()
        replies = await asyncio.gather(
            *(svc.handle(solve_body(seed=s)) for s in range(6))
        )
        await svc.drain()
        return replies, svc

    replies, svc = run_async(scenario())
    codes = sorted(code for code, _ in replies)
    assert codes == [200, 200, 503, 503, 503, 503]
    rejected = [p for code, p in replies if code == 503]
    assert all(p["error"]["type"] == "QueueFull" for p in rejected)
    assert all("retry_after_s" in p["error"] for p in rejected)
    assert svc.rejected == 4 and svc.requests == 6


def test_reject_code_429():
    sched = FakeScheduler(delay=0.3)

    async def scenario():
        svc = make_service(sched, max_inflight=1, reject_code=429)
        await svc.start()
        replies = await asyncio.gather(
            *(svc.handle(solve_body(seed=s)) for s in range(2))
        )
        await svc.drain()
        return replies

    codes = sorted(code for code, _ in run_async(scenario()))
    assert codes == [200, 429]


def test_graceful_drain_completes_inflight_then_refuses():
    sched = FakeScheduler(delay=0.25)

    async def scenario():
        svc = make_service(sched)
        await svc.start()
        inflight = [
            asyncio.ensure_future(svc.handle(solve_body(seed=s)))
            for s in range(2)
        ]
        await asyncio.sleep(0.05)  # admitted, still solving
        completed = await svc.drain(timeout=10)
        late_code, late = await svc.handle(solve_body(seed=9))
        return completed, [t.result() for t in inflight], late_code, late

    completed, replies, late_code, late = run_async(scenario())
    assert completed
    assert all(code == 200 and p["ok"] for code, p in replies)  # finished
    assert late_code == 503 and late["error"]["type"] == "Draining"
    assert sched.closed  # worker pool released


def test_per_request_timeout_504():
    sched = FakeScheduler(delay=0.4)

    async def scenario():
        svc = make_service(sched)
        await svc.start()
        code, payload = await svc.handle(solve_body(seed=1, timeout=0.05))
        await svc.drain()
        return code, payload

    code, payload = run_async(scenario())
    assert code == 504
    assert payload["error"]["type"] == "RequestTimeout"


def test_protocol_error_is_400_and_does_not_occupy_a_slot():
    sched = FakeScheduler()

    async def scenario():
        svc = make_service(sched, max_inflight=1)
        await svc.start()
        code, payload = await svc.handle(solve_body(bogus_key=1))
        health = svc.healthz()
        await svc.drain()
        return code, payload, health

    code, payload, health = run_async(scenario())
    assert code == 400 and payload["error"]["type"] == "ProtocolError"
    assert health["active"] == 0
    assert sched.jobs_run == 0


def test_batcher_rejects_after_drain():
    sched = FakeScheduler()

    async def scenario():
        batcher = MicroBatcher(sched, max_delay=0.01)
        batcher.start()
        spec = parse_solve(solve_body()).spec
        await batcher.submit(spec)
        await batcher.drain()
        with pytest.raises(RuntimeError):
            await batcher.submit(spec)

    run_async(scenario())


# ---------------------------------------------------------------------- #
# End to end: HTTP
# ---------------------------------------------------------------------- #


def http_post(base: str, obj: dict) -> tuple[int, dict]:
    req = urllib.request.Request(
        f"{base}/solve",
        data=json.dumps(obj).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def http_get(base: str, path: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(base + path) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def test_http_end_to_end(tmp_path):
    async def scenario():
        svc = SolverService(
            workers=1, cache=str(tmp_path / "cache"), batch_delay=0.02
        )
        await svc.start()
        server = await svc.start_http(port=0)
        base = f"http://127.0.0.1:{server.sockets[0].getsockname()[1]}"
        loop = asyncio.get_running_loop()

        def in_thread(fn, *a):
            return loop.run_in_executor(None, fn, *a)

        body = solve_body(seed=11, include_solution=True)
        code, payload = await in_thread(http_post, base, body)
        assert code == 200 and payload["ok"]
        assert payload["status"] == "ok" and not payload["cache_hit"]
        assert payload["result"]["verified"] is True
        assert len(payload["solution"]) == payload["result"]["solution_size"]

        code, payload = await in_thread(http_post, base, solve_body(seed=11))
        assert code == 200 and payload["cache_hit"]  # across-time dedup

        code, text = await in_thread(http_get, base, "/healthz")
        health = json.loads(text)
        assert code == 200 and health["state"] == "serving"
        code, text = await in_thread(http_get, base, "/metrics")
        assert code == 200
        assert "serve_requests 2" in text
        assert "# TYPE serve_latency_s summary" in text
        code, text = await in_thread(http_get, base, "/solvers")
        solvers = json.loads(text)["solvers"]
        assert code == 200
        assert any(
            s["problem"] == "mis" and s["model"] == "cclique" and s["name"] == "cc_mis"
            for s in solvers
        )

        code, payload = await in_thread(
            http_post, base, {"problem": "mis", "nope": 1}
        )
        assert code == 400 and payload["error"]["type"] == "ProtocolError"
        code, text = await in_thread(http_get, base, "/no-such-route")
        assert code == 404

        server.close()
        await server.wait_closed()
        assert await svc.drain(30)

    run_async(scenario())


# ---------------------------------------------------------------------- #
# End to end: stdio JSON lines
# ---------------------------------------------------------------------- #


def test_stdio_end_to_end(tmp_path):
    requests = [
        {"op": "ping"},
        dict(solve_body(seed=3, n=30), op="solve", id="a"),
        dict(solve_body(seed=3, n=30), op="solve", id="b"),  # coalesce/cache
        {"op": "solvers"},
    ]
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--stdio",
            "--cache-dir",
            str(tmp_path / "cache"),
        ],
        input="\n".join(json.dumps(r) for r in requests) + "\n",
        capture_output=True,
        text=True,
        timeout=180,
        env=subprocess_env(),
    )
    assert proc.returncode == 0, proc.stderr
    replies = [json.loads(line) for line in proc.stdout.splitlines()]
    assert len(replies) == 4
    by_id = {r.get("id"): r for r in replies if "id" in r}
    assert by_id["a"]["ok"] and by_id["a"]["status"] == "ok"
    assert by_id["b"]["ok"] and (
        by_id["b"]["coalesced"] or by_id["b"]["cache_hit"]
    )
    assert any(r.get("state") == "serving" for r in replies)  # the ping
    assert any("solvers" in r for r in replies)
