"""Tests for the CONGESTED CLIQUE substrate and algorithms (Corollary 2)."""

import numpy as np
import pytest

from repro.cclique import (
    CongestedCliqueContext,
    LENZEN_ROUNDS,
    cc_maximal_matching,
    cc_mis,
)
from repro.graphs import complete_graph, gnp_random_graph, power_law_graph
from repro.verify import verify_matching_pairs, verify_mis_nodes


# --------------------------------------------------------------------- #
# model
# --------------------------------------------------------------------- #


def test_context_word_bits():
    ctx = CongestedCliqueContext(n=1024)
    assert ctx.word_bits >= 10


def test_lenzen_route_feasible():
    ctx = CongestedCliqueContext(n=10)
    ctx.lenzen_route(np.full(10, 10), np.full(10, 10))
    assert ctx.rounds == LENZEN_ROUNDS


def test_lenzen_route_rejects_oversend():
    ctx = CongestedCliqueContext(n=10)
    with pytest.raises(ValueError):
        ctx.lenzen_route(np.array([11]), np.array([5]))


def test_lenzen_route_rejects_overreceive():
    ctx = CongestedCliqueContext(n=10)
    with pytest.raises(ValueError):
        ctx.lenzen_route(np.array([5]), np.array([11]))


def test_collect_graph_guard():
    ctx = CongestedCliqueContext(n=10)
    ctx.charge_collect_graph(10)
    with pytest.raises(ValueError):
        ctx.charge_collect_graph(11)


def test_charges_accumulate():
    ctx = CongestedCliqueContext(n=5)
    ctx.charge_broadcast()
    ctx.charge_aggregate()
    ctx.charge("x", 3)
    assert ctx.rounds == 5


# --------------------------------------------------------------------- #
# cc_mis
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [1, 2])
def test_cc_mis_correct(seed):
    g = gnp_random_graph(100, 0.15, seed=seed)
    res = cc_mis(g)
    assert verify_mis_nodes(g, res.solution)


def test_cc_mis_correct_on_clique():
    g = complete_graph(40)
    res = cc_mis(g)
    assert verify_mis_nodes(g, res.solution)
    assert len(res.solution) == 1


def test_cc_mis_small_graph_collect_only():
    """|E| <= n from the start: zero phases, one collect."""
    g = gnp_random_graph(60, 0.02, seed=3)
    assert g.m <= g.n
    res = cc_mis(g)
    assert res.phases == 0
    assert verify_mis_nodes(g, res.solution)


def test_cc_mis_phases_logarithmic_in_delta():
    """Phases ~ O(log Delta): m decays by a constant factor to below n."""
    g = gnp_random_graph(120, 0.4, seed=4)
    res = cc_mis(g)
    assert res.phases <= 4 * np.log2(g.max_degree() + 2)


def test_cc_mis_ours_beats_chps():
    """T8's headline: O(log Delta) vs O(log Delta log n) rounds."""
    g = gnp_random_graph(150, 0.2, seed=5)
    ours = cc_mis(g, charge_mode="ours")
    chps = cc_mis(g, charge_mode="chps")
    assert np.array_equal(ours.solution, chps.solution)  # same algorithm
    assert ours.rounds < chps.rounds
    assert chps.rounds >= 5 * ours.rounds  # the log n factor is real


def test_cc_mis_deterministic():
    g = gnp_random_graph(100, 0.2, seed=6)
    assert np.array_equal(cc_mis(g).solution, cc_mis(g).solution)


def test_cc_mis_rejects_bad_mode():
    with pytest.raises(ValueError):
        cc_mis(complete_graph(5), charge_mode="nope")


# --------------------------------------------------------------------- #
# cc_maximal_matching
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [1, 2])
def test_cc_matching_correct(seed):
    g = gnp_random_graph(100, 0.15, seed=seed)
    res = cc_maximal_matching(g)
    assert verify_matching_pairs(g, res.solution)


def test_cc_matching_on_powerlaw():
    g = power_law_graph(150, 4, seed=3)
    res = cc_maximal_matching(g)
    assert verify_matching_pairs(g, res.solution)


def test_cc_matching_ours_beats_chps():
    g = gnp_random_graph(120, 0.3, seed=7)
    ours = cc_maximal_matching(g, charge_mode="ours")
    chps = cc_maximal_matching(g, charge_mode="chps")
    assert ours.rounds < chps.rounds


def test_cc_matching_rejects_bad_mode():
    with pytest.raises(ValueError):
        cc_maximal_matching(complete_graph(5), charge_mode="nope")


def test_cc_edge_trace_reaches_collect_threshold():
    g = gnp_random_graph(120, 0.3, seed=8)
    res = cc_mis(g)
    if res.collected_remainder_edges:
        assert res.collected_remainder_edges <= g.n
