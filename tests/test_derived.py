"""Tests for derived problems: vertex cover and (Delta+1)-coloring."""

import numpy as np
import pytest

from repro.core import (
    deterministic_coloring,
    deterministic_vertex_cover,
    is_vertex_cover,
)
from repro.core.derived import _product_graph
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    star_graph,
)

# --------------------------------------------------------------------- #
# vertex cover
# --------------------------------------------------------------------- #


def test_vertex_cover_covers_everything(any_graph):
    vc = deterministic_vertex_cover(any_graph)
    assert is_vertex_cover(any_graph, vc.cover)


def test_vertex_cover_two_approx_certificate(any_graph):
    """|cover| = 2 |M| and |M| <= OPT, so the ratio certificate is exact."""
    vc = deterministic_vertex_cover(any_graph)
    assert vc.size <= 2 * vc.lower_bound()


def test_vertex_cover_star_optimal_ratio():
    """On a star, matching has 1 edge -> cover of 2 vs OPT 1: ratio 2."""
    g = star_graph(20)
    vc = deterministic_vertex_cover(g)
    assert vc.size == 2
    assert is_vertex_cover(g, vc.cover)


def test_vertex_cover_empty_graph():
    vc = deterministic_vertex_cover(Graph.empty(5))
    assert vc.size == 0


def test_vertex_cover_deterministic():
    g = gnp_random_graph(100, 0.1, seed=1)
    a = deterministic_vertex_cover(g)
    b = deterministic_vertex_cover(g)
    assert np.array_equal(a.cover, b.cover)


def test_is_vertex_cover_detects_miss():
    g = path_graph(3)
    assert not is_vertex_cover(g, np.array([0]))
    assert is_vertex_cover(g, np.array([1]))


# --------------------------------------------------------------------- #
# product graph
# --------------------------------------------------------------------- #


def test_product_graph_shape():
    g = path_graph(3)  # n=3, m=2
    k = 3
    prod = _product_graph(g, k)
    assert prod.n == 9
    # m*k cross edges + n*C(k,2) clique edges
    assert prod.m == 2 * 3 + 3 * 3


def test_product_graph_degree_bound():
    g = cycle_graph(10)
    prod = _product_graph(g, g.max_degree() + 1)
    # (v,c) has k-1 clique edges + one copy per neighbour = Delta.
    assert prod.max_degree() == (g.max_degree() + 1 - 1) + g.max_degree()


# --------------------------------------------------------------------- #
# coloring via MIS
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "make",
    [
        lambda: path_graph(12),
        lambda: cycle_graph(11),  # odd cycle: needs 3 colors
        lambda: grid_graph(6, 6),
        lambda: complete_graph(6),
        lambda: gnp_random_graph(40, 0.12, seed=2),
    ],
)
def test_coloring_proper_and_within_palette(make):
    g = make()
    res = deterministic_coloring(g)
    assert res.num_colors == g.max_degree() + 1
    assert np.all(res.colors >= 0)
    assert np.all(res.colors < res.num_colors)
    if g.m:
        assert np.all(res.colors[g.edges_u] != res.colors[g.edges_v])


def test_coloring_complete_graph_uses_all_colors():
    g = complete_graph(5)
    res = deterministic_coloring(g)
    assert len(set(res.colors.tolist())) == 5


def test_coloring_deterministic():
    g = grid_graph(5, 5)
    a = deterministic_coloring(g)
    b = deterministic_coloring(g)
    assert np.array_equal(a.colors, b.colors)


def test_coloring_insufficient_palette_raises():
    g = complete_graph(5)
    with pytest.raises(ValueError):
        deterministic_coloring(g, num_colors=3)


def test_coloring_edgeless():
    g = Graph.empty(4)
    res = deterministic_coloring(g)
    assert np.all(res.colors == 0)


def test_coloring_reports_product_size():
    g = path_graph(5)
    res = deterministic_coloring(g)
    assert res.product_n == 5 * res.num_colors
    assert res.rounds > 0


# --------------------------------------------------------------------- #
# 2-ruling set (one MIS call on the square graph)
# --------------------------------------------------------------------- #

from repro.core import deterministic_ruling_set, is_ruling_set  # noqa: E402
from repro.graphs.power import square_graph  # noqa: E402


def test_ruling_set_valid(any_graph):
    rs = deterministic_ruling_set(any_graph)
    assert is_ruling_set(any_graph, rs.ruling_set)


def test_ruling_set_is_mis_of_square():
    g = gnp_random_graph(60, 0.06, seed=4)
    rs = deterministic_ruling_set(g)
    sq = square_graph(g)
    chosen = np.zeros(g.n, dtype=bool)
    chosen[rs.ruling_set] = True
    # independent in G^2 ...
    if sq.m:
        assert not np.any(chosen[sq.edges_u] & chosen[sq.edges_v])
    # ... and maximal: every node in or G^2-adjacent to the set
    covered = chosen.copy()
    if sq.m:
        np.logical_or.at(covered, sq.edges_u, chosen[sq.edges_v])
        np.logical_or.at(covered, sq.edges_v, chosen[sq.edges_u])
    assert covered.all()
    assert rs.square_n == g.n and rs.square_m == sq.m


def test_ruling_set_path_spacing():
    """On a path, chosen vertices must sit >= 3 apart and cover within 2."""
    g = path_graph(12)
    rs = deterministic_ruling_set(g)
    ids = np.sort(rs.ruling_set)
    assert np.all(np.diff(ids) >= 3)
    assert is_ruling_set(g, ids)


def test_ruling_set_star_and_edgeless():
    rs = deterministic_ruling_set(star_graph(15))
    assert rs.size == 1  # any single vertex 2-rules a star
    rs0 = deterministic_ruling_set(Graph.empty(5))
    assert rs0.ruling_set.tolist() == [0, 1, 2, 3, 4]


def test_ruling_set_rounds_and_determinism():
    g = grid_graph(6, 6)
    a = deterministic_ruling_set(g)
    b = deterministic_ruling_set(g)
    assert np.array_equal(a.ruling_set, b.ruling_set)
    assert a.rounds > 0 and a.rounds == a.mis.rounds


def test_is_ruling_set_rejects_violations():
    g = path_graph(10)
    # distance-1 pair
    assert not is_ruling_set(g, np.array([0, 1]))
    # distance-2 pair
    assert not is_ruling_set(g, np.array([0, 2]))
    # coverage hole (node 9 is > 2 hops from node 0)
    assert not is_ruling_set(g, np.array([0]))
