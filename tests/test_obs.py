"""repro.obs: span nesting, parity, metrics, sinks, conformance fits.

The two contracts that matter most:

* **Disabled is free and invisible** — with tracing off, solver outputs,
  ledger totals, and result envelopes are bit-identical to a traced run's
  (minus the trace itself), and no span machinery executes.
* **Spans follow the call tree** — arbitrary nesting (including exceptions
  escaping mid-tree) always restores the parent and finishes every span
  exactly once, in child-first completion order.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import SolveRequest, solve
from repro.graphs import gnp_random_graph
from repro.obs import MetricsRegistry, trace_capture
from repro.obs import trace as obs_trace
from repro.obs.conformance import SHAPES, conformance_report, fit_shape
from repro.obs.sinks import (
    chrome_trace,
    diff_summaries,
    read_jsonl,
    summarize,
    top_spans,
    write_jsonl,
)


# --------------------------------------------------------------------- #
# Span mechanics
# --------------------------------------------------------------------- #


def test_span_is_noop_without_capture_or_env(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    obs_trace.refresh_env()
    assert not obs_trace.is_tracing()
    with obs_trace.span("solve", n=5) as s:
        assert s is None
    assert obs_trace.current_span() is None


def test_nested_spans_record_parent_links():
    with trace_capture() as buf:
        with obs_trace.span("outer", k=1):
            with obs_trace.span("inner"):
                pass
            with obs_trace.span("inner2"):
                pass
    by_name = {s["name"]: s for s in buf.spans}
    assert set(by_name) == {"outer", "inner", "inner2"}
    assert by_name["outer"]["parent"] == 0
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["inner2"]["parent"] == by_name["outer"]["id"]
    # Children complete before their parent.
    assert buf.spans[-1]["name"] == "outer"
    assert by_name["outer"]["attrs"] == {"k": 1}


def test_span_tags_and_reraises_exceptions():
    with trace_capture() as buf:
        with pytest.raises(ValueError):
            with obs_trace.span("root"):
                with obs_trace.span("bad"):
                    raise ValueError("boom")
    by_name = {s["name"]: s for s in buf.spans}
    assert by_name["bad"]["attrs"]["error"] == "ValueError"
    assert by_name["root"]["attrs"]["error"] == "ValueError"
    # Both spans were finished despite the exception.
    assert len(buf.spans) == 2


@given(
    st.recursive(
        st.just([]),
        lambda kids: st.lists(kids, min_size=1, max_size=3),
        max_leaves=8,
    )
)
@settings(max_examples=25, deadline=None)
def test_arbitrary_nesting_finishes_every_span_once(tree):
    """Property: any span tree records one dict per opened span, and the
    parent pointer of each span is the span that was open when it started."""

    expected = []

    def walk(node, label):
        with obs_trace.span(label) as s:
            expected.append(label)
            assert obs_trace.current_span() is s
            for i, child in enumerate(node):
                walk(child, f"{label}.{i}")

    with trace_capture() as buf:
        walk(tree, "r")
    assert sorted(s["name"] for s in buf.spans) == sorted(expected)
    ids = {s["name"]: s["id"] for s in buf.spans}
    for s in buf.spans:
        if s["name"] == "r":
            assert s["parent"] == 0
        else:
            parent_label = s["name"].rsplit(".", 1)[0]
            assert s["parent"] == ids[parent_label]
    assert obs_trace.current_span() is None


@given(
    st.lists(
        st.sampled_from(["open", "raise"]), min_size=1, max_size=12
    )
)
@settings(max_examples=25, deadline=None)
def test_exception_storms_never_leak_open_spans(script):
    """Property: interleaving normal and raising spans leaves no span open
    and the buffer length equals the number of spans opened."""
    opened = 0
    with trace_capture() as buf:
        for op in script:
            opened += 1
            if op == "raise":
                with pytest.raises(RuntimeError):
                    with obs_trace.span("s"):
                        raise RuntimeError()
            else:
                with obs_trace.span("s"):
                    pass
        assert obs_trace.current_span() is None
    assert len(buf.spans) == opened


def test_record_span_attaches_to_open_parent():
    t0 = obs_trace.clock()
    with trace_capture() as buf:
        with obs_trace.span("parent"):
            obs_trace.record_span("leaf", t0, {"i": 3})
    by_name = {s["name"]: s for s in buf.spans}
    assert by_name["leaf"]["parent"] == by_name["parent"]["id"]
    assert by_name["leaf"]["attrs"] == {"i": 3}
    assert by_name["leaf"]["dur"] >= 0.0


def test_nested_captures_are_disjoint():
    with trace_capture() as outer:
        with obs_trace.span("a"):
            with trace_capture() as inner:
                with obs_trace.span("b"):
                    pass
    assert [s["name"] for s in inner.spans] == ["b"]
    assert [s["name"] for s in outer.spans] == ["a"]
    # The inner capture's root really was a root, not a child of "a".
    assert inner.spans[0]["parent"] == 0


def test_env_parsing(monkeypatch):
    for off in ("", "0", "off", "FALSE", "none"):
        monkeypatch.setenv("REPRO_TRACE", off)
        obs_trace.refresh_env()
        assert not obs_trace.is_tracing()
        assert obs_trace.env_trace_destination() is None
    for on in ("1", "on", "TRUE", "yes"):
        monkeypatch.setenv("REPRO_TRACE", on)
        obs_trace.refresh_env()
        assert obs_trace.is_tracing()
        assert obs_trace.env_trace_destination() is None
    monkeypatch.setenv("REPRO_TRACE", "/tmp/some/trace.jsonl")
    obs_trace.refresh_env()
    assert obs_trace.is_tracing()
    assert obs_trace.env_trace_destination() == "/tmp/some/trace.jsonl"
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    obs_trace.refresh_env()
    assert not obs_trace.is_tracing()


# --------------------------------------------------------------------- #
# Parity: tracing off leaves solves bit-identical
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "problem,model",
    [
        ("mis", "simulated"),
        ("matching", "simulated"),
        ("mis", "mpc-engine"),
        ("mis", "cclique"),
        ("mis", "congest"),
    ],
)
def test_traced_and_untraced_solves_are_bit_identical(problem, model):
    g = gnp_random_graph(120, 0.05, seed=11)

    def req():
        return SolveRequest(problem=problem, model=model, graph=g)

    plain = solve(req())
    assert plain.trace is None
    assert plain.metrics == {}
    with trace_capture():
        traced = solve(req())
    assert traced.trace, "traced solve recorded no spans"
    np.testing.assert_array_equal(plain.solution, traced.solution)
    assert plain.rounds == traced.rounds
    assert plain.words_moved == traced.words_moved
    assert plain.solution_size == traced.solution_size
    assert plain.verified == traced.verified


def test_engine_round_spans_one_per_round():
    """The headline criterion: one ``engine.round`` span per engine round,
    each carrying the word/space attributes."""
    g = gnp_random_graph(150, 0.05, seed=3)
    with trace_capture():
        res = solve(SolveRequest(problem="mis", model="mpc-engine", graph=g))
    rounds = [s for s in res.trace if s["name"] == "engine.round"]
    assert len(rounds) == res.rounds
    for s in rounds:
        assert "words_sent" in s["attrs"]
        assert "space_high_water" in s["attrs"]
        assert s["attrs"]["space_limit"] > 0
    # Round spans nest under the solve root.
    root = [s for s in res.trace if s["name"] == "solve"]
    assert len(root) == 1
    assert root[0]["attrs"]["rounds"] == res.rounds
    assert {s["parent"] for s in rounds} == {root[0]["id"]}


def test_ledger_charges_land_on_spans():
    g = gnp_random_graph(90, 0.06, seed=5)
    with trace_capture():
        res = solve(SolveRequest(problem="mis", model="cclique", graph=g))
    charges = [
        ev
        for s in res.trace
        for ev in s["events"]
        if ev["name"] == "charge"
    ]
    assert charges, "no ledger charges recorded"
    assert sum(ev["rounds"] for ev in charges) == res.rounds
    assert sum(ev["words"] for ev in charges) == res.words_moved


def test_solve_attaches_metrics_delta():
    g = gnp_random_graph(80, 0.05, seed=9)
    with trace_capture():
        res = solve(SolveRequest(problem="mis", model="simulated", graph=g))
    assert res.metrics.get("seed_scan.chunks", 0) > 0
    assert res.metrics.get("seed_scan.trials", 0) > 0


def test_solve_result_payload_roundtrips_trace():
    g = gnp_random_graph(60, 0.05, seed=2)
    with trace_capture():
        res = solve(SolveRequest(problem="mis", model="simulated", graph=g))
    meta, arrays = res.to_payload()
    meta = json.loads(json.dumps(meta))  # must be JSON-safe
    back = type(res).from_payload(meta, arrays)
    assert back.trace == res.trace
    assert back.metrics == res.metrics


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #


def test_metrics_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.inc("jobs")
    reg.inc("jobs", 4)
    reg.gauge("depth", 7)
    for v in (1.0, 3.0, 8.0):
        reg.observe("lat", v)
    out = reg.export()
    assert out["jobs"] == 5
    assert out["depth"] == 7
    assert out["lat.count"] == 3
    assert out["lat.sum"] == 12.0
    assert out["lat.min"] == 1.0
    assert out["lat.max"] == 8.0
    assert out["lat.mean"] == 4.0


def test_metrics_delta_drops_zero_rows():
    reg = MetricsRegistry()
    reg.inc("a")
    before = reg.counters_snapshot()
    reg.inc("b", 2)
    delta = MetricsRegistry.delta(before, reg.counters_snapshot())
    assert delta == {"b": 2}


# --------------------------------------------------------------------- #
# Sinks: JSONL round trip, Chrome trace, summaries
# --------------------------------------------------------------------- #


def _sample_spans():
    with trace_capture() as buf:
        with obs_trace.span("solve", n=10):
            with obs_trace.span("stage"):
                obs_trace.ledger_event("round", 2, 50)
    return buf.spans


def test_jsonl_roundtrip(tmp_path):
    spans = _sample_spans()
    path = tmp_path / "t.jsonl"
    write_jsonl(spans, path)
    assert read_jsonl(path) == spans
    # Torn/blank lines are skipped, not fatal.
    with open(path, "a") as fh:
        fh.write("\n{\"truncated\": \n")
    assert read_jsonl(path) == spans


def test_chrome_trace_structure():
    spans = _sample_spans()
    doc = chrome_trace(spans)
    assert json.loads(json.dumps(doc)) == doc
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["name"] for e in complete} == {"solve", "stage"}
    assert len(instants) == 1  # the ledger charge
    by_name = {e["name"]: e for e in complete}
    # tid encodes tree depth: root at 0, child at 1.
    assert by_name["solve"]["tid"] == 0
    assert by_name["stage"]["tid"] == 1
    assert all(e["ts"] >= 0 for e in events)


def test_summarize_top_and_diff():
    spans = _sample_spans()
    summary = summarize(spans)
    assert summary["spans"] == 2
    assert summary["by_name"]["solve"]["count"] == 1
    assert summary["charges"]["round"] == {"rounds": 2, "words": 50}
    ranked = top_spans(spans, k=1)
    assert len(ranked) == 1 and ranked[0]["name"] == "solve"
    diff = diff_summaries(summary, summarize(spans + spans))
    assert diff["by_name"]["solve"]["count_b"] == 2
    assert diff["charges"]["round"]["rounds_delta"] == 2


# --------------------------------------------------------------------- #
# Conformance fits
# --------------------------------------------------------------------- #


def test_fit_shape_recovers_planted_constant():
    rows = [
        {"n": n, "m": 3 * n, "delta": 8, "depth": 4, "rounds": 0.0}
        for n in (64, 256, 1024, 4096)
    ]
    for r in rows:
        r["rounds"] = 2.5 * SHAPES["log_n"](r)
    fit = fit_shape(rows, "rounds", "log_n")
    assert fit["ok"]
    assert fit["constant"] == pytest.approx(2.5, rel=1e-6)
    assert fit["r2"] == pytest.approx(1.0, abs=1e-9)


def test_fit_shape_rejects_wrong_growth():
    rows = [
        {"n": n, "m": 3 * n, "delta": 8, "depth": 4, "rounds": float(n)}
        for n in (64, 256, 1024, 4096)
    ]
    fit = fit_shape(rows, "rounds", "log_n")  # Theta(n) pretending O(log n)
    assert not fit["ok"]


def test_fit_shape_flat_series_passes_by_relative_residual():
    # Near-flat measured series (round counts barely move): R^2 is
    # meaningless but the relative-residual criterion accepts tight fits.
    rows = [
        {"n": n, "m": 3 * n, "delta": d, "depth": 4, "rounds": r}
        for n, d, r in [(64, 11, 7), (128, 12, 7), (256, 13, 8), (512, 13, 8)]
    ]
    fit = fit_shape(rows, "rounds", "log_delta_plus_loglog_n")
    assert fit["ok"]
    assert fit["nrmse"] <= 0.15


def test_fit_shape_unknown_shape_raises():
    with pytest.raises(KeyError):
        fit_shape([{"n": 2, "m": 2, "delta": 1, "depth": 1, "x": 1}], "x", "nope")


def test_conformance_report_mis_simulated():
    rep = conformance_report("mis", "simulated", sizes=[48, 96], reps=2)
    assert rep["conformant"] is True
    assert {f["metric"] for f in rep["fits"]} == {"rounds", "words_moved"}
    assert all(r["reps"] == 2 for r in rep["rows"])
