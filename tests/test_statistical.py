"""Statistical validation of the randomness properties the proofs rely on.

The derandomization machinery is only sound if the hash families actually
deliver the distributional behaviour the lemmas assume.  Beyond the exact
exhaustive checks in test_hashing_kwise.py (small fields), these tests
validate the *scaled* behaviour: sampling concentration (the empirical
Lemma 9), near-uniform thresholds, negligible tie rates in wide-range
z-values, and Luby's expected progress under pairwise independence
(the expectation behind Lemma 13/21 targets).
"""

import numpy as np

from repro.graphs import gnp_random_graph
from repro.hashing import make_family, make_product_family


def test_sampling_concentration_across_family():
    """Chebyshev-grade concentration of |sampled| across many seeds:
    the fraction of seeds with |Z - mu| > 4 sigma must be tiny (Lemma 9's
    role at c = 2)."""
    fam = make_family(universe=4096, k=2)
    xs = np.arange(4096, dtype=np.int64)
    prob = 0.25
    t = fam.threshold(prob)
    p_real = t / fam.q
    mu = 4096 * p_real
    sigma = np.sqrt(4096 * p_real * (1 - p_real))
    bad = 0
    seeds = range(1, 2001)
    for s in seeds:
        z = int((fam.evaluate(s, xs) < np.uint64(t)).sum())
        if abs(z - mu) > 4 * sigma:
            bad += 1
    # Chebyshev at 4 sigma gives <= 1/16; the realised rate is far smaller.
    assert bad / 2000 <= 1 / 16


def test_per_machine_goodness_probability():
    """A random seed makes a fixed chunk 'good' with the probability the
    stage analysis needs (>= 3/4 at 2-sigma windows)."""
    fam = make_family(universe=1024, k=4)
    chunk = np.arange(64, dtype=np.int64)  # one machine's items
    prob = 0.5
    t = fam.threshold(prob)
    p_real = t / fam.q
    mu = 64 * p_real
    lam = 2 * np.sqrt(64 * p_real * (1 - p_real))
    good = 0
    for s in range(1, 1001):
        z = int((fam.evaluate(s, chunk) < np.uint64(t)).sum())
        if abs(z - mu) <= lam:
            good += 1
    assert good / 1000 >= 0.75


def test_threshold_rate_is_accurate_on_average():
    """Averaged over seeds, the sampling rate equals floor(p q)/q exactly
    (marginal uniformity)."""
    fam = make_family(universe=1000, k=2)
    xs = np.arange(1000, dtype=np.int64)
    prob = 0.37
    t = fam.threshold(prob)
    rates = [
        (fam.evaluate(s, xs) < np.uint64(t)).mean() for s in range(1, 400)
    ]
    assert abs(np.mean(rates) - t / fam.q) < 0.01


def test_product_family_tie_rate_negligible():
    """Wide-range z-values: ties among 2000 ids should be ~never (the
    paper's [n^3] range argument)."""
    fam = make_product_family(2000, k=2)
    xs = np.arange(2000, dtype=np.int64)
    ties = 0
    for s in range(1, 101):
        z = fam.evaluate(s, xs)
        ties += int(z.size - np.unique(z).size)
    assert ties <= 2  # ~0 expected; allow cosmic slack


def test_luby_expected_progress_under_pairwise():
    """Empirical Lemma 13-flavour check: averaged over pairwise seeds, a
    Luby matching step covers a constant fraction of edges -- far above
    the 1/109-of-W_B bound the scan targets use."""
    g = gnp_random_graph(300, 0.03, seed=9)
    fam = make_product_family(g.m, k=2)
    eids = np.arange(g.m, dtype=np.int64)
    stride = np.uint64(g.m + 1)
    maxkey = np.uint64(2**63 - 1)
    removed_fracs = []
    for s in range(1, 201):
        z = fam.evaluate(s, eids)
        key = z * stride + eids.astype(np.uint64)
        node_min = np.full(g.n, maxkey, dtype=np.uint64)
        np.minimum.at(node_min, g.edges_u, key)
        np.minimum.at(node_min, g.edges_v, key)
        matched = (key == node_min[g.edges_u]) & (key == node_min[g.edges_v])
        kill = np.zeros(g.n, dtype=bool)
        kill[g.edges_u[matched]] = True
        kill[g.edges_v[matched]] = True
        removed = np.count_nonzero(kill[g.edges_u] | kill[g.edges_v])
        removed_fracs.append(removed / g.m)
    assert np.mean(removed_fracs) >= 0.1


def test_scan_finds_good_seed_quickly_on_average():
    """The O(1)-expected-trials claim behind the scan strategy: the
    median first index achieving half the mean objective is tiny."""
    g = gnp_random_graph(200, 0.05, seed=10)
    fam = make_product_family(g.m, k=2)
    eids = np.arange(g.m, dtype=np.int64)
    stride = np.uint64(g.m + 1)
    maxkey = np.uint64(2**63 - 1)

    def covered(seed: int) -> float:
        z = fam.evaluate(seed, eids)
        key = z * stride + eids.astype(np.uint64)
        node_min = np.full(g.n, maxkey, dtype=np.uint64)
        np.minimum.at(node_min, g.edges_u, key)
        np.minimum.at(node_min, g.edges_v, key)
        matched = (key == node_min[g.edges_u]) & (key == node_min[g.edges_v])
        return float(matched.sum())

    sample = [covered(s) for s in range(1, 101)]
    target = 0.5 * float(np.mean(sample))
    first_hits = []
    for block in range(10):
        start = 1 + block * 50
        for idx, s in enumerate(range(start, start + 50)):
            if covered(s) >= target:
                first_hits.append(idx + 1)
                break
    assert np.median(first_hits) <= 3
