"""JobSpec / JobResult serialization, digests, and fingerprint determinism."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro

from repro.core import result_from_payload, result_to_payload
from repro.core.api import maximal_independent_set, maximal_matching
from repro.graphs import (
    gnp_random_graph,
    graph_fingerprint,
    graph_from_npz_bytes,
    graph_to_npz_bytes,
    write_edge_list,
)
from repro.runtime import GraphSource, JobResult, JobSpec


def subprocess_env() -> dict:
    """Env for child interpreters: make the in-test repro package importable."""
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return env


def make_spec(**kw) -> JobSpec:
    base = dict(
        problem="mis",
        source=GraphSource.generator("gnp_random_graph", n=60, p=0.1, seed=3),
        eps=0.5,
        tag="t",
    )
    base.update(kw)
    return JobSpec(**base)


# ---------------------------------------------------------------------- #
# JobSpec
# ---------------------------------------------------------------------- #


def test_jobspec_json_round_trip():
    spec = make_spec(
        force="lowdeg",
        paper_rule=True,
        overrides={"c": 2, "strategy": "best_of"},
    )
    again = JobSpec.from_json(spec.to_json())
    assert again == spec
    assert hash(again) == hash(spec)
    assert again.digest() == spec.digest()


def test_jobspec_file_source_round_trip(tmp_path):
    path = tmp_path / "g.edges"
    write_edge_list(gnp_random_graph(30, 0.2, seed=1), path)
    spec = JobSpec("matching", GraphSource.from_file(str(path)))
    again = JobSpec.from_json(spec.to_json())
    assert again == spec
    assert again.source.resolve() == spec.source.resolve()


def test_jobspec_rejects_unknown_problem_and_generator():
    with pytest.raises(ValueError, match="unknown problem"):
        make_spec(problem="tsp")
    with pytest.raises(ValueError, match="unknown generator"):
        GraphSource.generator("no_such_generator", n=3)


def test_solve_digest_ignores_source_but_not_params():
    a = make_spec()
    b = make_spec(source=GraphSource.generator("path_graph", n=9))
    assert a.solve_digest() == b.solve_digest()  # source excluded
    assert a.digest() != b.digest()  # full digest differs
    assert a.solve_digest() != make_spec(eps=0.6).solve_digest()
    assert a.solve_digest() != make_spec(force="general").solve_digest()
    assert a.solve_digest() != make_spec(overrides={"c": 2}).solve_digest()


def test_cache_key_is_content_addressed(tmp_path):
    """Same graph content via generator vs file => same cache key."""
    g = gnp_random_graph(40, 0.15, seed=7)
    path = tmp_path / "g.edges"
    write_edge_list(g, path)
    gen_spec = make_spec(
        source=GraphSource.generator("gnp_random_graph", n=40, p=0.15, seed=7)
    )
    file_spec = make_spec(source=GraphSource.from_file(str(path)))
    fp_gen = graph_fingerprint(gen_spec.source.resolve())
    fp_file = graph_fingerprint(file_spec.source.resolve())
    assert fp_gen == fp_file
    assert gen_spec.cache_key(fp_gen) == file_spec.cache_key(fp_file)


# ---------------------------------------------------------------------- #
# JobResult
# ---------------------------------------------------------------------- #


def test_jobresult_json_round_trip():
    res = JobResult(
        spec=make_spec(),
        status="error",
        attempts=2,
        wall_time=0.123,
        worker_pid=4242,
        fingerprint="ab" * 32,
        graph_n=60,
        graph_m=170,
        error_type="ValueError",
        error_message="boom",
        error_traceback="Traceback ...",
    )
    again = JobResult.from_json(res.to_json())
    assert again == res
    assert not again.ok
    # the JSON itself is plain data
    doc = json.loads(res.to_json())
    assert doc["spec"]["problem"] == "mis"


# ---------------------------------------------------------------------- #
# Graph fingerprint + npz packing
# ---------------------------------------------------------------------- #


def test_fingerprint_distinguishes_graphs():
    a = gnp_random_graph(60, 0.1, seed=3)
    b = gnp_random_graph(60, 0.1, seed=4)
    assert graph_fingerprint(a) != graph_fingerprint(b)
    assert graph_fingerprint(a) == graph_fingerprint(gnp_random_graph(60, 0.1, seed=3))


def test_npz_round_trip_preserves_graph_and_fingerprint():
    g = gnp_random_graph(80, 0.08, seed=9)
    again = graph_from_npz_bytes(graph_to_npz_bytes(g))
    assert again == g
    assert graph_fingerprint(again) == graph_fingerprint(g)


def test_fingerprint_byte_identical_across_processes():
    """The same spec's graph must fingerprint identically in a fresh process."""
    spec = make_spec()
    local_fp = graph_fingerprint(spec.source.resolve())
    script = (
        "import sys, json\n"
        "from repro.runtime import JobSpec\n"
        "from repro.graphs import graph_fingerprint\n"
        "spec = JobSpec.from_json(sys.stdin.read())\n"
        "print(graph_fingerprint(spec.source.resolve()))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        input=spec.to_json(),
        capture_output=True,
        text=True,
        check=True,
        env=subprocess_env(),
    )
    assert proc.stdout.strip() == local_fp


# ---------------------------------------------------------------------- #
# Result payload round trip (records serialization)
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("kind", ["mis", "matching"])
def test_result_payload_json_round_trip(kind):
    g = gnp_random_graph(70, 0.1, seed=2)
    if kind == "mis":
        res = maximal_independent_set(g)
    else:
        res = maximal_matching(g)
    meta, arrays = result_to_payload(res)
    # meta must survive a real JSON round trip
    meta = json.loads(json.dumps(meta))
    again = result_from_payload(meta, arrays)
    assert type(again) is type(res)
    assert again.iterations == res.iterations
    assert again.rounds == res.rounds
    assert again.rounds_by_category == res.rounds_by_category
    assert again.max_machine_words == res.max_machine_words
    assert again.space_limit == res.space_limit
    assert again.records == res.records
    assert again.fidelity_events == res.fidelity_events
    if kind == "mis":
        assert np.array_equal(again.independent_set, res.independent_set)
    else:
        assert np.array_equal(again.pairs, res.pairs)


def test_request_digest_is_the_solve_digest():
    """One digest function on both sides: ``JobSpec.solve_digest`` must be
    byte-identical to the public ``repro.api.request_digest``, and its
    historical formula, so existing on-disk caches keep their addresses."""
    import hashlib

    from repro.api import request_digest

    spec = make_spec(eps=0.6, overrides={"b": 2, "a": 1})
    assert request_digest(spec) == spec.solve_digest()
    payload = {
        "problem": spec.problem,
        "eps": spec.eps,
        "force": spec.force,
        "paper_rule": spec.paper_rule,
        "overrides": {k: v for k, v in spec.overrides},
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert spec.solve_digest() == hashlib.sha256(canonical.encode()).hexdigest()


def test_request_digest_bridges_facade_and_runtime():
    """A SolveRequest and the JobSpec naming the same runtime job digest
    identically — the coalescer and the result cache agree on 'same
    request' across the two surfaces."""
    from repro.api import SolveRequest, request_digest
    from repro.graphs import gnp_random_graph

    g = gnp_random_graph(30, 0.1, seed=0)
    req = SolveRequest(
        problem="mis", model="cclique", graph=g, eps=0.6,
        options={"charge_mode": "chps"},
    )
    spec = JobSpec(
        "cc_mis",
        GraphSource.generator("gnp_random_graph", n=30, p=0.1, seed=0),
        eps=0.6,
        overrides={"charge_mode": "chps"},
    )
    assert request_digest(req) == spec.solve_digest()
    # And param differences split them.
    req2 = SolveRequest(problem="mis", model="cclique", graph=g, eps=0.5)
    assert request_digest(req2) != request_digest(req)
