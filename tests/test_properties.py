"""Cross-cutting property-based tests (hypothesis) on algorithm invariants.

These tie the whole stack together: for arbitrary random graphs, the
deterministic algorithms must (a) be correct, (b) be reproducible, (c) agree
with classical combinatorial relationships between MIS, matching, vertex
cover, and coloring.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import greedy_matching, greedy_mis
from repro.core import (
    deterministic_coloring,
    deterministic_maximal_matching,
    deterministic_mis,
    deterministic_vertex_cover,
    is_vertex_cover,
)
from repro.graphs import Graph, gnp_random_graph
from repro.verify import verify_matching_pairs, verify_mis_nodes

graph_strategy = st.builds(
    gnp_random_graph,
    n=st.integers(2, 50),
    p=st.floats(0.0, 0.4),
    seed=st.integers(0, 10_000),
)

edge_list_strategy = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40
).map(lambda edges: Graph.from_edges(15, edges))


@given(graph_strategy)
@settings(max_examples=15)
def test_mis_correct_on_arbitrary_gnp(g):
    res = deterministic_mis(g)
    assert verify_mis_nodes(g, res.independent_set)


@given(graph_strategy)
@settings(max_examples=15)
def test_matching_correct_on_arbitrary_gnp(g):
    res = deterministic_maximal_matching(g)
    assert verify_matching_pairs(g, res.pairs)


@given(edge_list_strategy)
@settings(max_examples=15)
def test_mis_correct_on_arbitrary_edge_lists(g):
    res = deterministic_mis(g)
    assert verify_mis_nodes(g, res.independent_set)


@given(edge_list_strategy)
@settings(max_examples=15)
def test_matching_correct_on_arbitrary_edge_lists(g):
    res = deterministic_maximal_matching(g)
    assert verify_matching_pairs(g, res.pairs)


@given(graph_strategy)
@settings(max_examples=10)
def test_mis_size_within_classical_bounds(g):
    """Any two maximal independent sets differ by at most a Delta factor;
    compare against the greedy oracle."""
    det = deterministic_mis(g).independent_set
    gre = greedy_mis(g)
    delta = max(g.max_degree(), 1)
    assert len(det) <= delta * len(gre) + 1
    assert len(gre) <= delta * len(det) + 1


@given(graph_strategy)
@settings(max_examples=10)
def test_maximal_matchings_within_factor_two(g):
    """Any maximal matching is a 2-approx of maximum matching, so two
    maximal matchings are within a factor 2 of each other."""
    det = deterministic_maximal_matching(g).pairs.shape[0]
    gre = greedy_matching(g).shape[0]
    if det or gre:
        assert det <= 2 * gre
        assert gre <= 2 * det


@given(graph_strategy)
@settings(max_examples=10)
def test_vertex_cover_vs_matching_duality(g):
    """|M| <= |VC_opt| <= |our cover| = 2|M| (weak LP duality, realized)."""
    vc = deterministic_vertex_cover(g)
    assert is_vertex_cover(g, vc.cover)
    assert vc.size == 2 * vc.matching.pairs.shape[0]


@given(st.integers(2, 30), st.integers(0, 1000))
@settings(max_examples=10)
def test_coloring_proper_on_random(n, seed):
    g = gnp_random_graph(n, 0.25, seed=seed)
    res = deterministic_coloring(g)
    if g.m:
        assert np.all(res.colors[g.edges_u] != res.colors[g.edges_v])
    assert res.num_colors <= g.max_degree() + 1


@given(graph_strategy)
@settings(max_examples=8)
def test_mis_plus_neighbors_covers_graph(g):
    """MIS domination: every node is in the MIS or adjacent to it."""
    res = deterministic_mis(g)
    mask = res.mis_mask(g.n)
    dominated = g.degrees_toward(mask) > 0
    assert np.all(mask | dominated)


@given(graph_strategy)
@settings(max_examples=8)
def test_run_records_are_consistent(g):
    """The trace must account exactly for the edge count evolution."""
    res = deterministic_mis(g)
    prev = g.m
    for rec in res.records:
        assert rec.edges_before == prev
        prev = rec.edges_after
    assert prev == 0 or not res.records
