#!/usr/bin/env python
"""Aggregate every ``BENCH_*.json`` artifact into one ``BENCH_summary.json``.

Each bench already writes a machine-readable ``BENCH_<name>.json`` via
``benchmarks/_common.emit_json``; this script merges them (per bench, per
case: the winning backend, its best wall time, and the case's speedup /
parity flags) so dashboards and the CI artifact consumer read a single
file instead of N.  Run after the bench-smoke sweep::

    python scripts/bench_report.py [--results-dir benchmarks/results]

Exit status is 0 even when some artifacts are unreadable (they are listed
under ``unreadable`` in the summary); it is 1 only when there is nothing
to merge at all — an empty sweep is a broken sweep.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from _common import emit_json, summarize_results  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--results-dir",
        default=str(Path(__file__).resolve().parent.parent / "benchmarks" / "results"),
        help="directory holding the BENCH_*.json artifacts",
    )
    args = ap.parse_args(argv)

    summary = summarize_results(Path(args.results_dir))
    if not summary["benches"]:
        print(f"no BENCH_*.json artifacts under {args.results_dir}", file=sys.stderr)
        return 1
    for bench, rec in summary["benches"].items():
        print(f"{bench} [{rec['mode']}] ({rec['source']})")
        for case, info in rec["cases"].items():
            extra = ""
            if "speedup" in info:
                extra += f"  speedup={info['speedup']:.2f}x"
            if "identical" in info:
                extra += f"  identical={info['identical']}"
            print(
                f"  {case}: best={info['best_backend']} "
                f"({info['best_s'] * 1e3:.2f}ms){extra}"
            )
    for name in summary.get("unreadable", ()):
        print(f"unreadable artifact skipped: {name}", file=sys.stderr)
    emit_json("summary", summary)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
