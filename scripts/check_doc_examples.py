#!/usr/bin/env python
"""Run the fenced ``python`` / ``console`` examples in the prose docs.

Doc rot is a correctness bug here: README.md's examples are the de facto
API contract, so CI executes them.  For each file checked:

* ```` ```python ```` blocks are executed in order, all sharing one
  namespace per file (README's quickstart defines ``g``; later blocks
  reuse it — exactly how a reader pasting into one REPL session
  experiences them);
* ```` ```console ```` blocks run their ``$ ``-prefixed lines through the
  shell with ``PYTHONPATH=src`` set;
* ```` ```bash ```` blocks are *not* run (they include non-hermetic
  commands like ``git clone``) — use ``console`` for shell examples that
  must stay runnable.

Everything executes from a scratch working directory (artifact-producing
examples — ``.repro-cache``, reports — land there, not in the repo) with
``src/`` on ``sys.path``.  Usage::

    python scripts/check_doc_examples.py [README.md DESIGN.md ...]
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_FILES = ("README.md", "DESIGN.md")

FENCE_RE = re.compile(
    r"^```(\w+)[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def extract_blocks(text: str) -> list[tuple[str, str, int]]:
    """``(language, body, line_number)`` for every fenced block."""
    blocks = []
    for match in FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        blocks.append((match.group(1).lower(), match.group(2), line))
    return blocks


def run_python_block(body: str, namespace: dict, where: str) -> str | None:
    """Exec one block in the file's shared namespace; returns an error."""
    try:
        exec(compile(body, where, "exec"), namespace)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        return f"{type(exc).__name__}: {exc}"
    return None


def run_console_block(body: str, env: dict, where: str) -> str | None:
    """Run each ``$ ``-prefixed line through the shell; returns an error."""
    for raw in body.splitlines():
        line = raw.strip()
        if not line.startswith("$ "):
            continue  # output lines / comments are illustration
        cmd = line[2:]
        proc = subprocess.run(
            cmd, shell=True, env=env, capture_output=True, text=True
        )
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-3:]
            return (
                f"`{cmd}` exited {proc.returncode}: " + " | ".join(tail)
            )
    return None


def check_file(path: Path, workdir: Path) -> list[str]:
    """Run every python/console block in ``path``; returns failures."""
    text = path.read_text()
    namespace: dict = {"__name__": f"doc_examples_{path.stem}"}
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    failures = []
    ran = 0
    for lang, body, line in extract_blocks(text):
        if lang not in ("python", "console"):
            continue
        where = f"{path.name}:{line}"
        if lang == "python":
            error = run_python_block(body, namespace, where)
        else:
            error = run_console_block(body, env, where)
        ran += 1
        if error:
            failures.append(f"{where} [{lang}] {error}")
            print(f"  FAIL {where} [{lang}] {error}")
        else:
            print(f"  ok   {where} [{lang}]")
    print(f"{path.name}: {ran} blocks run, {len(failures)} failed")
    return failures


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv] or [REPO / f for f in DEFAULT_FILES]
    sys.path.insert(0, str(REPO / "src"))
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="doc-examples-") as scratch:
        old_cwd = os.getcwd()
        os.chdir(scratch)
        try:
            for path in files:
                failures += check_file(path, Path(scratch))
        finally:
            os.chdir(old_cwd)
    if failures:
        print(f"{len(failures)} doc example(s) failed")
        return 1
    print("all doc examples run clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
