"""Batched vs scalar seed-search engine: timing, parity, regression gate.

For each case the bench runs the same natively-batched objective through
the ``scalar`` seed backend (one seed per objective call -- the serial
behaviour of the pre-batching engine) and the ``batched`` backend (seed
blocks with geometric ramp + early exit), asserts the two
:class:`~repro.derand.strategies.SeedSelection` outcomes are *identical*
(the backends are bit-equivalent by design) and reports the speedup.

Cases
-----
``stage_scan``      full-budget stage goodness scan (the Sections-3.2/4.2
                    all-machines-good search) -- the acceptance case: the
                    full run must show >= 5x at n=10k
``stage_cond_exp``  conditional-expectation descent over an enumerable
                    family on the same goodness objective
``stage_best_of``   best-of-prefix on the same objective
``lowdeg_e2e``      end-to-end ``lowdeg_mis`` with stressed targets (every
                    phase exhausts its scan budget, so seed scanning
                    dominates), scalar vs batched backend

Modes
-----
``--smoke``            small instances (CI-sized, a few seconds end to end)
default (full)         ``n = 10_000``; prints the >= 5x acceptance line
``--check PATH``       compare speedups against a baseline JSON; exit 1 on
                       a > 2x regression of a gated case or any parity
                       failure (the CI bench-smoke gate)
``--write-baseline [PATH]``
                       refresh the checked-in baseline from this run

Artifacts: ``benchmarks/results/BENCH_seed_search.json``; the checked-in
baseline lives at ``benchmarks/baselines/BENCH_seed_search_baseline.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import (  # noqa: E402
    check_speedup_regression,
    emit_json,
    speedup_case,
    write_speedup_baseline,
)

from repro.core import Params, lowdeg_mis  # noqa: E402
from repro.core.stage import MachineGroupSpec, StageGoodness  # noqa: E402
from repro.derand.strategies import select_seed_batch  # noqa: E402
from repro.graphs import gnp_random_graph, random_regular_graph  # noqa: E402
from repro.hashing.kwise import make_family  # noqa: E402
from repro.mpc.partition import chunk_items_by_group  # noqa: E402

BASELINE_PATH = (
    Path(__file__).parent / "baselines" / "BENCH_seed_search_baseline.json"
)

#: Fail --check when a case's speedup drops below baseline / this factor.
REGRESSION_FACTOR = 2.0

#: Cases whose smoke-size runtimes are large enough for a stable speedup
#: ratio on shared CI runners; the rest are still run and parity-checked.
GATED_CASES = ("stage_scan",)


def _case(name, scalar_fn, batched_fn, same_fn, repeats, meta):
    return speedup_case(
        name, scalar_fn, batched_fn, same_fn, repeats, meta,
        labels=("scalar", "batched"),
    )


def _make_stage_goodness(
    n: int, avg_deg: float, seed: int, k: int = 4, min_q: int = 257
):
    """A realistic stage search instance: type-A machine goodness on a gnp."""
    g = gnp_random_graph(n, avg_deg / n, seed=seed)
    params = Params()
    family = make_family(n, k=k, min_q=min_q)
    eids = np.arange(g.m, dtype=np.int64) % family.q
    spec = MachineGroupSpec(
        name="A",
        grouping=chunk_items_by_group(
            g.edges_u.astype(np.int64), params.chunk_size(n)
        ),
        unit_ids=eids,
    )
    threshold = family.threshold(params.sample_prob(n))
    p_real = threshold / family.range
    mus = [p_real * spec.weight_totals()]
    base = [np.sqrt(spec.grouping.loads.astype(np.float64)) + 1.0]
    goodness = StageGoodness(family, threshold, [spec], mus, base)
    total = float(spec.grouping.num_machines)
    return family, goodness, total, {"n": g.n, "m": g.m}


def _stage_scan_case(n, avg_deg, seed, max_trials, repeats):
    family, goodness, total, meta = _make_stage_goodness(n, avg_deg, seed)
    kw = dict(
        strategy="scan",
        target=total + 1.0,  # unreachable: the scan runs its full budget
        max_trials=max_trials,
        start=1,
    )

    def run(backend):
        # fresh goodness state per backend is unnecessary: counts are pure
        return select_seed_batch(
            family.size, lambda s: goodness.counts(s, 1.0), backend=backend, **kw
        )

    return _case(
        "stage_scan",
        lambda: run("scalar"),
        lambda: run("batched"),
        lambda a, b: a == b,
        repeats,
        {**meta, "trials": max_trials},
    )


def _stage_enum_case(name, strategy, n, avg_deg, seed, repeats, **extra):
    # Enumerable family (k=2 over a small field) for the literal
    # Section-2.4 descent / best-of ablations.
    family, goodness, total, meta = _make_stage_goodness(
        n, avg_deg, seed, k=2, min_q=5
    )
    kw = dict(strategy=strategy, target=total + 1.0, **extra)

    def run(backend):
        return select_seed_batch(
            family.size, lambda s: goodness.counts(s, 1.0), backend=backend, **kw
        )

    return _case(
        name,
        lambda: run("scalar"),
        lambda: run("batched"),
        lambda a, b: a == b,
        repeats,
        meta,
    )


def _lowdeg_e2e_case(n, repeats):
    g = random_regular_graph(n, 4, seed=7)
    # Stressed targets: every phase misses and exhausts max_scan_trials, so
    # the run is seed-scan-bound -- the regime the batched engine targets.
    def run(backend):
        return lowdeg_mis(g, Params(target_safety=2000.0, seed_backend=backend))

    def same(a, b):
        return (
            np.array_equal(a.independent_set, b.independent_set)
            and [r.selection_trials for r in a.records]
            == [r.selection_trials for r in b.records]
            and [r.selection_value for r in a.records]
            == [r.selection_value for r in b.records]
        )

    return _case(
        "lowdeg_e2e",
        lambda: run("scalar"),
        lambda: run("batched"),
        same,
        repeats,
        {"n": g.n, "m": g.m},
    )


def run(mode: str, seed: int) -> dict:
    if mode == "smoke":
        n, avg_deg, trials, repeats = 400, 10, 256, 3
        n_enum, n_lowdeg = 60, 400
    else:
        n, avg_deg, trials, repeats = 10_000, 8, 512, 3
        n_enum, n_lowdeg = 150, 10_000
    cases = dict(
        [
            _stage_scan_case(n, avg_deg, seed, trials, repeats),
            _stage_enum_case(
                "stage_cond_exp",
                "conditional_expectation",
                n_enum,
                10,
                seed,
                repeats,
                enumeration_cap=1 << 17,
            ),
            _stage_enum_case(
                "stage_best_of", "best_of", n_enum, 10, seed, repeats,
                best_of_k=512,
            ),
            _lowdeg_e2e_case(n_lowdeg, repeats),
        ]
    )
    return {"mode": mode, "cases": cases}


def check_regression(payload: dict, baseline_path: Path) -> list[str]:
    """Gate failures (empty = green); see :func:`check_speedup_regression`."""
    return check_speedup_regression(
        payload,
        baseline_path,
        GATED_CASES,
        REGRESSION_FACTOR,
        "batched and scalar outcomes DIVERGED",
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small CI-sized run")
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument(
        "--check", metavar="PATH", help="regression-gate against a baseline JSON"
    )
    ap.add_argument(
        "--write-baseline",
        nargs="?",
        const=str(BASELINE_PATH),
        metavar="PATH",
        help="write this run's speedups as the new baseline",
    )
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    payload = run(mode, args.seed)

    width = max(len(k) for k in payload["cases"])
    print(f"seed-search benchmark [{mode}]")
    for name, case in payload["cases"].items():
        print(
            f"  {name:<{width}}  scalar={case['scalar_s'] * 1e3:9.2f}ms  "
            f"batched={case['batched_s'] * 1e3:9.2f}ms  "
            f"speedup={case['speedup']:7.2f}x  identical={case['identical']}"
        )
    if mode == "full":
        scan = payload["cases"]["stage_scan"]
        ok = scan["speedup"] >= 5.0
        payload["acceptance_stage_scan_5x"] = bool(ok)
        print(
            f"acceptance: batched stage seed scan at n=10k is "
            f"{scan['speedup']:.1f}x (>= 5x required): {'PASS' if ok else 'FAIL'}"
        )
        e2e = payload["cases"]["lowdeg_e2e"]
        ok2 = e2e["speedup"] > 1.0
        payload["acceptance_lowdeg_e2e_faster"] = bool(ok2)
        print(
            f"acceptance: scan-bound lowdeg pipeline batched vs scalar is "
            f"{e2e['speedup']:.2f}x (> 1x required): {'PASS' if ok2 else 'FAIL'}"
        )
    emit_json("seed_search", payload)

    if args.write_baseline:
        write_speedup_baseline(Path(args.write_baseline), payload, GATED_CASES)

    if args.check:
        problems = check_regression(payload, Path(args.check))
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print("regression gate: green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
