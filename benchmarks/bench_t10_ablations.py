"""T10 -- ablations over the design choices DESIGN.md calls out.

Three axes on a fixed workload:

* seed-selection strategy: scan (default) vs best_of vs the literal
  conditional-expectation machinery (small instance);
* sparsification family independence: c = 4 (paper) vs c = 2 (Chebyshev);
* degree-class granularity delta: eps/8 (paper) vs coarser eps/4.

All variants must stay correct; the table reports their cost profiles
(iterations, charged rounds, total seed-scan trials).
"""

from repro.analysis import render_table
from repro.core import Params, deterministic_mis
from repro.graphs import gnp_random_graph
from repro.verify import verify_mis_nodes

from _common import emit


def total_trials(res):
    return sum(rec.selection_trials for rec in res.records) + sum(
        s.trials for rec in res.records for s in rec.stages
    )


def run():
    g = gnp_random_graph(300, 0.15, seed=110)
    small = gnp_random_graph(40, 0.25, seed=111)
    rows = []

    for label, params, graph in [
        ("scan (default)", Params(), g),
        ("best_of", Params(strategy="best_of", best_of_k=24), g),
        ("cond-expectation", Params(strategy="conditional_expectation"), small),
        ("c=2 family", Params(c=2), g),
        ("c=6 family", Params(c=6), g),
        ("delta=eps/4", Params(delta=0.125), g),
        ("eps=0.75", Params(eps=0.75), g),
    ]:
        res = deterministic_mis(graph, params)
        ok = verify_mis_nodes(graph, res.independent_set)
        rows.append(
            (label, graph.n, ok, res.iterations, res.rounds, total_trials(res),
             len(res.fidelity_events))
        )
    return rows


def test_t10_ablations(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "T10  ablations: strategy / independence / granularity",
        ["variant", "n", "correct", "iters", "rounds", "scan trials", "fidelity"],
        rows,
        footnote="claim: every variant stays correct; costs shift as designed",
    )
    emit("t10_ablations", table)

    for row in rows:
        assert row[2], f"{row[0]} produced an invalid MIS"
    by_label = {r[0]: r for r in rows}
    # The conditional-expectation strategy enumerates whole families.
    assert by_label["cond-expectation"][5] > by_label["scan (default)"][5]
