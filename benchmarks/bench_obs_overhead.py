"""Tracing overhead: the disabled path must cost < 2% of a solve.

The observability layer guards every instrumentation site on the
module-global ``repro.obs.trace._TRACING`` boolean, so with ``REPRO_TRACE``
unset a solve pays one attribute-load-plus-branch per site crossing and
nothing else.  This bench makes that contract measurable:

1. **Disabled-path estimate** (the gated number): micro-time the guard
   check itself, count how many instrumentation sites a solve actually
   crosses (spans + ledger charges recorded by a traced run of the same
   solve), and bound the disabled overhead as ``crossings x guard_cost /
   untraced_wall``.  Direct A/B timing cannot see a few hundred
   nanoseconds inside a multi-millisecond solve; the product bound can,
   and it is deterministic enough to gate in CI.
2. **Enabled-path ratio** (informational): traced wall / untraced wall,
   reported so span-recording cost stays visible but never gated — the
   enabled path is opt-in.
3. **Structural counts** (regression-gated): spans and charge events per
   case are deterministic for a fixed seed.  The checked-in baseline
   pins them, so a change that silently multiplies the instrumentation
   (a span inside an inner loop) fails ``--check`` even though the
   disabled guard keeps the wall-time harmless.

Modes: ``--smoke`` (CI-sized) / default full; ``--check PATH`` gates
against a baseline; ``--write-baseline [PATH]`` refreshes it.
Artifacts: ``benchmarks/results/BENCH_obs.json``; baseline at
``benchmarks/baselines/BENCH_obs_baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import best_timing, emit_json  # noqa: E402

from repro.api import SolveRequest, solve  # noqa: E402
from repro.graphs import gnp_random_graph  # noqa: E402
from repro.obs import trace as obs_trace  # noqa: E402
from repro.obs import trace_capture  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_obs_baseline.json"

#: The ISSUE-level contract: disabled tracing costs < 2% of a solve.
OVERHEAD_LIMIT_PCT = 2.0

#: --check fails when a case's span/charge count drifts past this factor
#: from the baseline (instrumentation silently multiplied or vanished).
STRUCTURAL_FACTOR = 2.0


def _guard_cost_seconds(iters: int = 2_000_000) -> float:
    """Per-crossing cost of the ``_TRACING`` guard, measured disabled."""
    assert not obs_trace.is_tracing(), "guard must be timed on the off path"

    def loop(k: int) -> None:
        for _ in range(k):
            if obs_trace._TRACING:  # the exact expression the hot sites use
                raise AssertionError("tracing flipped on mid-measurement")

    loop(iters // 10)  # warm
    t0 = time.perf_counter()
    loop(iters)
    elapsed = time.perf_counter() - t0
    # Subtract the bare-loop floor so we charge the guard, not the range().
    t0 = time.perf_counter()
    for _ in range(iters):
        pass
    floor = time.perf_counter() - t0
    return max(elapsed - floor, 0.0) / iters


def _case(name: str, problem: str, model: str, n: int, p: float, repeats: int):
    g = gnp_random_graph(n, p, seed=11)
    req = lambda: SolveRequest(problem=problem, model=model, graph=g)  # noqa: E731

    untraced_s, res = best_timing(lambda: solve(req()), repeats)

    def traced():
        with trace_capture():
            return solve(req())

    traced_s, traced_res = best_timing(traced, repeats)
    spans = traced_res.trace or []
    charges = sum(
        1 for s in spans for ev in s["events"] if ev.get("name") == "charge"
    )
    # Every recorded span or charge is one crossing of a guarded site; the
    # sites that found nothing to record still cross the guard, so double
    # the count for a conservative bound.
    crossings = 2 * (len(spans) + charges)
    return name, {
        "problem": problem,
        "model": model,
        "n": g.n,
        "m": g.m,
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "traced_ratio": traced_s / untraced_s if untraced_s > 0 else 0.0,
        "spans": len(spans),
        "charges": charges,
        "crossings": crossings,
        "rounds": traced_res.rounds,
        "identical_rounds": bool(res.rounds == traced_res.rounds),
    }


def run(mode: str) -> dict:
    if mode == "smoke":
        repeats, sizes = 3, {"simulated": 400, "mpc-engine": 300, "cclique": 300}
    else:
        repeats, sizes = 5, {"simulated": 3000, "mpc-engine": 1500, "cclique": 1500}
    guard_s = _guard_cost_seconds()
    cases = dict(
        _case(f"mis_{model.replace('-', '_')}", "mis", model, n, 8.0 / n, repeats)
        for model, n in sizes.items()
    )
    for case in cases.values():
        case["disabled_overhead_pct"] = (
            100.0 * case["crossings"] * guard_s / case["untraced_s"]
            if case["untraced_s"] > 0
            else 0.0
        )
    worst = max(c["disabled_overhead_pct"] for c in cases.values())
    return {
        "mode": mode,
        "guard_ns": guard_s * 1e9,
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
        "worst_disabled_overhead_pct": worst,
        "disabled_overhead_ok": bool(worst < OVERHEAD_LIMIT_PCT),
        "cases": cases,
    }


def check_regression(payload: dict, baseline_path: Path) -> list[str]:
    """Gate failures (empty = green): overhead bound + structural drift."""
    problems = []
    if not payload["disabled_overhead_ok"]:
        problems.append(
            f"disabled-path overhead {payload['worst_disabled_overhead_pct']:.3f}% "
            f"exceeds the {OVERHEAD_LIMIT_PCT}% contract"
        )
    for name, case in payload["cases"].items():
        if not case["identical_rounds"]:
            problems.append(f"{name}: traced and untraced solves DIVERGED")
    try:
        baseline = json.loads(baseline_path.read_text())
    except OSError as exc:
        problems.append(f"baseline {baseline_path} unreadable: {exc}")
        return problems
    except json.JSONDecodeError as exc:
        problems.append(f"baseline {baseline_path} is not valid JSON: {exc}")
        return problems
    if baseline.get("mode") != payload["mode"]:
        problems.append(
            f"baseline was recorded in {baseline.get('mode')!r} mode but this "
            f"run is {payload['mode']!r}; refresh with --write-baseline"
        )
        return problems
    for name, base_case in baseline["cases"].items():
        cur = payload["cases"].get(name)
        if cur is None:
            problems.append(f"{name}: present in baseline but not run")
            continue
        for key in ("spans", "charges"):
            lo = base_case[key] / STRUCTURAL_FACTOR
            hi = base_case[key] * STRUCTURAL_FACTOR
            if not (lo <= cur[key] <= hi):
                problems.append(
                    f"{name}: {key} count {cur[key]} drifted outside "
                    f"[{lo:.0f}, {hi:.0f}] (baseline {base_case[key]})"
                )
    return problems


def write_baseline(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    slim = {
        "mode": payload["mode"],
        "cases": {
            k: {"spans": v["spans"], "charges": v["charges"]}
            for k, v in payload["cases"].items()
        },
    }
    path.write_text(json.dumps(slim, indent=2, sort_keys=True) + "\n")
    print(f"[baseline] wrote {path}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small CI-sized run")
    ap.add_argument(
        "--check", metavar="PATH", help="regression-gate against a baseline JSON"
    )
    ap.add_argument(
        "--write-baseline",
        nargs="?",
        const=str(BASELINE_PATH),
        metavar="PATH",
        help="write this run's structural counts as the new baseline",
    )
    args = ap.parse_args(argv)

    if obs_trace.is_tracing():
        print(
            "REPRO_TRACE is set; the disabled-path measurement requires it "
            "unset",
            file=sys.stderr,
        )
        return 2

    mode = "smoke" if args.smoke else "full"
    payload = run(mode)

    width = max(len(k) for k in payload["cases"])
    print(f"obs overhead benchmark [{mode}]  guard = {payload['guard_ns']:.1f}ns")
    for name, case in payload["cases"].items():
        print(
            f"  {name:<{width}}  untraced={case['untraced_s'] * 1e3:8.2f}ms  "
            f"spans={case['spans']:5d}  charges={case['charges']:5d}  "
            f"disabled={case['disabled_overhead_pct']:.4f}%  "
            f"traced={case['traced_ratio']:.2f}x"
        )
    verdict = "PASS" if payload["disabled_overhead_ok"] else "FAIL"
    print(
        f"acceptance: worst disabled-path overhead "
        f"{payload['worst_disabled_overhead_pct']:.4f}% "
        f"(< {OVERHEAD_LIMIT_PCT}% required): {verdict}"
    )
    emit_json("obs", payload)

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), payload)

    if args.check:
        problems = check_regression(payload, Path(args.check))
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print("regression gate: green")
        return 0
    return 0 if payload["disabled_overhead_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
