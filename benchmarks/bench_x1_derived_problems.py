"""X1 (extension) -- derived problems: vertex cover and (Delta+1)-coloring.

The paper positions MIS/matching as primitives; this bench measures the two
classical reductions built on top of them, inheriting the deterministic MPC
guarantees: 2-approximate vertex cover (with its exact duality certificate
|cover| = 2|M| <= 2 OPT) and (Delta+1)-coloring via MIS on ``G x K_{Δ+1}``.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import deterministic_coloring, deterministic_vertex_cover
from repro.core.derived import is_vertex_cover
from repro.graphs import gnp_random_graph, grid_graph, power_law_graph

from _common import emit


def run():
    vc_rows = []
    for name, g in [
        ("gnp", gnp_random_graph(500, 0.02, seed=150)),
        ("power-law", power_law_graph(500, 4, seed=151)),
        ("grid", grid_graph(20, 20)),
    ]:
        vc = deterministic_vertex_cover(g)
        assert is_vertex_cover(g, vc.cover)
        vc_rows.append(
            (name, g.n, g.m, vc.size, vc.lower_bound(),
             round(vc.size / max(vc.lower_bound(), 1), 2), vc.rounds)
        )
    col_rows = []
    for name, g in [
        ("grid", grid_graph(12, 12)),
        ("gnp", gnp_random_graph(80, 0.08, seed=152)),
    ]:
        col = deterministic_coloring(g)
        proper = bool(
            np.all(col.colors[g.edges_u] != col.colors[g.edges_v])
        ) if g.m else True
        col_rows.append(
            (name, g.n, g.max_degree() + 1, len(set(col.colors.tolist())),
             proper, col.product_n, col.product_m, col.rounds)
        )
    return vc_rows, col_rows


def test_x1_derived_problems(benchmark):
    vc_rows, col_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t1 = render_table(
        "X1a  2-approx vertex cover via deterministic maximal matching",
        ["graph", "n", "m", "cover", "|M| (<= OPT)", "ratio cert", "rounds"],
        vc_rows,
        footnote="claim: cover valid; size = 2|M| <= 2 OPT",
    )
    t2 = render_table(
        "X1b  (Delta+1)-coloring via MIS on G x K_{Delta+1}",
        ["graph", "n", "palette", "colors used", "proper", "product n",
         "product m", "rounds"],
        col_rows,
        footnote="claim: proper coloring, <= Delta + 1 colors",
    )
    emit("x1_derived_problems", t1 + "\n\n" + t2)

    for row in vc_rows:
        assert row[5] <= 2.0
    for row in col_rows:
        assert row[4] is True
        assert row[3] <= row[2]
