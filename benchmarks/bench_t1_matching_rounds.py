"""T1 -- Theorem 7: deterministic maximal matching in O(log n) MPC rounds.

Regenerates the theorem's quantitative content as a table: for a sweep of
G(n, p) inputs (constant average degree, so m = Theta(n)), the deterministic
algorithm's iteration count stays within the paper's explicit bound
``log_{1/(1 - delta/536)} m`` and the charged rounds grow linearly in
``log2 n`` (shape check via least-squares fit), tracking the randomized
Luby yardstick up to a constant factor.
"""

import numpy as np

from repro.analysis import fit_linear, matching_iteration_bound, render_table
from repro.baselines import luby_matching_randomized
from repro.core import Params, deterministic_maximal_matching
from repro.graphs import gnp_random_graph
from repro.verify import verify_matching_pairs

from _common import emit

SWEEP = [250, 500, 1000, 2000]


def run_sweep():
    params = Params()
    rows = []
    for n in SWEEP:
        g = gnp_random_graph(n, 8.0 / n, seed=101)
        det = deterministic_maximal_matching(g, params)
        assert verify_matching_pairs(g, det.pairs)
        rnd = luby_matching_randomized(g, seed=0)
        bound = matching_iteration_bound(g.m, params.delta_value)
        rows.append(
            (n, g.m, det.iterations, det.rounds, rnd.iterations, round(bound, 1))
        )
    return rows


def test_t1_matching_rounds(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = render_table(
        "T1  Theorem 7: maximal matching rounds, O(log n) scaling",
        ["n", "m", "det iters", "det rounds", "rand iters", "paper iter bound"],
        rows,
        footnote="claim: det iters <= bound; rounds ~ a*log2(n)+b",
    )
    fit = fit_linear([np.log2(r[1]) for r in rows], [r[2] for r in rows])
    table += (
        f"\niterations ~ {fit.slope:.2f} * log2(m) + {fit.intercept:.2f} "
        f"(r2={fit.r2:.3f}); charged rounds stay O(log n): "
        f"{rows[0][3]} -> {rows[-1][3]} across an 8x n range"
    )
    emit("t1_matching_rounds", table)

    for n, m, it, rounds, _, bound in rows:
        assert it <= bound, f"n={n}: iterations {it} exceed paper bound {bound}"
    # O(log n) shape: rounds grow sub-linearly in n (ratio n x8 -> rounds < x4).
    assert rows[-1][3] <= 4 * rows[0][3]
