"""T6 -- Theorems 7/14 space claims: O(n^eps) per machine, O(m + n^{1+eps})
total.

Runs both drivers across an n-sweep and tabulates the realised per-machine
high-water mark against ``S`` and the configured total budget.  A violation
would have raised during the run (the SpaceTracker is enforcing, not just
observing); the table documents the margins.
"""

from repro.analysis import render_table, total_space_bound
from repro.core import Params, deterministic_maximal_matching, deterministic_mis
from repro.graphs import gnp_random_graph

from _common import emit

SWEEP = [250, 500, 1000, 2000]


def run():
    params = Params()
    rows = []
    for n in SWEEP:
        g = gnp_random_graph(n, 8.0 / n, seed=66)
        mm = deterministic_maximal_matching(g, params)
        mi = deterministic_mis(g, params)
        total = total_space_bound(n, g.m, params.eps)
        rows.append(
            (n, g.m, mm.space_limit, mm.max_machine_words, mi.max_machine_words,
             total)
        )
    return rows


def test_t6_space(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "T6  space accounting: per-machine high-water vs S = 32 n^eps",
        ["n", "m", "S", "matching max words", "mis max words", "total budget"],
        rows,
        footnote="claim: max machine words <= S at every step (enforced)",
    )
    emit("t6_space", table)

    for row in rows:
        assert row[3] <= row[2]
        assert row[4] <= row[2]
    # S grows like n^0.5: quadrupling n doubles S (within rounding).
    assert rows[-1][2] <= 3.1 * rows[0][2]
