"""Runtime throughput: jobs/second across worker counts, cold vs warm cache.

Runs the fixed ``throughput-micro`` suite (20 small MIS/matching solves)
through the :class:`~repro.runtime.scheduler.Scheduler` at worker counts
{1, 2, 4}, each time twice against a fresh cache directory: the first pass
is cache-cold (every job solved), the immediate re-run is cache-warm (every
job served from the content-addressed store).  Emits both the human table
and the standard ``BENCH_runtime_throughput.json`` artifact.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.runtime import ResultCache, Scheduler, build_suite

from _common import emit, emit_json

WORKER_COUNTS = (1, 2, 4)
SUITE = "throughput-micro"


def run_throughput(base_dir: Path) -> tuple[list[tuple], dict]:
    specs = build_suite(SUITE)
    rows = []
    runs = []
    for workers in WORKER_COUNTS:
        cache = ResultCache(base_dir / f"w{workers}")
        sched = Scheduler(workers=workers, cache=cache)
        cold = sched.run(specs)
        warm = sched.run(specs)
        assert cold.all_ok, [r.error_message for r in cold.failures()]
        assert warm.all_ok, [r.error_message for r in warm.failures()]
        assert warm.stats.cache_hit_rate >= 0.95, warm.stats.to_dict()
        rows.append(
            (
                workers,
                len(specs),
                f"{cold.stats.wall_time:.3f}",
                f"{cold.stats.jobs_per_second:.1f}",
                f"{warm.stats.wall_time:.3f}",
                f"{warm.stats.jobs_per_second:.1f}",
                f"{warm.stats.cache_hit_rate:.0%}",
                f"{cold.stats.wall_time / max(warm.stats.wall_time, 1e-9):.1f}x",
            )
        )
        runs.append(
            {
                "workers": workers,
                "jobs": len(specs),
                "cold": cold.stats.to_dict(),
                "warm": warm.stats.to_dict(),
                "warm_speedup": cold.stats.wall_time
                / max(warm.stats.wall_time, 1e-9),
            }
        )
    payload = {"suite": SUITE, "runs": runs}
    return rows, payload


def _render(rows: list[tuple]) -> str:
    from repro.analysis import render_table

    return render_table(
        f"runtime throughput  suite={SUITE}",
        ["workers", "jobs", "cold s", "cold j/s", "warm s", "warm j/s",
         "hit rate", "speedup"],
        rows,
        footnote="warm = immediate re-run against the same result cache",
    )


def test_runtime_throughput(benchmark, tmp_path):
    rows, payload = benchmark.pedantic(
        run_throughput, args=(tmp_path,), rounds=1, iterations=1
    )
    emit("runtime_throughput", _render(rows))
    emit_json("runtime_throughput", payload)


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as td:
        rows, payload = run_throughput(Path(td))
    print(_render(rows))
    emit_json("runtime_throughput", payload)
