"""T5 -- Section 3.3 / 4.3: post-sparsification degrees fit 2-hop gathering.

The whole point of ``E*`` / ``Q'``: maximum degree O(n^{4 delta}) so that a
2-hop neighbourhood (O(n^{8 delta}) = O(n^eps) words) fits on one machine.
Tabulates, per workload: max degree in the sparsified structure vs the
``2 n^{4 delta}`` cap, and the realised maximum 2-hop words vs ``S``.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import (
    Params,
    good_nodes_matching,
    good_nodes_mis,
    sparsify_edges,
    sparsify_nodes,
)
from repro.graphs import complete_graph, gnp_random_graph, power_law_graph
from repro.mpc import MPCContext

from _common import emit

WORKLOADS = [
    ("K60", lambda: complete_graph(60)),
    ("gnp-dense", lambda: gnp_random_graph(300, 0.25, seed=55)),
    ("power-law", lambda: power_law_graph(500, 6, seed=56)),
]


def run():
    params = Params()
    rows = []
    for name, make in WORKLOADS:
        g = make()
        ctx = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
        cap = params.degree_cap(g.n)

        good_m = good_nodes_matching(g, params)
        res_e = sparsify_edges(g, good_m, params, ctx, [])
        d_star = g.degrees_within(res_e.e_star_mask)
        two_hop = np.zeros(g.n, dtype=np.int64)
        eids = np.nonzero(res_e.e_star_mask)[0]
        np.add.at(two_hop, g.edges_u[eids], d_star[g.edges_v[eids]] + 1)
        np.add.at(two_hop, g.edges_v[eids], d_star[g.edges_u[eids]] + 1)
        rows.append(
            (name, "E*", int(d_star.max()), round(cap, 1),
             int(two_hop[good_m.b_mask].max(initial=0)), ctx.S)
        )

        good_i = good_nodes_mis(g, params)
        res_n = sparsify_nodes(g, good_i, params, ctx, [])
        d_q = g.degrees_toward(res_n.q_prime_mask)
        dq_max = int(d_q[res_n.q_prime_mask].max(initial=0))
        # words for N_v gather: chunk * (1 + max internal degree)
        words = min(params.chunk_size(g.n), dq_max or 1) * (1 + dq_max)
        rows.append((name, "Q'", dq_max, round(cap, 1), words, ctx.S))
    return rows


def test_t5_degree_bound(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "T5  degree caps: sparsified degree <= O(n^{4 delta}); 2-hop fits S",
        ["graph", "struct", "max degree", "2 n^{4 delta}", "2-hop words", "S"],
        rows,
        footnote="claim: max degree within O(1) of cap; 2-hop words <= S",
    )
    emit("t5_degree_bound", table)

    for row in rows:
        assert row[2] <= 4 * row[3] + 4, f"{row[0]}/{row[1]} degree cap violated"
        assert row[4] <= row[5], f"{row[0]}/{row[1]} 2-hop does not fit S"
