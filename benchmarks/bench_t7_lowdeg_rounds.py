"""T7 -- Theorem 1 / Section 5: O(log Delta + log log n) rounds for
Delta <= n^{delta}-style inputs.

Two sweeps:

* Delta sweep at (roughly) fixed n: charged rounds grow ~linearly in
  log2(Delta) -- the O(log Delta) term;
* n sweep at fixed Delta: charged rounds grow only with log log n -- the
  preprocessing (r-hop gather) term.

Also cross-checks that the Section-5 path beats the general O(log n)
algorithm on the same inputs.
"""

import numpy as np

from repro.analysis import fit_linear, render_table
from repro.core import Params, deterministic_mis, lowdeg_mis
from repro.graphs import random_regular_graph
from repro.verify import verify_mis_nodes

from _common import emit


def run():
    params = Params()
    delta_rows = []
    for d in [3, 6, 12, 24]:
        g = random_regular_graph(1200, d, seed=77)
        res = lowdeg_mis(g, params)
        assert verify_mis_nodes(g, res.independent_set)
        gen = deterministic_mis(g, params)
        delta_rows.append(
            (g.n, d, res.iterations, res.stages_compressed, res.rounds, gen.rounds)
        )
    n_rows = []
    for n in [300, 1200, 4800]:
        g = random_regular_graph(n, 6, seed=78)
        res = lowdeg_mis(g, params)
        assert verify_mis_nodes(g, res.independent_set)
        n_rows.append((n, 6, res.iterations, res.stages_compressed, res.rounds))
    return delta_rows, n_rows


def test_t7_lowdeg_rounds(benchmark):
    delta_rows, n_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t1 = render_table(
        "T7a  Section 5: rounds vs Delta (n = 1200 regular graphs)",
        ["n", "Delta", "phases", "stages", "lowdeg rounds", "general rounds"],
        delta_rows,
        footnote="claim: rounds ~ O(log Delta); lowdeg < general path",
    )
    fit = fit_linear([np.log2(r[1]) for r in delta_rows], [r[4] for r in delta_rows])
    t1 += f"\nrounds ~ {fit.slope:.1f} * log2(Delta) + {fit.intercept:.1f} (r2={fit.r2:.3f})"
    t2 = render_table(
        "T7b  Section 5: rounds vs n (Delta = 6)",
        ["n", "Delta", "phases", "stages", "lowdeg rounds"],
        n_rows,
        footnote="claim: growth only via the O(log log n) preprocessing term",
    )
    emit("t7_lowdeg_rounds", t1 + "\n\n" + t2)

    for row in delta_rows:
        assert row[4] < row[5], "Section-5 path must beat the general path"
    # n x16 at fixed Delta: rounds grow by at most a small additive amount.
    assert n_rows[-1][4] <= n_rows[0][4] + 10
