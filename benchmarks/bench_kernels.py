"""Vectorized CSR kernels vs legacy paths: timing, parity, regression gate.

For each kernel the bench runs the ``legacy`` implementation (per-item
Python loops / per-iteration graph rebuilds) and the default ``csr``
implementation on the same instance, asserts the outputs are *identical*
(the backends are bit-equivalent by design) and reports the speedup.

Modes
-----
``--smoke``            small instances (CI-sized, a few seconds end to end)
default (full)         ``n = 10_000`` instances; prints the acceptance line
                       for the >= 5x vectorized-Luby-step criterion
``--check PATH``       after running, compare speedups against a baseline
                       JSON; exit 1 on a > 2x regression of any kernel or on
                       any parity failure (the CI bench-smoke gate)
``--write-baseline [PATH]``
                       refresh the checked-in baseline from this run

Artifacts: ``benchmarks/results/BENCH_kernels.json`` via the standard
emitter; the checked-in baseline lives at
``benchmarks/baselines/BENCH_kernels_baseline.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import (  # noqa: E402
    check_speedup_regression,
    emit_json,
    speedup_case,
    write_speedup_baseline,
)

from repro.baselines.greedy import greedy_mis  # noqa: E402
from repro.baselines.israeli_itai import israeli_itai_matching  # noqa: E402
from repro.baselines.luby import (  # noqa: E402
    luby_matching_randomized,
    luby_mis_randomized,
)
from repro.core.good_nodes import good_nodes_mis  # noqa: E402
from repro.core.params import Params  # noqa: E402
from repro.graphs import gnp_random_graph  # noqa: E402
from repro.graphs.coloring import _linial_step  # noqa: E402
from repro.graphs.power import square_graph  # noqa: E402
from repro.hashing.kwise import make_family  # noqa: E402
from repro.mpc.distributed_luby import _group_minima, _keyed_z  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_kernels_baseline.json"

#: Fail --check when a kernel's speedup drops below baseline / this factor.
REGRESSION_FACTOR = 2.0

#: Kernels whose smoke-size runtimes are large enough for a stable speedup
#: ratio on shared CI runners.  The sub-millisecond solver cases are still
#: run and parity-checked, but their ratios are too noisy to gate on.
GATED_KERNELS = ("luby_step_minz", "linial_step")


def _case(name, legacy_fn, csr_fn, same_fn, repeats, meta):
    return speedup_case(
        name, legacy_fn, csr_fn, same_fn, repeats, meta, labels=("legacy", "csr")
    )


def _minz_case(g, repeats):
    """The distributed-Luby selection kernel: per-source min z over arcs.

    This is the per-arc hot loop of ``mpc/distributed_luby.py`` -- the
    legacy path evaluates the hash one arc at a time; the vectorized path
    batches the evaluation and reduces per source segment.
    """
    n = max(g.n, 1)
    arcs = np.concatenate([g.edges_u * n + g.edges_v, g.edges_v * n + g.edges_u])
    arcs_list = [int(a) for a in arcs.tolist()]
    family = make_family(universe=n, k=2)
    seed = 7919 % family.size

    def legacy():
        mins: dict[int, int] = {}
        for arc in arcs_list:
            src, dst = divmod(arc, n)
            zd = int(family.evaluate(seed, np.array([dst]))[0]) * (n + 1) + dst
            if src not in mins or zd < mins[src]:
                mins[src] = zd
        return sorted(mins.items())

    def vectorized():
        src, dst = np.divmod(arcs, n)
        srcs, zmins = _group_minima(src, _keyed_z(family, seed, dst, n))
        return list(zip(srcs.tolist(), (int(z) for z in zmins.tolist())))

    return _case(
        "luby_step_minz",
        legacy,
        vectorized,
        lambda a, b: a == b,
        repeats,
        {"n": g.n, "m": g.m},
    )


def _linial_case(g, repeats):
    g2 = square_graph(g)
    colors = np.arange(g2.n, dtype=np.int64)
    palette = max(g2.n, 1)
    return _case(
        "linial_step",
        lambda: _linial_step(g2, colors, palette, backend="legacy"),
        lambda: _linial_step(g2, colors, palette, backend="csr"),
        lambda a, b: a[1] == b[1] and np.array_equal(a[0], b[0]),
        repeats,
        {"n": g2.n, "m": g2.m},
    )


def _solver_case(name, g, solve, same, repeats):
    return _case(
        name,
        lambda: solve(backend="legacy"),
        lambda: solve(backend="csr"),
        same,
        repeats,
        {"n": g.n, "m": g.m},
    )


def run(mode: str, seed: int) -> dict:
    if mode == "smoke":
        n, avg_deg, repeats = 400, 10, 3
    else:
        n, avg_deg, repeats = 10_000, 8, 3
    g = gnp_random_graph(n, avg_deg / n, seed=seed)

    def result_same(a, b):
        return (
            np.array_equal(a.solution, b.solution)
            and a.edge_trace == b.edge_trace
            and a.iterations == b.iterations
        )

    params = Params()
    cases = dict(
        [
            _minz_case(g, repeats),
            _linial_case(g, repeats),
            _solver_case(
                "luby_mis_solve",
                g,
                lambda backend: luby_mis_randomized(g, seed, backend=backend),
                result_same,
                repeats,
            ),
            _solver_case(
                "luby_matching_solve",
                g,
                lambda backend: luby_matching_randomized(g, seed, backend=backend),
                result_same,
                repeats,
            ),
            _solver_case(
                "israeli_itai_solve",
                g,
                lambda backend: israeli_itai_matching(g, seed, backend=backend),
                result_same,
                repeats,
            ),
            _solver_case(
                "greedy_mis_solve",
                g,
                lambda backend: greedy_mis(g, backend=backend),
                lambda a, b: np.array_equal(a, b),
                repeats,
            ),
            _solver_case(
                "good_nodes_mis",
                g,
                lambda backend: good_nodes_mis(g, params, backend=backend),
                lambda a, b: a.i_star == b.i_star
                and np.array_equal(a.b_mask, b.b_mask)
                and np.array_equal(a.a_mask, b.a_mask),
                repeats,
            ),
        ]
    )
    return {"mode": mode, "graph": {"n": g.n, "m": g.m}, "cases": cases}


def check_regression(payload: dict, baseline_path: Path) -> list[str]:
    """Gate failures (empty = green); see :func:`check_speedup_regression`."""
    return check_speedup_regression(
        payload,
        baseline_path,
        GATED_KERNELS,
        REGRESSION_FACTOR,
        "csr and legacy outputs DIVERGED",
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small CI-sized run")
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument(
        "--check",
        metavar="PATH",
        help="regression-gate against a baseline JSON",
    )
    ap.add_argument(
        "--write-baseline",
        nargs="?",
        const=str(BASELINE_PATH),
        metavar="PATH",
        help="write this run's speedups as the new baseline",
    )
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    payload = run(mode, args.seed)

    width = max(len(k) for k in payload["cases"])
    print(f"kernel benchmark [{mode}] on {payload['graph']}")
    for name, case in payload["cases"].items():
        print(
            f"  {name:<{width}}  legacy={case['legacy_s'] * 1e3:9.2f}ms  "
            f"csr={case['csr_s'] * 1e3:9.2f}ms  speedup={case['speedup']:7.2f}x  "
            f"identical={case['identical']}"
        )
    if mode == "full":
        step = payload["cases"]["luby_step_minz"]
        ok = step["speedup"] >= 5.0
        payload["acceptance_luby_step_5x"] = bool(ok)
        print(
            f"acceptance: vectorized Luby step at n=10k is "
            f"{step['speedup']:.1f}x (>= 5x required): {'PASS' if ok else 'FAIL'}"
        )
    emit_json("kernels", payload)

    if args.write_baseline:
        write_speedup_baseline(Path(args.write_baseline), payload, GATED_KERNELS)

    if args.check:
        problems = check_regression(payload, Path(args.check))
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print("regression gate: green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
