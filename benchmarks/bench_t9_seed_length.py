"""T9 -- Section 5.1: seed length O(log Delta) via distance-2 coloring.

The renaming trick: hash *colors* of an O(Delta^4)-ish coloring of G^2
instead of ids, shrinking each phase's seed from O(log n) to O(log Delta)
bits.  Tabulates, across an n-sweep at fixed Delta: the Linial palette size,
the color-seed bits actually used by the Section-5 driver, the id-seed bits
the general path would need, and the scan trials the batched seed-search
engine spent per phase (total across phases / phase count) -- the trial
column documents that the O(1)-expected-trials behaviour survives the
seed-block engine (the scans are driven through ``seed_backend='batched'``).
"""

from repro.analysis import render_table, seed_bits_ids
from repro.core import Params, lowdeg_mis
from repro.graphs import cycle_graph, random_regular_graph

from _common import emit


def _trials_per_phase(res) -> float:
    if not res.records:
        return 0.0
    return sum(r.selection_trials for r in res.records) / len(res.records)


def run():
    params = Params(seed_backend="batched")  # the seed-block engine
    rows = []
    for n in [500, 2000, 8000]:
        g = cycle_graph(n)  # Delta = 2: the friendliest Linial regime
        res = lowdeg_mis(g, params)
        rec_bits = res.records[0].seed_bits if res.records else 0
        rows.append(
            (
                "cycle", n, 2, res.num_colors, rec_bits, seed_bits_ids(n),
                res.iterations, round(_trials_per_phase(res), 2),
            )
        )
    for n in [500, 2000, 8000]:
        g = random_regular_graph(n, 4, seed=99)
        res = lowdeg_mis(g, params)
        rec_bits = res.records[0].seed_bits if res.records else 0
        rows.append(
            (
                "reg-4", n, g.max_degree(), res.num_colors, rec_bits,
                seed_bits_ids(n), res.iterations,
                round(_trials_per_phase(res), 2),
            )
        )
    return rows


def test_t9_seed_length(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "T9  Section 5.1: per-phase seed bits, colors vs ids",
        [
            "graph", "n", "Delta", "colors", "color-seed bits",
            "id-seed bits", "phases", "trials/phase",
        ],
        rows,
        footnote=(
            "claim: color seeds depend on Delta (via the palette), not n; "
            "trials/phase stays O(1) under the batched seed-block engine"
        ),
    )
    emit("t9_seed_length", table)

    # At the largest n the color seed must beat the id seed...
    last_cycle = [r for r in rows if r[0] == "cycle"][-1]
    assert last_cycle[4] < last_cycle[5]
    # ...and the palette must be far below n (Linial actually reduced).
    assert last_cycle[3] < last_cycle[1] / 4
    # Palette roughly stable across the n-sweep (Delta-dependent, not n).
    cycles = [r for r in rows if r[0] == "cycle"]
    assert cycles[-1][3] <= 4 * cycles[0][3] + 64
    # Good seeds are abundant: the deterministic scans stay cheap even
    # though the engine could evaluate whole blocks per phase.
    for r in rows:
        assert r[7] <= 64.0, f"unexpectedly long scans: {r}"
