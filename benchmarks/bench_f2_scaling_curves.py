"""F2 -- figure: round-count growth curves (the Theorem-1 shape).

Two series: charged rounds vs log2 n for the general O(log n) drivers, and
charged rounds vs log2 Delta for the Section-5 driver, each with its linear
fit.  Together these are the "figure" version of T1/T2/T7.
"""

import numpy as np

from repro.analysis import fit_linear, render_series
from repro.core import Params, deterministic_mis, lowdeg_mis
from repro.graphs import gnp_random_graph, random_regular_graph

from _common import emit


def run():
    params = Params()
    ns, general_rounds = [], []
    for n in [250, 500, 1000, 2000]:
        g = gnp_random_graph(n, 8.0 / n, seed=130)
        general_rounds.append(deterministic_mis(g, params).rounds)
        ns.append(n)
    ds, lowdeg_rounds = [], []
    for d in [3, 6, 12, 24]:
        g = random_regular_graph(1000, d, seed=131)
        lowdeg_rounds.append(lowdeg_mis(g, params).rounds)
        ds.append(d)
    return ns, general_rounds, ds, lowdeg_rounds


def test_f2_scaling_curves(benchmark):
    ns, gen, ds, low = benchmark.pedantic(run, rounds=1, iterations=1)
    fit_n = fit_linear([np.log2(n) for n in ns], gen)
    fit_d = fit_linear([np.log2(d) for d in ds], low)
    out = render_series("F2a  general MIS rounds vs n", ns, gen, "n", "rounds")
    out += f"\nfit: rounds ~ {fit_n.slope:.1f} log2(n) + {fit_n.intercept:.1f} (r2={fit_n.r2:.3f})"
    out += "\n\n" + render_series(
        "F2b  Section-5 MIS rounds vs Delta (n=1000)", ds, low, "Delta", "rounds"
    )
    out += f"\nfit: rounds ~ {fit_d.slope:.1f} log2(Delta) + {fit_d.intercept:.1f} (r2={fit_d.r2:.3f})"
    emit("f2_scaling_curves", out)

    # Shapes: sub-linear absolute growth across an 8x n (and Delta) range.
    assert gen[-1] <= 4 * gen[0]
    assert low[-1] <= 4 * low[0] + 8
