"""X2 (extension) -- CONGEST: the conclusion's prediction, measured.

The paper closes: the sparsification/seed-compression method "will prove
useful for derandomizing many more problems in low space or limited
bandwidth models (e.g., the CONGEST model)".  This bench quantifies it:
derandomized Luby MIS in CONGEST with id-based voting
(Theta(D log n)/phase) vs the Section-5 color-compressed seeds
(Theta(D log Delta)/phase after O(log* n) coloring), across diameters and
degrees.
"""

from repro.analysis import render_table
from repro.congest import congest_mis
from repro.graphs import cycle_graph, grid_graph, random_regular_graph
from repro.verify import verify_mis_nodes

from _common import emit


def run():
    rows = []
    for name, g in [
        ("cycle-200", cycle_graph(200)),
        ("grid-14x14", grid_graph(14, 14)),
        ("reg6-400", random_regular_graph(400, 6, seed=160)),
    ]:
        cc = congest_mis(g, mode="color-compressed")
        vt = congest_mis(g, mode="voting")
        assert verify_mis_nodes(g, cc.independent_set)
        assert verify_mis_nodes(g, vt.independent_set)
        rows.append(
            (name, g.n, g.max_degree(), cc.bfs_depth, cc.phases,
             cc.seed_bits_per_phase, vt.seed_bits_per_phase,
             cc.rounds, vt.rounds, round(vt.rounds / max(cc.rounds, 1), 2))
        )
    return rows


def test_x2_congest(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "X2  CONGEST extension: color-compressed seeds vs id voting",
        ["graph", "n", "Delta", "D", "phases", "bits/phase (cc)",
         "bits/phase (vote)", "rounds (cc)", "rounds (vote)", "speedup"],
        rows,
        footnote="claim: per-phase seed bits O(log Delta) vs O(log n); "
        "rounds shrink accordingly (the conclusion's prediction)",
    )
    emit("x2_congest", table)

    for row in rows:
        assert row[5] < row[6], "color seeds must be shorter"
        assert row[7] < row[8], "color compression must save rounds"
        assert row[9] >= 1.3
