"""T4 -- Sections 3.2 / 4.2: stage invariants of the sparsification.

For dense inputs (chosen class i > 4 so real stages run), tabulates per
stage j: measured degree decay vs the ideal ``n^{-j delta}``, the implied
per-node bound ratios (<= 1 certifies invariant (i); >= 1 certifies
invariant (ii)), the realised slack multiplier kappa, and the seed-scan
effort.  This is the executable version of Lemmas 10/11/17/18.
"""

from repro.analysis import render_table
from repro.core import (
    Params,
    good_nodes_matching,
    good_nodes_mis,
    sparsify_edges,
    sparsify_nodes,
)
from repro.graphs import complete_graph, gnp_random_graph
from repro.mpc import MPCContext

from _common import emit


def run():
    params = Params()
    rows = []
    for name, g in [
        ("K60", complete_graph(60)),
        ("gnp-dense", gnp_random_graph(300, 0.25, seed=44)),
    ]:
        good_m = good_nodes_matching(g, params)
        ctx = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
        res_e = sparsify_edges(g, good_m, params, ctx, [])
        for s in res_e.stages:
            rows.append(
                (
                    name, "edges", s.stage, s.items_before, s.items_after,
                    round(s.degree_decay_measured, 4),
                    round(s.degree_decay_ideal, 4),
                    round(s.degree_bound_ratio, 3),
                    round(s.retention_bound_ratio, 3)
                    if s.retention_bound_ratio != float("inf") else "inf",
                    round(s.slack_kappa, 2), s.trials, s.all_good,
                )
            )
        good_i = good_nodes_mis(g, params)
        ctx2 = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
        res_n = sparsify_nodes(g, good_i, params, ctx2, [])
        for s in res_n.stages:
            rows.append(
                (
                    name, "nodes", s.stage, s.items_before, s.items_after,
                    round(s.degree_decay_measured, 4),
                    round(s.degree_decay_ideal, 4),
                    round(s.degree_bound_ratio, 3),
                    round(s.retention_bound_ratio, 3)
                    if s.retention_bound_ratio != float("inf") else "inf",
                    round(s.slack_kappa, 2), s.trials, s.all_good,
                )
            )
    return rows


def test_t4_invariants(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "T4  Lemmas 10/11/17/18: sparsification stage invariants",
        ["graph", "kind", "j", "before", "after", "decay meas", "decay ideal",
         "deg ratio", "ret ratio", "kappa", "trials", "all good"],
        rows,
        footnote="claim: all good => deg ratio <= 1 and ret ratio >= 1; "
        "decay tracks n^{-j delta}",
    )
    emit("t4_invariants", table)

    assert rows, "dense inputs must trigger sparsification stages"
    for row in rows:
        if row[11]:  # all_good
            assert row[7] <= 1.0 + 1e-9
            assert row[8] == "inf" or row[8] >= 1.0 - 1e-9
        # decay within a small factor of ideal per stage
        assert row[5] <= 3.0 * row[6] + 0.05
