"""Columnar vs legacy round-execution core: timing, parity, regression gate.

The columnar core (``repro.models`` + ``MPCEngine.round_packed``) moves
struct-of-arrays message planes through one argsort + ``searchsorted``
split per batch; the legacy object path dispatches every message through
the interpreter.  Both execute the *same* model schedule, so this bench
asserts bit-identical results (MIS ids, engine rounds, phases, degree
vectors) and reports the speedup per engine workload:

* ``luby_round_loop``   -- full ``distributed_luby_mis`` on the engine (the
  per-phase round loop is the hot path this PR vectorises)
* ``distributed_degrees`` -- the Section-3.1 sort + count skeleton
* ``sample_sort``       -- the Lemma-4 PSRS sort primitive alone

Modes
-----
``--smoke``            small instances (CI-sized, a couple of seconds)
default (full)         ``n = 10_000`` Luby loop; prints the acceptance line
                       for the >= 5x columnar-speedup criterion
``--check PATH``       compare speedups against a baseline JSON; exit 1 on
                       a > 2x regression of a gated case or any parity
                       failure (the CI bench-smoke gate)
``--write-baseline [PATH]``
                       refresh the checked-in baseline from this run

Artifacts: ``benchmarks/results/BENCH_round_engine.json``; the checked-in
baseline lives at ``benchmarks/baselines/BENCH_round_engine_baseline.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import (  # noqa: E402
    check_speedup_regression,
    emit_json,
    speedup_case,
    write_speedup_baseline,
)

from repro.graphs import gnp_random_graph  # noqa: E402
from repro.mpc import (  # noqa: E402
    MPCEngine,
    distributed_degrees,
    distributed_luby_mis,
    distributed_sort,
    distributed_sort_packed,
)

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_round_engine_baseline.json"

#: Fail --check when a case's speedup drops below baseline / this factor.
REGRESSION_FACTOR = 2.0

#: Cases whose runtimes are large enough for a stable ratio on shared CI
#: runners; the rest are still run and parity-checked.
GATED_CASES = ("luby_round_loop", "distributed_degrees")


def _case(name, legacy_fn, columnar_fn, same_fn, repeats, meta):
    return speedup_case(
        name, legacy_fn, columnar_fn, same_fn, repeats, meta,
        labels=("legacy", "columnar"),
    )


def _luby_same(a, b):
    return np.array_equal(a[0], b[0]) and a[1:] == b[1:]


def _luby_case(g, machines, space, repeats):
    return _case(
        "luby_round_loop",
        lambda: distributed_luby_mis(g, machines, space, engine_backend="legacy"),
        lambda: distributed_luby_mis(g, machines, space, engine_backend="columnar"),
        _luby_same,
        repeats,
        {"n": g.n, "m": g.m, "machines": machines, "space": space},
    )


def _degrees_case(g, machines, space, repeats):
    return _case(
        "distributed_degrees",
        lambda: distributed_degrees(g, machines, space, engine_backend="legacy"),
        lambda: distributed_degrees(g, machines, space, engine_backend="columnar"),
        lambda a, b: np.array_equal(a[0], b[0]) and a[1] == b[1],
        repeats,
        {"n": g.n, "m": g.m, "machines": machines, "space": space},
    )


def _sort_case(num_values, machines, space, repeats):
    rng = np.random.default_rng(11)
    values = rng.integers(0, 1 << 40, size=num_values).tolist()

    def legacy():
        eng = MPCEngine(num_machines=machines, space=space)
        eng.load_balanced(values)
        distributed_sort(eng)
        return eng.all_items()

    def columnar():
        eng = MPCEngine(num_machines=machines, space=space)
        eng.load_balanced(values)
        for mid in range(machines):
            eng.storage[mid] = [np.asarray(eng.storage[mid], dtype=np.int64)]
        distributed_sort_packed(eng)
        return np.concatenate(
            [it for st in eng.storage for it in st if isinstance(it, np.ndarray)]
        ).tolist()

    return _case(
        "sample_sort",
        legacy,
        columnar,
        lambda a, b: a == b,
        repeats,
        {"values": num_values, "machines": machines, "space": space},
    )


def run(mode: str, seed: int) -> dict:
    if mode == "smoke":
        n, avg_deg, machines, space, repeats = 400, 8, 8, 1 << 13, 3
        sort_values = 4_000
    else:
        n, avg_deg, machines, space, repeats = 10_000, 8, 32, 1 << 17, 3
        sort_values = 60_000
    g = gnp_random_graph(n, avg_deg / n, seed=seed)
    cases = dict(
        [
            _luby_case(g, machines, space, repeats),
            _degrees_case(g, machines, space, repeats),
            _sort_case(sort_values, machines, space, repeats),
        ]
    )
    return {"mode": mode, "graph": {"n": g.n, "m": g.m}, "cases": cases}


def check_regression(payload: dict, baseline_path: Path) -> list[str]:
    """Gate failures (empty = green); see :func:`check_speedup_regression`."""
    return check_speedup_regression(
        payload,
        baseline_path,
        GATED_CASES,
        REGRESSION_FACTOR,
        "columnar and legacy outputs DIVERGED",
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small CI-sized run")
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument(
        "--check",
        metavar="PATH",
        help="regression-gate against a baseline JSON",
    )
    ap.add_argument(
        "--write-baseline",
        nargs="?",
        const=str(BASELINE_PATH),
        metavar="PATH",
        help="write this run's speedups as the new baseline",
    )
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    payload = run(mode, args.seed)

    width = max(len(k) for k in payload["cases"])
    print(f"round-engine benchmark [{mode}] on {payload['graph']}")
    for name, case in payload["cases"].items():
        print(
            f"  {name:<{width}}  legacy={case['legacy_s'] * 1e3:9.2f}ms  "
            f"columnar={case['columnar_s'] * 1e3:9.2f}ms  "
            f"speedup={case['speedup']:7.2f}x  identical={case['identical']}"
        )
    if mode == "full":
        loop = payload["cases"]["luby_round_loop"]
        ok = loop["speedup"] >= 5.0
        payload["acceptance_luby_loop_5x"] = bool(ok)
        print(
            f"acceptance: columnar distributed_luby round loop at n=10k is "
            f"{loop['speedup']:.1f}x (>= 5x required): {'PASS' if ok else 'FAIL'}"
        )
        if not ok:
            return 1
    emit_json("round_engine", payload)

    if args.write_baseline:
        write_speedup_baseline(Path(args.write_baseline), payload, GATED_CASES)

    if args.check:
        problems = check_regression(payload, Path(args.check))
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print("regression gate: green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
