"""Performance kernels -- genuine wall-clock microbenchmarks.

Unlike the T*/F* benches (which regenerate paper claims with single-shot
pedantic runs), these use pytest-benchmark's repeated timing on the hot
kernels, so performance regressions in the vectorised substrate are caught:

* k-wise hash evaluation over 100k ids;
* one derandomized Luby matching objective evaluation;
* one full sparsification stage seed-scan;
* CSR graph construction from an edge array.
"""

import numpy as np

from repro.core import Params, good_nodes_matching
from repro.core.sparsify_edges import sparsify_edges
from repro.graphs import Graph, gnp_random_graph
from repro.hashing import make_family, make_product_family
from repro.mpc import MPCContext


def test_kernel_hash_evaluation(benchmark):
    fam = make_family(universe=100_000, k=4)
    xs = np.arange(100_000, dtype=np.int64)
    out = benchmark(lambda: fam.evaluate(12345, xs))
    assert out.shape == (100_000,)


def test_kernel_product_hash(benchmark):
    fam = make_product_family(100_000, k=2)
    xs = np.arange(100_000, dtype=np.int64)
    out = benchmark(lambda: fam.evaluate(98765 % fam.size, xs))
    assert out.shape == (100_000,)


def test_kernel_graph_construction(benchmark):
    rng = np.random.default_rng(0)
    edges = rng.integers(0, 5000, size=(40_000, 2))

    g = benchmark(lambda: Graph.from_edges(5000, edges))
    assert g.n == 5000


def test_kernel_luby_objective(benchmark):
    g = gnp_random_graph(2000, 0.01, seed=7)
    fam = make_product_family(g.m, k=2)
    eids = np.arange(g.m, dtype=np.int64)
    stride = np.uint64(g.m + 1)
    maxkey = np.uint64(2**63 - 1)
    deg = g.degrees().astype(np.float64)

    def one_objective():
        z = fam.evaluate(321 % fam.size, eids)
        key = z * stride + eids.astype(np.uint64)
        node_min = np.full(g.n, maxkey, dtype=np.uint64)
        np.minimum.at(node_min, g.edges_u, key)
        np.minimum.at(node_min, g.edges_v, key)
        matched = (key == node_min[g.edges_u]) & (key == node_min[g.edges_v])
        return float(deg[g.edges_u[matched]].sum() + deg[g.edges_v[matched]].sum())

    val = benchmark(one_objective)
    assert val > 0


def test_kernel_sparsify_stage(benchmark):
    g = gnp_random_graph(300, 0.25, seed=8)
    params = Params()
    good = good_nodes_matching(g, params)

    def one_sparsification():
        ctx = MPCContext(
            n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor
        )
        return sparsify_edges(g, good, params, ctx, [])

    res = benchmark(one_sparsification)
    assert res.num_edges > 0
