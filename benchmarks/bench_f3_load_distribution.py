"""F3 -- figure: machine-load distribution under the type-A/B distribution.

The paper's layout promises ``chunk = n^{4 delta}`` items on all but at most
one machine per node group.  This bench histograms realised loads for a
dense workload's first sparsification stage, and also exercises the literal
message-passing engine (Lemma 4 sort) to report its load high-water vs S.
"""

import numpy as np

from repro.analysis import render_series, render_table
from repro.core import Params, good_nodes_matching
from repro.graphs import gnp_random_graph
from repro.mpc import MPCEngine, chunk_items_by_group, distributed_sort

from _common import emit


def run():
    params = Params()
    g = gnp_random_graph(400, 0.2, seed=140)
    good = good_nodes_matching(g, params)
    eids = np.nonzero(good.e0_mask)[0]
    groups = np.concatenate([g.edges_u[eids], g.edges_v[eids]])
    chunk = params.chunk_size(g.n)
    grouping = chunk_items_by_group(groups, chunk)
    loads = grouping.loads

    # Literal engine: sort 600 keys on 8 machines of 256 words.
    eng = MPCEngine(num_machines=8, space=256)
    rng = np.random.default_rng(0)
    eng.load_balanced([int(x) for x in rng.integers(0, 10_000, size=600)])
    sort_rounds = distributed_sort(eng)
    return chunk, loads, eng.max_load_seen, sort_rounds


def test_f3_load_distribution(benchmark):
    chunk, loads, engine_hw, sort_rounds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    hist = np.bincount(loads, minlength=chunk + 1)
    out = render_series(
        "F3a  type-A machine load histogram (chunk = n^{4 delta})",
        list(range(len(hist))), hist.tolist(), "load", "machines",
    )
    full = int((loads == chunk).sum())
    out += "\n\n" + render_table(
        "F3b  layout + engine summary",
        ["chunk", "machines", "full machines", "max load", "engine sort rounds",
         "engine high-water"],
        [[chunk, loads.size, full, int(loads.max()), sort_rounds, engine_hw]],
        footnote="claim: at most one non-full machine per node group; "
        "sort O(1) rounds",
    )
    emit("f3_load_distribution", out)

    assert loads.max() <= chunk
    # 'all but at most one machine full' => non-full machines <= #groups.
    assert (loads < chunk).sum() <= np.unique(loads).size + 400
    assert sort_rounds == 3
