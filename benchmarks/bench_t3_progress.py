"""T3 -- Lemmas 13 & 21: per-iteration constant-fraction edge removal.

The engine of both O(log n) proofs: each derandomized iteration removes at
least ``delta |E| / 536`` (matching) / ``delta^2 |E| / 400`` (MIS) edges.
This bench measures the realised removal fraction distribution across
iterations and workloads and compares against the paper's guaranteed floor
-- measured progress should sit far above the (deliberately loose) paper
constants, and never below while the scan target was met.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import Params, deterministic_maximal_matching, deterministic_mis
from repro.graphs import gnp_random_graph, power_law_graph

from _common import emit

WORKLOADS = [
    ("gnp-sparse", lambda: gnp_random_graph(800, 6.0 / 800, seed=31)),
    ("gnp-dense", lambda: gnp_random_graph(400, 40.0 / 400, seed=32)),
    ("power-law", lambda: power_law_graph(800, 4, seed=33)),
]


def run():
    params = Params()
    rows = []
    for name, make in WORKLOADS:
        g = make()
        mm = deterministic_maximal_matching(g, params)
        mi = deterministic_mis(g, params)
        for algo, res, floor in (
            ("matching", mm, params.delta_value / 536.0),
            ("mis", mi, params.delta_value**2 / 400.0),
        ):
            fracs = [rec.removed_fraction for rec in res.records]
            sat = [rec.selection_satisfied for rec in res.records]
            rows.append(
                (
                    name,
                    algo,
                    len(fracs),
                    round(float(np.min(fracs)), 4),
                    round(float(np.mean(fracs)), 4),
                    round(float(np.max(fracs)), 4),
                    f"{floor:.2e}",
                    all(sat),
                )
            )
    return rows


def test_t3_progress(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "T3  Lemmas 13/21: per-iteration removed edge fraction",
        ["workload", "algo", "iters", "min", "mean", "max", "paper floor", "targets met"],
        rows,
        footnote="claim: min removed fraction >= paper floor whenever targets met",
    )
    emit("t3_progress", table)

    for row in rows:
        floor = float(row[6])
        if row[7]:  # all scan targets met
            assert row[3] >= floor, f"{row[0]}/{row[1]}: progress below paper floor"
        # Measured progress is orders of magnitude above the loose constants.
        assert row[4] >= 10 * floor
