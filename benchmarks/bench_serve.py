"""Serve-layer acceptance and overhead: coalescing, throughput, p95 latency.

Two cases against a *real* :class:`repro.serve.SolverService` (persistent
worker pool, result cache, live HTTP socket):

1. **coalesce** (hard acceptance, not baseline-relative): K identical
   concurrent ``POST /solve`` requests must all succeed while the
   scheduler executes **exactly one** job — the micro-batcher's job
   counter is the ground truth, since followers never reach it.  The
   ISSUE-level contract is K >= 4 requests resolved by one solve.
2. **throughput** (gated vs baseline): with the cache warmed, a sustained
   burst of requests from concurrent clients measures the service
   overhead path — HTTP parse, admission, coalesce lookup, micro-batch,
   cache hit, response — as requests/second plus p95 latency.  The gate
   catches a serve-layer slowdown without re-measuring solver speed
   (solver regressions have their own benches).

Modes: ``--smoke`` (CI-sized) / default full; ``--check PATH`` gates
against a baseline; ``--write-baseline [PATH]`` refreshes it.
Artifacts: ``benchmarks/results/BENCH_serve.json``; baseline at
``benchmarks/baselines/BENCH_serve_baseline.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_json  # noqa: E402

from repro.serve import SolverService  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_serve_baseline.json"

#: The ISSUE-level contract: at least this many identical concurrent
#: requests must come back from exactly one scheduler-executed solve.
COALESCE_FLOOR = 4

#: --check slack: shared CI runners wobble, so throughput may fall to
#: baseline / factor and p95 latency may rise to baseline * factor
#: before the gate trips.
THROUGHPUT_FACTOR = 3.0
LATENCY_FACTOR = 3.0


def _body(seed: int, n: int) -> dict:
    return {
        "problem": "mis",
        "model": "cclique",
        "source": {
            "kind": "generator",
            "name": "gnp_random_graph",
            "args": {"n": n, "p": 0.05, "seed": seed},
        },
    }


async def _post(host: str, port: int, body: dict) -> dict:
    """One ``POST /solve`` over a raw asyncio connection.

    Deliberately not urllib-in-a-thread: the default thread executor caps
    concurrency at ~5 on 1-core runners, which would silently serialize
    the "K identical concurrent requests" the coalesce case is about.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        data = json.dumps(body).encode()
        writer.write(
            (
                f"POST /solve HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n\r\n"
            ).encode()
            + data
        )
        await writer.drain()
        await reader.readline()  # status line; errors surface in the JSON
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value)
        return json.loads(await reader.readexactly(length))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _coalesce_case(
    svc: SolverService, host: str, port: int, k: int, n: int
) -> dict:
    jobs_before = svc.batcher.stats.jobs
    body = _body(seed=999, n=n)
    t0 = time.perf_counter()
    replies = await asyncio.gather(*(_post(host, port, body) for _ in range(k)))
    wall = time.perf_counter() - t0
    scheduler_jobs = svc.batcher.stats.jobs - jobs_before
    return {
        "requests": k,
        "ok": sum(1 for r in replies if r["ok"]),
        "scheduler_jobs": scheduler_jobs,
        "coalesced": sum(1 for r in replies if r["coalesced"]),
        "ratio": k / scheduler_jobs if scheduler_jobs else float("inf"),
        "wall_s": wall,
    }


async def _throughput_case(
    svc: SolverService, host: str, port: int, distinct: int, requests: int, n: int
) -> dict:
    bodies = [_body(seed=100 + i, n=n) for i in range(distinct)]
    for body in bodies:  # warm: one real solve per distinct request
        await _post(host, port, body)

    sem = asyncio.Semaphore(6)  # a realistic concurrent-client fan

    async def one(body: dict) -> float:
        async with sem:
            t0 = time.perf_counter()
            reply = await _post(host, port, body)
            assert reply["ok"], reply
            return time.perf_counter() - t0

    t0 = time.perf_counter()
    latencies = list(
        await asyncio.gather(
            *(one(bodies[i % distinct]) for i in range(requests))
        )
    )
    wall = time.perf_counter() - t0
    latencies.sort()
    p95 = latencies[max(0, int(0.95 * len(latencies)) - 1)]
    return {
        "distinct": distinct,
        "requests": requests,
        "wall_s": wall,
        "rps": requests / wall if wall > 0 else float("inf"),
        "p50_ms": latencies[len(latencies) // 2] * 1e3,
        "p95_ms": p95 * 1e3,
    }


async def _run_async(mode: str) -> dict:
    if mode == "smoke":
        k, n_coalesce = 6, 400
        distinct, requests, n_tp = 4, 60, 60
    else:
        k, n_coalesce = 8, 600
        distinct, requests, n_tp = 8, 240, 80
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        svc = SolverService(workers=1, cache=tmp + "/cache", batch_delay=0.05)
        await svc.start()
        server = await svc.start_http(port=0)
        host, port = "127.0.0.1", server.sockets[0].getsockname()[1]
        try:
            coalesce = await _coalesce_case(svc, host, port, k, n_coalesce)
            throughput = await _throughput_case(
                svc, host, port, distinct, requests, n_tp
            )
        finally:
            server.close()
            await server.wait_closed()
            await svc.drain(30)
    ok = (
        coalesce["ok"] == coalesce["requests"]
        and coalesce["scheduler_jobs"] == 1
        and coalesce["requests"] >= COALESCE_FLOOR
    )
    return {
        "mode": mode,
        "coalesce_floor": COALESCE_FLOOR,
        "acceptance_ok": bool(ok),
        "cases": {"coalesce": coalesce, "throughput": throughput},
    }


def run(mode: str) -> dict:
    return asyncio.run(_run_async(mode))


def check_regression(payload: dict, baseline_path: Path) -> list[str]:
    """Gate failures (empty = green): contracts + drift vs baseline."""
    problems = []
    coalesce = payload["cases"]["coalesce"]
    throughput = payload["cases"]["throughput"]
    if coalesce["ok"] != coalesce["requests"]:
        problems.append(
            f"coalesce: only {coalesce['ok']}/{coalesce['requests']} requests ok"
        )
    if coalesce["scheduler_jobs"] != 1:
        problems.append(
            f"coalesce: {coalesce['requests']} identical concurrent requests "
            f"ran {coalesce['scheduler_jobs']} scheduler jobs (contract: exactly 1)"
        )
    try:
        baseline = json.loads(baseline_path.read_text())
    except OSError as exc:
        problems.append(f"baseline {baseline_path} unreadable: {exc}")
        return problems
    except json.JSONDecodeError as exc:
        problems.append(f"baseline {baseline_path} is not valid JSON: {exc}")
        return problems
    if baseline.get("mode") != payload["mode"]:
        problems.append(
            f"baseline was recorded in {baseline.get('mode')!r} mode but this "
            f"run is {payload['mode']!r}; refresh with --write-baseline"
        )
        return problems
    base_tp = baseline["cases"]["throughput"]
    floor = base_tp["rps"] / THROUGHPUT_FACTOR
    if throughput["rps"] < floor:
        problems.append(
            f"throughput: {throughput['rps']:.1f} req/s fell below "
            f"{floor:.1f} (baseline {base_tp['rps']:.1f} / {THROUGHPUT_FACTOR:g})"
        )
    ceiling = base_tp["p95_ms"] * LATENCY_FACTOR
    if throughput["p95_ms"] > ceiling:
        problems.append(
            f"throughput: p95 {throughput['p95_ms']:.1f} ms rose above "
            f"{ceiling:.1f} ms (baseline {base_tp['p95_ms']:.1f} "
            f"* {LATENCY_FACTOR:g})"
        )
    return problems


def write_baseline(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tp = payload["cases"]["throughput"]
    slim = {
        "mode": payload["mode"],
        "cases": {
            "throughput": {
                "rps": round(tp["rps"], 1),
                "p95_ms": round(tp["p95_ms"], 2),
            }
        },
    }
    path.write_text(json.dumps(slim, indent=2, sort_keys=True) + "\n")
    print(f"[baseline] wrote {path}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small CI-sized run")
    ap.add_argument(
        "--check", metavar="PATH", help="regression-gate against a baseline JSON"
    )
    ap.add_argument(
        "--write-baseline",
        nargs="?",
        const=str(BASELINE_PATH),
        metavar="PATH",
        help="write this run's throughput numbers as the new baseline",
    )
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    payload = run(mode)
    coalesce = payload["cases"]["coalesce"]
    throughput = payload["cases"]["throughput"]

    print(f"serve benchmark [{mode}]")
    print(
        f"  coalesce    {coalesce['requests']} identical concurrent -> "
        f"{coalesce['scheduler_jobs']} scheduler job(s), "
        f"{coalesce['coalesced']} coalesced, ratio {coalesce['ratio']:.1f}x, "
        f"{coalesce['wall_s']:.2f}s"
    )
    print(
        f"  throughput  {throughput['requests']} reqs over "
        f"{throughput['distinct']} warm keys: {throughput['rps']:.1f} req/s, "
        f"p50 {throughput['p50_ms']:.1f} ms, p95 {throughput['p95_ms']:.1f} ms"
    )
    verdict = "PASS" if payload["acceptance_ok"] else "FAIL"
    print(
        f"acceptance: >= {COALESCE_FLOOR} identical concurrent requests "
        f"resolved by exactly 1 solve: {verdict}"
    )
    emit_json("serve", payload)

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), payload)

    if args.check:
        problems = check_regression(payload, Path(args.check))
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print("regression gate: green")
        return 0
    return 0 if payload["acceptance_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
