"""Numba-JIT fused kernels vs the vectorized csr paths: timing + parity gate.

Each case runs the ``csr``/numpy implementation and the ``jit`` twin from
:mod:`repro.graphs.kernels_jit` / :mod:`repro.derand.seed_jit` on the same
instance, asserts the outputs are *identical* (the backends are
bit-equivalent by contract) and reports the speedup.  Both sides are warmed
once before timing, so compilation cost never enters the ratios (it is
observable separately via the ``jit.compile`` span).

Without numba the jit twins execute as plain Python loops -- still exact,
which keeps the parity assertions meaningful everywhere -- so instance
sizes shrink to smoke scale and only parity is gated.  The payload records
``"numba"`` so downstream tooling can tell the two regimes apart.

Modes
-----
``--smoke``            small instances (CI-sized, a few seconds end to end)
default (full)         ``n = 10_000`` instances (numba only); prints the
                       acceptance line for the >= 2x warm-path criterion on
                       the fused stage seed scan
``--check PATH``       after running, gate: parity always; with numba in
                       full mode additionally the >= 2x stage-scan
                       acceptance, and a regression compare against the
                       baseline when it was recorded under the same
                       mode/numba regime; exit 1 on any failure
``--write-baseline [PATH]``
                       refresh the checked-in baseline from this run

Artifacts: ``benchmarks/results/BENCH_jit_kernels.json`` via the standard
emitter; the checked-in baseline lives at
``benchmarks/baselines/BENCH_jit_kernels_baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import (  # noqa: E402
    emit_json,
    speedup_case,
)

from repro.core.lowdeg import _a_set_weight  # noqa: E402
from repro.core.stage import MachineGroupSpec, StageGoodness  # noqa: E402
from repro.derand.seed_jit import (  # noqa: E402
    make_lowdeg_objective,
    make_stage_objective,
)
from repro.graphs import gnp_random_graph  # noqa: E402
from repro.graphs import kernels, kernels_jit  # noqa: E402
from repro.graphs.coloring import (  # noqa: E402
    _first_free_points,
    _poly_digits,
    distance2_coloring,
)
from repro.graphs.power import square_graph  # noqa: E402
from repro.hashing.families import make_color_family  # noqa: E402
from repro.hashing.kwise import make_family  # noqa: E402
from repro.hashing.primes import next_prime  # noqa: E402
from repro.mpc.partition import chunk_items_by_group  # noqa: E402

BASELINE_PATH = (
    Path(__file__).parent / "baselines" / "BENCH_jit_kernels_baseline.json"
)

#: Fail --check when a gated case's speedup drops below baseline / this factor
#: (only compared when the baseline was recorded under the same regime).
REGRESSION_FACTOR = 2.0

#: The fused stage seed scan must beat csr by this factor warm (numba, full).
ACCEPTANCE_SPEEDUP = 2.0

GATED_CASES = ("stage_seed_scan", "lowdeg_phase_objective")


def _case(name, csr_fn, jit_fn, same_fn, repeats, meta):
    # Warm both sides: the first jit call compiles (recorded as the
    # ``jit.compile`` span); timings below are warm-path only.
    csr_fn()
    jit_fn()
    return speedup_case(
        name, csr_fn, jit_fn, same_fn, repeats, meta, labels=("csr", "jit")
    )


def _segment_cases(g, S, repeats, rng):
    """The three gated block kernels on the graph's CSR adjacency."""
    vals = rng.integers(0, 1 << 40, size=(S, g.n), dtype=np.uint64)
    fill = np.uint64(np.iinfo(np.uint64).max)
    mask = rng.random((S, g.n)) < 0.2
    arc_mask = rng.random((S, g.indices.size)) < 0.2
    meta = {"n": g.n, "m": g.m, "seed_block": S}
    min_csr = kernels.segment_min_block_fn(g.indices, g.indptr, g.n)
    min_jit = kernels_jit.segment_min_block_fn(g.indices, g.indptr, g.n)
    any_csr = kernels.segment_any_block_fn(g.indices, g.indptr, g.n)
    any_jit = kernels_jit.segment_any_block_fn(g.indices, g.indptr, g.n)
    return [
        _case(
            "segment_min_block",
            lambda: min_csr(vals, fill),
            lambda: min_jit(vals, fill),
            np.array_equal,
            repeats,
            meta,
        ),
        _case(
            "segment_any_block",
            lambda: any_csr(mask),
            lambda: any_jit(mask),
            np.array_equal,
            repeats,
            meta,
        ),
        _case(
            "segment_count_2d",
            lambda: kernels.segment_count_2d(arc_mask, g.indptr),
            lambda: kernels_jit.segment_count_2d(arc_mask, g.indptr),
            np.array_equal,
            repeats,
            meta,
        ),
    ]


def _stage_case(items, S, repeats, rng):
    """The acceptance case: one stage's all-machines-good seed-block scan.

    csr side: ``StageGoodness.counts`` (batched indicator grid + 2-D segment
    count); jit side: the fused stacked-Horner scan from ``seed_jit``.
    """
    family = make_family(universe=items, k=4)
    units = rng.integers(0, family.q, size=items).astype(np.int64)
    grouping = chunk_items_by_group(np.zeros(items, dtype=np.int64), 25)
    spec = MachineGroupSpec(
        name="bench", grouping=grouping, unit_ids=units,
        check_upper=True, check_lower=True,
    )
    prob = 0.3
    threshold = family.threshold(prob)
    loads = spec.weight_totals()
    mu = loads * (threshold / family.q)
    base = np.sqrt(3.0 * np.maximum(mu, 1.0))
    goodness = StageGoodness(family, threshold, [spec], [mu], [base])
    seeds = np.arange(1, S + 1, dtype=np.int64)
    fused = make_stage_objective(goodness, 1.0)
    return _case(
        "stage_seed_scan",
        lambda: goodness.counts(seeds, 1.0),
        lambda: fused(seeds),
        np.array_equal,
        repeats,
        {"items": items, "machines": grouping.num_machines, "seed_block": S},
    )


def _lowdeg_case(g, S, repeats):
    """One low-degree Luby phase objective over a seed block.

    csr side: the (S, n) key grid + block neighbour-min/any closure from
    ``lowdeg_mis``; jit side: the fused three-pass select/reduce.
    """
    n = g.n
    coloring = distance2_coloring(g)
    family = make_color_family(coloring.num_colors)
    colors = coloring.colors.astype(np.int64)
    a_mask, _ = _a_set_weight(g)
    deg = g.degrees()
    live = np.nonzero(deg > 0)[0].astype(np.int64)
    deg_sel = (deg * a_mask).astype(np.int64)
    stride = np.uint64(n + 1)
    key_dtype = np.uint32 if family.range * (n + 1) + n < 2**32 else np.uint64
    stride_k = key_dtype(stride)
    maxkey_k = key_dtype(np.iinfo(key_dtype).max)
    live_k = live.astype(key_dtype)
    nbr_min_fn = kernels.segment_min_block_fn(g.indices, g.indptr, n)
    nbr_any_fn = kernels.segment_any_block_fn(g.indices, g.indptr, n)

    def numpy_objective(seeds):
        z = family.evaluate_colors_batch(seeds, colors[live]).astype(key_dtype)
        key_full = np.full((z.shape[0], n), maxkey_k, dtype=key_dtype)
        key_full[:, live] = z * stride_k + live_k[None, :]
        nbr_min = nbr_min_fn(key_full, maxkey_k)
        i_mask = np.zeros(key_full.shape, dtype=bool)
        i_mask[:, live] = key_full[:, live] < nbr_min[:, live]
        covered = nbr_any_fn(i_mask)
        return ((covered | i_mask) @ deg_sel).astype(np.float64)

    fused = make_lowdeg_objective(
        family, colors[live], live, g.indices, g.indptr, deg_sel, n
    )
    seeds = np.arange(1, S + 1, dtype=np.int64)
    return _case(
        "lowdeg_phase_objective",
        lambda: numpy_objective(seeds),
        lambda: fused(seeds),
        np.array_equal,
        repeats,
        {"n": g.n, "m": g.m, "seed_block": S},
    )


def _linial_case(g, repeats):
    """The Linial clash kernel on G^2: first free evaluation point per node."""
    g2 = square_graph(g)
    colors = np.arange(g2.n, dtype=np.int64)
    palette = max(g2.n, 1)
    delta = g2.max_degree()
    # Same q/d search as coloring._linial_step.
    q = next_prime(max(delta + 2, 3))
    while True:
        d = 0
        while q ** (d + 1) < palette:
            d += 1
        if q > d * delta:
            break
        q = next_prime(q + 1)
    coeffs = _poly_digits(colors, q, d)
    xs = np.arange(q, dtype=np.int64)
    vander = np.ones((q, d + 1), dtype=np.int64)
    for j in range(1, d + 1):
        vander[:, j] = (vander[:, j - 1] * xs) % q
    evals = (coeffs @ vander.T) % q
    return _case(
        "linial_first_free",
        lambda: _first_free_points(g2, evals, q),
        lambda: kernels_jit.linial_first_free(evals, g2.indices, g2.indptr),
        np.array_equal,
        repeats,
        {"n": g2.n, "m": g2.m, "q": q, "d": d},
    )


def run(mode: str, seed: int) -> dict:
    numba_on = kernels_jit.available()
    if mode == "smoke" or not numba_on:
        # Without numba the jit bodies are interpreted Python; keep sizes
        # small so the parity sweep stays fast.
        n, avg_deg, repeats = 400, 10, 3
        items, s_stage, s_seg, s_low = 2_000, 32, 16, 8
    else:
        n, avg_deg, repeats = 10_000, 8, 3
        items, s_stage, s_seg, s_low = 10_000, 256, 64, 64
    rng = np.random.default_rng(seed)
    g = gnp_random_graph(n, avg_deg / n, seed=seed)
    cases = dict(
        _segment_cases(g, s_seg, repeats, rng)
        + [
            _stage_case(items, s_stage, repeats, rng),
            _lowdeg_case(g, s_low, repeats),
            _linial_case(g, repeats),
        ]
    )
    return {
        "mode": mode,
        "numba": numba_on,
        "graph": {"n": g.n, "m": g.m},
        "cases": cases,
    }


def check_gate(payload: dict, baseline_path: Path) -> list[str]:
    """Gate failures (empty = green).

    Parity is gated in every regime.  Compiled-speed criteria only apply
    where compiled code actually ran: with numba in full mode the stage
    scan must clear :data:`ACCEPTANCE_SPEEDUP`, and gated-case speedups are
    compared against the baseline when it was recorded under the same
    mode/numba regime (cross-regime ratios are incomparable by design --
    the checked-in baseline may come from a numba-less builder).
    """
    problems = []
    for name, case in payload["cases"].items():
        if not case["identical"]:
            problems.append(f"{name}: jit and csr outputs DIVERGED")
    try:
        baseline = json.loads(baseline_path.read_text())
    except OSError as exc:
        problems.append(f"baseline {baseline_path} unreadable: {exc}")
        return problems
    except json.JSONDecodeError as exc:
        problems.append(f"baseline {baseline_path} is not valid JSON: {exc}")
        return problems
    if not payload["numba"]:
        return problems
    if payload["mode"] == "full":
        got = payload["cases"]["stage_seed_scan"]["speedup"]
        if got < ACCEPTANCE_SPEEDUP:
            problems.append(
                f"stage_seed_scan: warm speedup {got:.2f}x below the "
                f"{ACCEPTANCE_SPEEDUP:g}x acceptance floor"
            )
    if baseline.get("numba") and baseline.get("mode") == payload["mode"]:
        for name, base_case in baseline["cases"].items():
            if name not in GATED_CASES:
                continue
            cur = payload["cases"].get(name)
            if cur is None:
                problems.append(f"{name}: present in baseline but not run")
                continue
            floor = base_case["speedup"] / REGRESSION_FACTOR
            if cur["speedup"] < floor:
                problems.append(
                    f"{name}: speedup {cur['speedup']:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base_case['speedup']:.2f}x / "
                    f"{REGRESSION_FACTOR:g})"
                )
    return problems


def write_baseline(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    slim = {
        "mode": payload["mode"],
        "numba": payload["numba"],
        "cases": {
            k: {"speedup": round(v["speedup"], 3)}
            for k, v in payload["cases"].items()
            if k in GATED_CASES
        },
    }
    path.write_text(json.dumps(slim, indent=2, sort_keys=True) + "\n")
    print(f"[baseline] wrote {path}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small CI-sized run")
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument(
        "--check",
        metavar="PATH",
        help="gate parity/acceptance/regression against a baseline JSON",
    )
    ap.add_argument(
        "--write-baseline",
        nargs="?",
        const=str(BASELINE_PATH),
        metavar="PATH",
        help="write this run's gated speedups as the new baseline",
    )
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    payload = run(mode, args.seed)

    width = max(len(k) for k in payload["cases"])
    numba_note = "numba" if payload["numba"] else "no numba: interpreted jit bodies"
    print(f"jit kernel benchmark [{mode}, {numba_note}] on {payload['graph']}")
    for name, case in payload["cases"].items():
        print(
            f"  {name:<{width}}  csr={case['csr_s'] * 1e3:9.2f}ms  "
            f"jit={case['jit_s'] * 1e3:9.2f}ms  speedup={case['speedup']:7.2f}x  "
            f"identical={case['identical']}"
        )
    if mode == "full" and payload["numba"]:
        scan = payload["cases"]["stage_seed_scan"]
        ok = scan["speedup"] >= ACCEPTANCE_SPEEDUP
        payload["acceptance_stage_scan_2x"] = bool(ok)
        print(
            f"acceptance: fused stage seed scan at n=10k is "
            f"{scan['speedup']:.1f}x (>= {ACCEPTANCE_SPEEDUP:g}x required): "
            f"{'PASS' if ok else 'FAIL'}"
        )
    emit_json("jit_kernels", payload)

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), payload)

    if args.check:
        problems = check_gate(payload, Path(args.check))
        if problems:
            for p in problems:
                print(f"GATE FAILURE: {p}", file=sys.stderr)
            return 1
        print("jit gate: green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
