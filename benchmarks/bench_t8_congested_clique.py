"""T8 -- Corollary 2 vs Censor-Hillel et al. [15]: CONGESTED CLIQUE rounds.

The paper's CC claim: deterministic MIS / maximal matching in O(log Delta)
rounds, improving [15]'s O(log Delta log n).  Both pipelines here share the
identical phase structure and differ only in the derandomization cost per
phase (O(1) with 2-hop information + remainder collection vs bit-by-bit
voting), so the measured ratio isolates exactly the paper's improvement.
"""

import numpy as np

from repro.analysis import fit_linear, render_table
from repro.cclique import cc_maximal_matching, cc_mis
from repro.graphs import gnp_random_graph
from repro.verify import verify_matching_pairs, verify_mis_nodes

from _common import emit


def run():
    rows = []
    for n, p in [(150, 0.1), (150, 0.3), (300, 0.15), (600, 0.08)]:
        g = gnp_random_graph(n, p, seed=88)
        ours = cc_mis(g, charge_mode="ours")
        chps = cc_mis(g, charge_mode="chps")
        assert verify_mis_nodes(g, ours.solution)
        mm = cc_maximal_matching(g, charge_mode="ours")
        mm_chps = cc_maximal_matching(g, charge_mode="chps")
        assert verify_matching_pairs(g, mm.solution)
        rows.append(
            (n, g.m, g.max_degree(), ours.phases, ours.rounds, chps.rounds,
             mm.rounds, mm_chps.rounds,
             round(chps.rounds / max(ours.rounds, 1), 1))
        )
    return rows


def test_t8_congested_clique(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "T8  Corollary 2: CONGESTED CLIQUE, ours O(log Delta) vs CHPS-style "
        "O(log Delta log n)",
        ["n", "m", "Delta", "phases", "mis ours", "mis chps", "mm ours",
         "mm chps", "mis ratio"],
        rows,
        footnote="claim: ours wins by a Theta(log n) factor",
    )
    fit = fit_linear(
        [np.log2(r[0]) for r in rows], [float(r[8]) for r in rows]
    )
    table += f"\nmis ratio ~ {fit.slope:.2f} * log2(n) + {fit.intercept:.2f}"
    emit("t8_congested_clique", table)

    for row in rows:
        assert row[4] < row[5], "ours must beat the voting baseline (MIS)"
        assert row[6] < row[7], "ours must beat the voting baseline (matching)"
        assert row[8] >= 3.0, "the separation must be a real log-factor"
