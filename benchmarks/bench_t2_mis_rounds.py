"""T2 -- Theorem 14: deterministic MIS in O(log n) MPC rounds.

Same shape as T1 for the MIS driver, with both randomized yardsticks (full
independence and pairwise -- the paper's Section 2.1 point that pairwise
independence suffices for Luby's analysis).
"""

import numpy as np

from repro.analysis import fit_linear, mis_iteration_bound, render_table
from repro.baselines import luby_mis_pairwise, luby_mis_randomized
from repro.core import Params, deterministic_mis
from repro.graphs import gnp_random_graph
from repro.verify import verify_mis_nodes

from _common import emit

SWEEP = [250, 500, 1000, 2000, 4000]


def run_sweep():
    params = Params()
    rows = []
    for n in SWEEP:
        g = gnp_random_graph(n, 8.0 / n, seed=202)
        det = deterministic_mis(g, params)
        assert verify_mis_nodes(g, det.independent_set)
        rnd = luby_mis_randomized(g, seed=0)
        pw = luby_mis_pairwise(g, seed=0)
        bound = mis_iteration_bound(g.m, params.delta_value)
        rows.append(
            (
                n,
                g.m,
                det.iterations,
                det.rounds,
                rnd.iterations,
                pw.iterations,
                round(bound),
            )
        )
    return rows


def test_t2_mis_rounds(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = render_table(
        "T2  Theorem 14: MIS rounds, O(log n) scaling",
        ["n", "m", "det iters", "det rounds", "rand iters", "pairwise iters", "bound"],
        rows,
        footnote="claim: det iters <= paper bound; det rounds O(log n)",
    )
    fit = fit_linear([np.log2(r[1]) for r in rows], [r[2] for r in rows])
    table += (
        f"\niterations ~ {fit.slope:.2f} * log2(m) + {fit.intercept:.2f} "
        f"(r2={fit.r2:.3f}); charged rounds stay O(log n): "
        f"{rows[0][3]} -> {rows[-1][3]} across a 16x n range"
    )
    emit("t2_mis_rounds", table)

    for row in rows:
        assert row[2] <= row[6]
    # MIS iterations in practice stay within a small constant of randomized.
    for row in rows:
        assert row[2] <= 4 * row[4] + 4
