"""Shared helpers for the benchmark harness.

Every bench prints its paper-claim-vs-measured table and also writes it to
``benchmarks/results/<name>.txt`` so the artifacts survive pytest's output
capture.  Machine-readable benches additionally write
``benchmarks/results/BENCH_<name>.json`` via :func:`emit_json` — the
standard artifact format downstream tooling (dashboards, regression
trackers) consumes.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


# --------------------------------------------------------------------- #
# Shared two-backend comparison harness (bench_kernels, bench_seed_search)
# --------------------------------------------------------------------- #


def best_timing(fn, repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time plus the last return value."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def speedup_case(name, base_fn, fast_fn, same_fn, repeats, meta, labels):
    """One named backend-vs-backend case: timings, speedup, parity flag.

    ``labels`` are the two backend names; the result dict carries
    ``<label>_s`` per side plus ``speedup`` (base / fast) and
    ``identical`` from ``same_fn(base_out, fast_out)``.
    """
    t_base, a = best_timing(base_fn, repeats)
    t_fast, b = best_timing(fast_fn, repeats)
    return name, {
        f"{labels[0]}_s": t_base,
        f"{labels[1]}_s": t_fast,
        "speedup": t_base / t_fast if t_fast > 0 else float("inf"),
        "identical": bool(same_fn(a, b)),
        **meta,
    }


def check_speedup_regression(
    payload: dict,
    baseline_path: Path,
    gated_cases: tuple[str, ...],
    factor: float,
    diverged_msg: str,
) -> list[str]:
    """Messages describing gate failures (empty = green).

    Parity is checked for every case; speedup ratios are gated only for
    ``gated_cases`` (the rest are too noisy on shared CI runners).
    """
    problems = []
    for name, case in payload["cases"].items():
        if not case["identical"]:
            problems.append(f"{name}: {diverged_msg}")
    try:
        baseline = json.loads(baseline_path.read_text())
    except OSError as exc:
        problems.append(f"baseline {baseline_path} unreadable: {exc}")
        return problems
    except json.JSONDecodeError as exc:
        problems.append(f"baseline {baseline_path} is not valid JSON: {exc}")
        return problems
    base_mode = baseline.get("mode")
    if base_mode and base_mode != payload["mode"]:
        problems.append(
            f"baseline was recorded in {base_mode!r} mode but this run is "
            f"{payload['mode']!r}; refresh with --write-baseline"
        )
        return problems
    for name, base_case in baseline["cases"].items():
        if name not in gated_cases:
            continue
        cur = payload["cases"].get(name)
        if cur is None:
            problems.append(f"{name}: present in baseline but not run")
            continue
        floor = base_case["speedup"] / factor
        if cur["speedup"] < floor:
            problems.append(
                f"{name}: speedup {cur['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_case['speedup']:.2f}x / "
                f"{factor:g})"
            )
    return problems


def write_speedup_baseline(
    path: Path, payload: dict, gated_cases: tuple[str, ...]
) -> None:
    """Persist the gated cases' speedups as the new checked-in baseline."""
    path.parent.mkdir(parents=True, exist_ok=True)
    slim = {
        "mode": payload["mode"],
        "cases": {
            k: {"speedup": round(v["speedup"], 3)}
            for k, v in payload["cases"].items()
            if k in gated_cases
        },
    }
    path.write_text(json.dumps(slim, indent=2, sort_keys=True) + "\n")
    print(f"[baseline] wrote {path}")


def summarize_results(results_dir: Path = RESULTS_DIR) -> dict:
    """Merge every ``BENCH_*.json`` artifact into one summary payload.

    Per bench, per case: the timing columns (keys ending ``_s``) collapse
    to the winning backend and its wall time, alongside the case's
    ``speedup`` / ``identical`` flags when present.  Cases without timing
    columns (pure acceptance/accounting benches) are skipped; benches
    whose JSON cannot be parsed are listed under ``unreadable`` instead of
    aborting the merge.  ``scripts/bench_report.py`` wraps this as the CI
    aggregation step that emits ``BENCH_summary.json``.
    """
    benches: dict[str, dict] = {}
    unreadable: list[str] = []
    for path in sorted(Path(results_dir).glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue  # never merge a previous summary into itself
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            unreadable.append(path.name)
            continue
        cases: dict[str, dict] = {}
        for name, case in (doc.get("cases") or {}).items():
            if not isinstance(case, dict):
                continue
            timings = {
                k[:-2]: v
                for k, v in case.items()
                if k.endswith("_s") and isinstance(v, (int, float))
            }
            if not timings:
                continue
            best = min(timings, key=timings.get)
            rec: dict = {
                "best_backend": best,
                "best_s": timings[best],
                "timings": timings,
            }
            for extra in ("speedup", "identical"):
                if extra in case:
                    rec[extra] = case[extra]
            cases[name] = rec
        benches[str(doc.get("bench", path.stem))] = {
            "source": path.name,
            "mode": doc.get("mode"),
            "cases": cases,
        }
    summary = {"benches": benches, "bench_count": len(benches)}
    if unreadable:
        summary["unreadable"] = unreadable
    return summary


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def emit_json(name: str, payload: dict) -> Path:
    """Write the standard ``BENCH_<name>.json`` artifact and return its path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    doc = {
        "bench": name,
        "created_unix": time.time(),
        "machine": platform.node() or "unknown",
        "python": platform.python_version(),
        **payload,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"[bench json] {path}")
    return path
