"""Shared helpers for the benchmark harness.

Every bench prints its paper-claim-vs-measured table and also writes it to
``benchmarks/results/<name>.txt`` so the artifacts survive pytest's output
capture.  Machine-readable benches additionally write
``benchmarks/results/BENCH_<name>.json`` via :func:`emit_json` — the
standard artifact format downstream tooling (dashboards, regression
trackers) consumes.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def emit_json(name: str, payload: dict) -> Path:
    """Write the standard ``BENCH_<name>.json`` artifact and return its path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    doc = {
        "bench": name,
        "created_unix": time.time(),
        "machine": platform.node() or "unknown",
        "python": platform.python_version(),
        **payload,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"[bench json] {path}")
    return path
