"""Shared helpers for the benchmark harness.

Every bench prints its paper-claim-vs-measured table and also writes it to
``benchmarks/results/<name>.txt`` so the artifacts survive pytest's output
capture.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
