"""Graph-store dispatch volume and out-of-core build memory.

The store (``repro.graphs.store``) changes two resource curves, and this
bench gates both:

1. **Dispatch bytes** (the gated number): a batch of >= 8 jobs sharing one
   graph source is dispatched twice — once on the historical pickled-npz
   path (the buffer ships with every job) and once store-backed (an
   ``(store_root, fingerprint)`` key ships instead; workers mmap the CSR
   shards).  The gate asserts the store path ships at least ``2x`` fewer
   bytes per batch *and* that the two batches produce identical results
   (fingerprint, solution size, rounds, verification) job for job.
2. **Peak RSS of the out-of-core build** (the gated bound): a subprocess
   streams a block-sampled G(n, p) through ``GraphStore.ensure_generator``
   — edge blocks to spill files to CSR shards, never the full edge list —
   and its ``ru_maxrss`` increase over the post-import baseline must stay
   *below the byte size of the materialised CSR arrays* it would otherwise
   have built.  A second subprocess materialises the same graph in memory
   for the informational A/B ratio.

Modes: ``--smoke`` (CI-sized) / default full; ``--check PATH`` gates
against a baseline; ``--write-baseline [PATH]`` refreshes it.
Artifacts: ``benchmarks/results/BENCH_graph_store.json``; baseline at
``benchmarks/baselines/BENCH_graph_store_baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_json  # noqa: E402

from repro.graphs import GraphStore  # noqa: E402
from repro.runtime import GraphSource, JobSpec, Scheduler  # noqa: E402

SRC_DIR = Path(__file__).resolve().parent.parent / "src"
BASELINE_PATH = (
    Path(__file__).parent / "baselines" / "BENCH_graph_store_baseline.json"
)

#: The ISSUE-level contract: a >= 8-job same-source batch ships at least
#: 2x fewer bytes store-backed than on the pickled-npz path.
REDUCTION_FLOOR = 2.0

#: --check fails when a gated ratio falls below baseline / factor.  The
#: dispatch reduction is near-deterministic (byte counts), so a modest
#: factor suffices; the RSS headroom wobbles with allocator behaviour and
#: gets more slack.
REDUCTION_FACTOR = 1.5
HEADROOM_FACTOR = 2.5

#: Subprocess body for the RSS measurement.  argv: mode n p store_root.
#: ``ru_maxrss`` is sampled after the imports, so ``peak - base`` is the
#: build's own high-water mark, not the interpreter's.
_RSS_CHILD = """
import json, resource, sys
mode, n, p, root = sys.argv[1], int(sys.argv[2]), float(sys.argv[3]), sys.argv[4]
from repro.graphs import GraphStore
from repro.graphs.streaming import gnp_block_graph
base_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if mode == "stream":
    info = GraphStore(root).ensure_generator(
        "gnp_block_graph", {"n": n, "p": p, "seed": 1}, label="bench"
    )
    gn, gm = info.n, info.m
else:
    g = gnp_block_graph(n, p, seed=1)
    gn, gm = g.n, g.m
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"base_kb": base_kb, "peak_kb": peak_kb, "n": gn, "m": gm}))
"""


def _dispatch_case(n: int, p: float, jobs: int, seed: int) -> dict:
    """Ship-bytes A/B on one shared source, npz path vs store path."""
    src = GraphSource.generator("gnp_block_graph", n=n, p=p, seed=seed)
    specs = [
        JobSpec("mis", src, eps=0.5 + i / 100, tag=f"j{i}") for i in range(jobs)
    ]
    base = Scheduler(workers=2).run(specs)
    with tempfile.TemporaryDirectory(prefix="bench-graph-store-") as tmp:
        store = Scheduler(workers=2, store=GraphStore(tmp)).run(specs)
    identical = base.all_ok and store.all_ok
    for ra, rb in zip(base.results, store.results):
        identical = identical and (
            ra.fingerprint == rb.fingerprint
            and ra.solution_size == rb.solution_size
            and ra.rounds == rb.rounds
            and ra.verified == rb.verified
        )
    npz_bytes = base.stats.bytes_shipped
    store_bytes = store.stats.bytes_shipped
    return {
        "n": n,
        "p": p,
        "jobs": jobs,
        "npz_bytes": npz_bytes,
        "store_bytes": store_bytes,
        "reduction": npz_bytes / store_bytes if store_bytes else float("inf"),
        "store_fallbacks": store.stats.store_fallbacks,
        "identical": bool(identical),
    }


def _rss_child(mode: str, n: int, p: float, root: str) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD, mode, str(n), str(p), root],
        capture_output=True,
        text=True,
        check=False,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
    )
    if proc.returncode != 0:
        raise RuntimeError(f"rss child ({mode}) failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def _rss_case(n: int, p: float) -> dict:
    """Peak-RSS increase of the streaming store build vs materialising."""
    with tempfile.TemporaryDirectory(prefix="bench-graph-store-") as tmp:
        stream = _rss_child("stream", n, p, tmp)
    with tempfile.TemporaryDirectory(prefix="bench-graph-store-") as tmp:
        inmem = _rss_child("inmem", n, p, tmp)
    if (stream["n"], stream["m"]) != (inmem["n"], inmem["m"]):
        raise RuntimeError("stream and in-memory builds disagree on (n, m)")
    m = stream["m"]
    # Canonical CSR footprint: edges_u/v (8m each), indices + arc_edge_ids
    # (16m each, 2m arcs), indptr (8(n+1)) — what the in-memory path holds
    # at rest, before counting its own sort temporaries.
    materialized = 48 * m + 8 * (n + 1)
    stream_inc = (stream["peak_kb"] - stream["base_kb"]) * 1024
    inmem_inc = (inmem["peak_kb"] - inmem["base_kb"]) * 1024
    return {
        "n": n,
        "p": p,
        "m": m,
        "materialized_mb": materialized / 2**20,
        "stream_increase_mb": stream_inc / 2**20,
        "inmem_increase_mb": inmem_inc / 2**20,
        "headroom": materialized / stream_inc if stream_inc > 0 else float("inf"),
        "vs_inmem": inmem_inc / stream_inc if stream_inc > 0 else float("inf"),
    }


def run(mode: str) -> dict:
    if mode == "smoke":
        dispatch = _dispatch_case(n=400, p=0.03, jobs=8, seed=5)
        # ~8e6 edges: 4 CSR shards, ~390 MB materialised — big enough that
        # the per-shard working set is visibly smaller, small enough for CI.
        rss = _rss_case(n=100_000, p=160.0 / 100_000)
    else:
        dispatch = _dispatch_case(n=1500, p=0.01, jobs=12, seed=5)
        # The million-node regime the large-sweep suite targets; average
        # degree 24 keeps the shard count (and the gate's margin) up.
        rss = _rss_case(n=1_000_000, p=24.0 / 1_000_000)
    ok = (
        dispatch["identical"]
        and dispatch["reduction"] >= REDUCTION_FLOOR
        and rss["headroom"] > 1.0
    )
    return {
        "mode": mode,
        "reduction_floor": REDUCTION_FLOOR,
        "acceptance_ok": bool(ok),
        "cases": {"dispatch": dispatch, "rss": rss},
    }


def check_regression(payload: dict, baseline_path: Path) -> list[str]:
    """Gate failures (empty = green): contracts + drift vs baseline."""
    problems = []
    dispatch, rss = payload["cases"]["dispatch"], payload["cases"]["rss"]
    if not dispatch["identical"]:
        problems.append("dispatch: store-backed batch DIVERGED from npz path")
    if dispatch["reduction"] < REDUCTION_FLOOR:
        problems.append(
            f"dispatch: shipped-bytes reduction {dispatch['reduction']:.2f}x "
            f"below the {REDUCTION_FLOOR}x contract"
        )
    if rss["headroom"] <= 1.0:
        problems.append(
            f"rss: streaming build peak increase {rss['stream_increase_mb']:.0f}"
            f" MB is not below the materialised CSR size "
            f"{rss['materialized_mb']:.0f} MB"
        )
    try:
        baseline = json.loads(baseline_path.read_text())
    except OSError as exc:
        problems.append(f"baseline {baseline_path} unreadable: {exc}")
        return problems
    except json.JSONDecodeError as exc:
        problems.append(f"baseline {baseline_path} is not valid JSON: {exc}")
        return problems
    if baseline.get("mode") != payload["mode"]:
        problems.append(
            f"baseline was recorded in {baseline.get('mode')!r} mode but this "
            f"run is {payload['mode']!r}; refresh with --write-baseline"
        )
        return problems
    gates = (
        ("dispatch", "reduction", dispatch["reduction"], REDUCTION_FACTOR),
        ("rss", "headroom", rss["headroom"], HEADROOM_FACTOR),
    )
    for case, key, cur, factor in gates:
        base = baseline["cases"][case][key]
        floor = base / factor
        if cur < floor:
            problems.append(
                f"{case}: {key} {cur:.2f}x fell below {floor:.2f}x "
                f"(baseline {base:.2f}x / {factor:g})"
            )
    return problems


def write_baseline(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    slim = {
        "mode": payload["mode"],
        "cases": {
            "dispatch": {
                "reduction": round(payload["cases"]["dispatch"]["reduction"], 3)
            },
            "rss": {"headroom": round(payload["cases"]["rss"]["headroom"], 3)},
        },
    }
    path.write_text(json.dumps(slim, indent=2, sort_keys=True) + "\n")
    print(f"[baseline] wrote {path}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small CI-sized run")
    ap.add_argument(
        "--check", metavar="PATH", help="regression-gate against a baseline JSON"
    )
    ap.add_argument(
        "--write-baseline",
        nargs="?",
        const=str(BASELINE_PATH),
        metavar="PATH",
        help="write this run's gated ratios as the new baseline",
    )
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    payload = run(mode)
    dispatch, rss = payload["cases"]["dispatch"], payload["cases"]["rss"]

    print(f"graph-store benchmark [{mode}]")
    print(
        f"  dispatch  {dispatch['jobs']} jobs x n={dispatch['n']}:  "
        f"npz={dispatch['npz_bytes']:,}B  store={dispatch['store_bytes']:,}B  "
        f"reduction={dispatch['reduction']:.1f}x  "
        f"parity={'ok' if dispatch['identical'] else 'DIVERGED'}"
    )
    print(
        f"  rss       n={rss['n']:,} m={rss['m']:,}:  "
        f"stream=+{rss['stream_increase_mb']:.0f}MB  "
        f"inmem=+{rss['inmem_increase_mb']:.0f}MB  "
        f"materialized={rss['materialized_mb']:.0f}MB  "
        f"headroom={rss['headroom']:.2f}x"
    )
    verdict = "PASS" if payload["acceptance_ok"] else "FAIL"
    print(
        f"acceptance: >= {REDUCTION_FLOOR}x shipped-bytes reduction, parity, "
        f"and streaming RSS below materialised size: {verdict}"
    )
    emit_json("graph_store", payload)

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), payload)

    if args.check:
        problems = check_regression(payload, Path(args.check))
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print("regression gate: green")
        return 0
    return 0 if payload["acceptance_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
