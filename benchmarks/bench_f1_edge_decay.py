"""F1 -- figure: geometric edge decay under the deterministic algorithms.

Prints the |E| trace per iteration (series) for matching and MIS and fits
the per-iteration retention rate: the executable rendering of "each
iteration removes a constant fraction of edges", the engine of Theorems 7
and 14.
"""

from repro.analysis import fit_geometric_decay, render_series
from repro.core import Params, deterministic_maximal_matching, deterministic_mis
from repro.graphs import gnp_random_graph

from _common import emit


def run():
    g = gnp_random_graph(1000, 0.02, seed=120)
    mm = deterministic_maximal_matching(g, Params())
    mi = deterministic_mis(g, Params())
    mm_trace = [r.edges_before for r in mm.records] + [0]
    mi_trace = [r.edges_before for r in mi.records] + [0]
    return mm_trace, mi_trace


def test_f1_edge_decay(benchmark):
    mm_trace, mi_trace = benchmark.pedantic(run, rounds=1, iterations=1)
    mm_rate = fit_geometric_decay(mm_trace[:-1])
    mi_rate = fit_geometric_decay(mi_trace[:-1])
    out = render_series(
        "F1a  matching: |E| per iteration", range(len(mm_trace)), mm_trace,
        "iter", "|E|",
    )
    out += f"\nfitted retention rate: {mm_rate:.3f} per iteration"
    out += "\n\n" + render_series(
        "F1b  MIS: |E| per iteration", range(len(mi_trace)), mi_trace,
        "iter", "|E|",
    )
    out += f"\nfitted retention rate: {mi_rate:.3f} per iteration"
    emit("f1_edge_decay", out)

    # Constant-fraction decay: retention bounded away from 1.
    assert mm_rate < 0.95
    assert mi_rate < 0.95
