"""Deterministic CONGESTED CLIQUE MIS / matching in O(log Delta) rounds
(Corollary 2), plus the Censor-Hillel-Parter-Schwartzman-style voting
baseline it improves on (O(log Delta log n) rounds).

Structure of the O(log Delta) algorithm:

* **Phases**: derandomized Luby steps (pairwise z-values over node ids,
  deterministic seed scan against the Lemma-13/21-style progress target).
  In CONGESTED CLIQUE each node can learn its 2-hop relevant information in
  O(1) rounds (Lenzen routing; cf. [15]'s fast path), so a phase costs O(1)
  rounds.  Each phase removes a constant fraction of edges.
* **Finish**: once ``|E| <= n``, collect the whole remaining graph onto one
  node with Lenzen routing and finish locally in O(1) rounds -- the step
  that is *impossible* in sublinear-space MPC and the reason the paper
  needed sparsification there (see the "Comparison with [15]" discussion).

Since ``|E_0| <= n Delta / 2``, constant-factor decay reaches ``|E| <= n``
in ``O(log Delta)`` phases.

The CHPS-style baseline runs the *same* phases but derandomizes each
O(log n)-bit seed bit-by-bit with a voting round per bit (their general
path), costing ``Theta(log n)`` rounds per phase -- total
``O(log Delta log n)``.  T8 regenerates exactly this comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.greedy import greedy_matching
from ..derand.strategies import select_seed_batch
from ..graphs.graph import Graph
from ..graphs.kernels import group_order_indptr, segment_min_block_fn
from ..hashing.families import make_product_family
from ..models.ledger import ModelSnapshot
from ..models.phase import MAXKEY, LubyPhaseKernel
from .model import CongestedCliqueContext

__all__ = ["CCResult", "cc_maximal_matching", "cc_mis"]


@dataclass(frozen=True)
class CCResult:
    """Outcome of a CONGESTED CLIQUE run."""

    solution: np.ndarray  # node ids (MIS) or (k, 2) pairs (matching)
    phases: int
    rounds: int
    edge_trace: tuple[int, ...]
    algorithm: str
    collected_remainder_edges: int
    snapshot: ModelSnapshot | None = None


def _phase_target(g: Graph) -> tuple[np.ndarray, float]:
    """A-set and conservative progress target (Cor. 15 + Lemma 21 constants)."""
    deg = g.degrees().astype(np.float64)
    inv = np.zeros(g.n)
    nz = deg > 0
    inv[nz] = 1.0 / deg[nz]
    acc = np.zeros(g.n)
    np.add.at(acc, g.edges_u, inv[g.edges_v])
    np.add.at(acc, g.edges_v, inv[g.edges_u])
    a_mask = (acc >= 1.0 / 3.0 - 1e-12) & (deg > 0)
    w_a = float(deg[a_mask].sum())
    return a_mask, 0.01 * w_a


def cc_mis(
    graph: Graph,
    *,
    charge_mode: str = "ours",
    max_scan_trials: int = 512,
    max_phases: int = 10_000,
    ctx: CongestedCliqueContext | None = None,
    seed_backend: str | None = None,
    seed_chunk: int | None = None,
) -> CCResult:
    """Deterministic MIS in CONGESTED CLIQUE.

    ``charge_mode='ours'`` charges O(1) rounds per phase (Corollary 2);
    ``charge_mode='chps'`` charges ``seed_bits`` rounds per phase (the
    bit-by-bit voting derandomization of [15]'s general path).  Passing a
    ``ctx`` lets callers (the cross-model runner, tests) own the ledger.
    ``seed_backend`` / ``seed_chunk`` select the seed-scan evaluation
    backend (``None`` resolves through the environment, and ``batched`` vs
    ``scalar`` is bit-identical by contract).

    .. note:: Prefer ``repro.api.solve(SolveRequest(problem="mis",
       model="cclique", graph=g))``; this entry point stays as a
       bit-identical thin path for existing callers.
    """
    if charge_mode not in ("ours", "chps"):
        raise ValueError("charge_mode must be 'ours' or 'chps'")
    ctx = ctx or CongestedCliqueContext(n=graph.n)
    family = make_product_family(max(graph.n, 2), k=2)
    stride = np.uint64(graph.n + 1)
    ids_all = np.arange(graph.n, dtype=np.int64)

    in_mis = np.zeros(graph.n, dtype=bool)
    removed = np.zeros(graph.n, dtype=bool)
    g = graph
    trace: list[int] = []
    phase = 0

    while g.m > graph.n:
        phase += 1
        if phase > max_phases:
            raise RuntimeError("CC MIS failed to converge")
        trace.append(g.m)
        iso = g.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso

        a_mask, target = _phase_target(g)
        deg = g.degrees().astype(np.float64)
        ids_u64 = ids_all.astype(np.uint64)
        kernel = LubyPhaseKernel(g, graph.n)

        def kill_masks(seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """(i_mask, kill) as bool[S, n] blocks for a block of seeds."""
            key = family.evaluate_batch(seeds, ids_all) * stride + ids_u64[None, :]
            return kernel.masks(key)

        def batch_objective(seeds: np.ndarray) -> np.ndarray:
            _, kill = kill_masks(seeds)
            return np.where(kill & a_mask[None, :], deg[None, :], 0.0).sum(axis=1)

        # Phase-disjoint scan offsets; the scan itself wraps around the
        # family, so deep phases still cover every seed before giving up.
        start = 1 + (phase - 1) * max_scan_trials
        sel = select_seed_batch(
            family.size,
            batch_objective,
            strategy="scan",
            target=target,
            max_trials=max_scan_trials,
            start=start,
            backend=seed_backend,
            chunk_size=seed_chunk,
        )
        one = np.array([sel.seed], dtype=np.int64)
        i_masks, kills = kill_masks(one)
        i_mask, kill = i_masks[0], kills[0]
        in_mis |= i_mask
        removed |= kill
        g = g.remove_vertices(kill)

        if charge_mode == "ours":
            ctx.charge("phase", 1)  # 2-hop-informed O(1)-round derand [15]
            ctx.charge_broadcast("phase")
        else:
            ctx.charge("phase_voting", family.seed_bits)  # 1 round per bit
            ctx.charge_broadcast("phase_voting")

    # Remainder: |E| <= n fits one node; collect with Lenzen, solve locally.
    remainder_edges = g.m
    if g.m > 0:
        trace.append(g.m)
        ctx.charge_collect_graph(g.m, "collect_remainder")
        # Greedy MIS over the undecided vertices of the remainder graph
        # (decided vertices are isolated in g but must not re-enter).
        for v in np.nonzero(~removed)[0].tolist():
            if removed[v]:
                continue
            in_mis[v] = True
            removed[v] = True
            nbrs = g.neighbors(v)
            removed[nbrs] = True
        ctx.charge_broadcast("announce")

    in_mis |= ~removed
    return CCResult(
        solution=np.nonzero(in_mis)[0].astype(np.int64),
        phases=phase,
        rounds=ctx.rounds,
        edge_trace=tuple(trace),
        algorithm=f"cc_mis[{charge_mode}]",
        collected_remainder_edges=remainder_edges,
        snapshot=ctx.model_snapshot(),
    )


def cc_maximal_matching(
    graph: Graph,
    *,
    charge_mode: str = "ours",
    max_scan_trials: int = 512,
    max_phases: int = 10_000,
    ctx: CongestedCliqueContext | None = None,
    seed_backend: str | None = None,
    seed_chunk: int | None = None,
) -> CCResult:
    """Deterministic maximal matching in CONGESTED CLIQUE (Corollary 2)."""
    if charge_mode not in ("ours", "chps"):
        raise ValueError("charge_mode must be 'ours' or 'chps'")
    ctx = ctx or CongestedCliqueContext(n=graph.n)
    pairs: list[np.ndarray] = []
    g = graph
    trace: list[int] = []
    phase = 0

    while g.m > graph.n:
        phase += 1
        if phase > max_phases:
            raise RuntimeError("CC matching failed to converge")
        trace.append(g.m)
        family = make_product_family(max(g.m, 2), k=2)
        eids = np.arange(g.m, dtype=np.int64)
        eids_u64 = eids.astype(np.uint64)
        stride = np.uint64(g.m + 1)
        deg = g.degrees().astype(np.float64)
        eu, ev = g.edges_u, g.edges_v
        w_u, w_v = deg[eu], deg[ev]
        inc_nodes = np.concatenate([eu, ev])
        inc_pos = np.concatenate([eids, eids])
        inc_order, inc_indptr = group_order_indptr(inc_nodes, graph.n)
        node_min_fn = segment_min_block_fn(
            inc_pos[inc_order], inc_indptr, eids.size
        )

        def matched_masks(seeds: np.ndarray) -> np.ndarray:
            key = family.evaluate_batch(seeds, eids) * stride + eids_u64[None, :]
            node_min = node_min_fn(key, MAXKEY)
            return (key == node_min[:, eu]) & (key == node_min[:, ev])

        def batch_objective(seeds: np.ndarray) -> np.ndarray:
            mm = matched_masks(seeds)
            return (
                np.where(mm, w_u[None, :], 0.0).sum(axis=1)
                + np.where(mm, w_v[None, :], 0.0).sum(axis=1)
            )

        target = float(g.m) / 109.0
        start = 1 + (phase - 1) * max_scan_trials
        sel = select_seed_batch(
            family.size,
            batch_objective,
            strategy="scan",
            target=target,
            max_trials=max_scan_trials,
            start=start,
            backend=seed_backend,
            chunk_size=seed_chunk,
        )
        mm = matched_masks(np.array([sel.seed], dtype=np.int64))[0]
        eid_sel = np.nonzero(mm)[0]
        pairs.append(np.stack([eu[eid_sel], ev[eid_sel]], axis=1))
        kill = np.zeros(graph.n, dtype=bool)
        kill[eu[eid_sel]] = True
        kill[ev[eid_sel]] = True
        g = g.remove_vertices(kill)

        if charge_mode == "ours":
            ctx.charge("phase", 1)
            ctx.charge_broadcast("phase")
        else:
            ctx.charge("phase_voting", family.seed_bits)
            ctx.charge_broadcast("phase_voting")

    remainder_edges = g.m
    if g.m > 0:
        trace.append(g.m)
        ctx.charge_collect_graph(g.m, "collect_remainder")
        rest = greedy_matching(g)
        if rest.size:
            pairs.append(rest)
        ctx.charge_broadcast("announce")

    sol = (
        np.concatenate(pairs, axis=0) if pairs else np.empty((0, 2), dtype=np.int64)
    )
    return CCResult(
        solution=sol,
        phases=phase,
        rounds=ctx.rounds,
        edge_trace=tuple(trace),
        algorithm=f"cc_matching[{charge_mode}]",
        collected_remainder_edges=remainder_edges,
        snapshot=ctx.model_snapshot(),
    )
