"""CONGESTED CLIQUE substrate and algorithms (Corollary 2)."""

from .model import LENZEN_ROUNDS, CongestedCliqueContext
from .mis_cc import CCResult, cc_maximal_matching, cc_mis

__all__ = [
    "CCResult",
    "CongestedCliqueContext",
    "LENZEN_ROUNDS",
    "cc_maximal_matching",
    "cc_mis",
]
