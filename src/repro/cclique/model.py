"""CONGESTED CLIQUE model substrate (paper Section 1.1.2).

``n`` nodes on a complete communication graph; per round, every ordered pair
may exchange one ``O(log n)``-bit message, so a node sends and receives at
most ``n - 1`` messages per round.  Lenzen's routing theorem [41] upgrades
this: any routing instance in which every node is source and destination of
at most ``n`` messages can be delivered in ``O(1)`` rounds -- the primitive
behind "collect the remaining graph onto one node" (the trick that lets
[15]-style algorithms finish once ``|E| <= n``).

As with :mod:`repro.mpc`, data movement is simulated centrally; the context
*verifies* the model constraints (message counts per node) and charges
rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mpc.ledger import RoundLedger

__all__ = ["CongestedCliqueContext", "LENZEN_ROUNDS"]

#: Rounds charged per Lenzen routing invocation (the theorem gives O(1);
#: Lenzen's construction uses 16, commonly cited as "2 phases"; we charge 2).
LENZEN_ROUNDS = 2


@dataclass
class CongestedCliqueContext:
    """Model state for a CONGESTED CLIQUE run on ``n`` nodes."""

    n: int
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        return self.ledger.total

    @property
    def word_bits(self) -> int:
        """Message size ``O(log n)`` -- one edge / one id per message."""
        return max(1, int(np.ceil(np.log2(max(self.n, 2)))) * 2)

    def charge(self, category: str, rounds: int = 1) -> None:
        self.ledger.charge(category, rounds)

    def charge_broadcast(self, category: str = "broadcast") -> None:
        """One node sends the same O(log n)-bit value to everyone: 1 round."""
        self.ledger.charge(category, 1)

    def charge_aggregate(self, category: str = "aggregate") -> None:
        """Sum/min of one value per node to a leader: 1 round (star)."""
        self.ledger.charge(category, 1)

    def lenzen_route(
        self,
        send_counts: np.ndarray,
        recv_counts: np.ndarray,
        category: str = "route",
    ) -> None:
        """Charge a Lenzen routing step after validating its feasibility.

        ``send_counts[v]`` / ``recv_counts[v]`` are messages sourced at /
        destined to node ``v``; each must be at most ``n``.
        """
        send = np.asarray(send_counts)
        recv = np.asarray(recv_counts)
        if send.size and int(send.max(initial=0)) > self.n:
            raise ValueError(
                f"Lenzen routing infeasible: a node sends {int(send.max())} > n"
            )
        if recv.size and int(recv.max(initial=0)) > self.n:
            raise ValueError(
                f"Lenzen routing infeasible: a node receives {int(recv.max())} > n"
            )
        self.ledger.charge(category, LENZEN_ROUNDS)

    def charge_collect_graph(self, m: int, category: str = "collect") -> None:
        """Collect ``m <= n`` edges onto a single node (Lenzen): O(1) rounds."""
        if m > self.n:
            raise ValueError(f"cannot collect {m} edges onto one node (> n)")
        self.ledger.charge(category, LENZEN_ROUNDS)
