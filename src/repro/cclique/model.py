"""CONGESTED CLIQUE model substrate (paper Section 1.1.2).

``n`` nodes on a complete communication graph; per round, every ordered pair
may exchange one ``O(log n)``-bit message, so a node sends and receives at
most ``n - 1`` messages per round.  Lenzen's routing theorem [41] upgrades
this: any routing instance in which every node is source and destination of
at most ``n`` messages can be delivered in ``O(1)`` rounds -- the primitive
behind "collect the remaining graph onto one node" (the trick that lets
[15]-style algorithms finish once ``|E| <= n``).

As with :mod:`repro.mpc`, data movement is simulated centrally; the context
*verifies* the model constraints (message counts per node) and charges
rounds.  It implements the cross-model
:class:`~repro.models.ledger.RoundLedgerProtocol`: ``words_moved`` counts
one word per ``O(log n)``-bit message, the bandwidth ceiling is the ``n``
messages per node per round that Lenzen routing tolerates, and an optional
``space_per_node`` ceiling turns the "fits on one node" arguments into
hard :class:`~repro.mpc.exceptions.SpaceExceededError` checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models.ledger import ModelSnapshot
from ..mpc.exceptions import SpaceExceededError
from ..mpc.ledger import RoundLedger

__all__ = ["CongestedCliqueContext", "LENZEN_ROUNDS"]

#: Rounds charged per Lenzen routing invocation (the theorem gives O(1);
#: Lenzen's construction uses 16, commonly cited as "2 phases"; we charge 2).
LENZEN_ROUNDS = 2


@dataclass
class CongestedCliqueContext:
    """Model state for a CONGESTED CLIQUE run on ``n`` nodes."""

    n: int
    ledger: RoundLedger = field(default_factory=RoundLedger)
    #: Optional per-node storage ceiling in words (``None`` = unbounded);
    #: the "collect the remaining graph onto one node" step observes
    #: against it, so an infeasible collect fails loudly.
    space_per_node: int | None = None
    max_words_seen: int = 0

    @property
    def rounds(self) -> int:
        return self.ledger.total

    @property
    def word_bits(self) -> int:
        """Message size ``O(log n)`` -- one edge / one id per message."""
        return max(1, int(np.ceil(np.log2(max(self.n, 2)))) * 2)

    # ------------------------------------------------------------------ #
    # Cross-model ledger protocol
    # ------------------------------------------------------------------ #

    @property
    def words_moved(self) -> int:
        return self.ledger.words_moved

    @property
    def space_ceiling(self) -> int | None:
        return self.space_per_node

    @property
    def bandwidth_ceiling(self) -> int | None:
        """Lenzen routing: at most ``n`` messages per node per round."""
        return self.n

    def charge(self, category: str, rounds: int = 1, *, words: int = 0) -> None:
        self.ledger.charge(category, rounds, words=words)

    def rounds_by_category(self) -> dict[str, int]:
        return dict(self.ledger.by_category)

    def model_snapshot(self) -> ModelSnapshot:
        return ModelSnapshot(
            model="congested-clique",
            rounds=self.rounds,
            words_moved=self.words_moved,
            by_category=self.rounds_by_category(),
            space_ceiling=self.space_per_node,
            bandwidth_ceiling=self.n,
            max_words_seen=self.max_words_seen,
            detail={"n": self.n, "word_bits": self.word_bits},
        )

    def observe_node_words(self, node: int, words: int, what: str = "") -> None:
        """Record a node's storage load; raise past ``space_per_node``."""
        words = int(words)
        if self.space_per_node is not None and words > self.space_per_node:
            raise SpaceExceededError(node, words, self.space_per_node, what)
        self.max_words_seen = max(self.max_words_seen, words)

    # ------------------------------------------------------------------ #
    # Model charging primitives
    # ------------------------------------------------------------------ #

    def charge_broadcast(self, category: str = "broadcast") -> None:
        """One node sends the same O(log n)-bit value to everyone: 1 round."""
        self.ledger.charge(category, 1, words=max(0, self.n - 1))

    def charge_aggregate(self, category: str = "aggregate") -> None:
        """Sum/min of one value per node to a leader: 1 round (star)."""
        self.ledger.charge(category, 1, words=max(0, self.n - 1))

    def lenzen_route(
        self,
        send_counts: np.ndarray,
        recv_counts: np.ndarray,
        category: str = "route",
    ) -> None:
        """Charge a Lenzen routing step after validating its feasibility.

        ``send_counts[v]`` / ``recv_counts[v]`` are messages sourced at /
        destined to node ``v``; each must be at most ``n``.
        """
        send = np.asarray(send_counts)
        recv = np.asarray(recv_counts)
        if send.size and int(send.max(initial=0)) > self.n:
            raise ValueError(
                f"Lenzen routing infeasible: a node sends {int(send.max())} > n"
            )
        if recv.size and int(recv.max(initial=0)) > self.n:
            raise ValueError(
                f"Lenzen routing infeasible: a node receives {int(recv.max())} > n"
            )
        self.ledger.charge(category, LENZEN_ROUNDS, words=int(send.sum(initial=0)))

    def charge_collect_graph(self, m: int, category: str = "collect") -> None:
        """Collect ``m <= n`` edges onto a single node (Lenzen): O(1) rounds."""
        if m > self.n:
            raise ValueError(f"cannot collect {m} edges onto one node (> n)")
        self.observe_node_words(0, m, "collecting remainder graph")
        self.ledger.charge(category, LENZEN_ROUNDS, words=int(m))
