"""Nested-span tracer with a no-op disabled path (``REPRO_TRACE``).

Design constraints, in order:

1. **The disabled path must be free.**  Every instrumentation site in the
   solvers and simulators guards on the module-global :data:`_TRACING`
   boolean — one attribute load + branch, no function call, no ContextVar
   read — so with ``REPRO_TRACE`` unset the hot loops (ledger charges,
   engine rounds, seed-scan chunks) pay a few nanoseconds per site.  The
   parity contract (disabled tracing leaves solver outputs and ledger
   totals bit-identical) is trivially true because disabled sites execute
   nothing.
2. **Nesting follows the call tree, concurrency-safely.**  The active span
   and the active buffer are :class:`~contextvars.ContextVar`s — the same
   mechanism as :func:`repro.graphs.kernels.kernel_backend_scope` — so
   concurrent ``solve()`` calls in different threads or tasks build
   disjoint span trees.
3. **Spans are plain dicts at rest.**  A finished span is appended to its
   buffer as a JSON-safe flat record (``id`` / ``parent`` / ``name`` /
   ``ts`` / ``dur`` / ``attrs`` / ``events``), which is exactly the JSONL
   line format and the input to the Perfetto exporter — no second
   serialization model.

Enabling: ``REPRO_TRACE=1`` (or ``on`` / ``true`` / ``yes``) turns tracing
on in-process; any other non-empty value is read as a *path* and finished
root buffers are appended there as JSONL.  :func:`trace_capture` enables
tracing for a scope regardless of the environment and hands the caller the
buffer — the runtime worker uses it to ship per-job traces back to the
scheduler.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "Span",
    "TraceBuffer",
    "add_event",
    "clock",
    "current_span",
    "env_trace_destination",
    "is_tracing",
    "ledger_event",
    "record_span",
    "refresh_env",
    "span",
    "trace_capture",
]

#: Values of ``REPRO_TRACE`` meaning "enabled, no file sink".
_FLAG_VALUES = ("1", "on", "true", "yes")
#: Values meaning "disabled" (same family as the backend env switches).
_OFF_VALUES = ("", "0", "off", "false", "no", "none")


def _parse_env() -> tuple[bool, str | None]:
    """``(enabled, jsonl_destination_or_None)`` from ``REPRO_TRACE``."""
    raw = os.environ.get("REPRO_TRACE", "").strip()
    if raw.lower() in _OFF_VALUES:
        return False, None
    if raw.lower() in _FLAG_VALUES:
        return True, None
    return True, raw


_ENV_ENABLED, _ENV_DEST = _parse_env()
_capture_count = 0

#: THE fast-path gate.  Instrumentation sites check ``trace._TRACING``
#: directly; everything else in this module is behind it.
_TRACING = _ENV_ENABLED

clock = time.perf_counter


def _recompute() -> None:
    global _TRACING
    _TRACING = _ENV_ENABLED or _capture_count > 0


def refresh_env() -> None:
    """Re-read ``REPRO_TRACE`` (tests and the CLI mutate the environment)."""
    global _ENV_ENABLED, _ENV_DEST
    _ENV_ENABLED, _ENV_DEST = _parse_env()
    _recompute()


def is_tracing() -> bool:
    """True when any instrumentation site would record."""
    return _TRACING


def env_trace_destination() -> str | None:
    """The JSONL path ``REPRO_TRACE`` names, or ``None``."""
    return _ENV_DEST


class Span:
    """One live span; finished spans are stored as plain dicts."""

    __slots__ = ("sid", "parent_id", "name", "ts", "attrs", "events")

    def __init__(
        self, sid: int, parent_id: int, name: str, ts: float, attrs: dict
    ) -> None:
        self.sid = sid
        self.parent_id = parent_id
        self.name = name
        self.ts = ts
        self.attrs = attrs
        self.events: list[dict] = []

    def set(self, **attrs) -> None:
        """Attach / overwrite attributes (JSON scalars only, by convention)."""
        self.attrs.update(attrs)

    def event(self, name: str, **fields) -> None:
        self.events.append({"name": name, "t": clock(), **fields})


class TraceBuffer:
    """Finished spans of one trace, in completion order (children first)."""

    def __init__(self) -> None:
        self.spans: list[dict] = []
        self.t_origin = clock()
        self._next_id = 1

    def start(self, name: str, parent: Span | None, attrs: dict) -> Span:
        sid = self._next_id
        self._next_id += 1
        return Span(
            sid, parent.sid if parent is not None else 0, name, clock(), attrs
        )

    def finish(self, s: Span) -> None:
        for ev in s.events:
            ev["t"] = round(ev["t"] - self.t_origin, 9)
        self.spans.append(
            {
                "id": s.sid,
                "parent": s.parent_id,
                "name": s.name,
                "ts": round(s.ts - self.t_origin, 9),
                "dur": round(clock() - s.ts, 9),
                "attrs": s.attrs,
                "events": s.events,
            }
        )

    def jsonl_lines(self) -> list[str]:
        return [json.dumps(rec, sort_keys=True) for rec in self.spans]

    def write_jsonl(self, path: str, append: bool = True) -> None:
        mode = "a" if append else "w"
        with open(path, mode) as fh:
            for line in self.jsonl_lines():
                fh.write(line + "\n")


_BUFFER: ContextVar[TraceBuffer | None] = ContextVar(
    "repro_obs_trace_buffer", default=None
)
_SPAN: ContextVar[Span | None] = ContextVar("repro_obs_active_span", default=None)


def current_span() -> Span | None:
    """The innermost open span in this context (``None`` when disabled)."""
    if not _TRACING:
        return None
    return _SPAN.get()


@contextmanager
def span(name: str, **attrs):
    """Open a nested span; yields the :class:`Span` or ``None`` if disabled.

    Exception-safe by construction: the span is finished and the parent
    restored in a ``finally`` block, and an escaping exception is recorded
    on the span as ``error=<type name>`` before it propagates.
    """
    if not _TRACING:
        yield None
        return
    buf = _BUFFER.get()
    if buf is None:
        yield None
        return
    s = buf.start(name, _SPAN.get(), attrs)
    token = _SPAN.set(s)
    try:
        yield s
    except BaseException as exc:
        s.attrs["error"] = type(exc).__name__
        raise
    finally:
        _SPAN.reset(token)
        buf.finish(s)


def record_span(name: str, t_start: float, attrs: dict) -> None:
    """Append an already-elapsed span (``t_start`` from :func:`clock`).

    The zero-contextmanager form hot loops use: the caller samples
    ``clock()`` behind its own ``_TRACING`` check, runs the work, and
    records the completed span afterwards — one function call on the
    enabled path, one branch on the disabled path, and no generator
    machinery either way.
    """
    if not _TRACING:
        return
    buf = _BUFFER.get()
    if buf is None:
        return
    parent = _SPAN.get()
    s = Span(buf._next_id, parent.sid if parent is not None else 0, name, t_start, attrs)
    buf._next_id += 1
    buf.finish(s)


def add_event(name: str, **fields) -> None:
    """Attach an event to the innermost open span (no-op when disabled)."""
    if not _TRACING:
        return
    s = _SPAN.get()
    if s is not None:
        s.event(name, **fields)


def ledger_event(category: str, rounds: int, words: int) -> None:
    """A :class:`~repro.mpc.ledger.RoundLedger` charge, as a span event.

    Called (behind the ``_TRACING`` guard) by every ledger implementor —
    MPCEngine, MPCContext, CongestedCliqueContext, CongestContext — so the
    per-charge stream the ledgers used to collapse into totals lands on
    the active span instead.
    """
    s = _SPAN.get()
    if s is not None:
        s.events.append(
            {
                "name": "charge",
                "t": clock(),
                "category": category,
                "rounds": rounds,
                "words": words,
            }
        )


@contextmanager
def trace_capture():
    """Force tracing on for this scope and yield the :class:`TraceBuffer`.

    Independent of ``REPRO_TRACE`` — this is how tests and the runtime
    worker collect a trace programmatically.  Captures nest: an inner
    capture shadows the outer buffer for its scope (each sees only its own
    spans).
    """
    global _capture_count
    buf = TraceBuffer()
    buf_token = _BUFFER.set(buf)
    span_token = _SPAN.set(None)
    _capture_count += 1
    _recompute()
    try:
        yield buf
    finally:
        _capture_count -= 1
        _recompute()
        _SPAN.reset(span_token)
        _BUFFER.reset(buf_token)


@contextmanager
def ensure_buffer():
    """Yield the active buffer, creating (and flushing) one if none exists.

    :func:`repro.api.solve` wraps traced solves in this: nested solves and
    worker captures reuse the ambient buffer, while a bare env-enabled
    solve gets a fresh root buffer whose spans are appended to the
    ``REPRO_TRACE`` JSONL destination (when one is named) on close.
    """
    existing = _BUFFER.get()
    if existing is not None:
        yield existing
        return
    buf = TraceBuffer()
    token = _BUFFER.set(buf)
    try:
        yield buf
    finally:
        _BUFFER.reset(token)
        if _ENV_DEST and buf.spans:
            buf.write_jsonl(_ENV_DEST, append=True)
