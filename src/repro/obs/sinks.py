"""Trace persistence and analysis: JSONL I/O, Perfetto export, summaries.

A *trace* at rest is a list of flat span dicts (the
:class:`~repro.obs.trace.TraceBuffer` record format), stored one JSON
object per line.  Everything here is a pure function over that list so the
CLI, the tests, and CI steps share one implementation.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "chrome_trace",
    "diff_summaries",
    "read_jsonl",
    "summarize",
    "top_spans",
    "write_chrome_trace",
    "write_jsonl",
]


def read_jsonl(path: str | Path) -> list[dict]:
    """Load spans from a JSONL trace file (blank / torn lines skipped)."""
    spans: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write; ignore like the cache index does
            if isinstance(rec, dict) and "name" in rec:
                spans.append(rec)
    return spans


def write_jsonl(spans: list[dict], path: str | Path) -> None:
    with Path(path).open("w") as fh:
        for rec in spans:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")


def chrome_trace(spans: list[dict]) -> dict:
    """Spans as a Chrome-trace / Perfetto ``traceEvents`` document.

    Each span becomes a complete event (``"ph": "X"``) with microsecond
    timestamps; span attributes ride in ``args`` and ledger charge events
    become instant events (``"ph": "i"``) on the same track.  Spans are
    laid out on one process with the track (tid) derived from tree depth,
    so nesting reads top-down in the Perfetto UI even without flow events.
    """
    depth: dict[int, int] = {0: -1}  # sentinel "parent of roots": roots at 0
    events: list[dict] = []
    # Parents finish after children in buffer order, so resolve depths via
    # the parent pointers in a second pass over the id->span map.
    by_id = {rec.get("id", 0): rec for rec in spans}

    def _depth(sid: int) -> int:
        d = depth.get(sid)
        if d is not None:
            return d
        rec = by_id.get(sid)
        d = 0 if rec is None else 1 + _depth(rec.get("parent", 0))
        depth[sid] = d
        return d

    for rec in spans:
        tid = _depth(rec.get("id", 0))
        events.append(
            {
                "name": rec["name"],
                "ph": "X",
                "ts": round(rec.get("ts", 0.0) * 1e6, 3),
                "dur": round(rec.get("dur", 0.0) * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "cat": rec["name"].split(".", 1)[0],
                "args": dict(rec.get("attrs", {})),
            }
        )
        for ev in rec.get("events", []):
            args = {k: v for k, v in ev.items() if k not in ("name", "t")}
            events.append(
                {
                    "name": ev.get("name", "event"),
                    "ph": "i",
                    "s": "t",
                    "ts": round(ev.get("t", 0.0) * 1e6, 3),
                    "pid": 1,
                    "tid": tid,
                    "cat": rec["name"].split(".", 1)[0],
                    "args": args,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(spans: list[dict], path: str | Path) -> None:
    Path(path).write_text(json.dumps(chrome_trace(spans)))


def summarize(spans: list[dict]) -> dict:
    """Aggregate a trace: per-name counts/durations and charge totals."""
    by_name: dict[str, dict] = {}
    charges: dict[str, dict[str, float]] = {}
    n_events = 0
    for rec in spans:
        row = by_name.setdefault(
            rec["name"], {"count": 0, "total_dur": 0.0, "max_dur": 0.0}
        )
        dur = float(rec.get("dur", 0.0))
        row["count"] += 1
        row["total_dur"] += dur
        if dur > row["max_dur"]:
            row["max_dur"] = dur
        for ev in rec.get("events", []):
            n_events += 1
            if ev.get("name") == "charge":
                cat = charges.setdefault(
                    str(ev.get("category", "?")), {"rounds": 0, "words": 0}
                )
                cat["rounds"] += ev.get("rounds", 0)
                cat["words"] += ev.get("words", 0)
    for row in by_name.values():
        row["total_dur"] = round(row["total_dur"], 9)
        row["max_dur"] = round(row["max_dur"], 9)
    wall = max((rec.get("ts", 0.0) + rec.get("dur", 0.0) for rec in spans), default=0.0)
    return {
        "spans": len(spans),
        "events": n_events,
        "wall_span": round(wall, 9),
        "by_name": dict(sorted(by_name.items())),
        "charges": dict(sorted(charges.items())),
    }


def top_spans(spans: list[dict], k: int = 10) -> list[dict]:
    """The ``k`` longest individual spans, longest first."""
    ranked = sorted(spans, key=lambda rec: rec.get("dur", 0.0), reverse=True)
    return [
        {
            "name": rec["name"],
            "dur": rec.get("dur", 0.0),
            "ts": rec.get("ts", 0.0),
            "attrs": rec.get("attrs", {}),
        }
        for rec in ranked[: max(k, 0)]
    ]


def diff_summaries(a: dict, b: dict) -> dict:
    """Compare two :func:`summarize` outputs (b relative to a).

    Reports per-name count/duration deltas plus per-category charge deltas
    — the shape that answers "did this change add rounds or words?".
    """
    names = sorted(set(a.get("by_name", {})) | set(b.get("by_name", {})))
    by_name = {}
    for name in names:
        ra = a.get("by_name", {}).get(name, {"count": 0, "total_dur": 0.0})
        rb = b.get("by_name", {}).get(name, {"count": 0, "total_dur": 0.0})
        by_name[name] = {
            "count_a": ra["count"],
            "count_b": rb["count"],
            "count_delta": rb["count"] - ra["count"],
            "dur_a": ra["total_dur"],
            "dur_b": rb["total_dur"],
            "dur_delta": round(rb["total_dur"] - ra["total_dur"], 9),
        }
    cats = sorted(set(a.get("charges", {})) | set(b.get("charges", {})))
    charges = {}
    for cat in cats:
        ca = a.get("charges", {}).get(cat, {"rounds": 0, "words": 0})
        cb = b.get("charges", {}).get(cat, {"rounds": 0, "words": 0})
        charges[cat] = {
            "rounds_delta": cb["rounds"] - ca["rounds"],
            "words_delta": cb["words"] - ca["words"],
        }
    return {
        "spans_a": a.get("spans", 0),
        "spans_b": b.get("spans", 0),
        "by_name": by_name,
        "charges": charges,
    }
