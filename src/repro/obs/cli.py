"""``repro trace`` — record, inspect, export, and conformance-check traces.

Actions (wired into :mod:`repro.__main__`)::

    repro trace record     --problem mis --model mpc-engine --out t.jsonl
    repro trace summarize  t.jsonl [--json -]
    repro trace top        t.jsonl -k 10
    repro trace diff       a.jsonl b.jsonl
    repro trace export     t.jsonl --out t.perfetto.json
    repro trace conformance --problem mis --model simulated [--symbolic]
    repro trace conformance --all      # every registry entry, exit 1 on FAIL

``record`` runs one solve under :func:`~repro.obs.trace.trace_capture`
(so it works without setting ``REPRO_TRACE``); the other actions are pure
readers over JSONL trace files and print human summaries, or JSON with
``--json`` (``-`` = stdout).
"""

from __future__ import annotations

import json
import sys

from . import conformance as _conf
from . import sinks
from .trace import trace_capture

__all__ = ["add_trace_parser", "cmd_trace"]


def _emit_json(dest: str, payload: dict) -> None:
    """Write ``payload`` as JSON to a path, or stdout when dest is ``-``."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if dest == "-":
        sys.stdout.write(text)
    else:
        with open(dest, "w") as fh:
            fh.write(text)
        print(f"  json written to {dest}")


def _print_summary(summary: dict) -> None:
    print(f"spans: {summary['spans']}  events: {summary['events']}  "
          f"wall span: {summary['wall_span']:.4f}s")
    if summary["by_name"]:
        print(f"  {'span':24s} {'count':>7s} {'total s':>10s} {'max s':>10s}")
        for name, row in summary["by_name"].items():
            print(f"  {name:24s} {row['count']:7d} "
                  f"{row['total_dur']:10.4f} {row['max_dur']:10.4f}")
    if summary["charges"]:
        print(f"  {'charge category':24s} {'rounds':>7s} {'words':>12s}")
        for cat, row in summary["charges"].items():
            print(f"  {cat:24s} {row['rounds']:7d} {row['words']:12d}")


def _record(args) -> int:
    from ..api import SolveRequest, solve
    from ..graphs import gnp_random_graph, read_edge_list

    if args.input:
        g = read_edge_list(args.input)
    else:
        g = gnp_random_graph(args.n, args.p, seed=args.seed)
    with trace_capture() as buf:
        res = solve(
            SolveRequest(
                problem=args.problem, model=args.model, graph=g, eps=args.eps
            )
        )
    spans = buf.spans
    sinks.write_jsonl(spans, args.out)
    print(f"traced {args.problem}/{args.model} on {g}: "
          f"{len(spans)} spans -> {args.out}")
    if args.perfetto:
        sinks.write_chrome_trace(spans, args.perfetto)
        print(f"  perfetto trace written to {args.perfetto} "
              f"(open in ui.perfetto.dev)")
    _print_summary(sinks.summarize(spans))
    return 0 if res.verified else 1


def _summarize(args) -> int:
    summary = sinks.summarize(sinks.read_jsonl(args.trace))
    if args.json:
        _emit_json(args.json, summary)
    else:
        _print_summary(summary)
    return 0


def _top(args) -> int:
    ranked = sinks.top_spans(sinks.read_jsonl(args.trace), k=args.k)
    if args.json:
        _emit_json(args.json, {"top": ranked})
        return 0
    print(f"top {len(ranked)} spans by duration:")
    for row in ranked:
        attrs = ", ".join(f"{k}={v}" for k, v in sorted(row["attrs"].items()))
        print(f"  {row['dur']:10.6f}s  {row['name']:24s} {attrs}")
    return 0


def _diff(args) -> int:
    diff = sinks.diff_summaries(
        sinks.summarize(sinks.read_jsonl(args.trace_a)),
        sinks.summarize(sinks.read_jsonl(args.trace_b)),
    )
    if args.json:
        _emit_json(args.json, diff)
        return 0
    print(f"spans: {diff['spans_a']} -> {diff['spans_b']}")
    print(f"  {'span':24s} {'count':>13s} {'dur delta s':>12s}")
    for name, row in diff["by_name"].items():
        print(f"  {name:24s} {row['count_a']:5d} -> {row['count_b']:5d} "
              f"{row['dur_delta']:+12.4f}")
    for cat, row in diff["charges"].items():
        print(f"  charge {cat:17s} rounds {row['rounds_delta']:+8d} "
              f"words {row['words_delta']:+12d}")
    return 0


def _export(args) -> int:
    spans = sinks.read_jsonl(args.trace)
    sinks.write_chrome_trace(spans, args.out)
    print(f"{len(spans)} spans -> {args.out} (open in ui.perfetto.dev)")
    return 0


def _conformance_all(args, sizes) -> int:
    reports = _conf.conformance_matrix(
        sizes=sizes,
        avg_deg=args.avg_deg,
        seed=args.seed,
        reps=args.reps,
        symbolic=args.symbolic,
    )
    if args.json:
        _emit_json(args.json, {"reports": reports})
        return 1 if any(r["conformant"] is False for r in reports) else 0
    scope = "totals + per-phase charge streams" if args.symbolic else "totals"
    print(f"conformance matrix: {len(reports)} registry entries ({scope})")
    width = max(len(f"{r['problem']}/{r['model']}") for r in reports)
    failed = 0
    for r in reports:
        name = f"{r['problem']}/{r['model']}"
        decided = [f for f in r["fits"] if f.get("ok") is not None]
        if r["conformant"] is None:
            verdict, detail = "----", "no decidable claims"
        elif r["conformant"]:
            verdict = "pass"
            detail = f"{len(decided)} claim(s) checked"
        else:
            verdict, failed = "FAIL", failed + 1
            bad = [
                f"{f['category'] or 'total'}:{f['metric']}"
                for f in decided
                if not f["ok"]
            ]
            detail = "violated: " + ", ".join(bad)
        print(f"  [{verdict}] {name:<{width}}  {detail}")
    if failed:
        print(f"{failed} entrie(s) violate declared claims")
        return 1
    print("all decidable claims conform")
    return 0


def _conformance(args) -> int:
    sizes = [int(s) for s in args.sizes.split(",")] if args.sizes else None
    if args.all:
        return _conformance_all(args, sizes)
    report = _conf.conformance_report(
        args.problem,
        args.model,
        sizes=sizes,
        avg_deg=args.avg_deg,
        seed=args.seed,
        reps=args.reps,
        symbolic=args.symbolic,
    )
    if args.json:
        _emit_json(args.json, report)
        return 0 if report["conformant"] is not False else 1
    scope = "totals + per-phase charge streams" if args.symbolic else "totals"
    print(f"conformance: {args.problem}/{args.model} over "
          f"n = {[r['n'] for r in report['rows']]} (x{args.reps} reps, {scope})")
    for fit in report["fits"]:
        where = fit["category"] or "total"
        if fit["ok"] is None:
            label = fit["metric"] or "-"
            print(f"  [----] {where:20s} {label:12s} {fit['status']}")
            continue
        mark = "ok " if fit["ok"] else "FAIL"
        hows = "tight fit" if fit.get("tight") else "within bound"
        print(f"  [{mark}] {where:20s} {fit['metric']:12s} ~ {fit['claim']:34s} "
              f"c = {fit['constant']:<10g} R^2 = {fit['r2']:.4f} "
              f"nrmse = {fit['nrmse']:.4f} ({hows})")
    if report.get("notes"):
        print(f"  note: {report['notes']}")
    return 0 if report["conformant"] is not False else 1


def cmd_trace(args) -> int:
    return args.trace_fn(args)


def add_trace_parser(sub) -> None:
    """Register the ``trace`` subcommand group on the main subparsers."""
    tr = sub.add_parser(
        "trace",
        help="record, summarize, diff, export, and conformance-check traces",
    )
    actions = tr.add_subparsers(dest="trace_action", required=True)

    rec = actions.add_parser("record", help="run one traced solve")
    rec.add_argument("--problem", type=str, default="mis")
    rec.add_argument("--model", type=str, default="simulated")
    rec.add_argument("--input", type=str, default=None,
                     help="edge-list file (generated G(n, p) otherwise)")
    rec.add_argument("--n", type=int, default=300)
    rec.add_argument("--p", type=float, default=0.03)
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument("--eps", type=float, default=0.5)
    rec.add_argument("--out", type=str, default="trace.jsonl",
                     help="JSONL trace destination")
    rec.add_argument("--perfetto", type=str, default=None,
                     help="also export a Chrome-trace/Perfetto JSON")
    rec.set_defaults(fn=cmd_trace, trace_fn=_record)

    sm = actions.add_parser("summarize", help="aggregate a JSONL trace")
    sm.add_argument("trace", help="JSONL trace file")
    sm.add_argument("--json", type=str, default=None,
                    help="write summary JSON to a path, or - for stdout")
    sm.set_defaults(fn=cmd_trace, trace_fn=_summarize)

    tp = actions.add_parser("top", help="longest individual spans")
    tp.add_argument("trace", help="JSONL trace file")
    tp.add_argument("-k", type=int, default=10)
    tp.add_argument("--json", type=str, default=None)
    tp.set_defaults(fn=cmd_trace, trace_fn=_top)

    df = actions.add_parser("diff", help="compare two traces")
    df.add_argument("trace_a", help="baseline JSONL trace")
    df.add_argument("trace_b", help="candidate JSONL trace")
    df.add_argument("--json", type=str, default=None)
    df.set_defaults(fn=cmd_trace, trace_fn=_diff)

    ex = actions.add_parser(
        "export", help="convert a JSONL trace to Chrome-trace/Perfetto JSON"
    )
    ex.add_argument("trace", help="JSONL trace file")
    ex.add_argument("--out", type=str, required=True,
                    help="Perfetto JSON destination")
    ex.set_defaults(fn=cmd_trace, trace_fn=_export)

    cf = actions.add_parser(
        "conformance",
        help="check measured cost series against declared symbolic claims",
    )
    cf.add_argument("--problem", type=str, default="mis")
    cf.add_argument("--model", type=str, default="simulated")
    cf.add_argument("--all", action="store_true",
                    help="sweep every registry entry (the full problem x "
                         "model matrix); exit 1 if any entry violates a "
                         "declared claim")
    cf.add_argument("--sizes", type=str, default=None,
                    help="comma-separated n values (default 64,128,256,512)")
    cf.add_argument("--avg-deg", type=float, default=6.0)
    cf.add_argument("--seed", type=int, default=7)
    cf.add_argument("--reps", type=int, default=3,
                    help="graphs averaged per size (instance-noise smoothing)")
    cf.add_argument("--symbolic", action="store_true",
                    help="also check each declared charge category's "
                         "per-phase stream (solves run under the tracer)")
    cf.add_argument("--json", type=str, default=None,
                    help="write the full report JSON (- for stdout)")
    cf.set_defaults(fn=cmd_trace, trace_fn=_conformance)
