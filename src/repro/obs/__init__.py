"""``repro.obs`` — structured tracing, metrics, and theory conformance.

The paper's claims are *resource bounds* — ``O(1/gamma^2)`` low-space MPC
rounds, ``O(D + seed_bits)`` CONGEST seed fixes — so observability is a
first-class subsystem here, not an afterthought: you cannot check a round
bound you cannot see per phase.  Three zero-dependency pieces:

* :mod:`repro.obs.trace` — nested spans (solve → stage → phase →
  seed-scan → engine round) with attributes and ledger charge events,
  gated by ``REPRO_TRACE`` so the disabled path is a flag check;
* :mod:`repro.obs.metrics` — process-global counters / gauges /
  histograms (seed-scan chunks, early-exit depth, cache hits, worker
  retries) exported as one flat dict;
* :mod:`repro.obs.symbolic` — the symbolic complexity ledger: sympy
  cost expressions over a shared symbol vocabulary (``n``, ``m``,
  ``delta``, ``depth``, ``gamma``, ``seed_bits``, ``machines``,
  ``space``) that registry entries declare per envelope total *and* per
  ledger charge category, plus the constant-fit / asymptotic-dominance
  checker (lazily imports sympy — the only module here with a
  third-party dependency beyond numpy);
* :mod:`repro.obs.conformance` — sweeps of real solves whose measured
  series (endpoint totals and, under ``--symbolic``, the per-charge
  streams the tracer records) are checked against those declarations.

Sinks and tooling live in :mod:`repro.obs.sinks` (JSONL traces, the
Chrome-trace / Perfetto exporter, summaries and diffs) and surface on the
CLI as ``repro trace`` (:mod:`repro.obs.cli`).
"""

from __future__ import annotations

from .metrics import METRICS, MetricsRegistry
from .trace import (
    Span,
    TraceBuffer,
    add_event,
    current_span,
    env_trace_destination,
    is_tracing,
    record_span,
    refresh_env,
    span,
    trace_capture,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "Span",
    "TraceBuffer",
    "add_event",
    "current_span",
    "env_trace_destination",
    "is_tracing",
    "record_span",
    "refresh_env",
    "span",
    "trace_capture",
]
