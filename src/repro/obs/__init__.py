"""``repro.obs`` — structured tracing, metrics, and theory conformance.

The paper's claims are *resource bounds* — ``O(1/gamma^2)`` low-space MPC
rounds, ``O(D + seed_bits)`` CONGEST seed fixes — so observability is a
first-class subsystem here, not an afterthought: you cannot check a round
bound you cannot see per phase.  Three zero-dependency pieces:

* :mod:`repro.obs.trace` — nested spans (solve → stage → phase →
  seed-scan → engine round) with attributes and ledger charge events,
  gated by ``REPRO_TRACE`` so the disabled path is a flag check;
* :mod:`repro.obs.metrics` — process-global counters / gauges /
  histograms (seed-scan chunks, early-exit depth, cache hits, worker
  retries) exported as one flat dict;
* :mod:`repro.obs.conformance` — first fit of measured rounds-vs-n and
  words-vs-n series against the asymptotic shapes each registry entry
  declares (the executable seed of the ROADMAP's symbolic complexity
  ledger).

Sinks and tooling live in :mod:`repro.obs.sinks` (JSONL traces, the
Chrome-trace / Perfetto exporter, summaries and diffs) and surface on the
CLI as ``repro trace`` (:mod:`repro.obs.cli`).
"""

from __future__ import annotations

from .metrics import METRICS, MetricsRegistry
from .trace import (
    Span,
    TraceBuffer,
    add_event,
    current_span,
    env_trace_destination,
    is_tracing,
    record_span,
    refresh_env,
    span,
    trace_capture,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "Span",
    "TraceBuffer",
    "add_event",
    "current_span",
    "env_trace_destination",
    "is_tracing",
    "record_span",
    "refresh_env",
    "span",
    "trace_capture",
]
