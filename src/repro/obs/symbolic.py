"""Symbolic cost models: sympy expressions checked against charge streams.

This is the ROADMAP's *symbolic complexity ledger*.  The named-shape
vocabulary of :mod:`repro.obs.conformance` could say ``rounds ~
log_delta_plus_loglog_n`` about a solve's *endpoint totals*; this module
lets a registry entry state the paper's claims the way the paper does —
per phase, per charge category, as expressions over a shared symbol
vocabulary::

    cost_model={
        "rounds": "depth * seed_bits * log(delta)",
        "words_moved": "n * seed_bits * log(delta)",
        "phases": {
            "phase_seed": {"rounds": "depth * seed_bits * log(delta)"},
            "phase_local": {"rounds": "log(delta)"},
        },
        "refs": ("Corollary 3", "Section 2.4"),
    }

and have the checker verify each phase's *measured per-charge stream*
(the ``charge`` span events every :class:`~repro.models.ledger.
RoundLedgerProtocol` implementor emits under tracing) against its
declared expression — surfacing which phase blows a claim, not just
which solver.

Symbol vocabulary (all positive):

=============  ======================================================
``n``          vertices of the input graph
``m``          edges of the input graph
``delta``      maximum degree (Delta)
``depth``      BFS-tree depth (CONGEST aggregation trees), else ~log n
``gamma``      the local-space exponent (S = Theta(n^gamma); ``eps``)
``seed_bits``  bits of the derandomization seed (Theta(log n))
``machines``   machines / nodes executing the round schedule
``space``      words of local space per machine (S)
=============  ======================================================

Expressions use ``log`` (clamped: ``log(max(x, 2))``, matching the
named-shape vocabulary's guards) and ``loglog`` as shorthands; anything
:func:`sympy.sympify` accepts over these symbols parses.

Checking semantics — claims are **O(·) upper bounds**, so a series is
*conformant* when either criterion holds:

* **constant fit** — one-parameter least squares through the origin
  tracks the series (``R^2 >= 0.8`` or NRMSE ``<= 0.15``, the
  :mod:`~repro.obs.conformance` thresholds); the claim is *tight*;
* **dominance** — the measured series does not outgrow the claim over
  the sweep (the ratio ``measured / claimed`` grows by at most
  ``GROWTH_SLACK``); the claim is a loose-but-sound bound (round counts
  that stay flat while the claim allows ``log n`` are fine).

A ``Theta(n)`` series declared ``O(log n)`` fails both and is reported
non-conformant.  Like the shape fits, this is a smoke alarm over a
handful of feasible sizes, not a proof.

sympy is imported lazily so the solver hot paths (which import
``repro.obs.trace``) never pay for it; it is required only when symbolic
checking or doc generation actually runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "GROWTH_SLACK",
    "SYMBOL_DOC",
    "SYMBOL_NAMES",
    "CostModel",
    "check_series",
    "compare_growth",
    "dominance_order",
    "evaluate_expr",
    "fit_constant",
    "growth_check",
    "parse_cost_model",
    "parse_expr",
    "render_claim",
    "symbol_defaults",
]

#: The shared symbol vocabulary, in display order.
SYMBOL_NAMES = (
    "n",
    "m",
    "delta",
    "depth",
    "gamma",
    "seed_bits",
    "machines",
    "space",
)

#: One-line meaning per symbol (rendered into ``docs/THEORY.md``).
SYMBOL_DOC = {
    "n": "vertices of the input graph",
    "m": "edges of the input graph",
    "delta": "maximum degree (Delta)",
    "depth": "BFS-tree depth of the CONGEST aggregation trees",
    "gamma": "local-space exponent (S = Theta(n^gamma))",
    "seed_bits": "bits of the derandomization seed (Theta(log n))",
    "machines": "machines / nodes executing the round schedule",
    "space": "words of local space per machine (S)",
}

#: Dominance criterion: the measured/claimed ratio may grow by at most
#: this factor across the sweep before the claim is called outgrown.
GROWTH_SLACK = 2.0

# Reuse the endpoint-fit thresholds so "tight" means the same thing in
# both vocabularies.
R2_THRESHOLD = 0.8
NRMSE_THRESHOLD = 0.15


def _sympy():
    try:
        import sympy
    except ImportError as exc:  # pragma: no cover - sympy ships with CI
        raise ImportError(
            "the symbolic complexity ledger needs sympy "
            "(repro.obs.symbolic is the only consumer; the solvers do not)"
        ) from exc
    return sympy


def _symbols() -> dict:
    sympy = _sympy()
    return {name: sympy.Symbol(name, positive=True) for name in SYMBOL_NAMES}


def _safe_log(x: float) -> float:
    """``log`` with the same clamp the named-shape vocabulary uses."""
    return math.log(max(float(x), 2.0))


def parse_expr(text: str):
    """Parse ``text`` into a sympy expression over the shared vocabulary.

    ``log`` is sympy's; ``loglog(x)`` is shorthand for ``log(log(x))``.
    Unknown symbols raise ``ValueError`` naming the offenders — a typo in
    a registry declaration should fail at declaration-check time, not
    silently fit garbage.
    """
    sympy = _sympy()
    syms = _symbols()
    local = dict(syms)
    local["log"] = sympy.log
    local["loglog"] = lambda x: sympy.log(sympy.log(x))
    try:
        expr = sympy.sympify(text, locals=local)
    except (sympy.SympifyError, SyntaxError, TypeError) as exc:
        raise ValueError(f"unparseable cost expression {text!r}: {exc}") from None
    unknown = {str(s) for s in expr.free_symbols} - set(SYMBOL_NAMES)
    if unknown:
        raise ValueError(
            f"cost expression {text!r} uses unknown symbols {sorted(unknown)}; "
            f"vocabulary: {list(SYMBOL_NAMES)}"
        )
    return expr


def symbol_defaults(row: dict) -> dict:
    """Fill derivable symbols a sweep row may lack (``gamma`` stays hard).

    ``seed_bits`` defaults to the model's ``Theta(log n)`` seed length and
    ``depth`` to ``ceil(log n)`` when the row has an ``n``; symbols with no
    derivation (``gamma``, ``machines``, ``space``) are never invented —
    a claim that needs them on a row without them is reported as
    unmeasurable, not silently guessed.
    """
    out = dict(row)
    n = out.get("n")
    if n is not None:
        out.setdefault("seed_bits", max(1, math.ceil(math.log2(max(n, 2)))))
        out.setdefault("depth", max(1, math.ceil(_safe_log(n))))
    return out


def evaluate_expr(expr, row: dict) -> float:
    """Evaluate ``expr`` on one sweep row (``log`` clamped at 2).

    Raises ``KeyError`` listing the missing symbols when the row lacks a
    value the expression needs.
    """
    needed = sorted(str(s) for s in expr.free_symbols)
    row = symbol_defaults(row)
    missing = [name for name in needed if row.get(name) is None]
    if missing:
        raise KeyError(
            f"row is missing symbols {missing} needed by {expr}; "
            f"row keys: {sorted(k for k, v in row.items() if v is not None)}"
        )
    fn = _lambdified(expr, tuple(needed))
    return float(fn(*(float(row[name]) for name in needed)))


_LAMBDIFY_CACHE: dict = {}


def _lambdified(expr, argnames: tuple[str, ...]):
    sympy = _sympy()
    key = (sympy.srepr(expr), argnames)
    fn = _LAMBDIFY_CACHE.get(key)
    if fn is None:
        syms = _symbols()
        fn = sympy.lambdify(
            [syms[name] for name in argnames],
            expr,
            modules=[{"log": _safe_log}, "math"],
        )
        _LAMBDIFY_CACHE[key] = fn
    return fn


# --------------------------------------------------------------------- #
# Cost-model declarations
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CostModel:
    """A registry entry's parsed symbolic cost declaration.

    ``totals`` maps envelope metrics (``rounds`` / ``words_moved``) to
    expressions; ``phases`` maps ledger charge categories to per-stream
    metric (``rounds`` / ``words``) expressions.  ``refs`` are paper
    cross-references, ``notes`` the honest caveats (both flow into
    ``docs/THEORY.md``).
    """

    totals: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    refs: tuple = ()
    notes: str = ""

    def claims(self):
        """Iterate ``(category_or_None, metric, expr)`` over every claim."""
        for metric, expr in self.totals.items():
            yield None, metric, expr
        for category, metrics in self.phases.items():
            for metric, expr in metrics.items():
                yield category, metric, expr


_TOTAL_METRICS = ("rounds", "words_moved")
_PHASE_METRICS = ("rounds", "words")


def parse_cost_model(spec: dict | None) -> CostModel | None:
    """Parse the raw ``cost_model=`` dict a solver registers.

    Keys: the total metrics (``rounds``, ``words_moved``) map to
    expression strings; ``phases`` maps charge categories to
    ``{metric: expression}`` dicts over the per-charge stream metrics
    (``rounds``, ``words``); ``refs`` / ``notes`` are documentation.
    Unknown keys or metrics raise ``ValueError`` so declarations are
    validated where they are written.
    """
    if spec is None:
        return None
    known = set(_TOTAL_METRICS) | {"phases", "refs", "notes"}
    unknown = set(spec) - known
    if unknown:
        raise ValueError(
            f"unknown cost_model keys {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    totals = {
        metric: parse_expr(spec[metric])
        for metric in _TOTAL_METRICS
        if spec.get(metric) is not None
    }
    phases = {}
    for category, metrics in (spec.get("phases") or {}).items():
        bad = set(metrics) - set(_PHASE_METRICS)
        if bad:
            raise ValueError(
                f"phase {category!r} declares unknown stream metrics "
                f"{sorted(bad)}; expected a subset of {list(_PHASE_METRICS)}"
            )
        phases[category] = {
            metric: parse_expr(text) for metric, text in metrics.items()
        }
    return CostModel(
        totals=totals,
        phases=phases,
        refs=tuple(spec.get("refs") or ()),
        notes=str(spec.get("notes") or ""),
    )


def render_claim(expr) -> str:
    """Render an expression as the big-O claim it states."""
    return f"O({expr})"


# --------------------------------------------------------------------- #
# Series checking: constant fit + asymptotic dominance
# --------------------------------------------------------------------- #


def fit_constant(values: list[float], series: list[float]) -> dict:
    """One-parameter least squares through the origin (shared math with
    :func:`repro.obs.conformance.fit_shape`)."""
    ys, ss = list(map(float, values)), list(map(float, series))
    denom = sum(s * s for s in ss)
    c = sum(y * s for y, s in zip(ys, ss)) / denom if denom else 0.0
    mean = sum(ys) / len(ys) if ys else 0.0
    ss_tot = sum((y - mean) ** 2 for y in ys)
    ss_res = sum((y - c * s) ** 2 for y, s in zip(ys, ss))
    if ss_tot > 0:
        r2 = 1.0 - ss_res / ss_tot
    else:
        r2 = 1.0 if ss_res < 1e-12 * max(denom, 1.0) else 0.0
    if ys and mean > 0:
        nrmse = math.sqrt(ss_res / len(ys)) / mean
    else:
        nrmse = 0.0 if ss_res == 0.0 else float("inf")
    return {
        "constant": round(c, 6),
        "r2": round(r2, 6),
        "nrmse": round(nrmse, 6),
        "fit_ok": bool(r2 >= R2_THRESHOLD or nrmse <= NRMSE_THRESHOLD),
    }


def growth_check(
    values: list[float], series: list[float], slack: float = GROWTH_SLACK
) -> dict:
    """Does the measured series stay dominated by the claimed one?

    Compares the first and last positive ``measured / claimed`` ratios;
    growth beyond ``slack`` means the claim is outgrown inside the sweep.
    Single-point sweeps (and all-zero series) carry no growth information:
    ``growth_ok`` is ``None`` — not assessable, not a failure.
    """
    ratios = [
        (y / s) for y, s in zip(values, series) if s > 0 and y > 0
    ]
    if len(ratios) < 2:
        return {"ratio_growth": None, "growth_ok": None}
    growth = ratios[-1] / ratios[0] if ratios[0] > 0 else float("inf")
    return {
        "ratio_growth": round(growth, 6),
        "growth_ok": bool(growth <= slack),
    }


def check_series(rows: list[dict], values: list[float], expr) -> dict:
    """Check one measured series against one claimed expression.

    Returns a record with the claim text, the fit (``constant`` / ``r2``
    / ``nrmse``), the dominance verdict, and the combined ``ok``:
    conformant when the constant fit is tight **or** the series stays
    within the claimed growth (O-claims are upper bounds).  Rows missing
    a symbol the expression needs yield ``ok: None`` with the missing
    names in ``status`` — unmeasurable, surfaced rather than guessed.
    """
    base = {"expr": str(expr), "claim": render_claim(expr), "points": len(rows)}
    try:
        series = [evaluate_expr(expr, r) for r in rows]
    except KeyError as exc:
        return {**base, "ok": None, "status": str(exc.args[0])}
    fit = fit_constant(values, series)
    growth = growth_check(values, series)
    ok = fit["fit_ok"] or bool(growth["growth_ok"])
    return {**base, **fit, **growth, "ok": ok, "tight": fit["fit_ok"]}


# --------------------------------------------------------------------- #
# Asymptotic dominance ordering (docs + declaration sanity)
# --------------------------------------------------------------------- #

#: The growth schedule ``compare_growth`` evaluates on: a sparse-graph
#: scaling regime (m = 3n, slowly growing degree, log-depth trees,
#: fixed gamma) at geometrically growing n.
_GROWTH_SCHEDULE = tuple(
    {
        "n": n,
        "m": 3 * n,
        "delta": max(4.0, _safe_log(n) ** 2),
        "depth": max(2.0, _safe_log(n)),
        "gamma": 0.5,
        "seed_bits": max(1.0, math.log2(n)),
        "machines": max(2.0, n**0.5),
        "space": max(4.0, 32 * n**0.5),
    }
    for n in (2**14, 2**20, 2**26, 2**32, 2**38)
)

#: Total ratio drift across the schedule below this factor reads as
#: "same order" — wide enough that constant-factor spellings tie, tight
#: enough that one ``log log n`` factor separates over the n-range.
_TIE_TOLERANCE = 1.25


def compare_growth(a, b) -> str:
    """Asymptotically compare two claims on the sparse-graph schedule.

    Returns ``"lt"`` / ``"eq"`` / ``"gt"`` for ``a`` growing slower than /
    with / faster than ``b``.  ``"eq"`` covers genuine ties — ``m`` vs
    ``n`` on the sparse schedule, or syntactically different spellings of
    one order — where neither direction's ratio drifts past the
    tolerance.  Accepts expression strings or parsed expressions.
    """
    if isinstance(a, str):
        a = parse_expr(a)
    if isinstance(b, str):
        b = parse_expr(b)
    ratios = [
        evaluate_expr(a, row) / max(evaluate_expr(b, row), 1e-300)
        for row in _GROWTH_SCHEDULE
    ]
    drift = ratios[-1] / ratios[0] if ratios[0] > 0 else float("inf")
    if drift > _TIE_TOLERANCE:
        return "gt"
    if drift < 1.0 / _TIE_TOLERANCE:
        return "lt"
    return "eq"


def dominance_order(exprs: list) -> list:
    """Sort claims by asymptotic growth (slowest first), ties stable.

    Insertion sort with :func:`compare_growth` as the comparator — the
    comparison is not guaranteed transitive on exotic mixes, but the
    claim lists this orders (a handful of terms per entry) are tame, and
    stability keeps tied claims in declaration order.
    """
    parsed = [parse_expr(e) if isinstance(e, str) else e for e in exprs]
    ordered: list = []
    for expr in parsed:
        at = len(ordered)
        while at > 0 and compare_growth(expr, ordered[at - 1]) == "lt":
            at -= 1
        ordered.insert(at, expr)
    return ordered
