"""Check measured cost series against declared symbolic cost models.

Each registry entry declares the paper's claims as a symbolic cost model
(:attr:`~repro.api.registry.SolverEntry.cost_model`: sympy expressions
over the shared vocabulary of :mod:`repro.obs.symbolic`, per envelope
total *and* per ledger charge category).  This module runs a sweep of
solves over growing inputs, extracts the measured series — endpoint
totals always; the per-category per-charge streams the tracer records
when ``symbolic=True`` — and checks each against its declared
expression by one-parameter least squares through the origin::

    c* = argmin_c  sum_i (y_i - c * s(row_i))^2  =  sum y*s / sum s^2

plus an asymptotic-dominance fallback (claims are O(.) upper bounds; a
series growing *slower* than its claim conforms even when the constant
fit has nothing to explain).  A fit is *tight* when ``R^2 >= 0.8`` or
the normalized RMS residual is ``<= 15%`` of the series mean — the
latter because slow-growing cost series (round counts under a ``log
log`` bound barely move over feasible sweep sizes) have almost no
variance for mean-centered ``R^2`` to explain, yet the one-constant fit
tracks them within a round or two.  Deliberately loose: with one free
constant over a handful of sizes this is a smoke alarm for blown-up
asymptotics (a ``Theta(n)`` round count pretending to be ``O(log n)``
fails both criteria), not a proof.

The named-shape vocabulary (:data:`SHAPES` / :func:`fit_shape`) that
seeded this checker remains available for ad-hoc fits; registry
declarations have migrated to the symbolic layer.
"""

from __future__ import annotations

import math

__all__ = [
    "NRMSE_THRESHOLD",
    "R2_THRESHOLD",
    "SHAPES",
    "conformance_matrix",
    "conformance_report",
    "evaluate_entry",
    "fit_shape",
    "run_sweep",
]

R2_THRESHOLD = 0.8
#: Normalized-RMS-residual fallback: near-flat series (no variance for R^2
#: to explain) still pass when the fit tracks every point this closely.
NRMSE_THRESHOLD = 0.15


def _log(x: float) -> float:
    return math.log(max(float(x), 2.0))


def _loglog(x: float) -> float:
    return math.log(max(math.log(max(float(x), 2.0)), 2.0))


#: Declared-shape vocabulary: name -> f(row) with row keys n, m, delta, depth.
SHAPES: dict = {
    "const": lambda r: 1.0,
    "log_n": lambda r: _log(r["n"]),
    "loglog_n": lambda r: _loglog(r["n"]),
    "log_delta": lambda r: _log(r["delta"]),
    "log_delta_plus_loglog_n": lambda r: _log(r["delta"]) + _loglog(r["n"]),
    "n": lambda r: float(r["n"]),
    "m": lambda r: float(max(r["m"], 1)),
    "n_log_n": lambda r: r["n"] * _log(r["n"]),
    "m_log_n": lambda r: max(r["m"], 1) * _log(r["n"]),
    "n_log_delta": lambda r: r["n"] * _log(r["delta"]),
    "m_log_delta": lambda r: max(r["m"], 1) * _log(r["delta"]),
    "depth_log_n": lambda r: r["depth"] * _log(r["n"]),
    "depth_log_n_log_delta": lambda r: r["depth"]
    + _log(r["n"]) * _log(r["delta"]),
}


def fit_shape(rows: list[dict], metric: str, shape: str) -> dict:
    """Fit ``metric`` over ``rows`` to ``shape``; returns the fit record.

    Returns ``{"metric", "shape", "constant", "r2", "nrmse", "points",
    "ok"}``.  ``ok`` is the conformance verdict: ``r2 >= 0.8`` or
    ``nrmse <= 0.15`` (RMS residual relative to the series mean — the
    criterion that matters for near-flat series, where ``ss_tot ~ 0``
    makes ``R^2`` meaningless even when the fit is tight).
    """
    if shape not in SHAPES:
        raise KeyError(f"unknown shape {shape!r}; known: {sorted(SHAPES)}")
    fn = SHAPES[shape]
    ys = [float(r[metric]) for r in rows]
    ss = [fn(r) for r in rows]
    denom = sum(s * s for s in ss)
    c = sum(y * s for y, s in zip(ys, ss)) / denom if denom else 0.0
    mean = sum(ys) / len(ys) if ys else 0.0
    ss_tot = sum((y - mean) ** 2 for y in ys)
    ss_res = sum((y - c * s) ** 2 for y, s in zip(ys, ss))
    if ss_tot > 0:
        r2 = 1.0 - ss_res / ss_tot
    else:
        # Flat series: conformant iff the fit reproduces it exactly.
        r2 = 1.0 if ss_res < 1e-12 * max(denom, 1.0) else 0.0
    if ys and mean > 0:
        nrmse = math.sqrt(ss_res / len(ys)) / mean
    else:
        nrmse = 0.0 if ss_res == 0.0 else float("inf")
    return {
        "metric": metric,
        "shape": shape,
        "constant": round(c, 6),
        "r2": round(r2, 6),
        "nrmse": round(nrmse, 6),
        "points": len(rows),
        "ok": bool(r2 >= R2_THRESHOLD or nrmse <= NRMSE_THRESHOLD),
    }


def run_sweep(
    problem: str,
    model: str,
    *,
    sizes: list[int] | None = None,
    avg_deg: float = 6.0,
    seed: int = 7,
    reps: int = 3,
    capture_charges: bool = False,
) -> list[dict]:
    """Solve ``problem`` on ``model`` over growing G(n, p) inputs.

    Returns one row per size with the symbol values the cost expressions
    read (``n``, ``m``, ``delta``, ``depth``, plus whatever the solve's
    :meth:`~repro.models.ledger.ModelSnapshot.symbol_row` pins down —
    ``gamma``, ``seed_bits``, ``machines``, ``space``) and the measured
    costs (``rounds``, ``words_moved``, ``wall_time``).  ``p = avg_deg /
    n`` keeps the graphs sparse so Delta grows slowly — the regime where
    ``log Delta`` and ``log n`` series are actually distinguishable.

    With ``capture_charges`` each solve runs under
    :func:`~repro.obs.trace.trace_capture` and the row additionally
    carries ``charges``: per ledger category, the mean rounds/words that
    category was charged — the per-phase series the symbolic checker
    verifies.

    Each size is measured over ``reps`` independent graphs and the row
    reports per-replicate means: asymptotic claims bound the *expected*
    cost, and single draws carry instance effects (a BFS tree one level
    deeper, one extra peeling phase) that jump the constant by integer
    factors and swamp a small sweep.
    """
    from ..api import SolveRequest, solve
    from ..graphs.generators import gnp_random_graph

    reps = max(int(reps), 1)
    rows: list[dict] = []
    for i, n in enumerate(sizes or [64, 128, 256, 512]):
        acc = {
            k: 0.0
            for k in (
                "m",
                "delta",
                "depth",
                "rounds",
                "words_moved",
                "wall_time",
            )
        }
        sym_acc: dict[str, float] = {}
        charge_acc: dict[str, dict[str, float]] = {}
        for rep in range(reps):
            g = gnp_random_graph(
                n,
                min(1.0, avg_deg / max(n, 1)),
                seed=seed + i + 101 * rep,
            )
            request = SolveRequest(problem=problem, model=model, graph=g)
            if capture_charges:
                from .sinks import summarize
                from .trace import trace_capture

                with trace_capture() as buf:
                    res = solve(request)
                for cat, bill in summarize(buf.spans)["charges"].items():
                    row = charge_acc.setdefault(cat, {"rounds": 0.0, "words": 0.0})
                    row["rounds"] += bill["rounds"]
                    row["words"] += bill["words"]
            else:
                res = solve(request)
            raw = getattr(res, "raw", None)
            depth = int(getattr(raw, "bfs_depth", 0)) or math.ceil(_log(n))
            acc["m"] += g.m
            acc["delta"] += max(g.max_degree(), 1)
            acc["depth"] += depth
            acc["rounds"] += res.rounds
            acc["words_moved"] += res.words_moved
            acc["wall_time"] += res.wall_time
            snapshot = getattr(res, "snapshot", None)
            if snapshot is not None:
                for key, value in snapshot.symbol_row().items():
                    sym_acc[key] = sym_acc.get(key, 0.0) + float(value)
        row = {
            "n": n,
            "reps": reps,
            **{k: v / reps for k, v in sym_acc.items()},
            **{k: v / reps for k, v in acc.items()},
        }
        if capture_charges:
            row["charges"] = {
                cat: {k: v / reps for k, v in bill.items()}
                for cat, bill in sorted(charge_acc.items())
            }
        rows.append(row)
    return rows


#: Fit record emitted for an entry that declares no cost model at all —
#: the gap is *visible* in reports instead of an empty fits list.
_NO_CLAIMS = {
    "metric": None,
    "category": None,
    "ok": None,
    "status": "no claims declared",
}


def evaluate_entry(entry, rows: list[dict], *, symbolic: bool = False) -> dict:
    """Check every claim ``entry`` declares against measured ``rows``.

    Always checks the envelope-total claims (``rounds`` /
    ``words_moved``); with ``symbolic=True`` additionally checks each
    declared charge category's per-phase stream, which requires rows
    swept with ``capture_charges=True``.  Returns ``{"fits",
    "conformant", "notes", "refs"}`` where each fit carries ``metric``,
    ``category`` (``None`` for totals), the claim, and the combined
    verdict from :func:`repro.obs.symbolic.check_series`.

    Gaps stay visible: an entry with no ``cost_model`` yields one
    explicit *no claims declared* row; a claimed category the sweep
    never charged, or a claim whose symbols the rows cannot supply,
    yields ``ok: None`` with a ``status`` explaining why.  ``conformant``
    aggregates only decidable fits (``None`` when nothing was decidable).
    """
    from . import symbolic as sym

    model = sym.parse_cost_model(getattr(entry, "cost_model", None))
    fits: list[dict] = []
    notes = model.notes if model else ""
    refs = list(model.refs) if model else []
    if model is None or (not model.totals and not model.phases):
        fits.append(dict(_NO_CLAIMS))
    else:
        for metric, expr in model.totals.items():
            values = [float(r.get(metric, 0.0)) for r in rows]
            fits.append(
                {"metric": metric, "category": None,
                 **sym.check_series(rows, values, expr)}
            )
        if symbolic:
            for category, metrics in model.phases.items():
                for metric, expr in metrics.items():
                    values = [
                        float(
                            (r.get("charges") or {})
                            .get(category, {})
                            .get(metric, 0.0)
                        )
                        for r in rows
                    ]
                    if not any(values):
                        fits.append(
                            {
                                "metric": metric,
                                "category": category,
                                "expr": str(expr),
                                "claim": sym.render_claim(expr),
                                "ok": None,
                                "status": "category never charged in this sweep",
                            }
                        )
                        continue
                    fits.append(
                        {"metric": metric, "category": category,
                         **sym.check_series(rows, values, expr)}
                    )
    decided = [f for f in fits if f.get("ok") is not None]
    return {
        "fits": fits,
        "conformant": all(f["ok"] for f in decided) if decided else None,
        "notes": notes,
        "refs": refs,
    }


def conformance_report(
    problem: str,
    model: str,
    *,
    sizes: list[int] | None = None,
    avg_deg: float = 6.0,
    seed: int = 7,
    reps: int = 3,
    symbolic: bool = False,
) -> dict:
    """Sweep + check every claim the registry entry declares.

    ``symbolic=True`` extends the check from endpoint totals to the
    per-category charge streams the tracer records (the solves run under
    :func:`~repro.obs.trace.trace_capture`).  Entries with no declared
    ``cost_model`` report one explicit *no claims declared* fit and
    ``conformant: None`` (nothing claimed, nothing checked — but the gap
    is on record).
    """
    from ..api import REGISTRY

    entry = REGISTRY.get(problem, model)
    rows = run_sweep(
        problem,
        model,
        sizes=sizes,
        avg_deg=avg_deg,
        seed=seed,
        reps=reps,
        capture_charges=symbolic,
    )
    return {
        "problem": problem,
        "model": model,
        "rows": rows,
        **evaluate_entry(entry, rows, symbolic=symbolic),
    }


def conformance_matrix(
    *,
    sizes: list[int] | None = None,
    avg_deg: float = 6.0,
    seed: int = 7,
    reps: int = 3,
    symbolic: bool = False,
) -> list[dict]:
    """:func:`conformance_report` for *every* registry entry.

    One report per ``(problem, model)`` pair in stable registry order —
    the full claims matrix, so one invocation answers "does anything we
    ship violate a cost claim".  A report's ``conformant`` stays ``None``
    for entries with nothing decidable (no claims declared); callers that
    gate (the CLI's ``--all``) fail only on an explicit ``False``.
    """
    from ..api import REGISTRY

    return [
        conformance_report(
            entry.problem,
            entry.model,
            sizes=sizes,
            avg_deg=avg_deg,
            seed=seed,
            reps=reps,
            symbolic=symbolic,
        )
        for entry in REGISTRY.entries()
    ]
