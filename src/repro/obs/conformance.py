"""Fit measured cost series against declared asymptotic shapes.

Each registry entry declares the paper's asymptotic cost shapes
(:attr:`~repro.api.registry.SolverEntry.cost_shapes`, e.g. ``rounds ~
log_delta_plus_loglog_n``).  This module runs a sweep of solves over
growing inputs, extracts a measured ``(metric, n)`` series, and fits it
against the declared shape by one-parameter least squares through the
origin::

    c* = argmin_c  sum_i (y_i - c * s(row_i))^2  =  sum y*s / sum s^2

reporting the fit constant and ``R^2``.  A fit is called *conformant*
when ``R^2 >= 0.8`` **or** the normalized RMS residual is small
(``<= 15%`` of the series mean) — the latter because slow-growing cost
series (round counts under a ``log log`` bound barely move over feasible
sweep sizes) have almost no variance for mean-centered ``R^2`` to
explain, yet the one-constant fit tracks them within a round or two.
Deliberately loose: with one free constant over a handful of sizes this
is a smoke alarm for blown-up asymptotics (a ``Theta(n)`` round count
pretending to be ``O(log n)`` fits terribly), not a proof.  It is the
executable seed of the ROADMAP's symbolic complexity ledger.

Shape functions take a *row* dict (``n``, ``m``, ``delta``, ``depth``)
so instance-dependent bounds — arboricity- or degree-sensitive like the
``O(log Delta + log log n)`` headline — are expressible, not just
functions of ``n``.
"""

from __future__ import annotations

import math

__all__ = [
    "NRMSE_THRESHOLD",
    "R2_THRESHOLD",
    "SHAPES",
    "conformance_report",
    "fit_shape",
    "run_sweep",
]

R2_THRESHOLD = 0.8
#: Normalized-RMS-residual fallback: near-flat series (no variance for R^2
#: to explain) still pass when the fit tracks every point this closely.
NRMSE_THRESHOLD = 0.15


def _log(x: float) -> float:
    return math.log(max(float(x), 2.0))


def _loglog(x: float) -> float:
    return math.log(max(math.log(max(float(x), 2.0)), 2.0))


#: Declared-shape vocabulary: name -> f(row) with row keys n, m, delta, depth.
SHAPES: dict = {
    "const": lambda r: 1.0,
    "log_n": lambda r: _log(r["n"]),
    "loglog_n": lambda r: _loglog(r["n"]),
    "log_delta": lambda r: _log(r["delta"]),
    "log_delta_plus_loglog_n": lambda r: _log(r["delta"]) + _loglog(r["n"]),
    "n": lambda r: float(r["n"]),
    "m": lambda r: float(max(r["m"], 1)),
    "n_log_n": lambda r: r["n"] * _log(r["n"]),
    "m_log_n": lambda r: max(r["m"], 1) * _log(r["n"]),
    "n_log_delta": lambda r: r["n"] * _log(r["delta"]),
    "m_log_delta": lambda r: max(r["m"], 1) * _log(r["delta"]),
    "depth_log_n": lambda r: r["depth"] * _log(r["n"]),
    "depth_log_n_log_delta": lambda r: r["depth"]
    + _log(r["n"]) * _log(r["delta"]),
}


def fit_shape(rows: list[dict], metric: str, shape: str) -> dict:
    """Fit ``metric`` over ``rows`` to ``shape``; returns the fit record.

    Returns ``{"metric", "shape", "constant", "r2", "nrmse", "points",
    "ok"}``.  ``ok`` is the conformance verdict: ``r2 >= 0.8`` or
    ``nrmse <= 0.15`` (RMS residual relative to the series mean — the
    criterion that matters for near-flat series, where ``ss_tot ~ 0``
    makes ``R^2`` meaningless even when the fit is tight).
    """
    if shape not in SHAPES:
        raise KeyError(f"unknown shape {shape!r}; known: {sorted(SHAPES)}")
    fn = SHAPES[shape]
    ys = [float(r[metric]) for r in rows]
    ss = [fn(r) for r in rows]
    denom = sum(s * s for s in ss)
    c = sum(y * s for y, s in zip(ys, ss)) / denom if denom else 0.0
    mean = sum(ys) / len(ys) if ys else 0.0
    ss_tot = sum((y - mean) ** 2 for y in ys)
    ss_res = sum((y - c * s) ** 2 for y, s in zip(ys, ss))
    if ss_tot > 0:
        r2 = 1.0 - ss_res / ss_tot
    else:
        # Flat series: conformant iff the fit reproduces it exactly.
        r2 = 1.0 if ss_res < 1e-12 * max(denom, 1.0) else 0.0
    if ys and mean > 0:
        nrmse = math.sqrt(ss_res / len(ys)) / mean
    else:
        nrmse = 0.0 if ss_res == 0.0 else float("inf")
    return {
        "metric": metric,
        "shape": shape,
        "constant": round(c, 6),
        "r2": round(r2, 6),
        "nrmse": round(nrmse, 6),
        "points": len(rows),
        "ok": bool(r2 >= R2_THRESHOLD or nrmse <= NRMSE_THRESHOLD),
    }


def run_sweep(
    problem: str,
    model: str,
    *,
    sizes: list[int] | None = None,
    avg_deg: float = 6.0,
    seed: int = 7,
    reps: int = 3,
) -> list[dict]:
    """Solve ``problem`` on ``model`` over growing G(n, p) inputs.

    Returns one row per size with the inputs the shape functions read
    (``n``, ``m``, ``delta``, ``depth``) and the measured costs
    (``rounds``, ``words_moved``, ``wall_time``).  ``p = avg_deg / n``
    keeps the graphs sparse so Delta grows slowly — the regime where
    ``log Delta`` and ``log n`` series are actually distinguishable.

    Each size is measured over ``reps`` independent graphs and the row
    reports per-replicate means: asymptotic claims bound the *expected*
    cost, and single draws carry instance effects (a BFS tree one level
    deeper, one extra peeling phase) that jump the constant by integer
    factors and swamp a small sweep.
    """
    from ..api import SolveRequest, solve
    from ..graphs.generators import gnp_random_graph

    reps = max(int(reps), 1)
    rows: list[dict] = []
    for i, n in enumerate(sizes or [64, 128, 256, 512]):
        acc = {
            k: 0.0
            for k in (
                "m",
                "delta",
                "depth",
                "rounds",
                "words_moved",
                "wall_time",
            )
        }
        for rep in range(reps):
            g = gnp_random_graph(
                n,
                min(1.0, avg_deg / max(n, 1)),
                seed=seed + i + 101 * rep,
            )
            res = solve(SolveRequest(problem=problem, model=model, graph=g))
            raw = getattr(res, "raw", None)
            depth = int(getattr(raw, "bfs_depth", 0)) or math.ceil(_log(n))
            acc["m"] += g.m
            acc["delta"] += max(g.max_degree(), 1)
            acc["depth"] += depth
            acc["rounds"] += res.rounds
            acc["words_moved"] += res.words_moved
            acc["wall_time"] += res.wall_time
        rows.append(
            {
                "n": n,
                "reps": reps,
                **{k: v / reps for k, v in acc.items()},
            }
        )
    return rows


def conformance_report(
    problem: str,
    model: str,
    *,
    sizes: list[int] | None = None,
    avg_deg: float = 6.0,
    seed: int = 7,
    reps: int = 3,
) -> dict:
    """Sweep + fit every shape the registry entry declares.

    Entries with no declared ``cost_shapes`` report ``fits: []`` and
    ``conformant: None`` (nothing claimed, nothing checked).
    """
    from ..api import REGISTRY

    entry = REGISTRY.get(problem, model)
    rows = run_sweep(
        problem, model, sizes=sizes, avg_deg=avg_deg, seed=seed, reps=reps
    )
    fits = [
        fit_shape(rows, metric, shape) for metric, shape in entry.cost_shapes
    ]
    return {
        "problem": problem,
        "model": model,
        "rows": rows,
        "fits": fits,
        "conformant": all(f["ok"] for f in fits) if fits else None,
    }
