"""Process-global counters, gauges, and histograms as one flat dict.

Deliberately minimal: names are dotted strings (``seed_scan.chunks``,
``runtime.cache.hits``), values are plain numbers, and the whole registry
exports to a single flat ``{name: value}`` dict so it can ride inside a
:class:`~repro.api.SolveResult` payload, a JSONL trace line, or a bench
JSON without a schema.  Histograms keep streaming summaries (count / sum /
min / max), not buckets — enough for "how deep do seed scans early-exit"
without reservoir machinery.

Unlike tracing there is no enable gate: an integer add on a dict is cheap
enough to leave on, and the counters are incremented at chunk / selection /
job granularity, never per element.
"""

from __future__ import annotations

import threading

__all__ = ["METRICS", "MetricsRegistry"]


class MetricsRegistry:
    """Thread-safe flat registry of counters / gauges / histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observed value."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into histogram ``name``."""
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                self._hists[name] = {
                    "count": 1,
                    "sum": value,
                    "min": value,
                    "max": value,
                }
            else:
                h["count"] += 1
                h["sum"] += value
                if value < h["min"]:
                    h["min"] = value
                if value > h["max"]:
                    h["max"] = value

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def export(self) -> dict[str, float]:
        """Everything, flattened: histograms expand to ``name.count`` etc."""
        with self._lock:
            out: dict[str, float] = dict(self._counters)
            out.update(self._gauges)
            for name, h in self._hists.items():
                for stat, v in h.items():
                    out[f"{name}.{stat}"] = v
                if h["count"]:
                    out[f"{name}.mean"] = h["sum"] / h["count"]
            return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry.

        Dotted names flatten to underscores (``serve.requests`` →
        ``serve_requests``); histograms export as Prometheus summaries
        (``_count`` / ``_sum``) plus ``_min`` / ``_max`` gauges.  This is
        what the serve layer's ``/metrics`` endpoint returns — one
        scrapeable view over every counter the solvers, runtime, and
        service increment.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            hists = {name: dict(h) for name, h in self._hists.items()}
        lines: list[str] = []

        def flat(name: str) -> str:
            return name.replace(".", "_").replace("-", "_")

        for name in sorted(counters):
            lines.append(f"# TYPE {flat(name)} counter")
            lines.append(f"{flat(name)} {counters[name]:g}")
        for name in sorted(gauges):
            lines.append(f"# TYPE {flat(name)} gauge")
            lines.append(f"{flat(name)} {gauges[name]:g}")
        for name in sorted(hists):
            h = hists[name]
            base = flat(name)
            lines.append(f"# TYPE {base} summary")
            lines.append(f"{base}_count {h['count']:g}")
            lines.append(f"{base}_sum {h['sum']:g}")
            lines.append(f"{base}_min {h['min']:g}")
            lines.append(f"{base}_max {h['max']:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def counters_snapshot(self) -> dict[str, float]:
        """Just the counters, for before/after deltas around a solve."""
        with self._lock:
            return dict(self._counters)

    @staticmethod
    def delta(
        before: dict[str, float], after: dict[str, float]
    ) -> dict[str, float]:
        """Counter increments between two snapshots (zero rows dropped)."""
        out = {}
        for name, v in after.items():
            d = v - before.get(name, 0)
            if d:
                out[name] = d
        return out

    def reset(self) -> None:
        """Drop everything (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


#: The process-global registry every instrumentation site writes to.
METRICS = MetricsRegistry()
