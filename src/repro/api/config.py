"""Consolidated execution configuration (every backend knob, one record).

Before this module, the backend switches grown over the performance PRs
lived in four places: ``REPRO_KERNEL_BACKEND`` (vectorized CSR kernels),
``REPRO_SEED_BACKEND`` / ``REPRO_SEED_CHUNK`` / ``REPRO_SEED_WORKERS``
(batched seed search), ``REPRO_ENGINE_BACKEND`` (columnar round core), and
ad-hoc ``os.environ`` reads at call sites.  :class:`ExecutionConfig` is the
single typed record for all of them, plus the CONGEST
``pipeline_seed_fix`` ablation flag:

* every field defaults to ``None`` = "inherit" (environment variable, then
  the built-in default), so an empty config is always safe;
* :meth:`ExecutionConfig.from_env` snapshots the current environment into
  explicit values;
* :meth:`ExecutionConfig.apply` threads the config into a frozen
  :class:`~repro.core.params.Params`, which is how the knobs reach the
  solver call sites (``repro.api.solve`` applies the request's config this
  way, and additionally scopes the kernel backend through
  :func:`repro.graphs.kernels.kernel_backend_scope`).

The environment variables stay honored for processes that never touch the
facade; this module is the one place their names are spelled.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace

from ..core.params import Params
from ..derand.strategies import SEED_BACKENDS
from ..graphs.kernels import BACKENDS as KERNEL_BACKENDS
from ..models.plane import ENGINE_BACKENDS

__all__ = ["ExecutionConfig"]

#: field name -> (environment variable, parser)
_ENV_SPEC = {
    "kernel_backend": ("REPRO_KERNEL_BACKEND", str),
    "seed_backend": ("REPRO_SEED_BACKEND", str),
    "engine_backend": ("REPRO_ENGINE_BACKEND", str),
    "seed_chunk": ("REPRO_SEED_CHUNK", int),
    "seed_scan_workers": ("REPRO_SEED_WORKERS", int),
    "congest_pipeline_seed_fix": (
        "REPRO_CONGEST_PIPELINE_SEED_FIX",
        lambda s: s.strip().lower() in ("1", "true", "yes", "on"),
    ),
    "graph_store": ("REPRO_GRAPH_STORE", str),
}

# Canonical choice tuples live with their resolvers; referenced here so a
# new backend registers once.
_CHOICES = {
    "kernel_backend": KERNEL_BACKENDS,
    "seed_backend": SEED_BACKENDS,
    "engine_backend": ENGINE_BACKENDS,
}


@dataclass(frozen=True)
class ExecutionConfig:
    """All execution-backend knobs; ``None`` fields inherit env/defaults."""

    kernel_backend: str | None = None  # csr | legacy | jit
    seed_backend: str | None = None  # batched | scalar | jit
    engine_backend: str | None = None  # columnar | legacy
    seed_chunk: int | None = None  # seeds per objective block
    seed_scan_workers: int | None = None  # > 1 enables the parallel stage scan
    congest_pipeline_seed_fix: bool | None = None  # O(D + seed_bits) ablation
    #: Directory of the out-of-core graph store (``REPRO_GRAPH_STORE``).
    #: When set, the batch scheduler publishes store keys to workers instead
    #: of pickled npz buffers; workers mmap CSR shards directly.  This is a
    #: dispatch knob, not a solver knob — it never reaches ``Params``.
    graph_store: str | None = None

    def __post_init__(self) -> None:
        for name, choices in _CHOICES.items():
            value = getattr(self, name)
            if value is not None and value not in choices:
                raise ValueError(
                    f"unknown {name} {value!r}; expected one of {choices}"
                )
        if self.seed_chunk is not None and self.seed_chunk < 1:
            raise ValueError("seed_chunk must be >= 1")
        if self.seed_scan_workers is not None and self.seed_scan_workers < 0:
            raise ValueError("seed_scan_workers must be >= 0")

    # ------------------------------------------------------------------ #
    # Environment fallback
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_env() -> "ExecutionConfig":
        """Snapshot the ``REPRO_*`` environment into explicit values."""
        values = {}
        for name, (var, parse) in _ENV_SPEC.items():
            raw = os.environ.get(var)
            if raw is not None and raw != "":
                values[name] = parse(raw)
        return ExecutionConfig(**values)

    def resolved(self) -> "ExecutionConfig":
        """Fill every ``None`` field from the environment (explicit wins)."""
        env = ExecutionConfig.from_env()
        values = {
            f.name: (
                getattr(self, f.name)
                if getattr(self, f.name) is not None
                else getattr(env, f.name)
            )
            for f in fields(self)
        }
        return ExecutionConfig(**values)

    # ------------------------------------------------------------------ #
    # Params threading
    # ------------------------------------------------------------------ #

    def apply(self, params: Params) -> Params:
        """Thread the non-``None`` knobs into a :class:`Params` copy."""
        updates: dict = {}
        for name in (
            "kernel_backend",
            "seed_backend",
            "engine_backend",
            "seed_chunk",
        ):
            value = getattr(self, name)
            if value is not None:
                updates[name] = value
        if self.seed_scan_workers is not None:
            updates["seed_scan_workers"] = self.seed_scan_workers
        if self.congest_pipeline_seed_fix is not None:
            updates["congest_pipeline_seed_fix"] = self.congest_pipeline_seed_fix
        return params.with_(**updates) if updates else params

    @staticmethod
    def from_params(params: Params) -> "ExecutionConfig":
        """Extract the execution knobs a :class:`Params` carries."""
        return ExecutionConfig(
            kernel_backend=params.kernel_backend,
            seed_backend=params.seed_backend,
            engine_backend=params.engine_backend,
            seed_chunk=params.seed_chunk,
            seed_scan_workers=params.seed_scan_workers or None,
            congest_pipeline_seed_fix=params.congest_pipeline_seed_fix or None,
        )

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }

    @staticmethod
    def from_dict(d: dict) -> "ExecutionConfig":
        known = {f.name for f in fields(ExecutionConfig)}
        return ExecutionConfig(**{k: v for k, v in d.items() if k in known})

    def with_(self, **kwargs) -> "ExecutionConfig":
        return replace(self, **kwargs)
