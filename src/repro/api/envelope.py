"""The unified request / result envelope of the ``repro.api`` facade.

One :class:`SolveRequest` describes any Theorem-1 solve — which *problem*
(MIS, matching, or a derived corollary) under which *cost model* (the
vectorized MPC accounting simulation, the literal message-passing MPC
engine, CONGESTED CLIQUE, or CONGEST) — and one :class:`SolveResult`
normalizes what used to be five divergent result shapes
(:class:`~repro.core.records.MISResult` /
:class:`~repro.core.records.MatchingResult`,
:class:`~repro.cclique.mis_cc.CCResult`,
:class:`~repro.congest.mis_congest.CongestMISResult`, and the engine's
``(mis, rounds, phases)`` tuple) into one typed record carrying the
solution array, the round/communication bill, the
:class:`~repro.models.ledger.ModelSnapshot`, a verification certificate,
and timing.

``SolveResult.to_payload()`` / ``from_payload()`` split the envelope into a
JSON-safe metadata dict plus numpy arrays — the exact shape the runtime's
content-addressed cache persists, so facade results round-trip through the
batch runtime byte-identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.params import Params
from ..core.records import (
    MatchingResult,
    MISResult,
    result_from_payload,
    result_to_payload,
)
from ..graphs.graph import Graph
from ..models.ledger import ModelSnapshot
from .config import ExecutionConfig

__all__ = ["MODELS", "PROBLEMS", "SolveRequest", "SolveResult", "request_digest"]

#: The *built-in* problem axis (coloring-adjacent derived problems
#: included: vertex cover, (Delta+1)-coloring, 2-ruling set).  The axis is
#: open: problems registered via :func:`repro.api.register_solver` are
#: accepted too.
PROBLEMS = ("mis", "matching", "vc", "coloring", "ruling2")

#: The *built-in* model axis: vectorized MPC accounting ("simulated"), the
#: literal message-passing engine, CONGESTED CLIQUE, and CONGEST.  Open
#: like the problem axis.
MODELS = ("simulated", "mpc-engine", "cclique", "congest")


def request_digest(request) -> str:
    """Digest of the fields that determine a solve's *answer* (not its input).

    This is THE params-side half of every content address in the system: the
    runtime cache key is ``sha256(graph_fingerprint : request_digest)``
    (:meth:`repro.runtime.spec.JobSpec.cache_key`) and the serve layer's
    in-flight coalescer keys on the same digest paired with the request's
    source identity.  Keeping one implementation here guarantees the two
    layers can never disagree about which requests are "the same solve".

    Accepts either a :class:`SolveRequest` or a runtime
    :class:`~repro.runtime.spec.JobSpec` (any object with ``problem`` /
    ``eps`` / ``force`` / ``paper_rule`` / ``overrides``).  For a JobSpec
    the digest is byte-identical to the historical
    ``JobSpec.solve_digest()``, so existing on-disk caches stay valid.  A
    SolveRequest digests its ``(problem, model)`` through the runtime job
    name (``cc_mis``, ...) with its ``options`` in the overrides slot —
    the same canonical form the wire protocol ships.
    """
    if isinstance(request, SolveRequest):
        from ..runtime.spec import runtime_problem_name

        problem = runtime_problem_name(request.problem, request.model)
        overrides = {k: v for k, v in request.options}
    else:  # JobSpec-shaped (duck-typed: runtime must stay import-light here)
        problem = request.problem
        overrides = {k: v for k, v in request.overrides}
    payload = {
        "problem": problem,
        "eps": request.eps,
        "force": request.force,
        "paper_rule": request.paper_rule,
        "overrides": overrides,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _option_pairs(options) -> tuple[tuple[str, object], ...]:
    """Normalise an options mapping to a sorted, hashable tuple of pairs."""
    if isinstance(options, dict):
        items = options.items()
    else:
        items = tuple(options)
    out = tuple(sorted((str(k), v) for k, v in items))
    for _, v in out:
        if not isinstance(v, (int, float, str, bool)) and v is not None:
            raise TypeError(f"option values must be JSON scalars, got {v!r}")
    return out


@dataclass(frozen=True)
class SolveRequest:
    """One solve: ``(problem, model)`` + input graph + knobs.

    ``params`` wins over ``eps`` when both are given; ``config`` is applied
    on top of the params (see :meth:`make_params`).  ``options`` carries
    model-specific switches (``charge_mode`` for CLIQUE, ``mode`` for
    CONGEST, ``num_colors`` for coloring, ...).  ``arc_plane`` optionally
    ships a precomputed packed arc plane to engine-model solvers (the batch
    scheduler uses this so workers never re-pack the input).
    """

    problem: str
    model: str = "simulated"
    graph: Graph | None = None
    eps: float = 0.5
    params: Params | None = None
    config: ExecutionConfig | None = None
    force: str | None = None  # "general" | "lowdeg" (simulated mis/matching)
    paper_rule: bool = False
    options: tuple[tuple[str, object], ...] = ()
    arc_plane: np.ndarray | None = field(default=None, repr=False, compare=False)
    tag: str = ""

    def __post_init__(self) -> None:
        # Accept the built-in axes plus anything the registry has learned
        # (late import: the registry module must not be a hard dependency
        # of the envelope types).
        from .registry import REGISTRY

        known_problems = set(PROBLEMS) | set(REGISTRY.problems())
        known_models = set(MODELS) | set(REGISTRY.models())
        if self.problem not in known_problems:
            raise ValueError(
                f"unknown problem {self.problem!r}; pick from "
                f"{tuple(sorted(known_problems))}"
            )
        if self.model not in known_models:
            raise ValueError(
                f"unknown model {self.model!r}; pick from "
                f"{tuple(sorted(known_models))}"
            )
        object.__setattr__(self, "options", _option_pairs(self.options))

    def make_params(self) -> Params:
        """Materialise the effective :class:`Params` (config applied)."""
        params = self.params if self.params is not None else Params(eps=self.eps)
        if self.config is not None:
            params = self.config.apply(params)
        return params

    def option(self, key: str, default=None):
        for k, v in self.options:
            if k == key:
                return v
        return default

    def with_(self, **kwargs) -> "SolveRequest":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class SolveResult:
    """The unified result envelope every registry entry returns.

    ``solution`` is the problem's natural array — node ids
    (``solution_kind="nodes"``), ``(k, 2)`` endpoint pairs (``"pairs"``), or
    a per-node color vector (``"colors"``).  ``raw`` keeps the legacy result
    object (``MISResult`` / ``MatchingResult`` / ``CCResult`` / ...) for
    callers that need the full trace; it is carried through the runtime
    payload only for the simulated MIS/matching records (the other models'
    accounting survives in ``snapshot``).
    """

    problem: str
    model: str
    solution: np.ndarray = field(compare=False)
    solution_kind: str  # "nodes" | "pairs" | "colors"
    solution_size: int
    verified: bool
    certificate: dict  # {"verifier": ..., "ok": ..., model-specific extras}
    rounds: int
    iterations: int  # outer iterations / phases
    words_moved: int
    max_machine_words: int
    space_limit: int  # 0 when the model leaves space unbounded
    path: str = ""  # "lowdeg" | "general" | model tag | ""
    snapshot: ModelSnapshot | None = None
    raw: object = field(default=None, repr=False, compare=False)
    wall_time: float = 0.0
    #: Trace subtree of this solve (flat span dicts) when tracing was on.
    trace: list | None = field(default=None, repr=False, compare=False)
    #: Counter deltas attributed to this solve when tracing was on.
    metrics: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.verified

    def summary(self) -> dict:
        """JSON-safe scalar view (no arrays) for reports and CLIs."""
        return {
            "problem": self.problem,
            "model": self.model,
            "solution_kind": self.solution_kind,
            "solution_size": self.solution_size,
            "verified": self.verified,
            "certificate": dict(self.certificate),
            "rounds": self.rounds,
            "iterations": self.iterations,
            "words_moved": self.words_moved,
            "max_machine_words": self.max_machine_words,
            "space_limit": self.space_limit,
            "path": self.path,
            "wall_time": self.wall_time,
        }

    # ------------------------------------------------------------------ #
    # Runtime JSON payload round trip
    # ------------------------------------------------------------------ #

    def to_payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Split into ``(json_safe_meta, arrays)`` for the runtime cache.

        Inverse of :meth:`from_payload`; ``json.dumps(meta)`` is guaranteed
        to succeed.
        """
        result_meta = None
        if isinstance(self.raw, (MISResult, MatchingResult)):
            result_meta, _ = result_to_payload(self.raw)
        meta = {
            "kind": "solve_result",
            **self.summary(),
            "snapshot": self.snapshot.to_dict() if self.snapshot else None,
            "result_meta": result_meta,
            "trace": self.trace,
            "metrics": dict(self.metrics),
        }
        arrays = {"solution": np.asarray(self.solution)}
        return meta, arrays

    @staticmethod
    def from_payload(meta: dict, arrays: dict[str, np.ndarray]) -> "SolveResult":
        """Rebuild an envelope stored by :meth:`to_payload`."""
        if meta.get("kind") != "solve_result":
            raise ValueError(f"not a solve_result payload: {meta.get('kind')!r}")
        solution = np.asarray(arrays["solution"])
        raw = None
        if meta.get("result_meta") is not None:
            raw = result_from_payload(meta["result_meta"], {"solution": solution})
        snapshot = (
            ModelSnapshot.from_dict(meta["snapshot"]) if meta.get("snapshot") else None
        )
        return SolveResult(
            problem=meta["problem"],
            model=meta["model"],
            solution=solution,
            solution_kind=meta["solution_kind"],
            solution_size=int(meta["solution_size"]),
            verified=bool(meta["verified"]),
            certificate=dict(meta.get("certificate", {})),
            rounds=int(meta["rounds"]),
            iterations=int(meta["iterations"]),
            words_moved=int(meta["words_moved"]),
            max_machine_words=int(meta["max_machine_words"]),
            space_limit=int(meta["space_limit"]),
            path=meta.get("path", ""),
            snapshot=snapshot,
            raw=raw,
            wall_time=float(meta.get("wall_time", 0.0)),
            trace=meta.get("trace"),  # absent in pre-obs cache entries
            metrics=dict(meta.get("metrics") or {}),
        )
