"""The typed ``(problem, model)`` solver registry behind ``repro.solve``.

Theorem 1 is one statement — deterministic MIS and maximal matching in
``O(log Delta + log log n)`` MPC rounds — but the repo grew six entry
points for it, one per model/problem combination.  The registry treats
"same problem, different model" as a single parameterized surface (the way
Pai–Pemmaraju's deterministic ruling-set framework and the
sparsity-aware unification of Censor-Hillel et al. state one interface per
problem family): every solver is a :class:`SolverEntry` keyed by
``(problem, model)`` with capability metadata, and downstream layers — the
batch runtime, the cross-model runner, the CLI — *enumerate the registry*
instead of hard-coding problem lists.  Registering a new entry makes it
instantly batch-runnable (``repro batch``), cross-model-billable
(``repro crossmodel``), and CLI-reachable (``repro solve``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "REGISTRY",
    "SolverCapabilities",
    "SolverEntry",
    "SolverRegistry",
    "register_solver",
]


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registry entry can deliver beyond the solution itself."""

    snapshot: bool = False  # returns a ModelSnapshot round/word bill
    certificate: bool = True  # result is verified against the input graph
    packed_planes: bool = False  # accepts a scheduler-shipped arc plane
    force_path: bool = False  # honors force="general" | "lowdeg"
    trace_records: bool = False  # raw result carries per-iteration records

    def flags(self) -> str:
        """Compact display string, e.g. ``"snapshot,certificate"``."""
        names = [
            name
            for name in (
                "snapshot",
                "certificate",
                "packed_planes",
                "force_path",
                "trace_records",
            )
            if getattr(self, name)
        ]
        return ",".join(names)


@dataclass(frozen=True)
class SolverEntry:
    """One ``(problem, model)`` solver plus its metadata."""

    problem: str
    model: str
    fn: Callable = field(compare=False, repr=False)  # (graph, request, params)
    capabilities: SolverCapabilities = field(default_factory=SolverCapabilities)
    description: str = ""
    legacy_entry: str = ""  # dotted name of the shimmed historical entry point
    #: Declared symbolic cost model: sympy-parseable expressions over the
    #: shared symbol vocabulary of :mod:`repro.obs.symbolic` (``n``, ``m``,
    #: ``delta``, ``depth``, ``gamma``, ``seed_bits``, ``machines``,
    #: ``space``).  Keys: envelope totals (``"rounds"`` /
    #: ``"words_moved"``), per-charge-category claims under ``"phases"``,
    #: paper cross-references under ``"refs"``, honest caveats under
    #: ``"notes"``.  Stored as the raw declaration dict so this module
    #: never imports sympy; :func:`repro.obs.symbolic.parse_cost_model`
    #: validates and parses it, ``repro trace conformance`` checks measured
    #: series against it, and ``repro docs`` renders it into
    #: ``docs/THEORY.md``.  ``None`` means "no claims declared" — reported
    #: explicitly, never silently skipped.
    cost_model: dict | None = field(default=None, compare=False)

    @property
    def key(self) -> tuple[str, str]:
        return (self.problem, self.model)


class SolverRegistry:
    """Mapping ``(problem, model) -> SolverEntry`` with stable iteration."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], SolverEntry] = {}

    def register(self, entry: SolverEntry) -> SolverEntry:
        """Add (or replace) an entry.

        The problem/model axes are *open*: any non-empty identifier is a
        legal key, so a new problem or model is introduced by registering
        it — :class:`~repro.api.envelope.SolveRequest` validates against
        the registry, and the runtime derives its job names from it.  (A
        new *model* additionally wants a short batch-name prefix; see
        :func:`repro.runtime.spec.register_model_prefix`.)
        """
        for axis, value in (("problem", entry.problem), ("model", entry.model)):
            if not value or not isinstance(value, str):
                raise ValueError(f"{axis} must be a non-empty string, got {value!r}")
        self._entries[entry.key] = entry
        return entry

    def get(self, problem: str, model: str) -> SolverEntry:
        try:
            return self._entries[(problem, model)]
        except KeyError:
            known = ", ".join(f"{p}/{m}" for p, m in sorted(self._entries))
            raise KeyError(
                f"no solver registered for problem={problem!r} model={model!r}; "
                f"known entries: {known}"
            ) from None

    def __contains__(self, key: tuple[str, str]) -> bool:
        return tuple(key) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[SolverEntry]:
        """All entries, ordered by (problem, model) for stable display."""
        return [self._entries[k] for k in sorted(self._entries)]

    def problems(self) -> list[str]:
        return sorted({p for p, _ in self._entries})

    def models(self, problem: str | None = None) -> list[str]:
        """Models available (optionally restricted to one problem)."""
        if problem is None:
            return sorted({m for _, m in self._entries})
        return sorted({m for p, m in self._entries if p == problem})


#: The process-global registry ``repro.api.solve`` dispatches through.
#: Built-in entries are registered on import of :mod:`repro.api.solvers`.
REGISTRY = SolverRegistry()


def register_solver(
    problem: str,
    model: str,
    *,
    capabilities: SolverCapabilities | None = None,
    description: str = "",
    legacy_entry: str = "",
    cost_model: dict | None = None,
    registry: SolverRegistry | None = None,
):
    """Decorator: register an adapter ``fn(graph, request, params)``.

    ``cost_model`` is the symbolic cost declaration (see
    :attr:`SolverEntry.cost_model`), e.g.::

        cost_model={
            "rounds": "log(delta) + loglog(n)",
            "words_moved": "m",
            "phases": {"stage": {"rounds": "log(delta)"}},
            "refs": ("Theorem 1",),
        }
    """

    def deco(fn):
        (registry or REGISTRY).register(
            SolverEntry(
                problem=problem,
                model=model,
                fn=fn,
                capabilities=capabilities or SolverCapabilities(),
                description=description,
                legacy_entry=legacy_entry,
                cost_model=cost_model,
            )
        )
        return fn

    return deco
