"""``repro.api`` — the one problem x model solver facade (Theorem 1's API).

One call solves any registered problem under any registered cost model and
returns the unified envelope::

    from repro.api import SolveRequest, solve
    from repro.graphs import gnp_random_graph

    g = gnp_random_graph(300, 0.03, seed=0)
    res = solve(SolveRequest(problem="mis", model="cclique", graph=g))
    res.solution, res.rounds, res.words_moved, res.snapshot

Pieces:

* :class:`SolveRequest` / :class:`SolveResult` — the typed envelope
  (:mod:`repro.api.envelope`);
* :class:`ExecutionConfig` — every backend knob in one record with
  environment fallback (:mod:`repro.api.config`);
* :data:`REGISTRY` — the ``(problem, model)`` solver registry with
  capability metadata (:mod:`repro.api.registry`); built-in entries are
  registered by :mod:`repro.api.solvers` at import time.

The historical entry points (``repro.core.api.maximal_independent_set``,
``repro.cclique.mis_cc.cc_mis``, ``repro.congest.mis_congest.congest_mis``,
``repro.mpc.distributed_luby.distributed_luby_mis``, ...) remain available
and bit-identical; they are the implementation layer this facade fronts.
New scenarios should register a solver here instead of adding entry points.
"""

from __future__ import annotations

import time
from dataclasses import replace

from ..graphs.graph import Graph
from ..graphs.kernels import kernel_backend_scope
from ..obs import METRICS
from ..obs import trace as _trace
from .config import ExecutionConfig
from .envelope import MODELS, PROBLEMS, SolveRequest, SolveResult, request_digest
from .registry import (
    REGISTRY,
    SolverCapabilities,
    SolverEntry,
    SolverRegistry,
    register_solver,
)
from . import solvers as _solvers  # noqa: F401  (registers built-in entries)

__all__ = [
    "MODELS",
    "PROBLEMS",
    "REGISTRY",
    "ExecutionConfig",
    "SolveRequest",
    "SolveResult",
    "SolverCapabilities",
    "SolverEntry",
    "SolverRegistry",
    "register_solver",
    "request_digest",
    "solve",
]


def solve(request: SolveRequest, *, graph: Graph | None = None) -> SolveResult:
    """Solve ``request`` through the registry; returns the unified envelope.

    The input graph comes from ``request.graph`` (or the ``graph`` keyword,
    which wins when both are given).  The request's
    :class:`ExecutionConfig` is applied to the effective
    :class:`~repro.core.params.Params` and — for the kernel backend, which
    call sites resolve ambiently — scoped around the solver call.
    """
    g = graph if graph is not None else request.graph
    if g is None:
        raise ValueError("SolveRequest needs a graph (request.graph or graph=)")
    entry = REGISTRY.get(request.problem, request.model)
    params = request.make_params()
    if not _trace._TRACING:
        # Parity contract: with tracing off this is byte-for-byte the
        # pre-observability solve path.
        t0 = time.perf_counter()
        with kernel_backend_scope(params.kernel_backend):
            result = entry.fn(g, request, params)
        return replace(result, wall_time=time.perf_counter() - t0)
    return _solve_traced(entry, g, request, params)


def _solve_traced(entry, g: Graph, request: SolveRequest, params: Params):
    """Traced solve: root ``solve`` span + trace/metrics on the envelope."""
    with _trace.ensure_buffer() as buf:
        mark = len(buf.spans)
        before = METRICS.counters_snapshot()
        t0 = time.perf_counter()
        with _trace.span(
            "solve",
            problem=request.problem,
            model=request.model,
            n=g.n,
            m=g.m,
            eps=request.eps,
            kernel_backend=params.kernel_backend or "auto",
        ) as sp:
            with kernel_backend_scope(params.kernel_backend):
                result = entry.fn(g, request, params)
            if sp is not None:
                sp.set(
                    rounds=result.rounds,
                    words_moved=result.words_moved,
                    verified=result.verified,
                )
        wall = time.perf_counter() - t0
        return replace(
            result,
            wall_time=wall,
            trace=buf.spans[mark:],
            metrics=METRICS.delta(before, METRICS.counters_snapshot()),
        )
