"""Built-in registry entries: every legacy solver wrapped into the envelope.

Each adapter here is deliberately *thin*: it calls the historical entry
point unchanged (so solutions, round counts and word counts are
bit-identical to direct calls — parity-tested in
``tests/test_api_facade.py``) and repackages the result into a
:class:`~repro.api.envelope.SolveResult`.  The historical entry points
remain importable as before; they are the implementation layer, the facade
is the front door.

Problem x model coverage registered on import:

=========  =========  ==========  =======  =======
problem    simulated  mpc-engine  cclique  congest
=========  =========  ==========  =======  =======
mis        yes        yes         yes      yes
matching   yes        --          yes      yes
vc         yes        --          --       --
coloring   yes        --          --       --
ruling2    yes        --          --       --
=========  =========  ==========  =======  =======
"""

from __future__ import annotations

import numpy as np

from ..cclique.mis_cc import cc_maximal_matching, cc_mis
from ..congest.mis_congest import congest_maximal_matching, congest_mis
from ..core.api import maximal_independent_set, maximal_matching, uses_lowdeg_path
from ..core.derived import (
    deterministic_coloring,
    deterministic_ruling_set,
    deterministic_vertex_cover,
    is_ruling_set,
    is_vertex_cover,
)
from ..core.params import Params
from ..graphs.graph import Graph
from ..mpc.context import MPCContext
from ..verify import verify_matching_pairs, verify_mis_nodes
from .envelope import SolveRequest, SolveResult
from .registry import SolverCapabilities, register_solver

__all__ = ["engine_space_plan"]

_SIMULATED_CAPS = SolverCapabilities(
    snapshot=True, certificate=True, force_path=True, trace_records=True
)
_DERIVED_CAPS = SolverCapabilities(certificate=True, trace_records=True)
_MODEL_CAPS = SolverCapabilities(snapshot=True, certificate=True)
_ENGINE_CAPS = SolverCapabilities(
    snapshot=True, certificate=True, packed_planes=True
)


def _mpc_ctx(graph: Graph, params: Params) -> MPCContext:
    """The exact context the simulated drivers build internally."""
    return MPCContext(
        n=graph.n,
        m=graph.m,
        eps=params.eps,
        space_factor=params.space_factor,
        total_factor=params.total_factor,
    )


# ---------------------------------------------------------------------- #
# Simulated MPC (vectorized accounting layer)
# ---------------------------------------------------------------------- #


@register_solver(
    "mis",
    "simulated",
    capabilities=_SIMULATED_CAPS,
    description="Theorem-1 MIS on the MPC accounting layer",
    legacy_entry="repro.core.api.maximal_independent_set",
    cost_model={
        "rounds": "(log(delta) + loglog(n)) / gamma**2",
        "words_moved": "m",
        "phases": {
            "stage": {"rounds": "log(delta) + loglog(n)"},
            "preprocess_gather": {"words": "m * delta"},
        },
        "refs": ("Theorem 1", "Section 4 (low-degree stages)"),
        "notes": (
            "Sparse sweeps take the low-degree path: the headline "
            "O((log Delta + log log n) / gamma^2) stage bound with the "
            "2-hop preprocessing gather billed per stage."
        ),
    },
)
def _solve_mis_simulated(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    ctx = _mpc_ctx(graph, params)
    res = maximal_independent_set(
        graph,
        params=params,
        force=request.force,
        paper_rule=request.paper_rule,
        ctx=ctx,
    )
    verified = bool(verify_mis_nodes(graph, res.independent_set))
    path = request.force or (
        "lowdeg"
        if uses_lowdeg_path(graph, params, paper_rule=request.paper_rule)
        else "general"
    )
    return SolveResult(
        problem="mis",
        model="simulated",
        solution=res.independent_set,
        solution_kind="nodes",
        solution_size=int(res.independent_set.size),
        verified=verified,
        certificate={"verifier": "verify_mis_nodes", "ok": verified},
        rounds=res.rounds,
        iterations=res.iterations,
        words_moved=res.words_moved,
        max_machine_words=res.max_machine_words,
        space_limit=res.space_limit,
        path=path,
        snapshot=ctx.model_snapshot(),
        raw=res,
    )


@register_solver(
    "matching",
    "simulated",
    capabilities=_SIMULATED_CAPS,
    description="Theorem-1 maximal matching on the MPC accounting layer",
    legacy_entry="repro.core.api.maximal_matching",
    cost_model={
        "words_moved": "m",
        "refs": ("Theorem 1", "Section 5 (matching via MIS machinery)"),
        "notes": (
            "No rounds claim: the measured series *falls* with n "
            "(per-machine space S = Theta(n^gamma) grows, so the "
            "simulation needs fewer passes) — a growing claim would "
            "vacuously dominate it, so none is declared.  The words "
            "series crosses a regime boundary around n=256 (small "
            "instances finish in the collect-remainder regime and "
            "undershoot the asymptotic bill), so only the coarse O(m) "
            "envelope is claimed and no per-phase claims are made."
        ),
    },
)
def _solve_matching_simulated(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    ctx = _mpc_ctx(graph, params)
    res = maximal_matching(
        graph,
        params=params,
        force=request.force,
        paper_rule=request.paper_rule,
        ctx=ctx,
    )
    verified = bool(verify_matching_pairs(graph, res.pairs))
    path = request.force or (
        "lowdeg"
        if uses_lowdeg_path(
            graph, params, paper_rule=request.paper_rule, for_matching=True
        )
        else "general"
    )
    return SolveResult(
        problem="matching",
        model="simulated",
        solution=res.pairs,
        solution_kind="pairs",
        solution_size=int(res.pairs.shape[0]),
        verified=verified,
        certificate={"verifier": "verify_matching_pairs", "ok": verified},
        rounds=res.rounds,
        iterations=res.iterations,
        words_moved=res.words_moved,
        max_machine_words=res.max_machine_words,
        space_limit=res.space_limit,
        path=path,
        snapshot=ctx.model_snapshot(),
        raw=res,
    )


@register_solver(
    "vc",
    "simulated",
    capabilities=_DERIVED_CAPS,
    description="2-approximate vertex cover via Theorem-1 matching",
    legacy_entry="repro.core.derived.deterministic_vertex_cover",
    cost_model={
        "words_moved": "m",
        "refs": ("Corollary 1 (2-approximate VC)",),
        "notes": (
            "Rides on the matching solver: same space-driven falling "
            "rounds series (no rounds claim) and the same words regime "
            "crossing around n=256, so only the O(m) envelope is "
            "claimed."
        ),
    },
)
def _solve_vc_simulated(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    vc = deterministic_vertex_cover(graph, params=params)
    verified = bool(is_vertex_cover(graph, vc.cover))
    stats = vc.matching
    return SolveResult(
        problem="vc",
        model="simulated",
        solution=np.asarray(vc.cover, dtype=np.int64),
        solution_kind="nodes",
        solution_size=int(vc.size),
        verified=verified,
        certificate={
            "verifier": "is_vertex_cover",
            "ok": verified,
            "lower_bound": int(vc.lower_bound()),
        },
        rounds=stats.rounds,
        iterations=stats.iterations,
        words_moved=stats.words_moved,
        max_machine_words=stats.max_machine_words,
        space_limit=stats.space_limit,
        raw=vc,
    )


@register_solver(
    "coloring",
    "simulated",
    capabilities=_DERIVED_CAPS,
    description="(Delta+1)-coloring via MIS on G x K_{Delta+1}",
    legacy_entry="repro.core.derived.deterministic_coloring",
    cost_model={
        "rounds": "log(delta) + loglog(n)",
        "words_moved": "m * delta",
        "phases": {
            "stage": {"rounds": "log(delta) + loglog(n)"},
            "preprocess_gather": {"words": "m * delta"},
        },
        "refs": ("Corollary 1 ((Delta+1)-coloring)",),
        "notes": (
            "MIS on G x K_{Delta+1}: the product graph carries "
            "Theta(m * Delta) edges, which dominates the word bill."
        ),
    },
)
def _solve_coloring_simulated(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    num_colors = request.option("num_colors")
    col = deterministic_coloring(
        graph,
        params=params,
        num_colors=int(num_colors) if num_colors is not None else None,
    )
    proper = True
    if graph.m:
        proper = bool(
            np.all(col.colors[graph.edges_u] != col.colors[graph.edges_v])
        )
    verified = proper and bool(np.all(col.colors >= 0))
    stats = col.mis
    return SolveResult(
        problem="coloring",
        model="simulated",
        solution=np.asarray(col.colors, dtype=np.int64),
        solution_kind="colors",
        solution_size=int(len(set(col.colors.tolist()))),
        verified=verified,
        certificate={
            "verifier": "proper_coloring",
            "ok": verified,
            "palette": int(col.num_colors),
        },
        rounds=stats.rounds,
        iterations=stats.iterations,
        words_moved=stats.words_moved,
        max_machine_words=stats.max_machine_words,
        space_limit=stats.space_limit,
        raw=col,
    )


@register_solver(
    "ruling2",
    "simulated",
    capabilities=_DERIVED_CAPS,
    description="2-ruling set via one MIS call on G^2",
    legacy_entry="repro.core.derived.deterministic_ruling_set",
    cost_model={
        "rounds": "log(delta) + loglog(n)",
        "words_moved": "m",
        "phases": {
            "sparsify_seed": {"rounds": "seed_bits * log(delta)"},
            "sparsify_distribute": {"words": "m"},
        },
        "refs": ("Corollary 1 (2-ruling set)", "Section 3 (sparsification)"),
        "notes": (
            "One MIS call on G^2; sparse sweeps keep G^2 small enough "
            "that the general-path sparsification phases dominate."
        ),
    },
)
def _solve_ruling2_simulated(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    rs = deterministic_ruling_set(graph, params=params)
    verified = bool(is_ruling_set(graph, rs.ruling_set))
    stats = rs.mis
    return SolveResult(
        problem="ruling2",
        model="simulated",
        solution=np.asarray(rs.ruling_set, dtype=np.int64),
        solution_kind="nodes",
        solution_size=rs.size,
        verified=verified,
        certificate={
            "verifier": "is_ruling_set",
            "ok": verified,
            "square_n": int(rs.square_n),
            "square_m": int(rs.square_m),
        },
        rounds=stats.rounds,
        iterations=stats.iterations,
        words_moved=stats.words_moved,
        max_machine_words=stats.max_machine_words,
        space_limit=stats.space_limit,
        raw=rs,
    )


# ---------------------------------------------------------------------- #
# Literal MPC engine
# ---------------------------------------------------------------------- #


def engine_space_plan(graph: Graph, params: Params) -> tuple[int, int]:
    """``(machines, space)`` for an engine run at ``S = Theta(n^eps)``.

    Machine count follows the model constants (enough machines to hold the
    input); the space is then sized for the engine's demonstrated
    request/response protocol: per-machine home state (inI / killed /
    answer planes, ~9 words per resident node), the arc block, and one
    query per distinct endpoint per holder in flight — ``~(12 m + 12 n) /
    M`` words plus the broadcast fan-out slack.
    """
    ctx = MPCContext(
        n=graph.n, m=graph.m, eps=params.eps, space_factor=params.space_factor
    )
    machines = ctx.num_machines
    space = max(
        ctx.S,
        -(-(12 * graph.m + 12 * max(graph.n, 1)) // machines)
        + 4 * machines
        + 64,
    )
    return machines, space


@register_solver(
    "mis",
    "mpc-engine",
    capabilities=_ENGINE_CAPS,
    description="Luby MIS executed with real messages on the MPC engine",
    legacy_entry="repro.mpc.distributed_luby.distributed_luby_mis",
    cost_model={
        "rounds": "log(n)",
        "words_moved": "m * log(n)",
        "phases": {
            "round": {"rounds": "log(n)", "words": "m * log(n)"},
        },
        "refs": ("Theorem 2 (Luby on the literal engine)",),
        "notes": (
            "O(log n) Luby phases, each a constant number of engine "
            "rounds shipping O(m) words of real messages."
        ),
    },
)
def _solve_mis_engine(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    from ..mpc.distributed_luby import distributed_luby_mis

    machines, space = engine_space_plan(graph, params)
    stats: dict = {}
    mis, rounds, phases = distributed_luby_mis(
        graph,
        machines,
        space,
        engine_backend=params.engine_backend,
        arc_plane=request.arc_plane,
        stats_out=stats,
    )
    snapshot = stats.get("snapshot")
    verified = bool(verify_mis_nodes(graph, mis))
    return SolveResult(
        problem="mis",
        model="mpc-engine",
        solution=np.asarray(mis, dtype=np.int64),
        solution_kind="nodes",
        solution_size=int(mis.size),
        verified=verified,
        certificate={"verifier": "verify_mis_nodes", "ok": verified},
        rounds=int(rounds),
        iterations=int(phases),
        words_moved=int(snapshot.words_moved) if snapshot else 0,
        max_machine_words=int(snapshot.max_words_seen) if snapshot else 0,
        space_limit=int(space),
        path="mpc-engine",
        snapshot=snapshot,
        raw=(mis, rounds, phases),
    )


# ---------------------------------------------------------------------- #
# CONGESTED CLIQUE
# ---------------------------------------------------------------------- #


@register_solver(
    "mis",
    "cclique",
    capabilities=_MODEL_CAPS,
    description="O(log Delta)-round CONGESTED CLIQUE MIS (Corollary 2)",
    legacy_entry="repro.cclique.mis_cc.cc_mis",
    cost_model={
        "rounds": "log(delta)",
        "words_moved": "n * log(delta)",
        "phases": {
            "phase": {"rounds": "log(delta)", "words": "n * log(delta)"},
            "collect_remainder": {"rounds": "1", "words": "n"},
        },
        "refs": ("Corollary 2 (O(log Delta) CONGESTED CLIQUE MIS)",),
        "notes": (
            "Per degree-halving phase: O(1) aggregate/broadcast rounds "
            "of one O(log n)-bit message per node; Lenzen routing "
            "collects the O(n)-edge remainder in O(1) rounds."
        ),
    },
)
def _solve_mis_cclique(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    cc = cc_mis(
        graph,
        charge_mode=request.option("charge_mode", "ours"),
        max_scan_trials=params.max_scan_trials,
        seed_backend=params.seed_backend,
        seed_chunk=params.seed_chunk,
    )
    verified = bool(verify_mis_nodes(graph, cc.solution))
    return _model_result(
        "mis",
        "cclique",
        solution=cc.solution,
        solution_kind="nodes",
        solution_size=int(cc.solution.size),
        verified=verified,
        verifier="verify_mis_nodes",
        phases=cc.phases,
        rounds=cc.rounds,
        snapshot=cc.snapshot,
        path="congested-clique",
        raw=cc,
        extra={"algorithm": cc.algorithm},
    )


@register_solver(
    "matching",
    "cclique",
    capabilities=_MODEL_CAPS,
    description="O(log Delta)-round CONGESTED CLIQUE maximal matching",
    legacy_entry="repro.cclique.mis_cc.cc_maximal_matching",
    cost_model={
        "rounds": "log(delta)",
        "words_moved": "n * log(delta)",
        "phases": {
            "phase": {"rounds": "log(delta)", "words": "n * log(delta)"},
            "collect_remainder": {"rounds": "1", "words": "n"},
        },
        "refs": ("Corollary 2 (CONGESTED CLIQUE maximal matching)",),
        "notes": (
            "Same phase structure as CLIQUE MIS, run on the matching "
            "variant of the degree-halving argument."
        ),
    },
)
def _solve_matching_cclique(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    cc = cc_maximal_matching(
        graph,
        charge_mode=request.option("charge_mode", "ours"),
        max_scan_trials=params.max_scan_trials,
        seed_backend=params.seed_backend,
        seed_chunk=params.seed_chunk,
    )
    verified = bool(verify_matching_pairs(graph, cc.solution))
    return _model_result(
        "matching",
        "cclique",
        solution=cc.solution,
        solution_kind="pairs",
        solution_size=int(cc.solution.shape[0]),
        verified=verified,
        verifier="verify_matching_pairs",
        phases=cc.phases,
        rounds=cc.rounds,
        snapshot=cc.snapshot,
        path="congested-clique",
        raw=cc,
        extra={"algorithm": cc.algorithm},
    )


# ---------------------------------------------------------------------- #
# CONGEST
# ---------------------------------------------------------------------- #


@register_solver(
    "mis",
    "congest",
    capabilities=_MODEL_CAPS,
    description="CONGEST MIS with BFS-tree seed broadcast accounting",
    legacy_entry="repro.congest.mis_congest.congest_mis",
    cost_model={
        "rounds": "depth * seed_bits * log(delta)",
        "words_moved": "n * seed_bits * log(delta)",
        "phases": {
            "phase_local": {"rounds": "log(delta)", "words": "m * log(delta)"},
            "phase_seed": {
                "rounds": "depth * seed_bits * log(delta)",
                "words": "n * seed_bits * log(delta)",
            },
        },
        "refs": ("Section 6 (CONGEST extension)",),
        "notes": (
            "Per-bit conditional-expectations voting over the BFS tree: "
            "each of the O(log Delta) phases fixes a Theta(log n)-bit "
            "seed at 2*depth rounds per bit — the tree cost the paper "
            "flags as the open CONGEST bottleneck."
        ),
    },
)
def _solve_mis_congest(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    cg = congest_mis(
        graph,
        mode=request.option("mode", "color-compressed"),
        max_scan_trials=params.max_scan_trials,
        pipeline_seed_fix=params.congest_pipeline_seed_fix,
        seed_backend=params.seed_backend,
        seed_chunk=params.seed_chunk,
    )
    verified = bool(verify_mis_nodes(graph, cg.independent_set))
    return _model_result(
        "mis",
        "congest",
        solution=cg.independent_set,
        solution_kind="nodes",
        solution_size=int(cg.independent_set.size),
        verified=verified,
        verifier="verify_mis_nodes",
        phases=cg.phases,
        rounds=cg.rounds,
        snapshot=cg.snapshot,
        path="congest",
        raw=cg,
        extra={"mode": cg.mode, "bfs_depth": int(cg.bfs_depth)},
    )


@register_solver(
    "matching",
    "congest",
    capabilities=_MODEL_CAPS,
    description="CONGEST maximal matching via MIS on the line graph",
    legacy_entry="repro.congest.mis_congest.congest_maximal_matching",
    cost_model={
        "rounds": "depth * seed_bits * log(delta)",
        "words_moved": "m * seed_bits * log(delta)",
        "phases": {
            "phase_seed": {"rounds": "depth * seed_bits * log(delta)"},
        },
        "refs": ("Section 6 (CONGEST extension)",),
        "notes": (
            "MIS on the line graph: the voting structure is the MIS "
            "one with m line-graph nodes, so word bills scale with m."
        ),
    },
)
def _solve_matching_congest(
    graph: Graph, request: SolveRequest, params: Params
) -> SolveResult:
    cg = congest_maximal_matching(
        graph,
        mode=request.option("mode", "color-compressed"),
        max_scan_trials=params.max_scan_trials,
        pipeline_seed_fix=params.congest_pipeline_seed_fix,
        seed_backend=params.seed_backend,
        seed_chunk=params.seed_chunk,
    )
    # The legacy record holds *edge ids* of the input graph (the line-graph
    # MIS); the envelope normalizes to endpoint pairs.
    if graph.m and cg.independent_set.size:
        eids = cg.independent_set
        pairs = np.stack([graph.edges_u[eids], graph.edges_v[eids]], axis=1)
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
    verified = bool(verify_matching_pairs(graph, pairs))
    return _model_result(
        "matching",
        "congest",
        solution=pairs,
        solution_kind="pairs",
        solution_size=int(pairs.shape[0]),
        verified=verified,
        verifier="verify_matching_pairs",
        phases=cg.phases,
        rounds=cg.rounds,
        snapshot=cg.snapshot,
        path="congest",
        raw=cg,
        # The snapshot's graph detail describes the line graph, which is the
        # honest communication structure of the simulated run.
        extra={"mode": cg.mode, "line_graph": True},
    )


def _model_result(
    problem: str,
    model: str,
    *,
    solution: np.ndarray,
    solution_kind: str,
    solution_size: int,
    verified: bool,
    verifier: str,
    phases: int,
    rounds: int,
    snapshot,
    path: str,
    raw,
    extra: dict | None = None,
) -> SolveResult:
    """Common envelope assembly for the snapshot-carrying model solvers."""
    certificate = {"verifier": verifier, "ok": verified}
    if extra:
        certificate.update(extra)
    ceiling = snapshot.space_ceiling if snapshot else None
    return SolveResult(
        problem=problem,
        model=model,
        solution=np.asarray(solution, dtype=np.int64),
        solution_kind=solution_kind,
        solution_size=solution_size,
        verified=verified,
        certificate=certificate,
        rounds=int(rounds),
        iterations=int(phases),
        words_moved=int(snapshot.words_moved) if snapshot else 0,
        max_machine_words=int(snapshot.max_words_seen) if snapshot else 0,
        space_limit=int(ceiling) if ceiling is not None else 0,
        path=path,
        snapshot=snapshot,
        raw=raw,
    )
