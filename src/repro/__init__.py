"""repro -- Deterministic graph sparsification for low-space MPC.

Full reproduction of Czumaj, Davies, Parter, *"Graph Sparsification for
Derandomizing Massively Parallel Computation with Low Space"* (SPAA 2020).

Quickstart::

    from repro import Graph, gnp_random_graph, maximal_independent_set

    g = gnp_random_graph(512, 0.05, seed=1)
    result = maximal_independent_set(g, eps=0.5)
    print(result.independent_set, result.rounds)

One API — any problem under any cost model through the solver registry::

    from repro import SolveRequest, solve

    res = solve(SolveRequest(problem="mis", model="cclique", graph=g))
    print(res.solution_size, res.rounds, res.words_moved)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
experiment index.
"""

from .graphs import Graph, gnp_random_graph, power_law_graph  # noqa: F401
from .core import (  # noqa: F401
    MISResult,
    MatchingResult,
    Params,
    deterministic_maximal_matching,
    deterministic_mis,
)
from .verify import (  # noqa: F401
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    verify_matching_pairs,
    verify_mis_nodes,
)

__version__ = "1.0.0"


def maximal_independent_set(graph: Graph, *, eps: float = 0.5, **kwargs) -> MISResult:
    """Deterministic MIS (Theorem 1): dispatches between the general
    ``O(log n)`` algorithm (Section 4) and the low-degree
    ``O(log Delta + log log n)`` algorithm (Section 5) by the paper's rule
    ``Delta <= n^delta``."""
    from .core.api import maximal_independent_set as _mis

    return _mis(graph, eps=eps, **kwargs)


def maximal_matching(graph: Graph, *, eps: float = 0.5, **kwargs) -> MatchingResult:
    """Deterministic maximal matching (Theorem 1); same dispatch rule."""
    from .core.api import maximal_matching as _mm

    return _mm(graph, eps=eps, **kwargs)


__all__ = [
    "ExecutionConfig",
    "Graph",
    "MISResult",
    "MatchingResult",
    "Params",
    "SolveRequest",
    "SolveResult",
    "deterministic_maximal_matching",
    "deterministic_mis",
    "gnp_random_graph",
    "is_independent_set",
    "is_matching",
    "is_maximal_independent_set",
    "is_maximal_matching",
    "maximal_independent_set",
    "maximal_matching",
    "power_law_graph",
    "solve",
    "verify_matching_pairs",
    "verify_mis_nodes",
    "__version__",
]

#: Facade symbols resolved lazily: ``repro.api`` imports every model
#: simulator, which a bare ``import repro`` should not pay for.
_API_LAZY = ("ExecutionConfig", "SolveRequest", "SolveResult", "solve")


def __getattr__(name: str):
    if name in _API_LAZY:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
