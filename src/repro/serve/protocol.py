"""Wire format of the solver service (shared by HTTP and stdio).

One request is one JSON object — the same shape whether it arrives as an
HTTP ``POST /solve`` body or as a JSON line on stdin::

    {
      "problem": "mis",                  # runtime job name, or problem+model
      "model": "cclique",                # optional; folds into the job name
      "source": {"kind": "generator",    # a runtime GraphSource dict
                 "name": "gnp_random_graph",
                 "args": {"n": 300, "p": 0.03, "seed": 0}},
      "eps": 0.5, "force": null, "paper_rule": false,
      "overrides": {}, "tag": "",
      "timeout": 30.0,                   # optional per-request budget (s)
      "include_solution": false,         # ship the solution array back
      "id": "r-17"                       # optional correlation id (echoed)
    }

The body deliberately *is* a :class:`~repro.runtime.spec.JobSpec` plus
transport extras: specs are already hashable, JSON-round-trippable solve
descriptions, the batch runtime executes them unchanged, and their digest
(:func:`repro.api.envelope.request_digest`) is the params half of both the
result-cache key and the coalescer key — so "same request" means the same
thing on the wire, in flight, and on disk.

Responses are JSON objects too: ``ok`` / ``status`` / ``coalesced`` /
``cache_hit`` plus the full :class:`~repro.runtime.spec.JobResult` dict
under ``result`` (structured solver failures ride back with HTTP 200 — the
*transport* succeeded; 4xx/5xx are reserved for protocol errors and
admission control).
"""

from __future__ import annotations

import hashlib
import json

from ..api.envelope import request_digest
from ..runtime.spec import JobResult, JobSpec, runtime_problem_name

__all__ = [
    "ProtocolError",
    "ServeJob",
    "coalesce_key",
    "error_payload",
    "parse_solve",
    "solve_payload",
]

#: Top-level keys a solve request may carry; anything else is rejected so
#: a typo ("overides") fails loudly instead of silently solving defaults.
_SOLVE_KEYS = frozenset(
    {
        "op",
        "id",
        "problem",
        "model",
        "source",
        "eps",
        "force",
        "paper_rule",
        "overrides",
        "tag",
        "timeout",
        "include_solution",
    }
)


class ProtocolError(ValueError):
    """A malformed request; ``code`` is the HTTP status it maps to."""

    def __init__(self, message: str, code: int = 400) -> None:
        super().__init__(message)
        self.code = code


class ServeJob:
    """One parsed solve request: the spec plus its transport extras."""

    __slots__ = ("spec", "timeout", "include_solution", "request_id")

    def __init__(
        self,
        spec: JobSpec,
        *,
        timeout: float | None = None,
        include_solution: bool = False,
        request_id: str | None = None,
    ) -> None:
        self.spec = spec
        self.timeout = timeout
        self.include_solution = include_solution
        self.request_id = request_id


def parse_solve(obj: object) -> ServeJob:
    """Validate one wire object into a :class:`ServeJob` (or raise 400)."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(obj).__name__}")
    unknown = set(obj) - _SOLVE_KEYS
    if unknown:
        raise ProtocolError(f"unknown request keys: {sorted(unknown)}")
    problem = obj.get("problem")
    if not isinstance(problem, str) or not problem:
        raise ProtocolError("request needs a 'problem' string")
    model = obj.get("model")
    if model is not None:
        if not isinstance(model, str):
            raise ProtocolError("'model' must be a string")
        try:
            problem = runtime_problem_name(problem, model)
        except KeyError as exc:
            raise ProtocolError(str(exc)) from None
    source = obj.get("source")
    if not isinstance(source, dict):
        raise ProtocolError("request needs a 'source' object (GraphSource dict)")
    timeout = obj.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool):
            raise ProtocolError("'timeout' must be a number of seconds")
        if timeout <= 0:
            raise ProtocolError("'timeout' must be positive")
        timeout = float(timeout)
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("'id' must be a string or integer")
    try:
        spec = JobSpec.from_dict(
            {
                "problem": problem,
                "source": source,
                "eps": obj.get("eps", 0.5),
                "force": obj.get("force"),
                "paper_rule": obj.get("paper_rule", False),
                "overrides": obj.get("overrides", {}),
                "tag": str(obj.get("tag", "")),
            }
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid solve request: {exc}") from None
    return ServeJob(
        spec,
        timeout=timeout,
        include_solution=bool(obj.get("include_solution", False)),
        request_id=request_id,
    )


def coalesce_key(spec: JobSpec) -> str:
    """In-flight identity: source identity x answer digest.

    The params half is :func:`~repro.api.envelope.request_digest` — the
    same digest the result-cache key uses — so two requests coalesce
    exactly when they would share a cache entry.  The input half is the
    *source description* (canonical JSON of the GraphSource) rather than
    the resolved graph fingerprint: coalescing must be decided before
    anything is built, and identical descriptions are guaranteed identical
    graphs (the generators are deterministic).  Distinct descriptions of
    the same graph miss the coalescer but still meet in the
    content-addressed cache, which keys on the resolved fingerprint.
    """
    src = json.dumps(spec.source.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(f"{src}:{request_digest(spec)}".encode()).hexdigest()


def solve_payload(
    result: JobResult,
    *,
    coalesced: bool,
    request_id: str | int | None = None,
    solution: list | None = None,
) -> dict:
    """The wire response for a completed (ok or structurally failed) job."""
    payload = {
        "ok": result.ok,
        "status": result.status,
        "coalesced": coalesced,
        "cache_hit": result.cache_hit,
        "result": result.to_dict(),
    }
    if request_id is not None:
        payload["id"] = request_id
    if solution is not None:
        payload["solution"] = solution
    return payload


def error_payload(
    code: int,
    error_type: str,
    message: str,
    *,
    request_id: str | int | None = None,
    **extra,
) -> dict:
    """The wire response for protocol errors and admission rejections."""
    payload = {
        "ok": False,
        "code": code,
        "error": {"type": error_type, "message": message, **extra},
    }
    if request_id is not None:
        payload["id"] = request_id
    return payload
