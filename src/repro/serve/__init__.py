"""repro.serve — the always-on async solver service.

A long-running asyncio front door over the :data:`repro.api.REGISTRY`:
every registered ``(problem, model)`` solver is remotely callable over
HTTP (``POST /solve``) or a stdio JSON-lines transport, with in-flight
request coalescing, deadline-flushed micro-batching into the persistent
process-pool :class:`~repro.runtime.scheduler.Scheduler`, explicit
admission control (429/503 backpressure), and graceful drain.

Start one from the CLI (``repro serve``) or embed the pieces::

    service = SolverService(workers=2, cache=ResultCache(path))
    await service.start()
    server = await service.start_http(port=0)
    ...
    await service.drain()
"""

from .batcher import BatcherStats, MicroBatcher
from .coalesce import Coalescer, CoalesceStats
from .protocol import (
    ProtocolError,
    ServeJob,
    coalesce_key,
    error_payload,
    parse_solve,
    solve_payload,
)
from .server import SolverService, stdio_streams

__all__ = [
    "BatcherStats",
    "CoalesceStats",
    "Coalescer",
    "MicroBatcher",
    "ProtocolError",
    "ServeJob",
    "SolverService",
    "coalesce_key",
    "error_payload",
    "parse_solve",
    "solve_payload",
    "stdio_streams",
]
