"""``repro serve`` — run the always-on solver service from the CLI.

Three modes off one flag set:

``repro serve``
    Bind the HTTP transport and run until SIGTERM/SIGINT, then drain
    gracefully (finish in-flight solves, refuse new ones with 503, shut
    the worker pool down) — the deployment shape.
``repro serve --stdio``
    Speak JSON lines on stdin/stdout instead — the embedding shape
    (drive the service as a subprocess without opening a port).  EOF on
    stdin drains and exits.
``repro serve --demo``
    Start on an ephemeral port, fire a few identical concurrent requests
    at itself over real HTTP, print what came back (including how many
    coalesced), and exit — a self-contained smoke test the docs and CI
    run verbatim.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
import urllib.request

from ..runtime.cache import ResultCache
from .server import SolverService, stdio_streams

__all__ = ["add_serve_parser", "cmd_serve"]


def _build_service(args) -> SolverService:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return SolverService(
        workers=args.workers,
        job_timeout=args.job_timeout,
        retries=args.retries,
        cache=cache,
        store=args.store_dir,  # None -> follow REPRO_GRAPH_STORE
        max_inflight=args.max_inflight,
        batch_max=args.batch_max,
        batch_delay=args.batch_delay,
        request_timeout=args.request_timeout,
        reject_code=args.reject_code,
    )


async def _serve_http(args) -> int:
    service = _build_service(args)
    await service.start()
    server = await service.start_http(args.host, args.port)
    port = server.sockets[0].getsockname()[1]
    print(
        f"repro serve: http://{args.host}:{port} "
        f"(workers={args.workers}, max_inflight={service.max_inflight}, "
        f"solvers={len(service.solvers())})",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("repro serve: draining ...", flush=True)
    server.close()
    await server.wait_closed()
    completed = await service.drain(args.drain_timeout)
    print(
        f"repro serve: drained ({'clean' if completed else 'timed out'}); "
        f"{service.requests} requests served, {service.rejected} rejected",
        flush=True,
    )
    return 0 if completed else 1


async def _serve_stdio(args) -> int:
    service = _build_service(args)
    await service.start()
    reader, writer = await stdio_streams()
    await service.serve_stdio(reader, writer, drain_timeout=args.drain_timeout)
    return 0


def _demo_request() -> dict:
    return {
        "problem": "mis",
        "model": "cclique",
        "source": {
            "kind": "generator",
            "name": "gnp_random_graph",
            "args": {"n": 200, "p": 0.04, "seed": 0},
        },
    }


async def _serve_demo(args) -> int:
    service = _build_service(args)
    await service.start()
    server = await service.start_http("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    base = f"http://127.0.0.1:{port}"
    loop = asyncio.get_running_loop()

    def post(body: dict) -> dict:
        req = urllib.request.Request(
            f"{base}/solve",
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(req) as resp:
            return json.loads(resp.read())

    def get(path: str) -> str:
        with urllib.request.urlopen(base + path) as resp:
            return resp.read().decode()

    print(f"repro serve --demo on {base}")
    replies = await asyncio.gather(
        *(loop.run_in_executor(None, post, _demo_request()) for _ in range(4))
    )
    solved = [r for r in replies if r["ok"]]
    coalesced = sum(1 for r in replies if r["coalesced"])
    size = solved[0]["result"]["solution_size"] if solved else None
    print(
        f"  4 identical concurrent requests -> {len(solved)} ok, "
        f"{coalesced} coalesced onto the leader's solve, |I| = {size}"
    )
    health = json.loads(await loop.run_in_executor(None, get, "/healthz"))
    print(f"  /healthz: {health['state']}, coalesce {health['coalesce']}")
    metrics = await loop.run_in_executor(None, get, "/metrics")
    served = [ln for ln in metrics.splitlines() if ln.startswith("serve_requests ")]
    print(f"  /metrics: {served[0] if served else 'serve_requests missing!'}")
    server.close()
    await server.wait_closed()
    await service.drain(args.drain_timeout)
    print("  drained cleanly")
    return 0 if len(solved) == 4 and coalesced >= 1 else 1


def cmd_serve(args) -> int:
    if args.stdio and args.demo:
        print("error: --stdio and --demo are mutually exclusive", file=sys.stderr)
        return 2
    runner = _serve_stdio if args.stdio else _serve_demo if args.demo else _serve_http
    with contextlib.suppress(KeyboardInterrupt):
        return asyncio.run(runner(args))
    return 0


def add_serve_parser(sub) -> None:
    """Register the ``serve`` subcommand on a subparsers object."""
    import os

    p = sub.add_parser(
        "serve",
        help="run the always-on solver service (HTTP or stdio JSON lines)",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750,
                   help="HTTP port (0 picks a free one; default 8750)")
    p.add_argument("--stdio", action="store_true",
                   help="serve JSON lines on stdin/stdout instead of HTTP")
    p.add_argument("--demo", action="store_true",
                   help="start, self-request over HTTP, print, and exit")
    p.add_argument("--workers", type=int, default=1,
                   help="solver worker processes (default 1)")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="per-job wall-clock budget in seconds (worker-side)")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts per failing job")
    p.add_argument("--cache-dir", type=str,
                   default=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"),
                   help="result cache directory (REPRO_CACHE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")
    p.add_argument("--store-dir", type=str, default=None,
                   help="out-of-core graph store directory "
                        "(default: REPRO_GRAPH_STORE if set)")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="admission bound before 503/429 (default 64)")
    p.add_argument("--batch-max", type=int, default=16,
                   help="micro-batch size cap (default 16)")
    p.add_argument("--batch-delay", type=float, default=0.01,
                   help="micro-batch flush deadline in seconds (default 0.01)")
    p.add_argument("--request-timeout", type=float, default=None,
                   help="default per-request budget in seconds (504 past it)")
    p.add_argument("--reject-code", type=int, choices=[429, 503], default=503,
                   help="status for queue-full rejections (default 503)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="graceful-drain budget in seconds (default 30)")
    p.set_defaults(fn=cmd_serve)
