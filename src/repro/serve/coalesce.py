"""In-flight request coalescing: N identical concurrent solves, one job.

The coalescer is a map from :func:`~repro.serve.protocol.coalesce_key` to
the shared :class:`asyncio.Future` of the solve currently in flight under
that key.  The first request to arrive under a key is the **leader** — it
owns actually producing the result (submitting to the micro-batcher) and
resolving the future; every request that arrives while the future is
unresolved is a **follower** and simply awaits it.  When the leader
finishes (result *or* failure), the key is released, so a later identical
request starts a fresh solve — in-flight dedup, not a cache (the
content-addressed :class:`~repro.runtime.cache.ResultCache` below the
scheduler handles across-time dedup).

Single-event-loop discipline: all methods must be called from the
service's event loop; no locks are needed because admission is atomic
between awaits.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

__all__ = ["Coalescer", "CoalesceStats"]


@dataclass
class CoalesceStats:
    """Served-process counters (monotone; snapshot with ``to_dict``)."""

    leaders: int = 0
    followers: int = 0

    @property
    def total(self) -> int:
        return self.leaders + self.followers

    @property
    def coalesce_ratio(self) -> float:
        """Requests served per scheduler-bound solve (1.0 = no sharing)."""
        return self.total / self.leaders if self.leaders else 0.0

    def to_dict(self) -> dict:
        return {
            "leaders": self.leaders,
            "followers": self.followers,
            "coalesce_ratio": self.coalesce_ratio,
        }


def _retrieve(fut: asyncio.Future) -> None:
    # Touch the exception so a leader whose every follower timed out does
    # not trigger "exception was never retrieved" noise at GC time.
    if not fut.cancelled():
        fut.exception()


class Coalescer:
    """Key -> in-flight future map with leader/follower admission."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        self.stats = CoalesceStats()

    def admit(self, key: str) -> tuple[asyncio.Future, bool]:
        """``(shared_future, is_leader)`` for one arriving request."""
        fut = self._inflight.get(key)
        if fut is not None and not fut.done():
            self.stats.followers += 1
            return fut, False
        fut = asyncio.get_running_loop().create_future()
        fut.add_done_callback(_retrieve)
        self._inflight[key] = fut
        self.stats.leaders += 1
        return fut, True

    def finish(self, key: str) -> None:
        """Release ``key`` (leader-side, after resolving the future)."""
        self._inflight.pop(key, None)

    def inflight(self) -> int:
        """Distinct solves currently in flight."""
        return len(self._inflight)
