"""The always-on solver service: asyncio front door over the registry.

One :class:`SolverService` owns the whole request path::

    transport (HTTP / stdio JSON-lines)
      -> admission control   (bounded in-flight requests; 429/503 + Retry-After)
      -> coalescer           (in-flight dedup by source x request_digest)
      -> micro-batcher       (deadline-flushed grouping into Scheduler.run)
      -> process pool        (persistent workers; cache-first, store-aware)

Every solver the :data:`repro.api.REGISTRY` knows is remotely callable by
its runtime job name with zero per-solver service code — the wire body is
a :class:`~repro.runtime.spec.JobSpec`, and the runtime already dispatches
those through the facade.

Observability is first-class: each request runs under a ``serve.request``
root span, the service increments ``serve.*`` counters / gauges /
histograms in :data:`repro.obs.METRICS`, and the HTTP side exposes
``/healthz`` (liveness + state) and ``/metrics`` (Prometheus text).

Shutdown is graceful by contract: :meth:`SolverService.drain` flips the
service to *draining* (new solves are refused with 503), waits for every
in-flight request to complete, drains the batcher, and closes the
persistent worker pool.  The CLI wires SIGTERM/SIGINT to exactly that.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from contextlib import nullcontext

from ..api.registry import REGISTRY
from ..obs import trace as _obs
from ..obs.metrics import METRICS
from ..runtime.cache import ResultCache
from ..runtime.scheduler import Scheduler
from ..runtime.spec import JobResult, runtime_problem_name
from .batcher import MicroBatcher
from .coalesce import Coalescer
from .protocol import (
    ProtocolError,
    ServeJob,
    coalesce_key,
    error_payload,
    parse_solve,
    solve_payload,
)

__all__ = ["SolverService", "stdio_streams"]

#: Largest accepted HTTP body / stdio line (a JobSpec is tiny; anything
#: bigger is a client bug or abuse).
MAX_BODY_BYTES = 1 << 20

#: Reading one request (header + body) must finish within this budget so a
#: stalled client cannot pin a connection handler forever.
READ_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class SolverService:
    """Coalescing, micro-batching, backpressured front door to the registry.

    Parameters
    ----------
    workers / job_timeout / retries / cache / store:
        Forwarded to the owned :class:`~repro.runtime.scheduler.Scheduler`
        (created ``persistent=True`` so micro-batches reuse one worker
        pool).  Pass a ready ``scheduler=`` instead to control everything.
    max_inflight:
        Admission bound: requests admitted and not yet answered.  At the
        bound, new solves are refused immediately with ``reject_code``
        and a ``Retry-After`` hint — loaded services must say no fast,
        not queue without bound.
    batch_max / batch_delay:
        Micro-batcher knobs: flush when ``batch_max`` jobs are pending or
        ``batch_delay`` seconds after the first, whichever comes first.
    request_timeout:
        Default per-request wall budget (a request may lower/raise its
        own via ``timeout``); ``None`` = wait as long as the job takes.
    reject_code:
        HTTP status for queue-full rejections: 503 (default; matches
        draining) or 429 when the deployment wants "client should back
        off" distinguishable from "instance going away".
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        job_timeout: float | None = None,
        retries: int = 0,
        cache: ResultCache | str | None = None,
        store=None,
        scheduler: Scheduler | None = None,
        max_inflight: int = 64,
        batch_max: int = 16,
        batch_delay: float = 0.01,
        request_timeout: float | None = None,
        reject_code: int = 503,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if reject_code not in (429, 503):
            raise ValueError("reject_code must be 429 or 503")
        if isinstance(cache, (str,)) or hasattr(cache, "__fspath__"):
            cache = ResultCache(cache)
        if scheduler is None:
            scheduler = Scheduler(
                workers=workers,
                timeout=job_timeout,
                retries=retries,
                cache=cache,
                store=store,
                persistent=True,
            )
        self.scheduler = scheduler
        self.cache = scheduler.cache
        self.coalescer = Coalescer()
        self.batcher = MicroBatcher(
            scheduler, max_batch=batch_max, max_delay=batch_delay
        )
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.reject_code = reject_code
        self._active = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._started_at = time.time()
        self.requests = 0
        self.rejected = 0
        self.timeouts = 0
        self.protocol_errors = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Start the batcher and pre-fork the persistent worker pool."""
        self.batcher.start()
        # Fork workers now, from a thread-light process, rather than on the
        # first request (when executor threads exist and latency matters).
        # Uses the batcher's dedicated thread, never the loop's default
        # executor (which the embedding application may be saturating).
        await asyncio.get_running_loop().run_in_executor(
            self.batcher.executor, self.scheduler.warm_up
        )

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def active(self) -> int:
        """Requests admitted and not yet answered."""
        return self._active

    async def drain(self, timeout: float | None = None) -> bool:
        """Refuse new solves, finish in-flight ones, release the pool.

        Returns ``True`` when everything completed inside ``timeout``
        (``None`` = wait indefinitely); on ``False`` the pool is still
        shut down, abandoning whatever was left.
        """
        self._draining = True
        completed = True
        if self._active:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout)
            except asyncio.TimeoutError:
                completed = False
        if completed:
            await self.batcher.drain()
        # The pool is idle by now (the batcher is drained or abandoned), so
        # the synchronous shutdown is a quick process join — not worth a
        # thread hop on a path where the loop is about to stop anyway.
        self.scheduler.close()
        return completed

    # ------------------------------------------------------------------ #
    # Introspection payloads
    # ------------------------------------------------------------------ #

    def healthz(self) -> dict:
        return {
            "ok": not self._draining,
            "state": "draining" if self._draining else "serving",
            "active": self._active,
            "max_inflight": self.max_inflight,
            "inflight_solves": self.coalescer.inflight(),
            "uptime_s": time.time() - self._started_at,
            "workers": self.scheduler.workers,
            "solvers": len(REGISTRY.entries()),
            "requests": self.requests,
            "rejected": self.rejected,
            "coalesce": self.coalescer.stats.to_dict(),
            "batch": self.batcher.stats.to_dict(),
        }

    def metrics_text(self) -> str:
        METRICS.gauge("serve.queue_depth", self._active)
        METRICS.gauge("serve.inflight_solves", self.coalescer.inflight())
        return METRICS.to_prometheus()

    def solvers(self) -> list[dict]:
        """Every registry entry, with the job name the wire accepts."""
        return [
            {
                "problem": e.problem,
                "model": e.model,
                "name": runtime_problem_name(e.problem, e.model),
                "capabilities": e.capabilities.flags(),
                "description": e.description,
            }
            for e in REGISTRY.entries()
        ]

    # ------------------------------------------------------------------ #
    # The request path (transport-agnostic)
    # ------------------------------------------------------------------ #

    async def handle(self, obj: object) -> tuple[int, dict]:
        """One wire object in, ``(http_status, response_payload)`` out."""
        op = obj.get("op", "solve") if isinstance(obj, dict) else "solve"
        if op in ("ping", "health"):
            health = self.healthz()
            return (200 if health["ok"] else 503), health
        if op == "solvers":
            return 200, {"ok": True, "solvers": self.solvers()}
        if op == "solve":
            return await self._solve(obj)
        self.protocol_errors += 1
        return 400, error_payload(400, "ProtocolError", f"unknown op {op!r}")

    async def _solve(self, obj: object) -> tuple[int, dict]:
        self.requests += 1
        METRICS.inc("serve.requests")
        request_id = obj.get("id") if isinstance(obj, dict) else None
        if self._draining:
            self.rejected += 1
            METRICS.inc("serve.rejected")
            return 503, error_payload(
                503, "Draining", "service is draining", request_id=request_id
            )
        if self._active >= self.max_inflight:
            self.rejected += 1
            METRICS.inc("serve.rejected")
            return self.reject_code, error_payload(
                self.reject_code,
                "QueueFull",
                f"at the {self.max_inflight}-request admission bound",
                request_id=request_id,
                retry_after_s=1,
            )
        try:
            job = parse_solve(obj)
        except ProtocolError as exc:
            self.protocol_errors += 1
            METRICS.inc("serve.protocol_errors")
            return exc.code, error_payload(
                exc.code, "ProtocolError", str(exc), request_id=request_id
            )
        self._active += 1
        self._idle.clear()
        METRICS.gauge("serve.queue_depth", self._active)
        t0 = time.perf_counter()
        try:
            # Each request is its own root trace: ensure_buffer gives the
            # span somewhere to land (and flushes to the REPRO_TRACE JSONL
            # destination, when one is named) without touching an ambient
            # buffer some embedding caller may hold in *its* context.
            buf_ctx = _obs.ensure_buffer() if _obs.is_tracing() else nullcontext()
            with buf_ctx, _obs.span(
                "serve.request",
                problem=job.spec.problem,
                source=job.spec.source.label(),
            ) as sp:
                code, payload = await self._solve_admitted(job)
                if sp is not None:
                    sp.set(code=code, coalesced=bool(payload.get("coalesced")))
            return code, payload
        finally:
            self._active -= 1
            METRICS.gauge("serve.queue_depth", self._active)
            METRICS.observe("serve.latency_s", time.perf_counter() - t0)
            if self._active == 0:
                self._idle.set()

    async def _solve_admitted(self, job: ServeJob) -> tuple[int, dict]:
        key = coalesce_key(job.spec)
        fut, leader = self.coalescer.admit(key)
        if leader:
            asyncio.get_running_loop().create_task(
                self._lead(key, job, fut), name=f"repro-serve-lead-{key[:8]}"
            )
        else:
            METRICS.inc("serve.coalesced")
        timeout = job.timeout if job.timeout is not None else self.request_timeout
        try:
            result: JobResult = await asyncio.wait_for(
                asyncio.shield(fut), timeout
            )
        except asyncio.TimeoutError:
            self.timeouts += 1
            METRICS.inc("serve.request_timeouts")
            return 504, error_payload(
                504,
                "RequestTimeout",
                f"request exceeded its {timeout}s budget (the solve may "
                f"still complete and populate the cache)",
                request_id=job.request_id,
            )
        except Exception as exc:  # noqa: BLE001 - batcher/scheduler plumbing
            METRICS.inc("serve.internal_errors")
            return 500, error_payload(
                500, type(exc).__name__, str(exc), request_id=job.request_id
            )
        solution = None
        if job.include_solution:
            solution = self._load_solution(job, result)
        return 200, solve_payload(
            result,
            coalesced=not leader,
            request_id=job.request_id,
            solution=solution,
        )

    async def _lead(self, key: str, job: ServeJob, fut: asyncio.Future) -> None:
        try:
            result = await self.batcher.submit(job.spec)
            if not fut.done():
                fut.set_result(result)
        except Exception as exc:  # noqa: BLE001 - propagate to all waiters
            if not fut.done():
                fut.set_exception(exc)
        finally:
            self.coalescer.finish(key)

    def _load_solution(self, job: ServeJob, result: JobResult) -> list | None:
        """Solution array for ``include_solution`` requests (cache-backed)."""
        if self.cache is None or not result.ok or not result.fingerprint:
            return None
        entry = self.cache.get(job.spec.cache_key(result.fingerprint))
        if entry is None:
            return None
        try:
            return entry.arrays()["solution"].tolist()
        except (OSError, KeyError, ValueError):
            return None

    # ------------------------------------------------------------------ #
    # HTTP transport
    # ------------------------------------------------------------------ #

    async def start_http(
        self, host: str = "127.0.0.1", port: int = 8750
    ) -> asyncio.AbstractServer:
        """Bind the HTTP front (``port=0`` picks a free port)."""
        return await asyncio.start_server(self._handle_conn, host, port)

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, body = await asyncio.wait_for(
                    self._read_request(reader), READ_TIMEOUT_S
                )
            except _HttpError as exc:
                await self._respond_json(
                    writer,
                    exc.code,
                    error_payload(exc.code, "HttpError", str(exc)),
                )
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                return  # stalled or vanished client; nothing to answer
            code, body_bytes, ctype = await self._dispatch_http(
                method, target, body
            )
            await self._respond(writer, code, body_bytes, ctype)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # noqa: BLE001 - connection must not leak
            try:
                await self._respond_json(
                    writer,
                    500,
                    error_payload(500, type(exc).__name__, str(exc)),
                )
            except Exception:  # noqa: BLE001
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        line = await reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _dispatch_http(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, bytes, str]:
        target = target.split("?", 1)[0]
        if target == "/healthz" and method == "GET":
            health = self.healthz()
            return (
                200 if health["ok"] else 503,
                _json_bytes(health),
                "application/json",
            )
        if target == "/metrics" and method == "GET":
            return 200, self.metrics_text().encode(), "text/plain; version=0.0.4"
        if target == "/solvers" and method == "GET":
            return (
                200,
                _json_bytes({"ok": True, "solvers": self.solvers()}),
                "application/json",
            )
        if target == "/solve":
            if method != "POST":
                return (
                    405,
                    _json_bytes(
                        error_payload(405, "HttpError", "POST /solve only")
                    ),
                    "application/json",
                )
            try:
                obj = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self.protocol_errors += 1
                return (
                    400,
                    _json_bytes(
                        error_payload(400, "ProtocolError", f"bad JSON: {exc}")
                    ),
                    "application/json",
                )
            code, payload = await self.handle(obj)
            return code, _json_bytes(payload), "application/json"
        return (
            404,
            _json_bytes(error_payload(404, "HttpError", f"no route {target}")),
            "application/json",
        )

    async def _respond_json(
        self, writer: asyncio.StreamWriter, code: int, payload: dict
    ) -> None:
        await self._respond(writer, code, _json_bytes(payload), "application/json")

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        body: bytes,
        content_type: str,
    ) -> None:
        reason = _REASONS.get(code, "OK")
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
        )
        if code in (429, 503):
            head += "Retry-After: 1\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # stdio transport (JSON lines)
    # ------------------------------------------------------------------ #

    async def serve_stdio(
        self,
        reader: asyncio.StreamReader,
        writer,
        *,
        drain_timeout: float | None = None,
    ) -> None:
        """JSON-lines loop for embedding: one request per line, one
        response per line (correlate with ``id`` — responses may
        interleave, since each line is handled concurrently).  EOF drains
        the service and returns.
        """
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def _write(payload: dict) -> None:
            data = _json_bytes(payload) + b"\n"
            async with write_lock:
                writer.write(data)
                await writer.drain()

        async def _one(obj: object) -> None:
            _, payload = await self.handle(obj)
            await _write(payload)

        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                self.protocol_errors += 1
                await _write(
                    error_payload(400, "ProtocolError", f"bad JSON line: {exc}")
                )
                continue
            task = asyncio.get_running_loop().create_task(_one(obj))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await self.drain(drain_timeout)


class _HttpError(Exception):
    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode()


async def stdio_streams() -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Wrap this process's stdin/stdout as asyncio streams (CLI plumbing)."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    transport, protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout
    )
    writer = asyncio.StreamWriter(transport, protocol, reader, loop)
    return reader, writer
