"""Deadline-flushed micro-batching into the process-pool scheduler.

The batcher is the bridge between the service's asyncio front and the
synchronous :class:`~repro.runtime.scheduler.Scheduler`: requests are
enqueued as ``(spec, future)`` items, and a single consumer task groups
them into batches — it takes the first item, then keeps collecting until
either ``max_batch`` items are pending or ``max_delay`` seconds have
passed since the batch opened — and runs each batch through
``Scheduler.run`` on the default thread executor.

Batching is what makes the scheduler's per-batch amortizations work for a
request stream: distinct sources resolve once per batch, same-source jobs
ship one buffer (or, with a graph store configured, a key and *no* bytes),
and cache lookups happen before any worker is touched.  Any mix of jobs is
compatible — ``Scheduler.run`` already dispatches heterogeneous
``(problem, model)`` batches — so grouping needs no affinity logic.

One batch runs at a time (the consumer awaits the executor call), which
serializes access to the scheduler and its cache; requests arriving while
a batch is on the pool accumulate into the next batch — exactly the
"batch while busy" shape that grows batches under load and keeps latency
at ``max_delay`` when idle.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..obs.metrics import METRICS
from ..runtime.scheduler import Scheduler
from ..runtime.spec import JobResult, JobSpec

__all__ = ["BatcherStats", "MicroBatcher"]


@dataclass
class BatcherStats:
    """Per-process batching counters."""

    jobs: int = 0
    batches: int = 0
    largest_batch: int = 0
    batch_failures: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.jobs / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.mean_batch_size,
            "batch_failures": self.batch_failures,
        }


class _Item:
    __slots__ = ("spec", "future")

    def __init__(self, spec: JobSpec, future: asyncio.Future) -> None:
        self.spec = spec
        self.future = future


class MicroBatcher:
    """Queue + consumer task turning single submits into scheduler batches."""

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        max_batch: int = 16,
        max_delay: float = 0.01,
        executor: ThreadPoolExecutor | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.scheduler = scheduler
        self.max_batch = max_batch
        self.max_delay = max_delay
        # A dedicated one-thread executor, never the loop's default: batches
        # must not queue behind whatever the embedding application runs
        # there (starving the solve path deadlocks every waiter), and one
        # thread serializes scheduler access by construction.
        self.executor = executor or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._own_executor = executor is None
        self.stats = BatcherStats()
        self._queue: asyncio.Queue[_Item] = asyncio.Queue()
        self._outstanding = 0
        self._drained: asyncio.Event = asyncio.Event()
        self._drained.set()
        self._consumer: asyncio.Task | None = None
        self._closing = False

    def start(self) -> None:
        """Spin up the consumer task (idempotent; needs a running loop)."""
        if self._consumer is None or self._consumer.done():
            self._closing = False
            self._consumer = asyncio.get_running_loop().create_task(
                self._consume(), name="repro-serve-batcher"
            )

    async def submit(self, spec: JobSpec) -> JobResult:
        """Enqueue one job; resolves with its :class:`JobResult`."""
        if self._closing:
            raise RuntimeError("batcher is draining; not accepting jobs")
        if self._consumer is None or self._consumer.done():
            raise RuntimeError("batcher not started (call start() first)")
        item = _Item(spec, asyncio.get_running_loop().create_future())
        self._outstanding += 1
        self._drained.clear()
        await self._queue.put(item)
        return await item.future

    async def drain(self) -> None:
        """Stop accepting, wait for every queued job, stop the consumer."""
        self._closing = True
        await self._drained.wait()
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
            self._consumer = None
        if self._own_executor:
            self.executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Consumer
    # ------------------------------------------------------------------ #

    async def _collect(self) -> list[_Item]:
        """One batch: first item blocks, the rest race the deadline."""
        batch = [await self._queue.get()]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    async def _consume(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect()
            specs = [item.spec for item in batch]
            self.stats.jobs += len(batch)
            self.stats.batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            METRICS.inc("serve.batch.flushes")
            METRICS.inc("serve.batch.jobs", len(batch))
            METRICS.observe("serve.batch.size", len(batch))
            try:
                result = await loop.run_in_executor(
                    self.executor, self.scheduler.run, specs
                )
                for item, job_result in zip(batch, result.results):
                    if not item.future.done():
                        item.future.set_result(job_result)
            except Exception as exc:  # noqa: BLE001 - scheduler-level failure
                self.stats.batch_failures += 1
                METRICS.inc("serve.batch.failures")
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
            finally:
                self._outstanding -= len(batch)
                if self._outstanding == 0:
                    self._drained.set()
