"""Plain-text edge-list I/O (one ``u v`` pair per line, ``#`` comments).

Small convenience layer so examples/benchmarks can persist workloads; the
format is the de-facto standard of SNAP/DIMACS-lite edge lists.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .graph import Graph

__all__ = ["read_edge_list", "write_edge_list"]


def write_edge_list(g: Graph, path: str | Path) -> None:
    """Write ``g`` as an edge list with an ``# n=<n>`` header."""
    p = Path(path)
    with p.open("w") as fh:
        fh.write(f"# n={g.n} m={g.m}\n")
        for u, v in zip(g.edges_u.tolist(), g.edges_v.tolist()):
            fh.write(f"{u} {v}\n")


def read_edge_list(path: str | Path, n: int | None = None) -> Graph:
    """Read an edge list; ``n`` is taken from the header unless overridden."""
    p = Path(path)
    header_n: int | None = None
    us: list[int] = []
    vs: list[int] = []
    with p.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for tok in line[1:].replace(",", " ").split():
                    if tok.startswith("n="):
                        header_n = int(tok[2:])
                continue
            a, b = line.split()[:2]
            us.append(int(a))
            vs.append(int(b))
    if n is None:
        n = header_n
    if n is None:
        n = (max(max(us, default=-1), max(vs, default=-1)) + 1) if us else 0
    edges = np.stack(
        [np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)], axis=1
    ) if us else np.empty((0, 2), dtype=np.int64)
    return Graph.from_edges(n, edges)
