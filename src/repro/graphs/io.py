"""Graph I/O: edge lists, npz packing, and content fingerprints.

Plain-text edge lists (one ``u v`` pair per line, ``#`` comments) are the
de-facto SNAP/DIMACS-lite interchange format.  The npz helpers pack a graph's
canonical arrays into a byte buffer for shipping to worker processes, and
:func:`graph_fingerprint` derives a stable content digest from the same
canonical arrays — two graphs with identical edge sets hash identically
regardless of how they were constructed, which is what makes the runtime's
result cache content-addressed.
"""

from __future__ import annotations

import hashlib
import io
from pathlib import Path

import numpy as np

from .graph import Graph

__all__ = [
    "arc_plane_from_npz_bytes",
    "graph_fingerprint",
    "graph_fingerprint_stream",
    "graph_from_npz_bytes",
    "graph_to_npz_bytes",
    "packed_arc_plane",
    "read_edge_list",
    "write_edge_list",
]


def packed_arc_plane(g: Graph) -> np.ndarray:
    """The directed-arc array (``src * n + dst``, both directions) the MPC
    engine paths load from — the single canonical encoding shared by the
    simulators, the npz shipping layer and the runtime scheduler."""
    n = max(g.n, 1)
    fwd = g.edges_u * n + g.edges_v
    bwd = g.edges_v * n + g.edges_u
    return np.concatenate([fwd, bwd]).astype(np.int64)

#: Version tag mixed into every fingerprint so a future change to the
#: canonical representation invalidates old cache entries instead of
#: silently colliding with them.
_FINGERPRINT_VERSION = b"repro-graph-v1"


def graph_fingerprint(g: Graph) -> str:
    """Hex sha256 of the graph's canonical content (n + sorted edge arrays).

    Deterministic across processes and platforms: the canonical edge arrays
    are int64 little-endian and uniquely sorted by :class:`Graph`
    construction, so equal graphs yield byte-identical digests.
    """
    h = hashlib.sha256()
    h.update(_FINGERPRINT_VERSION)
    h.update(str(g.n).encode())
    h.update(b"|")
    h.update(np.ascontiguousarray(g.edges_u, dtype="<i8").tobytes())
    h.update(np.ascontiguousarray(g.edges_v, dtype="<i8").tobytes())
    return h.hexdigest()


def graph_fingerprint_stream(n: int, u_chunks, v_chunks) -> str:
    """:func:`graph_fingerprint` from chunked canonical edge arrays.

    ``u_chunks`` then ``v_chunks`` must concatenate to exactly the canonical
    ``edges_u`` / ``edges_v`` arrays (sorted, deduplicated, ``u < v``); the
    digest is byte-identical to the in-memory form for any chunking, which
    is what lets the out-of-core store hash graphs it never materialises.
    """
    h = hashlib.sha256()
    h.update(_FINGERPRINT_VERSION)
    h.update(str(int(n)).encode())
    h.update(b"|")
    for chunk in u_chunks:
        h.update(np.ascontiguousarray(chunk, dtype="<i8").tobytes())
    for chunk in v_chunks:
        h.update(np.ascontiguousarray(chunk, dtype="<i8").tobytes())
    return h.hexdigest()


def graph_to_npz_bytes(
    g: Graph, *, include_csr: bool = False, include_arc_plane: bool = False
) -> bytes:
    """Pack a graph into compressed npz bytes (for worker shipping / caching).

    With ``include_csr=True`` the CSR adjacency buffers ride along, so the
    receiving side reconstructs the graph through the
    :meth:`Graph.from_csr_arrays` fast path instead of re-running the
    O(m log m) canonicalisation sort per job.  The fingerprint is unaffected
    (it is content-addressed on the canonical edge arrays only).

    With ``include_arc_plane=True`` the packed directed-arc array the
    columnar engine loads from (``src * n + dst`` forward + backward) is
    included, so engine-model workers start from the shipped buffer instead
    of re-encoding the edge list per job.
    """
    buf = io.BytesIO()
    arrays = {
        "n": np.asarray(g.n, dtype=np.int64),
        "edges_u": g.edges_u,
        "edges_v": g.edges_v,
    }
    if include_csr:
        arrays["indptr"] = g.indptr
        arrays["indices"] = g.indices
        arrays["arc_edge_ids"] = g.arc_edge_ids
    if include_arc_plane:
        arrays["arc_plane"] = packed_arc_plane(g)
    np.savez_compressed(buf, **arrays)
    return buf.getvalue()


def arc_plane_from_npz_bytes(data: bytes) -> np.ndarray | None:
    """The packed arc plane of a buffer, or ``None`` if it wasn't shipped."""
    with np.load(io.BytesIO(data)) as z:
        if "arc_plane" in z.files:
            return z["arc_plane"].astype(np.int64, copy=False)
    return None


def graph_from_npz_bytes(data: bytes) -> Graph:
    """Inverse of :func:`graph_to_npz_bytes`.

    Buffers that carry CSR arrays take the validated
    :meth:`Graph.from_csr_arrays` fast path; plain edge-list buffers
    rebuild adjacency via :meth:`Graph.from_edges`.
    """
    with np.load(io.BytesIO(data)) as z:
        n = int(z["n"])
        if "indptr" in z.files:
            return Graph.from_csr_arrays(
                n,
                z["edges_u"],
                z["edges_v"],
                z["indptr"],
                z["indices"],
                z["arc_edge_ids"],
            )
        edges = np.stack([z["edges_u"], z["edges_v"]], axis=1)
    return Graph.from_edges(n, edges)


def write_edge_list(g: Graph, path: str | Path) -> None:
    """Write ``g`` as an edge list with an ``# n=<n>`` header."""
    p = Path(path)
    with p.open("w") as fh:
        fh.write(f"# n={g.n} m={g.m}\n")
        for u, v in zip(g.edges_u.tolist(), g.edges_v.tolist()):
            fh.write(f"{u} {v}\n")


def read_edge_list(path: str | Path, n: int | None = None) -> Graph:
    """Read an edge list; ``n`` is taken from the header unless overridden."""
    p = Path(path)
    header_n: int | None = None
    us: list[int] = []
    vs: list[int] = []
    with p.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for tok in line[1:].replace(",", " ").split():
                    if tok.startswith("n="):
                        header_n = int(tok[2:])
                continue
            a, b = line.split()[:2]
            us.append(int(a))
            vs.append(int(b))
    if n is None:
        n = header_n
    if n is None:
        n = (max(max(us, default=-1), max(vs, default=-1)) + 1) if us else 0
    edges = np.stack(
        [np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)], axis=1
    ) if us else np.empty((0, 2), dtype=np.int64)
    return Graph.from_edges(n, edges)
