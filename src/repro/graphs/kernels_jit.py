"""Numba-JIT fused kernels (the third kernel backend, ``jit``).

The ``csr`` backend already replaced per-element scatter loops with
whole-array numpy reductions; what it cannot remove is the per-chunk numpy
dispatch and the materialised intermediates (padded gather tables, ``(S, N)``
hash grids).  This module provides the same gated hot kernels as single
compiled loops:

* :func:`segment_min_block_fn` / :func:`segment_any_block_fn` /
  :func:`segment_count_2d` -- drop-in twins of the ``csr`` builders in
  :mod:`repro.graphs.kernels`, fused over ``(seed_chunk x arcs)`` with no
  padded table;
* :func:`linial_first_free` -- the Linial clash kernel: per node, the first
  evaluation point no neighbour collides on (early exit per ``x``);
* the stage-goodness and Luby/lowdeg phase loops consumed by
  :mod:`repro.derand.seed_jit`, which fuse the stacked-Horner k-wise hash
  evaluation *into* the segment reduction so no ``(S, N)`` indicator matrix
  is ever built.

Gating follows the scipy pattern in :mod:`repro.graphs.kernels`: numba is
probed lazily, and when it is missing or import-broken the backend resolvers
degrade to ``csr`` / ``batched`` with a one-time :class:`JitFallbackWarning`
plus a ``kernels.jit_fallbacks`` metrics counter -- never an error.  Every
kernel body in this module is *nopython-compatible plain Python*: without
numba the same functions run uncompiled (slow but exact), which is what the
parity tests exercise in numba-free environments.

Bit-identity contract: all kernels use only integer arithmetic and order-free
reductions (min / any / integer count), exactly like their numpy twins, so
outputs are bit-identical regardless of loop order.  Compilation cost is
observable: the first call of each kernel records a ``jit.compile`` span
(the span covers compile + first execution; compile dominates) and feeds the
``kernels.jit_compile_s`` histogram.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..obs import trace as _obs
from ..obs.metrics import METRICS

__all__ = [
    "JitFallbackWarning",
    "available",
    "kernel",
    "linial_first_free",
    "note_fallback",
    "segment_any_block_fn",
    "segment_count_2d",
    "segment_min_block_fn",
]


class JitFallbackWarning(UserWarning):
    """The ``jit`` backend was requested but numba is unavailable."""


#: Lazy probe / compile cache.  ``probed`` flips on the first availability
#: check; ``njit`` is the numba decorator (or ``None``); ``warned`` makes the
#: fallback warning one-time; ``kernels`` maps kernel name -> callable
#: (compiled when numba is present, the plain Python body otherwise).
_state: dict = {"probed": False, "njit": None, "warned": False, "kernels": {}}


def _probe():
    if not _state["probed"]:
        _state["probed"] = True
        try:  # numba is an optional accelerator, never a hard dependency
            from numba import njit

            _state["njit"] = njit
        except Exception:  # ImportError or a broken install; treat alike
            _state["njit"] = None
    return _state["njit"]


def available() -> bool:
    """True iff numba imports cleanly (probed once, cached)."""
    return _probe() is not None


def note_fallback(context: str) -> None:
    """Record one jit->numpy fallback: counter always, warning once."""
    METRICS.inc("kernels.jit_fallbacks")
    if not _state["warned"]:
        _state["warned"] = True
        warnings.warn(
            f"kernel backend 'jit' requested ({context}) but numba is "
            "unavailable; falling back to the vectorized numpy backend",
            JitFallbackWarning,
            stacklevel=3,
        )


def _reset_for_tests() -> None:
    """Drop the probe/compile cache (fallback-path tests re-probe)."""
    _state.update(probed=False, njit=None, warned=False, kernels={})


# --------------------------------------------------------------------- #
# Kernel bodies: nopython-compatible plain Python
# --------------------------------------------------------------------- #


def _segment_min_block(values, cols, indptr, out, fill):
    """out[s, i] = min over j in [indptr[i], indptr[i+1]) of values[s, cols[j]]."""
    for s in range(values.shape[0]):
        for i in range(indptr.shape[0] - 1):
            acc = fill
            for j in range(indptr[i], indptr[i + 1]):
                v = values[s, cols[j]]
                if v < acc:
                    acc = v
            out[s, i] = acc


def _segment_any_block(mask, cols, indptr, out):
    """out[s, i] = any(mask[s, cols[j]]) over segment i (early exit per hit)."""
    for s in range(mask.shape[0]):
        for i in range(indptr.shape[0] - 1):
            hit = False
            for j in range(indptr[i], indptr[i + 1]):
                if mask[s, cols[j]]:
                    hit = True
                    break
            out[s, i] = hit


def _segment_count(mask, indptr, out):
    """out[s, i] = popcount of mask[s, indptr[i]:indptr[i+1]]."""
    for s in range(mask.shape[0]):
        for i in range(indptr.shape[0] - 1):
            c = 0
            for j in range(indptr[i], indptr[i + 1]):
                if mask[s, j]:
                    c += 1
            out[s, i] = c


def _linial_first_free(evals, indices, indptr, out):
    """out[v] = smallest x with evals[v, x] != evals[u, x] for all nbrs u.

    Returns the number of nodes with no free point (0 under the
    ``q > d * Delta`` root bound; the wrapper turns nonzero into the same
    AssertionError the numpy path raises).
    """
    n = indptr.shape[0] - 1
    q = evals.shape[1]
    missing = 0
    for v in range(n):
        lo = indptr[v]
        hi = indptr[v + 1]
        found = -1
        for x in range(q):
            ok = True
            for j in range(lo, hi):
                if evals[indices[j], x] == evals[v, x]:
                    ok = False
                    break
            if ok:
                found = x
                break
        if found < 0:
            missing += 1
            found = 0
        out[v] = found
    return missing


def _stage_goodness(coeffs, q, threshold, fresh, units, indptr, hi_bound,
                    lo_bound, check_up, check_lo, good):
    """Fused stage-goodness count for one unweighted machine group.

    For each machine ``i`` and unit id ``x`` of the machine, sampled counts
    are accumulated per seed; ``good[s]`` gains 1 iff machine ``i``'s count
    lies in the integer window ``[lo_bound[i], hi_bound[i]]`` (each side
    gated by its flag) -- the same integer comparisons as the numpy count
    path, so the totals match bit-for-bit.

    The inner seed loop uses the same incremental identity as the numpy
    contiguous-run fast path: seed digit 0 holds the linear coefficient, so
    ``h_{s+1}(x) = h_s(x) + x (mod q)`` until the digit rolls over.
    ``fresh[s]`` marks seeds needing a fresh Horner base (run starts /
    rollovers), precomputed by the caller from the seed block; values stay
    in ``[0, q)`` so the reduction is one compare-and-subtract.  One pass
    over ``(items x seed_chunk)`` with an O(seed_chunk) cache-resident
    count scratch -- no ``(S, N)`` hash or indicator grid.
    """
    k = coeffs.shape[0]
    S = coeffs.shape[1]
    cnt = np.zeros(S, dtype=np.int64)
    for i in range(indptr.shape[0] - 1):
        for s in range(S):
            cnt[s] = 0
        for j in range(indptr[i], indptr[i + 1]):
            x = units[j]
            step = x if k >= 2 else np.uint64(1)
            h = np.uint64(0)
            for s in range(S):
                if fresh[s]:
                    h = coeffs[k - 1, s]
                    for a in range(k - 2, -1, -1):
                        h = (h * x + coeffs[a, s]) % q
                else:
                    h = h + step
                    if h >= q:
                        h -= q
                if h < threshold:
                    cnt[s] += 1
        for s in range(S):
            ok = True
            if check_up and cnt[s] > hi_bound[i]:
                ok = False
            if check_lo and cnt[s] < lo_bound[i]:
                ok = False
            if ok:
                good[s] += 1.0


def _lowdeg_phase(coeffs, q, colors_live, live, indices, indptr, deg_sel,
                  stride, maxkey, key, imask, out):
    """Fused lowdeg/Luby phase objective: select keys, local minima, reduce.

    Per seed: (1) fill ``key`` with the sentinel and write
    ``h(color) * stride + v`` at live nodes (stacked-Horner, pairwise
    family); (2) ``imask[v]`` = key[v] beats every neighbour's key;
    (3) objective = integer sum of ``deg_sel[v]`` over selected-or-covered
    nodes.  Three O(n + arcs) passes over two scratch arrays -- no (S, n)
    key grid -- matching the numpy closure in ``lowdeg_mis`` bit-for-bit
    (integer keys, order-free min/any, exact int -> float64 cast).
    """
    k = coeffs.shape[0]
    n = indptr.shape[0] - 1
    for s in range(coeffs.shape[1]):
        for v in range(n):
            key[v] = maxkey
            imask[v] = False
        for j in range(live.shape[0]):
            x = colors_live[j]
            h = coeffs[k - 1, s]
            for a in range(k - 2, -1, -1):
                h = (h * x + coeffs[a, s]) % q
            key[live[j]] = h * stride + np.uint64(live[j])
        for v in range(n):
            if key[v] == maxkey:
                continue  # dead node: never a candidate
            win = True
            for j in range(indptr[v], indptr[v + 1]):
                if key[indices[j]] <= key[v]:
                    win = False
                    break
            imask[v] = win
        acc = 0
        for v in range(n):
            d = deg_sel[v]
            if d == 0:
                continue
            if imask[v]:
                acc += d
                continue
            for j in range(indptr[v], indptr[v + 1]):
                if imask[indices[j]]:
                    acc += d
                    break
        out[s] = np.float64(acc)


_BODIES = {
    "segment_min_block": _segment_min_block,
    "segment_any_block": _segment_any_block,
    "segment_count": _segment_count,
    "linial_first_free": _linial_first_free,
    "stage_goodness": _stage_goodness,
    "lowdeg_phase": _lowdeg_phase,
}


def kernel(name: str):
    """The kernel registered under ``name``: njit-compiled when numba is
    available, the plain Python body otherwise.

    With numba, the first call goes through a timing shim that records the
    ``jit.compile`` span / ``kernels.jit_compile_s`` sample and then swaps
    the raw compiled dispatcher into the cache, so the warm path pays no
    wrapper overhead.
    """
    fn = _state["kernels"].get(name)
    if fn is not None:
        return fn
    body = _BODIES[name]
    njit = _probe()
    if njit is None:
        _state["kernels"][name] = body
        return body
    jitted = njit(cache=True, nogil=True)(body)

    def first_call(*args, _name=name, _jitted=jitted):
        t0 = _obs.clock()
        result = _jitted(*args)
        METRICS.observe("kernels.jit_compile_s", _obs.clock() - t0)
        if _obs._TRACING:
            _obs.record_span("jit.compile", t0, {"kernel": _name})
        _state["kernels"][_name] = _jitted
        return result

    _state["kernels"][name] = first_call
    return first_call


# --------------------------------------------------------------------- #
# Drop-in twins of the csr block-kernel builders
# --------------------------------------------------------------------- #


def segment_min_block_fn(cols: np.ndarray, indptr: np.ndarray, width: int):
    """Jit twin of :func:`repro.graphs.kernels.segment_min_block_fn`."""
    cols64 = np.ascontiguousarray(cols, dtype=np.int64)
    iptr = np.ascontiguousarray(indptr, dtype=np.int64)
    m = iptr.size - 1
    run = kernel("segment_min_block")

    def f(values: np.ndarray, fill) -> np.ndarray:
        out = np.empty((values.shape[0], m), dtype=values.dtype)
        run(np.ascontiguousarray(values), cols64, iptr, out,
            values.dtype.type(fill))
        return out

    return f


def segment_any_block_fn(cols: np.ndarray, indptr: np.ndarray, width: int):
    """Jit twin of :func:`repro.graphs.kernels.segment_any_block_fn`."""
    cols64 = np.ascontiguousarray(cols, dtype=np.int64)
    iptr = np.ascontiguousarray(indptr, dtype=np.int64)
    m = iptr.size - 1
    run = kernel("segment_any_block")

    def f(mask: np.ndarray) -> np.ndarray:
        out = np.empty((mask.shape[0], m), dtype=bool)
        run(np.ascontiguousarray(mask), cols64, iptr, out)
        return out

    return f


def segment_count_2d(mask: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Jit twin of :func:`repro.graphs.kernels.segment_count_2d`."""
    iptr = np.ascontiguousarray(indptr, dtype=np.int64)
    out = np.empty((mask.shape[0], iptr.size - 1), dtype=np.int32)
    kernel("segment_count")(np.ascontiguousarray(mask), iptr, out)
    return out


def linial_first_free(evals: np.ndarray, indices: np.ndarray,
                      indptr: np.ndarray) -> np.ndarray:
    """int64[n]: first clash-free Linial evaluation point per node."""
    out = np.zeros(indptr.size - 1, dtype=np.int64)
    missing = kernel("linial_first_free")(
        np.ascontiguousarray(evals, dtype=np.int64),
        np.ascontiguousarray(indices, dtype=np.int64),
        np.ascontiguousarray(indptr, dtype=np.int64),
        out,
    )
    if missing:  # unreachable by the q > d * Delta root bound
        raise AssertionError("Linial step found no free evaluation point")
    return out
