"""Deterministic distance-2 coloring (Linial's algorithm, paper Section 5.1).

Section 5 renames nodes with ``O(log Delta)``-bit names such that any two
nodes within two hops get distinct names.  The paper computes an
``O(Delta^4)``-coloring ``chi`` of ``G^2`` with Linial's algorithm [42]
(CONGEST implementation by Kuhn [38]) in ``O(log* n)`` rounds.

We implement the classical polynomial variant of Linial's color reduction:
with current palette ``[K]``, pick a prime ``q > d * Delta`` where
``d = ceil(log_q K) - 1`` is the degree needed to encode a color as a
polynomial over ``GF(q)``; node ``v`` encodes its color ``c_v`` as the
coefficient vector of ``p_v`` and picks an evaluation point ``x`` where
``p_v(x) != p_u(x)`` for every neighbour ``u`` (possible since the at most
``d * Delta`` collision roots cannot cover ``GF(q)``).  The new color is the
pair ``(x, p_v(x))`` in a palette of size ``q^2``.  Each iteration roughly
squares ``log`` of the palette downward; ``O(log* n)`` iterations reach a
palette of size ``O(Delta^2 log^2 Delta)``.

For the Section-5 pipeline we color ``G^2`` (max degree ``<= Delta^2``),
yielding the ``O(Delta^4)``-ish distance-2 palette the paper needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hashing.primes import next_prime
from .graph import Graph
from .power import square_graph

__all__ = [
    "ColoringResult",
    "distance2_coloring",
    "greedy_coloring",
    "linial_coloring",
    "validate_coloring",
    "validate_distance2_coloring",
]


@dataclass(frozen=True)
class ColoringResult:
    """A proper coloring plus the cost metadata the round ledger charges."""

    colors: np.ndarray  # int64[n]
    num_colors: int  # palette size (max color + 1 actually used bound)
    iterations: int  # Linial reduction iterations (O(log* n))


def validate_coloring(g: Graph, colors: np.ndarray) -> bool:
    """True iff no edge of ``g`` is monochromatic."""
    c = np.asarray(colors)
    if c.shape != (g.n,):
        raise ValueError("colors must have shape (n,)")
    if g.m == 0:
        return True
    return bool(np.all(c[g.edges_u] != c[g.edges_v]))


def validate_distance2_coloring(g: Graph, colors: np.ndarray) -> bool:
    """True iff nodes at distance 1 or 2 in ``g`` always differ in color."""
    return validate_coloring(square_graph(g), colors)


def greedy_coloring(g: Graph) -> ColoringResult:
    """Sequential greedy coloring (<= Delta + 1 colors); deterministic.

    Not an MPC algorithm -- used as an oracle/baseline in tests and as the
    final palette-compaction step after Linial reduction.
    """
    colors = np.full(g.n, -1, dtype=np.int64)
    for v in range(g.n):
        used = set(colors[g.neighbors(v)].tolist())
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    num = int(colors.max(initial=-1)) + 1
    return ColoringResult(colors=colors, num_colors=max(num, 1), iterations=0)


def _poly_digits(values: np.ndarray, q: int, degree: int) -> np.ndarray:
    """Base-q digit matrix: row v = coefficients of v's color polynomial."""
    digits = np.empty((values.size, degree + 1), dtype=np.int64)
    rem = values.astype(np.int64).copy()
    for j in range(degree + 1):
        digits[:, j] = rem % q
        rem //= q
    return digits


def _linial_step(g: Graph, colors: np.ndarray, palette: int) -> tuple[np.ndarray, int]:
    """One Linial reduction round: palette ``K -> q^2``."""
    delta = g.max_degree()
    # degree d with q^{d+1} >= K and q > d * Delta: search the smallest q.
    q = next_prime(max(delta + 2, 3))
    while True:
        d = 0
        while q ** (d + 1) < palette:
            d += 1
        if q > d * delta:
            break
        q = next_prime(q + 1)
    coeffs = _poly_digits(colors, q, d)  # (n, d+1)
    # Evaluate all polynomials at all x in GF(q): vandermonde (q, d+1).
    xs = np.arange(q, dtype=np.int64)
    vander = np.ones((q, d + 1), dtype=np.int64)
    for j in range(1, d + 1):
        vander[:, j] = (vander[:, j - 1] * xs) % q
    evals = (coeffs @ vander.T) % q  # (n, q): evals[v, x] = p_v(x)
    new_colors = np.empty(g.n, dtype=np.int64)
    for v in range(g.n):
        nbrs = g.neighbors(v)
        if nbrs.size == 0:
            new_colors[v] = 0 * q + evals[v, 0]
            continue
        # x is 'free' if p_v(x) differs from every neighbour's p_u(x).
        clash = np.any(evals[nbrs, :] == evals[v, :][None, :], axis=0)
        free = np.nonzero(~clash)[0]
        # Guaranteed non-empty because q > d * Delta bounds collision roots.
        x = int(free[0])
        new_colors[v] = x * q + int(evals[v, x])
    return new_colors, q * q


def linial_coloring(g: Graph, *, compact: bool = True) -> ColoringResult:
    """Linial's deterministic coloring of ``g``.

    Starts from the trivial n-coloring (ids) and applies reduction rounds
    until the palette stops shrinking (``O(log* n)`` rounds), reaching
    ``O(Delta^2 log^2 Delta)`` colors.  With ``compact=True`` the palette is
    finally renumbered to consecutive ints (a local bookkeeping step, free in
    the models).
    """
    colors = np.arange(g.n, dtype=np.int64)
    palette = max(g.n, 1)
    iterations = 0
    if g.m == 0:
        return ColoringResult(np.zeros(g.n, dtype=np.int64), 1, 0)
    while True:
        new_colors, new_palette = _linial_step(g, colors, palette)
        iterations += 1
        if new_palette >= palette:
            break
        colors, palette = new_colors, new_palette
        if iterations > 64:  # safety: log* n is tiny; never trips legitimately
            raise RuntimeError("Linial reduction failed to converge")
    if compact:
        uniq, inv = np.unique(colors, return_inverse=True)
        colors = inv.astype(np.int64)
        palette = int(uniq.size)
    if not validate_coloring(g, colors):
        raise AssertionError("Linial coloring produced a monochromatic edge")
    return ColoringResult(colors=colors, num_colors=palette, iterations=iterations)


def distance2_coloring(g: Graph) -> ColoringResult:
    """``O(Delta^4)``-ish coloring of ``G^2`` -- the Section-5 renaming step.

    Any two nodes of ``g`` within distance 2 receive distinct colors, so a
    hash of the color is a hash of the node as far as Luby's (2-hop-local)
    analysis is concerned.
    """
    g2 = square_graph(g)
    res = linial_coloring(g2)
    return ColoringResult(
        colors=res.colors, num_colors=res.num_colors, iterations=res.iterations
    )
