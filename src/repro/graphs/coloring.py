"""Deterministic distance-2 coloring (Linial's algorithm, paper Section 5.1).

Section 5 renames nodes with ``O(log Delta)``-bit names such that any two
nodes within two hops get distinct names.  The paper computes an
``O(Delta^4)``-coloring ``chi`` of ``G^2`` with Linial's algorithm [42]
(CONGEST implementation by Kuhn [38]) in ``O(log* n)`` rounds.

We implement the classical polynomial variant of Linial's color reduction:
with current palette ``[K]``, pick a prime ``q > d * Delta`` where
``d = ceil(log_q K) - 1`` is the degree needed to encode a color as a
polynomial over ``GF(q)``; node ``v`` encodes its color ``c_v`` as the
coefficient vector of ``p_v`` and picks an evaluation point ``x`` where
``p_v(x) != p_u(x)`` for every neighbour ``u`` (possible since the at most
``d * Delta`` collision roots cannot cover ``GF(q)``).  The new color is the
pair ``(x, p_v(x))`` in a palette of size ``q^2``.  Each iteration roughly
squares ``log`` of the palette downward; ``O(log* n)`` iterations reach a
palette of size ``O(Delta^2 log^2 Delta)``.

For the Section-5 pipeline we color ``G^2`` (max degree ``<= Delta^2``),
yielding the ``O(Delta^4)``-ish distance-2 palette the paper needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hashing.primes import next_prime
from .graph import Graph
from .kernels import resolve_backend
from .power import square_graph

__all__ = [
    "ColoringResult",
    "distance2_coloring",
    "greedy_coloring",
    "linial_coloring",
    "validate_coloring",
    "validate_distance2_coloring",
]


@dataclass(frozen=True)
class ColoringResult:
    """A proper coloring plus the cost metadata the round ledger charges."""

    colors: np.ndarray  # int64[n]
    num_colors: int  # palette size (max color + 1 actually used bound)
    iterations: int  # Linial reduction iterations (O(log* n))


def validate_coloring(g: Graph, colors: np.ndarray) -> bool:
    """True iff no edge of ``g`` is monochromatic."""
    c = np.asarray(colors)
    if c.shape != (g.n,):
        raise ValueError("colors must have shape (n,)")
    if g.m == 0:
        return True
    return bool(np.all(c[g.edges_u] != c[g.edges_v]))


def validate_distance2_coloring(g: Graph, colors: np.ndarray) -> bool:
    """True iff nodes at distance 1 or 2 in ``g`` always differ in color."""
    return validate_coloring(square_graph(g), colors)


def greedy_coloring(g: Graph) -> ColoringResult:
    """Sequential greedy coloring (<= Delta + 1 colors); deterministic.

    Not an MPC algorithm -- used as an oracle/baseline in tests and as the
    final palette-compaction step after Linial reduction.
    """
    colors = np.full(g.n, -1, dtype=np.int64)
    for v in range(g.n):
        used = set(colors[g.neighbors(v)].tolist())
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    num = int(colors.max(initial=-1)) + 1
    return ColoringResult(colors=colors, num_colors=max(num, 1), iterations=0)


def _poly_digits(values: np.ndarray, q: int, degree: int) -> np.ndarray:
    """Base-q digit matrix: row v = coefficients of v's color polynomial."""
    digits = np.empty((values.size, degree + 1), dtype=np.int64)
    rem = values.astype(np.int64).copy()
    for j in range(degree + 1):
        digits[:, j] = rem % q
        rem //= q
    return digits


#: Evaluation points processed per vectorised block; bounds the transient
#: (arcs x block) comparison matrix at ~32 MB for million-arc squares.
_LINIAL_BLOCK_ELEMS = 1 << 25


def _linial_step(
    g: Graph, colors: np.ndarray, palette: int, *, backend: str | None = None
) -> tuple[np.ndarray, int]:
    """One Linial reduction round: palette ``K -> q^2``."""
    delta = g.max_degree()
    # degree d with q^{d+1} >= K and q > d * Delta: search the smallest q.
    q = next_prime(max(delta + 2, 3))
    while True:
        d = 0
        while q ** (d + 1) < palette:
            d += 1
        if q > d * delta:
            break
        q = next_prime(q + 1)
    coeffs = _poly_digits(colors, q, d)  # (n, d+1)
    # Evaluate all polynomials at all x in GF(q): vandermonde (q, d+1).
    xs = np.arange(q, dtype=np.int64)
    vander = np.ones((q, d + 1), dtype=np.int64)
    for j in range(1, d + 1):
        vander[:, j] = (vander[:, j - 1] * xs) % q
    evals = (coeffs @ vander.T) % q  # (n, q): evals[v, x] = p_v(x)
    resolved = resolve_backend(backend)
    if resolved == "jit":
        # Compiled clash kernel: per node, scan evaluation points until one
        # is free of neighbour collisions (early exit per point).  The
        # first free point is unique, so the result is bit-identical to
        # both numpy specialisations below.
        from .kernels_jit import linial_first_free

        x_of = linial_first_free(evals, g.indices, g.indptr)
        return x_of * q + evals[np.arange(g.n), x_of], q * q
    if resolved == "legacy":
        new_colors = np.empty(g.n, dtype=np.int64)
        for v in range(g.n):
            nbrs = g.neighbors(v)
            if nbrs.size == 0:
                new_colors[v] = 0 * q + evals[v, 0]
                continue
            # x is 'free' if p_v(x) differs from every neighbour's p_u(x).
            clash = np.any(evals[nbrs, :] == evals[v, :][None, :], axis=0)
            free = np.nonzero(~clash)[0]
            # Guaranteed non-empty because q > d * Delta bounds collision
            # roots.
            x = int(free[0])
            new_colors[v] = x * q + int(evals[v, x])
        return new_colors, q * q
    if d == 1:
        x_of = _first_free_points_linear(g, coeffs, q)
    else:
        x_of = _first_free_points(g, evals, q)
    return x_of * q + evals[np.arange(g.n), x_of], q * q


def _mod_inverse(a: np.ndarray, q: int) -> np.ndarray:
    """Vectorised modular inverse of nonzero residues mod prime ``q``
    (Fermat: ``a^(q-2)``, square-and-multiply on int64)."""
    result = np.ones_like(a)
    base = a % q
    e = q - 2
    while e:
        if e & 1:
            result = (result * base) % q
        base = (base * base) % q
        e >>= 1
    return result


def _first_free_points_linear(g: Graph, coeffs: np.ndarray, q: int) -> np.ndarray:
    """Degree-1 specialisation of :func:`_first_free_points`.

    ``p_v - p_u`` is linear, so each arc clashes on at most the single root
    ``x = (a0_u - a0_v) / (a1_v - a1_u) mod q`` -- scatter those roots into
    an (n, q) table and take each row's first free column.  O(arcs log q)
    for the batched inverses instead of O(arcs * q) comparisons.
    """
    arc_src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.indptr))
    arc_dst = g.indices
    da1 = (coeffs[arc_src, 1] - coeffs[arc_dst, 1]) % q
    clash = np.zeros((g.n, q), dtype=bool)
    rooted = da1 != 0  # equal slopes never collide (intercepts differ)
    if rooted.any():
        da0 = (coeffs[arc_dst, 0] - coeffs[arc_src, 0]) % q
        roots = (da0[rooted] * _mod_inverse(da1[rooted], q)) % q
        clash[arc_src[rooted], roots] = True
    return np.argmax(~clash, axis=1).astype(np.int64)


def _first_free_points(g: Graph, evals: np.ndarray, q: int) -> np.ndarray:
    """int64[n]: smallest x with ``p_v(x) != p_u(x)`` for all neighbours u.

    Vectorised over blocks of evaluation points: each block compares the
    (arc, x) evaluation slices and OR-reduces clashes per node segment.
    Nodes resolve at their first clash-free x (ascending scan, so output is
    identical to the per-node loop); later blocks only reprocess the arcs
    of still-unresolved nodes -- with ``q > d * Delta`` most nodes resolve
    in the first block, so total work stays near one pass over the arcs.
    Isolated nodes resolve at ``x = 0``.
    """
    n = g.n
    x_of = np.zeros(n, dtype=np.int64)
    unresolved = g.degrees() > 0  # isolated nodes take x = 0 immediately
    arc_src = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.indptr))
    arc_dst = g.indices
    # Evaluations live in [0, q); comparing narrow integers quarters the
    # memory traffic of the (arcs x block) equality grid.
    if evals.dtype.itemsize > 4:
        evals = evals.astype(np.int32 if q > np.iinfo(np.int16).max else np.int16)
    block = max(1, min(q, _LINIAL_BLOCK_ELEMS // max(arc_src.size, 1)))
    for x0 in range(0, q, block):
        if not unresolved.any():
            break
        if x0 > 0:
            keep = unresolved[arc_src]
            arc_src, arc_dst = arc_src[keep], arc_dst[keep]
        if arc_src.size == 0:
            # Unresolved nodes with no remaining arcs cannot exist (isolated
            # nodes were settled upfront), but guard the reduceat anyway.
            break
        hi = min(x0 + block, q)
        # eq[k] = True iff arc k's endpoints agree on evaluation point x.
        eq = evals[arc_dst, x0:hi] == evals[arc_src, x0:hi]  # (arcs, blk)
        # arc_src is non-decreasing (CSR order survives filtering), so each
        # node's arcs form one contiguous segment: OR-reduce per segment.
        starts = np.nonzero(np.concatenate([[True], arc_src[1:] != arc_src[:-1]]))[0]
        seg_nodes = arc_src[starts]
        free = ~np.logical_or.reduceat(eq, starts, axis=0)  # (#segments, blk)
        row_free = free.any(axis=1)
        hit = seg_nodes[row_free]
        x_of[hit] = x0 + np.argmax(free[row_free], axis=1)
        unresolved[hit] = False
    if unresolved.any():  # unreachable by the q > d * Delta root bound
        raise AssertionError("Linial step found no free evaluation point")
    return x_of


def linial_coloring(g: Graph, *, compact: bool = True) -> ColoringResult:
    """Linial's deterministic coloring of ``g``.

    Starts from the trivial n-coloring (ids) and applies reduction rounds
    until the palette stops shrinking (``O(log* n)`` rounds), reaching
    ``O(Delta^2 log^2 Delta)`` colors.  With ``compact=True`` the palette is
    finally renumbered to consecutive ints (a local bookkeeping step, free in
    the models).
    """
    colors = np.arange(g.n, dtype=np.int64)
    palette = max(g.n, 1)
    iterations = 0
    if g.m == 0:
        return ColoringResult(np.zeros(g.n, dtype=np.int64), 1, 0)
    while True:
        new_colors, new_palette = _linial_step(g, colors, palette)
        iterations += 1
        if new_palette >= palette:
            break
        colors, palette = new_colors, new_palette
        if iterations > 64:  # safety: log* n is tiny; never trips legitimately
            raise RuntimeError("Linial reduction failed to converge")
    if compact:
        uniq, inv = np.unique(colors, return_inverse=True)
        colors = inv.astype(np.int64)
        palette = int(uniq.size)
    if not validate_coloring(g, colors):
        raise AssertionError("Linial coloring produced a monochromatic edge")
    return ColoringResult(colors=colors, num_colors=palette, iterations=iterations)


def distance2_coloring(g: Graph) -> ColoringResult:
    """``O(Delta^4)``-ish coloring of ``G^2`` -- the Section-5 renaming step.

    Any two nodes of ``g`` within distance 2 receive distinct colors, so a
    hash of the color is a hash of the node as far as Luby's (2-hop-local)
    analysis is concerned.
    """
    g2 = square_graph(g)
    res = linial_coloring(g2)
    return ColoringResult(
        colors=res.colors, num_colors=res.num_colors, iterations=res.iterations
    )
