"""Immutable undirected graph with CSR adjacency (numpy-backed).

Design notes
------------
The paper's algorithms iteratively *remove* nodes (matched nodes; MIS nodes
and their neighbours) from the working graph.  To keep node ids stable across
iterations -- so hash functions, machine assignment and output arrays all key
on the original ids -- removal produces a new :class:`Graph` on the *same*
vertex set ``[0, n)`` in which removed vertices are simply isolated.

Edges are stored twice:

* CSR arrays ``indptr`` / ``indices`` over directed arcs, for O(1) slicing of
  neighbourhoods, with a parallel ``arc_edge_ids`` array mapping each arc to
  its undirected edge id.
* Canonical endpoint arrays ``edges_u < edges_v`` indexed by edge id, for
  vectorised whole-edge-set computations (degrees of edges, subsampling,
  local-minima selection).

Everything downstream (sparsification, Luby steps, simulators) consumes these
arrays directly; per the HPC guides, hot paths are expressed as whole-array
numpy operations, never per-node Python loops.

CSR adjacency backend
---------------------
:meth:`Graph.adjacency_csr` exposes the arc arrays as a ``scipy.sparse``
CSR matrix (entry ``A[v, u] = 1`` per arc).  The matrix is built lazily on
first use and cached for the lifetime of the instance; because every
mutating operation (:meth:`remove_vertices`, :meth:`keep_edges`,
:meth:`relabel`) returns a *new* ``Graph`` whose cache starts empty, a
stale adjacency can never be observed.  To make that contract airtight the
constructor freezes all backing arrays (``writeable=False``), so in-place
mutation of a live graph raises instead of silently desynchronising the
cached CSR.  :meth:`invalidate_csr` drops the cache explicitly (e.g. to
release memory); the next :meth:`adjacency_csr` call rebuilds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

__all__ = ["CSR_ARRAY_FILES", "Graph"]

#: On-disk file names of a graph's canonical + CSR arrays, in the positional
#: order :meth:`Graph.from_csr_arrays` takes them.  One 1-D int64 ``.npy``
#: per array — plain npy (not npz) so the files are mmap-compatible.  The
#: out-of-core store (:mod:`repro.graphs.store`) writes this layout.
CSR_ARRAY_FILES = (
    "edges_u.npy",
    "edges_v.npy",
    "indptr.npy",
    "indices.npy",
    "arc_edge_ids.npy",
)


def _scipy_sparse():
    """Import ``scipy.sparse`` lazily; raise a clear error when absent."""
    try:
        import scipy.sparse as sparse
    except ImportError as exc:  # pragma: no cover - scipy ships in the env
        raise ImportError(
            "Graph.adjacency_csr() requires scipy; install scipy or use the "
            "raw indptr/indices arrays directly"
        ) from exc
    return sparse


def _owned_int64(arr: np.ndarray) -> np.ndarray:
    """A contiguous int64 array the Graph may freeze without side effects.

    The constructor marks its arrays read-only (see the class docs); when a
    conversion would alias a caller's *writeable* buffer, take a private
    copy so constructing a graph never mutates caller state.  Already
    read-only inputs (e.g. arrays exported from another Graph) are shared
    as-is.
    """
    out = np.ascontiguousarray(arr, dtype=np.int64)
    if out is arr and arr.flags.writeable:
        out = out.copy()
    return out


def _canonicalise_edges(
    n: int, edges_u: np.ndarray, edges_v: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort endpoints within edges, drop self-loops and duplicates."""
    u = np.minimum(edges_u, edges_v).astype(np.int64, copy=False)
    v = np.maximum(edges_u, edges_v).astype(np.int64, copy=False)
    keep = u != v
    u, v = u[keep], v[keep]
    if u.size and (u.min(initial=0) < 0 or v.max(initial=-1) >= n):
        raise ValueError("edge endpoint out of range [0, n)")
    # Deduplicate via lexicographic sort on (u, v).
    key = u * np.int64(n) + v
    order = np.argsort(key, kind="stable")
    key = key[order]
    uniq = np.ones(key.size, dtype=bool)
    uniq[1:] = key[1:] != key[:-1]
    return u[order][uniq], v[order][uniq]


@dataclass(frozen=True)
class Graph:
    """Simple undirected graph on vertex set ``[0, n)``.

    Construct via :meth:`from_edges`; all arrays are treated as immutable.
    """

    n: int
    edges_u: np.ndarray  # int64[m], edges_u[e] < edges_v[e]
    edges_v: np.ndarray  # int64[m]
    indptr: np.ndarray = field(repr=False)  # int64[n+1]
    indices: np.ndarray = field(repr=False)  # int64[2m] neighbour ids
    arc_edge_ids: np.ndarray = field(repr=False)  # int64[2m] edge id per arc

    def __post_init__(self) -> None:
        # Freeze the backing arrays: the cached CSR (and everything else
        # keyed on graph identity, e.g. fingerprints) relies on instances
        # never changing after construction.
        for name in ("edges_u", "edges_v", "indptr", "indices", "arc_edge_ids"):
            getattr(self, name).flags.writeable = False
        object.__setattr__(self, "_csr_cache", None)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_edges(
        n: int,
        edges: Iterable[tuple[int, int]] | np.ndarray | Sequence[Sequence[int]],
    ) -> "Graph":
        """Build a graph from an iterable / array of ``(u, v)`` pairs.

        Self-loops and duplicate edges (in either orientation) are dropped.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if arr.size == 0:
            arr = np.empty((0, 2), dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array of endpoint pairs")
        u, v = _canonicalise_edges(n, arr[:, 0], arr[:, 1])
        return Graph._from_canonical(n, u, v)

    @staticmethod
    def _from_canonical(n: int, u: np.ndarray, v: np.ndarray) -> "Graph":
        """Build CSR from already-canonical (sorted-unique, u<v) edges."""
        m = u.size
        # Directed arc list: each edge contributes (u->v) and (v->u).
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        eid = np.concatenate([np.arange(m, dtype=np.int64)] * 2)
        order = np.argsort(src, kind="stable")
        src, dst, eid = src[order], dst[order], eid[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return Graph(
            n=n,
            edges_u=u,
            edges_v=v,
            indptr=indptr,
            indices=dst,
            arc_edge_ids=eid,
        )

    @staticmethod
    def empty(n: int) -> "Graph":
        """Edgeless graph on ``n`` vertices."""
        return Graph.from_edges(n, np.empty((0, 2), dtype=np.int64))

    @staticmethod
    def from_csr_arrays(
        n: int,
        edges_u: np.ndarray,
        edges_v: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        arc_edge_ids: np.ndarray,
        *,
        validate: bool = True,
    ) -> "Graph":
        """Rebuild a graph from previously exported canonical + CSR arrays.

        This is the zero-copy fast path used when CSR buffers round-trip
        through npz (see :mod:`repro.graphs.io`): it skips the O(m log m)
        canonicalisation sort that :meth:`from_edges` performs.  With
        ``validate=True`` (default) the buffers are checked for structural
        consistency in O(n + m); pass ``validate=False`` only for buffers
        this library itself produced.
        """
        u = _owned_int64(edges_u)
        v = _owned_int64(edges_v)
        ptr = _owned_int64(indptr)
        idx = _owned_int64(indices)
        eid = _owned_int64(arc_edge_ids)
        if validate:
            m = u.size
            if n < 0 or v.shape != (m,):
                raise ValueError("edges_u/edges_v must be same-length 1-D")
            if ptr.shape != (n + 1,) or ptr[0] != 0:
                raise ValueError("indptr must have shape (n+1,) starting at 0")
            if np.any(np.diff(ptr) < 0) or ptr[-1] != 2 * m:
                raise ValueError("indptr must be monotone and end at 2m")
            if idx.shape != (2 * m,) or eid.shape != (2 * m,):
                raise ValueError("indices/arc_edge_ids must have shape (2m,)")
            if m:
                if u.min() < 0 or v.max() >= n or np.any(u >= v):
                    raise ValueError("edges must be canonical: 0 <= u < v < n")
                key = u * np.int64(n) + v
                if np.any(key[1:] <= key[:-1]):
                    raise ValueError("edges must be sorted and duplicate-free")
                if idx.min() < 0 or idx.max() >= n:
                    raise ValueError("indices out of range [0, n)")
                if eid.min() < 0 or eid.max() >= m:
                    raise ValueError("arc_edge_ids out of range [0, m)")
                # Cross-check CSR against the edge list: a structurally
                # plausible but inconsistent buffer (corrupted cache file,
                # mangled worker payload) must not produce a graph whose
                # fingerprint says one thing and whose adjacency says
                # another.  O(n + m), all whole-array.
                degs = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
                if not np.array_equal(np.diff(ptr), degs):
                    raise ValueError("indptr row sizes disagree with edge degrees")
                arc_src = np.repeat(np.arange(n, dtype=np.int64), degs)
                src_is_u = u[eid] == arc_src
                ok = np.where(
                    src_is_u, v[eid] == idx, (v[eid] == arc_src) & (u[eid] == idx)
                )
                if not ok.all():
                    raise ValueError("arc_edge_ids endpoints disagree with indices")
                # Canonical arc order within each row: u-side arcs (by edge
                # id) before v-side arcs (by edge id) -- the order
                # _from_canonical produces and the proposal kernels rely on.
                arc_key = (~src_is_u) * np.int64(2 * m) + eid
                row_start = np.zeros(2 * m, dtype=bool)
                row_start[ptr[:-1][np.diff(ptr) > 0]] = True
                if np.any(np.diff(arc_key)[~row_start[1:]] <= 0):
                    raise ValueError("arcs are not in canonical CSR order")
        return Graph(
            n=n, edges_u=u, edges_v=v, indptr=ptr, indices=idx, arc_edge_ids=eid
        )

    @staticmethod
    def from_mmap(
        n: int, directory: "str | Path", *, validate: bool = False
    ) -> "Graph":
        """Open a graph from :data:`CSR_ARRAY_FILES` under ``directory``,
        memory-mapped read-only.

        The ``np.load(mmap_mode="r")`` buffers flow through
        :meth:`from_csr_arrays` unchanged — read-only memmaps are never
        copied by construction, so the resident cost is page-cache only
        and proportional to the pages an algorithm actually touches.
        ``validate`` defaults off because full validation would fault in
        every page, defeating the mmap; enable it for untrusted files.
        """
        root = Path(directory)
        arrays = [
            np.load(root / name, mmap_mode="r") for name in CSR_ARRAY_FILES
        ]
        return Graph.from_csr_arrays(n, *arrays, validate=validate)

    # ------------------------------------------------------------------ #
    # CSR adjacency backend
    # ------------------------------------------------------------------ #

    def adjacency_csr(self):
        """``scipy.sparse.csr_matrix`` adjacency (lazily built, cached).

        Entry ``A[v, u] == 1`` for every arc ``v -> u``; ``A @ x`` therefore
        computes exact int64 neighbourhood sums, which is what the
        vectorised kernels in :mod:`repro.graphs.kernels` consume.  The
        matrix shares this instance's ``indptr``/``indices`` buffers.
        """
        cached = self._csr_cache
        if cached is None:
            sparse = _scipy_sparse()
            data = np.ones(self.indices.size, dtype=np.int64)
            cached = sparse.csr_matrix(
                (data, self.indices, self.indptr), shape=(self.n, self.n)
            )
            object.__setattr__(self, "_csr_cache", cached)
        return cached

    @property
    def csr_is_built(self) -> bool:
        """True once :meth:`adjacency_csr` has materialised (and cached)."""
        return self._csr_cache is not None

    def invalidate_csr(self) -> None:
        """Drop the cached CSR matrix (rebuilt on next use).

        Mutating operations never need this -- they return fresh instances
        with empty caches -- but it lets long-lived holders release the
        adjacency memory explicitly.
        """
        object.__setattr__(self, "_csr_cache", None)

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return int(self.edges_u.size)

    def degrees(self) -> np.ndarray:
        """int64[n] vertex degrees."""
        return np.diff(self.indptr)

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def max_degree(self) -> int:
        """Maximum degree Delta (0 for the edgeless graph)."""
        if self.n == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of v's neighbour ids (sorted by insertion order)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def incident_edge_ids(self, v: int) -> np.ndarray:
        """Edge ids of edges incident to ``v``."""
        return self.arc_edge_ids[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self.neighbors(u) == v))

    def edge_array(self) -> np.ndarray:
        """``(m, 2)`` int64 array of canonical edges."""
        return np.stack([self.edges_u, self.edges_v], axis=1)

    def isolated_mask(self) -> np.ndarray:
        """bool[n]: vertices with degree zero."""
        return self.degrees() == 0

    # ------------------------------------------------------------------ #
    # Edge-level helpers used by the sparsification machinery
    # ------------------------------------------------------------------ #

    def edge_degrees(self, edge_mask: np.ndarray | None = None) -> np.ndarray:
        """Degree of each edge: number of *other* edges sharing an endpoint.

        If ``edge_mask`` is given, degrees are computed within the subgraph
        induced by the masked edge set (the paper's ``d_{E'}(e)``); the
        returned array still has length ``m`` with zeros off-mask.
        """
        if edge_mask is None:
            deg = self.degrees()
            d = deg[self.edges_u] + deg[self.edges_v] - 2
            return d.astype(np.int64)
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.m,):
            raise ValueError("edge_mask must have shape (m,)")
        deg_sub = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg_sub, self.edges_u[mask], 1)
        np.add.at(deg_sub, self.edges_v[mask], 1)
        d = np.zeros(self.m, dtype=np.int64)
        d[mask] = deg_sub[self.edges_u[mask]] + deg_sub[self.edges_v[mask]] - 2
        return d

    def degrees_within(self, edge_mask: np.ndarray) -> np.ndarray:
        """int64[n]: vertex degrees counting only edges where mask is True.

        The paper's ``d_{E'}(v)``.
        """
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.m,):
            raise ValueError("edge_mask must have shape (m,)")
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.edges_u[mask], 1)
        np.add.at(deg, self.edges_v[mask], 1)
        return deg

    def degrees_toward(self, node_mask: np.ndarray) -> np.ndarray:
        """int64[n]: for each v, #neighbours u with ``node_mask[u]``.

        The paper's ``d_U(v)`` for a vertex subset ``U``.
        """
        mask = np.asarray(node_mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError("node_mask must have shape (n,)")
        counts = np.zeros(self.n, dtype=np.int64)
        inc_u = mask[self.edges_v].astype(np.int64)  # v-side in mask -> u gains
        inc_v = mask[self.edges_u].astype(np.int64)
        np.add.at(counts, self.edges_u, inc_u)
        np.add.at(counts, self.edges_v, inc_v)
        return counts

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def remove_vertices(self, node_mask: np.ndarray) -> "Graph":
        """Graph on the same vertex set with masked vertices isolated.

        All edges touching a masked vertex are removed.  Used after each
        Luby iteration to delete ``I ∪ N(I)`` (MIS) or matched nodes
        (matching) while keeping ids stable.
        """
        mask = np.asarray(node_mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError("node_mask must have shape (n,)")
        keep = ~(mask[self.edges_u] | mask[self.edges_v])
        return Graph._from_canonical(self.n, self.edges_u[keep], self.edges_v[keep])

    def keep_edges(self, edge_mask: np.ndarray) -> "Graph":
        """Graph on the same vertex set containing only the masked edges."""
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.m,):
            raise ValueError("edge_mask must have shape (m,)")
        return Graph._from_canonical(self.n, self.edges_u[mask], self.edges_v[mask])

    def relabel(self, new_ids: np.ndarray, new_n: int) -> "Graph":
        """Graph with vertex ``v`` renamed ``new_ids[v]`` (must be injective
        on non-isolated vertices)."""
        ids = np.asarray(new_ids, dtype=np.int64)
        if ids.shape != (self.n,):
            raise ValueError("new_ids must have shape (n,)")
        return Graph.from_edges(
            new_n, np.stack([ids[self.edges_u], ids[self.edges_v]], axis=1)
        )

    # ------------------------------------------------------------------ #
    # Interop / dunder
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Convert to ``networkx.Graph`` (test/verification use only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(zip(self.edges_u.tolist(), self.edges_v.tolist()))
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and bool(np.array_equal(self.edges_u, other.edges_u))
            and bool(np.array_equal(self.edges_v, other.edges_v))
        )

    def __hash__(self) -> int:  # frozen dataclass wants it; cheap digest
        return hash((self.n, self.m, self.edges_u.tobytes(), self.edges_v.tobytes()))

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m}, max_deg={self.max_degree()})"
