"""Graph powers and r-hop neighbourhood (ball) extraction.

Two primitives the paper relies on:

* ``square_adjacency`` -- the 2-hop conflict structure ``G^2`` used for the
  Section-5 distance-2 coloring (nodes within 2 hops must get distinct
  colors so color-hashing preserves local pairwise independence).
* ``r_hop_balls`` -- the sets ``B_r(v)`` that machines gather in Section 5's
  preprocessing ("collect the r-th hop neighbourhood of each node"); ball
  sizes are also what the space accounting (``Delta^r <= n^{delta}``) is
  checked against.

Both use scipy.sparse boolean matrix powers for the heavy lifting.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["adjacency_matrix", "ball_sizes", "r_hop_balls", "square_graph"]


def adjacency_matrix(g: Graph) -> sp.csr_matrix:
    """Boolean CSR adjacency matrix of ``g``."""
    m = g.m
    data = np.ones(2 * m, dtype=bool)
    rows = np.concatenate([g.edges_u, g.edges_v])
    cols = np.concatenate([g.edges_v, g.edges_u])
    return sp.csr_matrix((data, (rows, cols)), shape=(g.n, g.n), dtype=bool)


def square_graph(g: Graph) -> Graph:
    """``G^2``: edge {u, v} iff ``0 < dist(u, v) <= 2``.

    Degree of ``G^2`` is at most ``Delta^2``, so a proper coloring of ``G^2``
    with ``O(Delta^2)``-ish colors is a distance-2 coloring of ``G`` -- the
    renaming device of Section 5.1.
    """
    a = adjacency_matrix(g)
    reach2 = (a @ a).astype(bool) + a
    reach2 = sp.triu(reach2.tocoo(), k=1).tocoo()
    edges = np.stack([reach2.row.astype(np.int64), reach2.col.astype(np.int64)], axis=1)
    return Graph.from_edges(g.n, edges)


def r_hop_balls(g: Graph, r: int, *, max_ball: int | None = None) -> list[np.ndarray]:
    """For each vertex v, the sorted array of vertices within distance r
    (excluding v itself).

    ``max_ball`` (if given) raises if any ball exceeds that many vertices --
    the simulator uses this to assert the paper's space guarantee
    ``Delta^r = O(n^{delta})`` before "gathering onto one machine".
    """
    if r < 0:
        raise ValueError("r must be >= 0")
    if r == 0 or g.n == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(g.n)]
    reach = _reach_within(g, r)
    if max_ball is not None:
        sizes = np.diff(reach.indptr)
        if sizes.size and sizes.max(initial=0) > max_ball:
            v = int(np.argmax(sizes))
            raise ValueError(
                f"ball of v={v} has {int(sizes[v])} vertices > max_ball={max_ball}"
            )
    indices = reach.indices.astype(np.int64)
    indptr = reach.indptr
    return [indices[indptr[v] : indptr[v + 1]] for v in range(g.n)]


def _reach_within(g: Graph, r: int) -> sp.csr_matrix:
    """Boolean CSR of "distance in [1, r]" with sorted column indices.

    The diagonal is dropped with a vectorised COO filter (the old
    ``tolil().setdiag(False)`` round-trip was a per-element Python loop).
    """
    a = adjacency_matrix(g)
    reach = a.copy()
    frontier = a
    for _ in range(r - 1):
        frontier = (frontier @ a).astype(bool)
        reach = (reach + frontier).astype(bool)
    coo = reach.tocoo()
    off_diag = coo.row != coo.col
    reach = sp.csr_matrix(
        (coo.data[off_diag], (coo.row[off_diag], coo.col[off_diag])),
        shape=(g.n, g.n),
        dtype=bool,
    )
    reach.sort_indices()
    return reach


def ball_sizes(g: Graph, r: int) -> np.ndarray:
    """int64[n]: |B_r(v)| excluding v (cheap summary used by space checks)."""
    if r == 0 or g.n == 0:
        return np.zeros(g.n, dtype=np.int64)
    return np.diff(_reach_within(g, r).indptr).astype(np.int64)
