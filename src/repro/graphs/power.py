"""Graph powers and r-hop neighbourhood (ball) extraction.

Two primitives the paper relies on:

* ``square_adjacency`` -- the 2-hop conflict structure ``G^2`` used for the
  Section-5 distance-2 coloring (nodes within 2 hops must get distinct
  colors so color-hashing preserves local pairwise independence).
* ``r_hop_balls`` -- the sets ``B_r(v)`` that machines gather in Section 5's
  preprocessing ("collect the r-th hop neighbourhood of each node"); ball
  sizes are also what the space accounting (``Delta^r <= n^{delta}``) is
  checked against.

Both use scipy.sparse boolean matrix powers for the heavy lifting.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["adjacency_matrix", "ball_sizes", "r_hop_balls", "square_graph"]


def adjacency_matrix(g: Graph) -> sp.csr_matrix:
    """Boolean CSR adjacency matrix of ``g``."""
    m = g.m
    data = np.ones(2 * m, dtype=bool)
    rows = np.concatenate([g.edges_u, g.edges_v])
    cols = np.concatenate([g.edges_v, g.edges_u])
    return sp.csr_matrix((data, (rows, cols)), shape=(g.n, g.n), dtype=bool)


def square_graph(g: Graph) -> Graph:
    """``G^2``: edge {u, v} iff ``0 < dist(u, v) <= 2``.

    Degree of ``G^2`` is at most ``Delta^2``, so a proper coloring of ``G^2``
    with ``O(Delta^2)``-ish colors is a distance-2 coloring of ``G`` -- the
    renaming device of Section 5.1.
    """
    a = adjacency_matrix(g)
    reach2 = (a @ a).astype(bool) + a
    reach2 = sp.triu(reach2.tocoo(), k=1).tocoo()
    edges = np.stack([reach2.row.astype(np.int64), reach2.col.astype(np.int64)], axis=1)
    return Graph.from_edges(g.n, edges)


def r_hop_balls(g: Graph, r: int, *, max_ball: int | None = None) -> list[np.ndarray]:
    """For each vertex v, the sorted array of vertices within distance r
    (excluding v itself).

    ``max_ball`` (if given) raises if any ball exceeds that many vertices --
    the simulator uses this to assert the paper's space guarantee
    ``Delta^r = O(n^{delta})`` before "gathering onto one machine".
    """
    if r < 0:
        raise ValueError("r must be >= 0")
    if r == 0 or g.n == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(g.n)]
    a = adjacency_matrix(g)
    reach = a.copy()
    frontier = a
    for _ in range(r - 1):
        frontier = (frontier @ a).astype(bool)
        reach = (reach + frontier).astype(bool)
    reach = reach.tolil()
    reach.setdiag(False)
    reach = reach.tocsr()
    balls: list[np.ndarray] = []
    for v in range(g.n):
        ball = reach.indices[reach.indptr[v] : reach.indptr[v + 1]].astype(np.int64)
        if max_ball is not None and ball.size > max_ball:
            raise ValueError(
                f"ball of v={v} has {ball.size} vertices > max_ball={max_ball}"
            )
        balls.append(np.sort(ball))
    return balls


def ball_sizes(g: Graph, r: int) -> np.ndarray:
    """int64[n]: |B_r(v)| excluding v (cheap summary used by space checks)."""
    return np.asarray([b.size for b in r_hop_balls(g, r)], dtype=np.int64)
