"""Deterministic-by-seed graph generators for experiments and tests.

Every generator takes an explicit integer ``seed`` (where randomness is
involved) and returns a :class:`~repro.graphs.graph.Graph`.  Workload intent:

* ``gnp_random_graph`` -- the classic sweep workload for the O(log n) bounds.
* ``power_law_graph`` (preferential attachment) -- skew-degree inputs where
  the degree-class machinery (sets ``C_i``) is exercised non-trivially.
* ``random_regular_graph`` / ``bounded_degree_graph`` -- the Section-5
  low-degree regime (``Delta <= n^delta``).
* ``random_bipartite_graph`` -- matching-flavoured workloads.
* structured graphs (path, cycle, star, complete, grid, tree, caterpillar,
  hypercube) -- edge cases and adversarial shapes for tests.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

# Re-exported so job specs can name it like any other generator: the
# block-sampled G(n, p) is defined (and streamed) in .streaming, but its
# identity as a generator lives in this namespace alongside the rest.
from .streaming import gnp_block_graph  # noqa: F401  (re-export)

__all__ = [
    "bounded_degree_graph",
    "caterpillar_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "gnp_block_graph",
    "gnp_random_graph",
    "grid_graph",
    "hypercube_graph",
    "path_graph",
    "power_law_graph",
    "random_bipartite_graph",
    "random_regular_graph",
    "random_tree",
    "star_graph",
]


def empty_graph(n: int) -> Graph:
    return Graph.empty(n)


def path_graph(n: int) -> Graph:
    if n <= 1:
        return Graph.empty(max(n, 0))
    u = np.arange(n - 1, dtype=np.int64)
    return Graph.from_edges(n, np.stack([u, u + 1], axis=1))


def cycle_graph(n: int) -> Graph:
    if n < 3:
        return path_graph(n)
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return Graph.from_edges(n, np.stack([u, v], axis=1))


def star_graph(n: int) -> Graph:
    """Hub 0 connected to ``n - 1`` leaves."""
    if n <= 1:
        return Graph.empty(max(n, 0))
    leaves = np.arange(1, n, dtype=np.int64)
    centre = np.zeros(n - 1, dtype=np.int64)
    return Graph.from_edges(n, np.stack([centre, leaves], axis=1))


def complete_graph(n: int) -> Graph:
    iu = np.triu_indices(n, k=1)
    return Graph.from_edges(n, np.stack([iu[0], iu[1]], axis=1))


def complete_bipartite_graph(a: int, b: int) -> Graph:
    left = np.repeat(np.arange(a, dtype=np.int64), b)
    right = a + np.tile(np.arange(b, dtype=np.int64), a)
    return Graph.from_edges(a + b, np.stack([left, right], axis=1))


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols lattice; node ``r * cols + c``."""
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vert = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    return Graph.from_edges(rows * cols, np.concatenate([horiz, vert]))


def hypercube_graph(dim: int) -> Graph:
    """dim-dimensional boolean hypercube (n = 2^dim, Delta = dim)."""
    n = 1 << dim
    nodes = np.arange(n, dtype=np.int64)
    edges = []
    for d in range(dim):
        mask = (nodes >> d) & 1 == 0
        u = nodes[mask]
        edges.append(np.stack([u, u | (1 << d)], axis=1))
    return Graph.from_edges(n, np.concatenate(edges) if edges else [])


def caterpillar_graph(spine: int, legs: int) -> Graph:
    """Path of ``spine`` nodes, each with ``legs`` pendant leaves."""
    edges = []
    if spine > 1:
        u = np.arange(spine - 1, dtype=np.int64)
        edges.append(np.stack([u, u + 1], axis=1))
    n = spine
    for s in range(spine):
        leaf_ids = np.arange(n, n + legs, dtype=np.int64)
        edges.append(np.stack([np.full(legs, s, dtype=np.int64), leaf_ids], axis=1))
        n += legs
    return Graph.from_edges(n, np.concatenate(edges) if edges else [])


def gnp_random_graph(n: int, p: float, seed: int) -> Graph:
    """Erdos-Renyi G(n, p).

    Sampled by drawing a Bernoulli mask over the upper triangle; memory is
    O(n^2 / 8) via boolean masks, fine for the n <= ~20k used in experiments.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    if n <= 1 or p == 0.0:
        return Graph.empty(max(n, 0))
    iu = np.triu_indices(n, k=1)
    mask = rng.random(iu[0].size) < p
    return Graph.from_edges(n, np.stack([iu[0][mask], iu[1][mask]], axis=1))


def random_tree(n: int, seed: int) -> Graph:
    """Uniform-ish random tree: node i attaches to a uniform earlier node."""
    if n <= 1:
        return Graph.empty(max(n, 0))
    rng = np.random.default_rng(seed)
    children = np.arange(1, n, dtype=np.int64)
    parents = (rng.random(n - 1) * children).astype(np.int64)
    return Graph.from_edges(n, np.stack([parents, children], axis=1))


def random_bipartite_graph(a: int, b: int, p: float, seed: int) -> Graph:
    """Bipartite G(a, b, p): left ids [0, a), right ids [a, a+b)."""
    rng = np.random.default_rng(seed)
    left = np.repeat(np.arange(a, dtype=np.int64), b)
    right = a + np.tile(np.arange(b, dtype=np.int64), a)
    mask = rng.random(left.size) < p
    return Graph.from_edges(a + b, np.stack([left[mask], right[mask]], axis=1))


def random_regular_graph(n: int, d: int, seed: int) -> Graph:
    """Approximately d-regular graph via repeated stub matching.

    Self-loops/duplicates from the pairing are dropped, so degrees can fall
    slightly below ``d``; max degree never exceeds ``d``.  (Exact regularity
    is irrelevant to the algorithms; the bound ``Delta <= d`` is what the
    Section-5 regime needs.)
    """
    if d >= n:
        raise ValueError("need d < n")
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    return Graph.from_edges(n, pairs)


def bounded_degree_graph(n: int, max_deg: int, p_fill: float, seed: int) -> Graph:
    """Random graph with a hard degree cap (Section-5 workloads).

    Greedy edge insertion from a shuffled candidate stream, rejecting edges
    that would exceed ``max_deg`` at either endpoint.  ``p_fill`` in (0, 1]
    controls density relative to the cap.
    """
    if max_deg < 0:
        raise ValueError("max_deg must be >= 0")
    rng = np.random.default_rng(seed)
    target_edges = int(p_fill * n * max_deg / 2)
    deg = np.zeros(n, dtype=np.int64)
    chosen: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    # Draw in batches; loop is over batches, not edges.
    attempts = 0
    while len(chosen) < target_edges and attempts < 20:
        attempts += 1
        us = rng.integers(0, n, size=4 * max(target_edges, 1))
        vs = rng.integers(0, n, size=4 * max(target_edges, 1))
        for u, v in zip(us.tolist(), vs.tolist()):
            if u == v:
                continue
            a, b = (u, v) if u < v else (v, u)
            if (a, b) in seen:
                continue
            if deg[a] >= max_deg or deg[b] >= max_deg:
                continue
            seen.add((a, b))
            deg[a] += 1
            deg[b] += 1
            chosen.append((a, b))
            if len(chosen) >= target_edges:
                break
    return Graph.from_edges(n, np.asarray(chosen, dtype=np.int64).reshape(-1, 2))


def power_law_graph(n: int, attach: int, seed: int) -> Graph:
    """Barabasi-Albert style preferential attachment (``attach`` edges/node).

    Produces the heavy-tailed degree distributions that spread vertices
    across many degree classes ``C_i`` -- the regime where the good-node
    selection (Corollary 8 / 16) does real work.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    rng = np.random.default_rng(seed)
    m0 = attach + 1
    if n <= m0:
        return complete_graph(max(n, 0))
    # Start from a small clique, then attach each new node to `attach`
    # targets sampled proportionally to degree (via the repeated-endpoints
    # trick: sample uniformly from the arc-endpoint list).
    iu = np.triu_indices(m0, k=1)
    edges_u = list(iu[0].astype(np.int64))
    edges_v = list(iu[1].astype(np.int64))
    endpoint_pool: list[int] = edges_u + edges_v
    for new in range(m0, n):
        targets: set[int] = set()
        while len(targets) < attach:
            idx = int(rng.integers(0, len(endpoint_pool)))
            targets.add(endpoint_pool[idx])
        for t in targets:
            edges_u.append(t)
            edges_v.append(new)
            endpoint_pool.append(t)
            endpoint_pool.append(new)
    return Graph.from_edges(
        n, np.stack([np.asarray(edges_u), np.asarray(edges_v)], axis=1)
    )
