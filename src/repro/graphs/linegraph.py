"""Line-graph construction (matching = MIS on the line graph).

The paper uses the classical reduction in two places:

* Section 1.1.2 / Section 5: for ``Delta = O(n^{delta})`` one can find a
  maximal matching by simulating MIS on the line graph ``L(G)``, since
  ``Delta(L(G)) <= 2 Delta(G) - 2`` stays in the low-degree regime.
* Corollary 2 (CONGESTED CLIQUE).

``L(G)`` has one vertex per edge of ``G`` and an edge between every pair of
``G``-edges sharing an endpoint, so ``|E(L(G))| = sum_v C(d(v), 2)``; we guard
against accidental quadratic blowups with an explicit cap.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["line_graph", "line_graph_size", "matching_from_line_mis"]


def line_graph_size(g: Graph) -> int:
    """Number of edges ``L(G)`` would have (``sum_v d(v) (d(v)-1) / 2``)."""
    d = g.degrees().astype(np.int64)
    return int((d * (d - 1) // 2).sum())


def line_graph(g: Graph, *, max_edges: int | None = 50_000_000) -> Graph:
    """Construct ``L(G)``.  Vertex ``e`` of the result is edge id ``e`` of g.

    Raises ``ValueError`` if the result would exceed ``max_edges`` edges.
    """
    expected = line_graph_size(g)
    if max_edges is not None and expected > max_edges:
        raise ValueError(
            f"line graph would have {expected} edges (> cap {max_edges}); "
            "raise max_edges explicitly if intended"
        )
    pairs_u: list[np.ndarray] = []
    pairs_v: list[np.ndarray] = []
    for v in range(g.n):
        eids = g.incident_edge_ids(v)
        k = eids.size
        if k < 2:
            continue
        iu = np.triu_indices(k, k=1)
        pairs_u.append(eids[iu[0]])
        pairs_v.append(eids[iu[1]])
    if not pairs_u:
        return Graph.empty(g.m)
    edges = np.stack([np.concatenate(pairs_u), np.concatenate(pairs_v)], axis=1)
    return Graph.from_edges(g.m, edges)


def matching_from_line_mis(g: Graph, line_mis_mask: np.ndarray) -> np.ndarray:
    """Convert an MIS of ``L(G)`` (bool[m]) into matched-edge ids of ``G``.

    An independent set of line-graph vertices is exactly a set of edges no
    two of which share an endpoint, i.e. a matching; maximality transfers
    because an unmatched-extendable edge would be a line-graph vertex with no
    chosen neighbour.
    """
    mask = np.asarray(line_mis_mask, dtype=bool)
    if mask.shape != (g.m,):
        raise ValueError("line_mis_mask must have shape (m,)")
    return np.nonzero(mask)[0].astype(np.int64)
