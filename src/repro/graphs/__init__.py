"""Graph substrate: CSR graphs, generators, powers, line graphs, coloring."""

from .graph import Graph
from .generators import (
    bounded_degree_graph,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    power_law_graph,
    random_bipartite_graph,
    random_regular_graph,
    random_tree,
    star_graph,
)
from .linegraph import line_graph, line_graph_size, matching_from_line_mis
from .power import adjacency_matrix, ball_sizes, r_hop_balls, square_graph
from .coloring import (
    ColoringResult,
    distance2_coloring,
    greedy_coloring,
    linial_coloring,
    validate_coloring,
    validate_distance2_coloring,
)
from .io import (
    graph_fingerprint,
    graph_from_npz_bytes,
    graph_to_npz_bytes,
    read_edge_list,
    write_edge_list,
)

__all__ = [
    "ColoringResult",
    "Graph",
    "adjacency_matrix",
    "ball_sizes",
    "bounded_degree_graph",
    "caterpillar_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "distance2_coloring",
    "empty_graph",
    "gnp_random_graph",
    "graph_fingerprint",
    "graph_from_npz_bytes",
    "graph_to_npz_bytes",
    "greedy_coloring",
    "grid_graph",
    "hypercube_graph",
    "line_graph",
    "line_graph_size",
    "linial_coloring",
    "matching_from_line_mis",
    "path_graph",
    "power_law_graph",
    "r_hop_balls",
    "random_bipartite_graph",
    "random_regular_graph",
    "random_tree",
    "read_edge_list",
    "square_graph",
    "star_graph",
    "validate_coloring",
    "validate_distance2_coloring",
    "write_edge_list",
]
