"""Streaming edge-block variants of the random-graph generators.

Each ``stream_*`` function yields ``(m_i, 2)`` int64 edge blocks instead of
returning a built :class:`~repro.graphs.graph.Graph`, so a consumer (the
shard-building writer in :mod:`repro.graphs.store`) can turn an arbitrarily
large generator call into on-disk CSR shards without the full edge list ever
existing in memory.

**Bit-identity contract.**  For the same arguments, concatenating a
``stream_*`` generator's blocks and feeding them to :meth:`Graph.from_edges`
produces *exactly* the graph the in-memory generator builds — same
fingerprint, same canonical arrays.  The streaming variants achieve this by
consuming the ``numpy`` RNG in precisely the same order as their in-memory
counterparts (chunked ``Generator.random`` / ``Generator.integers`` draws
are bit-identical to one large draw, which the test suite pins).  The
contract is what lets the content-addressed store deduplicate a streamed
graph against one built in RAM.

Memory notes, per generator:

* ``stream_gnp_random_graph`` — truly streaming: the O(n^2) Bernoulli mask
  of the in-memory path is consumed in flat upper-triangle chunks, so peak
  memory is O(block).  Work is still O(n^2) draws (the in-memory
  definition); for million-node inputs use ``gnp_block_graph``, which is
  streaming-*native* and O(m).
* ``stream_random_regular_graph`` — the stub array (``n * d`` words) is
  materialised and shuffled exactly like the in-memory path (that *is* the
  definition), but the pair list is then emitted in blocks.
* ``stream_bounded_degree_graph`` / ``stream_power_law_graph`` — the
  sequential acceptance state (seen-edge set / endpoint pool) is inherent
  to the definition and stays O(m); only the accepted-edge list is
  streamed out.  These generators are for skew/degree-regime workloads,
  not for the million-node sweeps.

``gnp_block_graph`` is the large-``n`` workhorse: every ``2^22``-pair block
of the upper triangle draws its edge count binomially and its positions
uniformly from an independent child RNG (``SeedSequence(seed, block)``),
which is distributed *exactly* as G(n, p) but costs O(m + n^2 / block)
rather than O(n^2).  It is registered as a first-class generator in
:mod:`repro.graphs.generators`, so job specs can name it like any other.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from .graph import Graph

__all__ = [
    "STREAMING_GENERATORS",
    "edge_count_upper_bound",
    "gnp_block_graph",
    "stream_blocks",
    "stream_bounded_degree_graph",
    "stream_gnp_block_graph",
    "stream_gnp_random_graph",
    "stream_power_law_graph",
    "stream_random_regular_graph",
]

#: Flat upper-triangle pairs consumed per chunk by the streaming G(n, p)
#: paths; 2^22 pairs keeps the per-block working set at a few tens of MB.
DEFAULT_BLOCK_PAIRS = 1 << 22

EdgeBlocks = Iterator[np.ndarray]


def _empty_block() -> np.ndarray:
    return np.empty((0, 2), dtype=np.int64)


def _triu_pair_of_flat(n: int, flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map flat upper-triangle indices (row-major, ``np.triu_indices`` order)
    back to ``(i, j)`` pairs, vectorised.

    Row ``i`` owns ``n - 1 - i`` pairs; the first flat index of row ``i`` is
    ``T(i) = i * n - i * (i + 1) / 2``.  Inverting the quadratic gives the
    row, with an integer correction step to absorb float rounding.
    """
    f = flat.astype(np.float64)
    # Solve i^2 - (2n - 1) i + 2 f = 0 for the smallest root.
    b = 2.0 * n - 1.0
    i = np.floor((b - np.sqrt(b * b - 8.0 * f)) / 2.0).astype(np.int64)
    i = np.clip(i, 0, n - 2)
    start = i * n - (i * (i + 1)) // 2
    # Float rounding can land one row off in either direction.
    too_far = start > flat
    i[too_far] -= 1
    start[too_far] = i[too_far] * n - (i[too_far] * (i[too_far] + 1)) // 2
    next_start = start + (n - 1 - i)
    overshoot = flat >= next_start
    i[overshoot] += 1
    start[overshoot] = next_start[overshoot]
    j = i + 1 + (flat - start)
    return i, j


def stream_gnp_random_graph(
    n: int, p: float, seed: int, *, block_pairs: int = DEFAULT_BLOCK_PAIRS
) -> EdgeBlocks:
    """Streaming twin of :func:`~repro.graphs.generators.gnp_random_graph`.

    Consumes the same Bernoulli stream as the in-memory generator — one
    uniform draw per upper-triangle pair, row-major — in ``block_pairs``
    chunks, so the O(n^2) boolean mask never materialises.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    if n <= 1 or p == 0.0:
        yield _empty_block()
        return
    total = n * (n - 1) // 2
    for lo in range(0, total, block_pairs):
        hi = min(lo + block_pairs, total)
        mask = rng.random(hi - lo) < p
        flat = np.flatnonzero(mask).astype(np.int64) + lo
        u, v = _triu_pair_of_flat(n, flat)
        yield np.stack([u, v], axis=1)


def stream_gnp_block_graph(
    n: int, p: float, seed: int, *, block_pairs: int = DEFAULT_BLOCK_PAIRS
) -> EdgeBlocks:
    """Streaming-native G(n, p): O(m) work via per-block binomial sampling.

    Block ``b`` covers flat pairs ``[b * block_pairs, ...)``; its edge count
    is drawn ``Binomial(block_size, p)`` and positions uniformly without
    replacement, from the independent child RNG ``SeedSequence(seed, b)``.
    Conditioning a product of Bernoullis on its success count yields a
    uniform subset, so the result is distributed exactly as G(n, p) — but
    a near-empty block costs O(1), not O(block).  The block size is part
    of the graph's identity (changing it changes the sampled graph), so it
    is a fixed constant rather than a tuning knob.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if n <= 1 or p == 0.0:
        yield _empty_block()
        return
    total = n * (n - 1) // 2
    for b, lo in enumerate(range(0, total, block_pairs)):
        size = min(block_pairs, total - lo)
        rng = np.random.default_rng(np.random.SeedSequence((seed, b)))
        k = int(rng.binomial(size, p))
        if k == 0:
            continue
        flat = np.sort(rng.choice(size, size=k, replace=False)).astype(np.int64) + lo
        u, v = _triu_pair_of_flat(n, flat)
        yield np.stack([u, v], axis=1)


def gnp_block_graph(n: int, p: float, seed: int) -> Graph:
    """In-memory entry point for the block-sampled G(n, p) (see
    :func:`stream_gnp_block_graph`); the two are bit-identical by
    construction because this one consumes the same blocks."""
    return Graph.from_edges(
        max(n, 0),
        np.concatenate(list(stream_gnp_block_graph(n, p, seed)))
        if n > 1 and p > 0.0
        else np.empty((0, 2), dtype=np.int64),
    )


def stream_random_regular_graph(
    n: int, d: int, seed: int, *, block_edges: int = DEFAULT_BLOCK_PAIRS
) -> EdgeBlocks:
    """Streaming twin of :func:`~repro.graphs.generators.random_regular_graph`.

    The stub shuffle (``n * d`` words) *is* the definition and is kept
    verbatim; the resulting pair list is emitted in blocks so the
    downstream CSR build never concatenates it.
    """
    if d >= n:
        raise ValueError("need d < n")
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    for lo in range(0, pairs.shape[0], block_edges):
        yield pairs[lo : lo + block_edges]
    if pairs.shape[0] == 0:
        yield _empty_block()


def stream_bounded_degree_graph(
    n: int,
    max_deg: int,
    p_fill: float,
    seed: int,
    *,
    block_edges: int = 1 << 18,
) -> EdgeBlocks:
    """Streaming twin of :func:`~repro.graphs.generators.bounded_degree_graph`.

    Replays the exact draw-and-accept loop of the in-memory generator
    (same ``rng.integers`` batches, same rejection order) but flushes the
    accepted-edge list every ``block_edges`` edges.  The seen-edge set is
    O(m) by definition.
    """
    if max_deg < 0:
        raise ValueError("max_deg must be >= 0")
    rng = np.random.default_rng(seed)
    target_edges = int(p_fill * n * max_deg / 2)
    deg = np.zeros(n, dtype=np.int64)
    chosen: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    accepted = 0
    attempts = 0
    while accepted < target_edges and attempts < 20:
        attempts += 1
        us = rng.integers(0, n, size=4 * max(target_edges, 1))
        vs = rng.integers(0, n, size=4 * max(target_edges, 1))
        for u, v in zip(us.tolist(), vs.tolist()):
            if u == v:
                continue
            a, b = (u, v) if u < v else (v, u)
            if (a, b) in seen:
                continue
            if deg[a] >= max_deg or deg[b] >= max_deg:
                continue
            seen.add((a, b))
            deg[a] += 1
            deg[b] += 1
            chosen.append((a, b))
            accepted += 1
            if len(chosen) >= block_edges:
                yield np.asarray(chosen, dtype=np.int64).reshape(-1, 2)
                chosen = []
            if accepted >= target_edges:
                break
    yield np.asarray(chosen, dtype=np.int64).reshape(-1, 2)


def stream_power_law_graph(
    n: int, attach: int, seed: int, *, block_edges: int = 1 << 18
) -> EdgeBlocks:
    """Streaming twin of :func:`~repro.graphs.generators.power_law_graph`.

    Same preferential-attachment walk and RNG consumption; the edge list is
    flushed in blocks while the endpoint pool (inherent to the definition)
    stays resident.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    rng = np.random.default_rng(seed)
    m0 = attach + 1
    if n <= m0:
        iu = np.triu_indices(max(n, 0), k=1)
        yield np.stack(
            [iu[0].astype(np.int64), iu[1].astype(np.int64)], axis=1
        )
        return
    iu = np.triu_indices(m0, k=1)
    block_u = list(iu[0].astype(np.int64))
    block_v = list(iu[1].astype(np.int64))
    endpoint_pool: list[int] = block_u + block_v
    for new in range(m0, n):
        targets: set[int] = set()
        while len(targets) < attach:
            idx = int(rng.integers(0, len(endpoint_pool)))
            targets.add(endpoint_pool[idx])
        for t in targets:
            block_u.append(t)
            block_v.append(new)
            endpoint_pool.append(t)
            endpoint_pool.append(new)
        if len(block_u) >= block_edges:
            yield np.stack(
                [np.asarray(block_u), np.asarray(block_v)], axis=1
            )
            block_u, block_v = [], []
    yield (
        np.stack([np.asarray(block_u), np.asarray(block_v)], axis=1)
        if block_u
        else _empty_block()
    )


#: Generator name -> streaming block variant.  Keys match the in-memory
#: function names in :mod:`repro.graphs.generators`, which is how the
#: runtime's :class:`~repro.runtime.spec.GraphSource` finds the streaming
#: path for a spec'd generator call.
STREAMING_GENERATORS: dict[str, Callable[..., EdgeBlocks]] = {
    "gnp_random_graph": stream_gnp_random_graph,
    "gnp_block_graph": stream_gnp_block_graph,
    "random_regular_graph": stream_random_regular_graph,
    "bounded_degree_graph": stream_bounded_degree_graph,
    "power_law_graph": stream_power_law_graph,
}


def stream_blocks(name: str, **kwargs) -> EdgeBlocks:
    """Blocks for generator ``name``; raises ``KeyError`` if no streaming
    variant exists (callers fall back to the in-memory generator)."""
    return STREAMING_GENERATORS[name](**kwargs)


def edge_count_upper_bound(name: str, args: dict) -> int:
    """Cheap a-priori bound on ``m`` for shard-count planning (0 = unknown)."""
    n = int(args.get("n", 0))
    if name in ("gnp_random_graph", "gnp_block_graph"):
        # 3x the mean is far beyond any realistic deviation at these sizes.
        return int(3 * args.get("p", 0.0) * n * (n - 1) / 2) + 1024
    if name == "random_regular_graph":
        return n * int(args.get("d", 0)) // 2 + 1
    if name == "bounded_degree_graph":
        return int(args.get("p_fill", 1.0) * n * int(args.get("max_deg", 0)) / 2) + 1
    if name == "power_law_graph":
        return n * int(args.get("attach", 1)) + int(args.get("attach", 1)) ** 2
    return 0
