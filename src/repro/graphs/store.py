"""Out-of-core graph store: disk-backed, memory-mapped CSR shards.

The runtime's batch suites were capped around ``n ~ 3200`` because every
job regenerated its input in RAM and the scheduler pickled full npz buffers
into each worker payload.  This module is the other half of the paper's
low-space story applied to the harness itself: graphs are built *once*,
shard by row range, into plain ``.npy`` files that workers open with
``np.load(mmap_mode="r")`` — so an n = 10^6 sweep ships a fingerprint
instead of a buffer, and peak RSS is bounded by the OS page cache, not the
materialised edge list.

Layout under ``root`` (content-addressed, mirroring
:class:`~repro.runtime.cache.ResultCache` conventions)::

    index.jsonl               op log: {"op": "put"|"touch"|"evict", "key", ...}
    sources.jsonl             generator-call digest -> fingerprint map
    objects/<fingerprint>/
        meta.json             n, m, shard table, per-file sha256 checksums
        edges_u.npy           int64[m]   canonical edge endpoints (u < v)
        edges_v.npy           int64[m]
        indptr.npy            int64[n+1] CSR row pointers
        indices.npy           int64[2m]  CSR neighbour ids
        arc_edge_ids.npy      int64[2m]  undirected edge id per arc

The five arrays are exactly :meth:`Graph.from_csr_arrays`'s inputs, written
incrementally shard-by-shard (each shard owns a contiguous row range, hence
a contiguous slice of every array), so the full edge list never exists in
the building process either.  The fingerprint is byte-identical to
:func:`~repro.graphs.io.graph_fingerprint` of the equivalent in-memory
graph — computed by a chunked second pass over the written endpoint files —
which is what makes store keys interchangeable with the result cache's
content addressing.

Integrity: writes build in a temp directory and ``os.rename`` into place
(atomic on POSIX), ``meta.json`` records a sha256 per array file, and
:meth:`GraphStore.verify` / ``repro store gc`` recheck them.  The per-job
open path (:func:`open_stored_graph`) does O(1) structural checks only —
checksumming 100 MB of shards per job would defeat the mmap — and the
runtime worker falls back to regenerating from the spec on *any* open
failure, so a corrupt shard degrades to a warning, not a failed job.

Single-writer semantics, like the result cache: concurrent readers are
safe; one scheduler should own writes to a store directory at a time.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import struct
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..obs import trace as _obs
from ..obs.metrics import METRICS
from .graph import CSR_ARRAY_FILES, Graph
from .io import graph_fingerprint, graph_fingerprint_stream
from .streaming import edge_count_upper_bound, stream_blocks

__all__ = [
    "ARRAY_FILES",
    "GraphStore",
    "NpyAppendWriter",
    "StoreCorruptError",
    "StoreMissError",
    "StoredGraphInfo",
    "build_csr_shards",
    "open_stored_graph",
]

#: The array files of one stored graph, in on-disk (and hash) order —
#: exactly :data:`repro.graphs.graph.CSR_ARRAY_FILES`.
ARRAY_FILES = CSR_ARRAY_FILES

#: Target directed arcs per shard during a build (~32 MB of int64 per
#: in-flight array); the shard *count* is planning detail, the stored
#: arrays are identical for any value.
TARGET_ARCS_PER_SHARD = 1 << 22

#: Hard cap on shards (bounds open spill-file handles during a build).
MAX_SHARDS = 512

#: Bytes hashed per chunk in the fingerprint / checksum passes.
_HASH_CHUNK = 1 << 22

_META_VERSION = 1


class StoreMissError(KeyError):
    """The requested fingerprint is not in the store."""


class StoreCorruptError(RuntimeError):
    """A stored object exists but fails structural/integrity checks."""


@dataclass(frozen=True)
class StoredGraphInfo:
    """What the scheduler needs to dispatch a store-backed job: identity
    and size, without materialising anything.  ``hit`` records whether the
    entry already existed (shard hit) or was built by this call."""

    fingerprint: str
    n: int
    m: int
    nbytes: int
    hit: bool = False


# --------------------------------------------------------------------- #
# Incremental .npy writing
# --------------------------------------------------------------------- #

_NPY_MAGIC = b"\x93NUMPY" + bytes((1, 0))
#: Fixed total header size (multiple of 64, as the npy format requires of
#: header+magic); leaves ~90 chars for the dict — enough for any 1-D shape.
_NPY_HEADER_TOTAL = 128


class NpyAppendWriter:
    """Write a 1-D ``.npy`` file incrementally, patching the shape on close.

    The npy v1 header is emitted up front at a fixed padded length with a
    placeholder shape; :meth:`append` streams raw chunks; :meth:`close`
    seeks back and rewrites the header with the final element count.  The
    result is a completely standard file that ``np.load(mmap_mode="r")``
    maps without copying.
    """

    def __init__(self, path: str | Path, dtype: str = "<i8") -> None:
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self.count = 0
        self._fh = self.path.open("wb")
        self._fh.write(self._header(0))

    def _header(self, count: int) -> bytes:
        body = (
            "{'descr': '%s', 'fortran_order': False, 'shape': (%d,), }"
            % (self.dtype.str, count)
        ).encode("latin1")
        pad = _NPY_HEADER_TOTAL - len(_NPY_MAGIC) - 2 - len(body) - 1
        if pad < 0:  # pragma: no cover - shapes are bounded well below this
            raise ValueError("npy header does not fit its fixed padding")
        return _NPY_MAGIC + struct.pack("<H", pad + len(body) + 1) + body + b" " * pad + b"\n"

    def append(self, arr: np.ndarray) -> None:
        a = np.ascontiguousarray(arr, dtype=self.dtype)
        self._fh.write(a.tobytes())
        self.count += a.size

    def close(self) -> None:
        self._fh.seek(0)
        self._fh.write(self._header(self.count))
        self._fh.close()


# --------------------------------------------------------------------- #
# Spill buckets (raw little-endian int64 append files)
# --------------------------------------------------------------------- #


class _SpillBuckets:
    """Per-shard append-only spill files for one named int64 field."""

    def __init__(self, root: Path, name: str, buckets: int) -> None:
        self.root = root
        self.name = name
        self._fhs: dict[int, object] = {}
        self.buckets = buckets

    def _path(self, b: int) -> Path:
        return self.root / f"{self.name}.{b}.bin"

    def append(self, b: int, arr: np.ndarray) -> None:
        fh = self._fhs.get(b)
        if fh is None:
            fh = self._path(b).open("ab")
            self._fhs[b] = fh
        fh.write(np.ascontiguousarray(arr, dtype="<i8").tobytes())

    def read(self, b: int) -> np.ndarray:
        fh = self._fhs.pop(b, None)
        if fh is not None:
            fh.close()
        p = self._path(b)
        if not p.exists():
            return np.empty(0, dtype=np.int64)
        out = np.fromfile(p, dtype="<i8").astype(np.int64, copy=False)
        p.unlink()  # shard is consumed exactly once; reclaim as we go
        return out

    def close(self) -> None:
        for fh in self._fhs.values():
            fh.close()
        self._fhs.clear()


# --------------------------------------------------------------------- #
# Shard-partitioned CSR build
# --------------------------------------------------------------------- #


def _plan_shards(n: int, est_edges: int) -> np.ndarray:
    """Row starts (length ``shards + 1``) for a row-range partition sized
    so each shard holds ~:data:`TARGET_ARCS_PER_SHARD` arcs."""
    if n >= 1 << 31:
        raise NotImplementedError("store supports n < 2^31")
    est_arcs = 2 * max(est_edges, 1)
    shards = min(MAX_SHARDS, max(1, -(-est_arcs // TARGET_ARCS_PER_SHARD)))
    shards = min(shards, max(n, 1))
    rows = -(-max(n, 1) // shards)
    starts = np.arange(0, shards + 1, dtype=np.int64) * rows
    starts[-1] = n
    return np.minimum(starts, n)


def build_csr_shards(
    out_dir: str | Path, n: int, blocks, *, est_edges: int = 0
) -> dict:
    """Stream edge blocks into the five CSR ``.npy`` files under ``out_dir``.

    Two passes, both bounded by the shard size rather than ``m``:

    1. **Partition** — each incoming ``(k, 2)`` block is canonicalised
       per-block (``u < v``, self-loops dropped) and spilled to the shard
       owning ``u``'s row range.
    2. **Per shard, in row order** — its edges are sorted/deduplicated
       (duplicates always share a shard, so local dedup is global dedup),
       assigned consecutive global edge ids, and written; each edge's
       ``u``-side arc stays local while the ``v``-side arc is spilled
       forward to ``v``'s shard (``v > u``, so contributions only flow to
       the shard being processed or later ones — one forward pass
       suffices).  Row-sorting ``(src, side, edge id)`` reproduces the
       canonical arc order of :meth:`Graph._from_canonical` exactly.

    Returns the meta dict (without checksums/fingerprint — the caller
    finalises those).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    row_starts = _plan_shards(n, est_edges)
    shards = len(row_starts) - 1
    counts = np.zeros(max(n, 0) + 1, dtype=np.int64)

    with tempfile.TemporaryDirectory(dir=out, prefix="spill-") as spill_dir:
        spill = Path(spill_dir)
        e_u = _SpillBuckets(spill, "eu", shards)
        e_v = _SpillBuckets(spill, "ev", shards)
        for block in blocks:
            arr = np.asarray(block, dtype=np.int64)
            if arr.size == 0:
                continue
            u = np.minimum(arr[:, 0], arr[:, 1])
            v = np.maximum(arr[:, 0], arr[:, 1])
            keep = u != v
            u, v = u[keep], v[keep]
            if u.size and (u.min(initial=0) < 0 or v.max(initial=-1) >= n):
                raise ValueError("edge endpoint out of range [0, n)")
            bucket = np.searchsorted(row_starts, u, side="right") - 1
            order = np.argsort(bucket, kind="stable")
            u, v, bucket = u[order], v[order], bucket[order]
            edges_of = np.searchsorted(bucket, np.arange(shards + 1))
            for b in np.unique(bucket):
                lo, hi = edges_of[b], edges_of[b + 1]
                e_u.append(int(b), u[lo:hi])
                e_v.append(int(b), v[lo:hi])
        e_u.close()
        e_v.close()

        a_src = _SpillBuckets(spill, "asrc", shards)
        a_dst = _SpillBuckets(spill, "adst", shards)
        a_eid = _SpillBuckets(spill, "aeid", shards)

        writers = {name: NpyAppendWriter(out / name) for name in ARRAY_FILES}
        shard_table = []
        edge_offset = 0
        try:
            for s in range(shards):
                r0, r1 = int(row_starts[s]), int(row_starts[s + 1])
                u = e_u.read(s)
                v = e_v.read(s)
                key = u * np.int64(n) + v
                order = np.argsort(key, kind="stable")
                key = key[order]
                uniq = np.ones(key.size, dtype=bool)
                uniq[1:] = key[1:] != key[:-1]
                u, v = u[order][uniq], v[order][uniq]
                eids = edge_offset + np.arange(u.size, dtype=np.int64)
                writers["edges_u.npy"].append(u)
                writers["edges_v.npy"].append(v)
                # v-side arcs flow to v's shard (>= s); spill before reading
                # this shard's arc bucket so same-shard arcs are included.
                vb = np.searchsorted(row_starts, v, side="right") - 1
                vorder = np.argsort(vb, kind="stable")
                arcs_of = np.searchsorted(vb[vorder], np.arange(shards + 1))
                for b in np.unique(vb):
                    lo, hi = arcs_of[b], arcs_of[b + 1]
                    sel = vorder[lo:hi]
                    a_src.append(int(b), v[sel])
                    a_dst.append(int(b), u[sel])
                    a_eid.append(int(b), eids[sel])
                src = np.concatenate([u, a_src.read(s)])
                dst = np.concatenate([v, a_dst.read(s)])
                eid_all = np.concatenate([eids, a_eid.read(s)])
                side = np.zeros(src.size, dtype=np.int64)
                side[u.size :] = 1
                arc_order = np.lexsort((eid_all, side, src))
                writers["indices.npy"].append(dst[arc_order])
                writers["arc_edge_ids.npy"].append(eid_all[arc_order])
                if src.size:
                    counts[r0 + 1 : r1 + 1] += np.bincount(
                        src - r0, minlength=r1 - r0
                    )
                shard_table.append(
                    {
                        "rows": [r0, r1],
                        "edges": int(u.size),
                        "arcs": int(src.size),
                    }
                )
                edge_offset += int(u.size)
            np.cumsum(counts, out=counts)
            writers["indptr.npy"].append(counts)
        finally:
            for w in writers.values():
                w.close()
            for sp in (a_src, a_dst, a_eid):
                sp.close()
    return {
        "version": _META_VERSION,
        "n": int(n),
        "m": edge_offset,
        "shards": shard_table,
    }


def _file_sha256(path: Path) -> str:
    h = hashlib.sha256()
    with path.open("rb") as fh:
        while True:
            chunk = fh.read(_HASH_CHUNK)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def _mmap_chunks(path: Path):
    arr = np.load(path, mmap_mode="r")
    step = _HASH_CHUNK // 8
    for lo in range(0, arr.size, step):
        yield arr[lo : lo + step]
    if arr.size == 0:
        yield arr


def _fingerprint_of_files(n: int, obj_dir: Path) -> str:
    """Chunked :func:`graph_fingerprint` over the written endpoint files."""
    return graph_fingerprint_stream(
        n,
        _mmap_chunks(obj_dir / "edges_u.npy"),
        _mmap_chunks(obj_dir / "edges_v.npy"),
    )


def _dir_bytes(obj_dir: Path) -> int:
    return sum(p.stat().st_size for p in obj_dir.iterdir() if p.is_file())


# --------------------------------------------------------------------- #
# Read path (worker-safe: no index writes)
# --------------------------------------------------------------------- #


def read_meta(root: str | Path, fingerprint: str) -> dict:
    obj_dir = Path(root) / "objects" / fingerprint
    meta_path = obj_dir / "meta.json"
    if not meta_path.exists():
        raise StoreMissError(fingerprint)
    with meta_path.open() as fh:
        return json.load(fh)


def open_stored_graph(
    root: str | Path, fingerprint: str, *, validate: bool = False
) -> Graph:
    """Open a stored graph read-only through mmap'd buffers.

    O(1) structural checks always run (array lengths against ``meta.json``,
    ``indptr`` endpoints) — they touch only file sizes and two pages.  Full
    buffer validation (``validate=True``) and checksum verification
    (:meth:`GraphStore.verify`) are explicit, costed choices; the runtime
    worker instead treats any failure here as "regenerate and warn".
    """
    meta = read_meta(root, fingerprint)
    obj_dir = Path(root) / "objects" / fingerprint
    n, m = int(meta["n"]), int(meta["m"])
    try:
        g = Graph.from_mmap(n, obj_dir, validate=validate)
    except FileNotFoundError as exc:
        raise StoreCorruptError(f"{fingerprint}: missing shard file ({exc})") from exc
    except (ValueError, OSError) as exc:
        raise StoreCorruptError(
            f"{fingerprint}: unreadable shard file ({exc})"
        ) from exc
    sizes = {
        "edges_u.npy": g.edges_u.size,
        "edges_v.npy": g.edges_v.size,
        "indptr.npy": g.indptr.size,
        "indices.npy": g.indices.size,
        "arc_edge_ids.npy": g.arc_edge_ids.size,
    }
    expect = {
        "edges_u.npy": m,
        "edges_v.npy": m,
        "indptr.npy": n + 1,
        "indices.npy": 2 * m,
        "arc_edge_ids.npy": 2 * m,
    }
    for name in ARRAY_FILES:
        if sizes[name] != expect[name]:
            raise StoreCorruptError(
                f"{fingerprint}: {name} has {sizes[name]} elements, "
                f"expected {expect[name]}"
            )
    if int(g.indptr[0]) != 0 or int(g.indptr[-1]) != 2 * m:
        raise StoreCorruptError(f"{fingerprint}: indptr endpoints corrupt")
    return g


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #


class GraphStore:
    """Content-addressed, LRU disk-budgeted store of mmap-ready CSR graphs.

    ``max_bytes`` bounds the object payload on disk (None = unbounded);
    eviction is least-recently-*opened*, recorded through the same
    append-only JSONL op-log discipline as the result cache.  The
    ``sources.jsonl`` map remembers which generator call produced which
    fingerprint, so :meth:`ensure_generator` can answer "is G(n, p, seed)
    already on disk?" without generating anything.
    """

    def __init__(
        self, root: str | Path, *, max_bytes: int | None = None
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.index_path = self.root / "index.jsonl"
        self.sources_path = self.root / "sources.jsonl"
        self.max_bytes = max_bytes
        self._lru: OrderedDict[str, int] = OrderedDict()  # key -> bytes
        self._sources: dict[str, str] = {}
        self._ops_replayed = 0
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self._replay()

    # ------------------------------------------------------------------ #
    # Index / sources logs
    # ------------------------------------------------------------------ #

    def _replay(self) -> None:
        if self.index_path.exists():
            with self.index_path.open() as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        op = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail write
                    self._ops_replayed += 1
                    key = op.get("key", "")
                    kind = op.get("op")
                    if kind == "put":
                        self._lru[key] = int(op.get("bytes", 0))
                        self._lru.move_to_end(key)
                    elif kind == "touch" and key in self._lru:
                        self._lru.move_to_end(key)
                    elif kind == "evict":
                        self._lru.pop(key, None)
        for key in [k for k in self._lru if not self._meta_path(k).exists()]:
            del self._lru[key]
        if self.sources_path.exists():
            with self.sources_path.open() as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    self._sources[rec["source"]] = rec["fingerprint"]

    def _append(self, op: dict) -> None:
        with self.index_path.open("a") as fh:
            fh.write(json.dumps(op, sort_keys=True) + "\n")
        self._ops_replayed += 1
        if self._ops_replayed > 4 * max(len(self._lru), 1) + 64:
            tmp = self.index_path.with_suffix(".jsonl.tmp")
            with tmp.open("w") as fh:
                for key, nbytes in self._lru.items():
                    fh.write(
                        json.dumps({"op": "put", "key": key, "bytes": nbytes})
                        + "\n"
                    )
            tmp.replace(self.index_path)
            self._ops_replayed = len(self._lru)

    def _record_source(self, source_digest: str, fingerprint: str) -> None:
        if self._sources.get(source_digest) == fingerprint:
            return
        self._sources[source_digest] = fingerprint
        with self.sources_path.open("a") as fh:
            fh.write(
                json.dumps(
                    {"source": source_digest, "fingerprint": fingerprint}
                )
                + "\n"
            )

    # ------------------------------------------------------------------ #
    # Paths / dunder
    # ------------------------------------------------------------------ #

    def _object_dir(self, key: str) -> Path:
        return self.objects_dir / key

    def _meta_path(self, key: str) -> Path:
        return self._object_dir(key) / "meta.json"

    def __contains__(self, key: str) -> bool:
        return key in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    def keys(self) -> list[str]:
        """Fingerprints in LRU order (oldest first)."""
        return list(self._lru)

    def __repr__(self) -> str:
        return (
            f"GraphStore({os.fspath(self.root)!r}, entries={len(self._lru)}, "
            f"max_bytes={self.max_bytes})"
        )

    # ------------------------------------------------------------------ #
    # Core API
    # ------------------------------------------------------------------ #

    def meta(self, key: str) -> dict:
        if key not in self._lru:
            raise StoreMissError(key)
        return read_meta(self.root, key)

    def info(self, key: str) -> StoredGraphInfo:
        meta = self.meta(key)
        return StoredGraphInfo(
            fingerprint=key,
            n=int(meta["n"]),
            m=int(meta["m"]),
            nbytes=self._lru[key],
        )

    def open(self, key: str, *, validate: bool = False) -> Graph:
        """Open a stored graph (mmap) and refresh its LRU position."""
        if key not in self._lru:
            raise StoreMissError(key)
        t0 = _obs.clock()
        g = open_stored_graph(self.root, key, validate=validate)
        self._lru.move_to_end(key)
        self._append({"op": "touch", "key": key})
        if _obs._TRACING:
            _obs.record_span(
                "store.open", t0, {"fingerprint": key[:16], "n": g.n, "m": g.m}
            )
        return g

    def put_stream(
        self, n: int, blocks, *, source: str | None = None, est_edges: int = 0
    ) -> StoredGraphInfo:
        """Build shards from an edge-block iterator; returns the stored info.

        Content-addressed writes are deduplicating: if the streamed graph
        hashes to an existing key, the fresh build is discarded and the
        existing entry touched.
        """
        t0 = _obs.clock()
        tmp = Path(
            tempfile.mkdtemp(prefix=".tmp-put-", dir=self.objects_dir)
        )
        try:
            meta = build_csr_shards(tmp, n, blocks, est_edges=est_edges)
            fingerprint = _fingerprint_of_files(n, tmp)
            meta["fingerprint"] = fingerprint
            meta["created_unix"] = time.time()
            if source is not None:
                meta["source"] = source
            meta["checksums"] = {
                name: _file_sha256(tmp / name) for name in ARRAY_FILES
            }
            meta_tmp = tmp / "meta.json"
            meta_tmp.write_text(json.dumps(meta, indent=1, sort_keys=True))
            nbytes = _dir_bytes(tmp)
            final = self._object_dir(fingerprint)
            if fingerprint in self._lru and self._meta_path(fingerprint).exists():
                shutil.rmtree(tmp)
                self._lru.move_to_end(fingerprint)
                self._append({"op": "touch", "key": fingerprint})
            else:
                if final.exists():  # orphan from a dead writer; replace
                    shutil.rmtree(final)
                os.rename(tmp, final)
                self._lru[fingerprint] = nbytes
                self._lru.move_to_end(fingerprint)
                self._append(
                    {
                        "op": "put",
                        "key": fingerprint,
                        "bytes": nbytes,
                        "at": meta["created_unix"],
                    }
                )
                self._evict_over_budget()
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        if source is not None:
            self._record_source(_source_digest_raw(source), fingerprint)
        if _obs._TRACING:
            _obs.record_span(
                "store.build",
                t0,
                {"fingerprint": fingerprint[:16], "n": n, "m": meta["m"]},
            )
        return StoredGraphInfo(
            fingerprint=fingerprint,
            n=int(meta["n"]),
            m=int(meta["m"]),
            nbytes=self._lru[fingerprint],
        )

    def put_graph(self, g: Graph, *, source: str | None = None) -> StoredGraphInfo:
        """Store an already-materialised graph (small inputs, file sources)."""
        info = self.put_stream(
            g.n,
            iter([g.edge_array()]),
            source=source,
            est_edges=g.m,
        )
        assert info.fingerprint == graph_fingerprint(g)
        return info

    def ensure_generator(
        self, name: str, args: dict, *, label: str = ""
    ) -> StoredGraphInfo:
        """The graph of a generator call, building shards only on first use.

        A hit resolves through the sources map without generating anything;
        a miss streams the generator's edge blocks into a new object.
        Counts ``store.shard_hits`` / ``store.shard_misses``.
        """
        digest = _source_digest_raw(
            json.dumps(
                {"kind": "generator", "name": name, "args": args},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        key = self._sources.get(digest)
        if key is not None and key in self._lru and self._meta_path(key).exists():
            METRICS.inc("store.shard_hits")
            info = self.info(key)
            self._lru.move_to_end(key)
            self._append({"op": "touch", "key": key})
            return replace(info, hit=True)
        METRICS.inc("store.shard_misses")
        blocks = stream_blocks(name, **args)
        info = self.put_stream(
            int(args["n"]),
            blocks,
            source=label or name,
            est_edges=edge_count_upper_bound(name, args),
        )
        self._record_source(digest, info.fingerprint)
        return info

    # ------------------------------------------------------------------ #
    # Budget / integrity / maintenance
    # ------------------------------------------------------------------ #

    def disk_usage(self) -> int:
        """Total stored object bytes (from the index, no filesystem walk)."""
        return sum(self._lru.values())

    def _evict_over_budget(self) -> list[str]:
        evicted = []
        if self.max_bytes is None:
            return evicted
        while len(self._lru) > 1 and self.disk_usage() > self.max_bytes:
            victim, _ = self._lru.popitem(last=False)
            shutil.rmtree(self._object_dir(victim), ignore_errors=True)
            self._append({"op": "evict", "key": victim})
            METRICS.inc("store.evictions")
            evicted.append(victim)
        return evicted

    def verify(self, key: str) -> list[str]:
        """Checksum every array file of ``key``; returns problems (empty = ok)."""
        meta = self.meta(key)
        obj_dir = self._object_dir(key)
        problems = []
        for name in ARRAY_FILES:
            path = obj_dir / name
            if not path.exists():
                problems.append(f"{name}: missing")
                continue
            want = meta.get("checksums", {}).get(name)
            if want is None:
                problems.append(f"{name}: no recorded checksum")
                continue
            got = _file_sha256(path)
            if got != want:
                problems.append(f"{name}: sha256 {got[:12]}.. != {want[:12]}..")
        return problems

    def delete(self, key: str) -> None:
        if key not in self._lru:
            raise StoreMissError(key)
        del self._lru[key]
        shutil.rmtree(self._object_dir(key), ignore_errors=True)
        self._append({"op": "evict", "key": key})

    def gc(self, *, max_bytes: int | None = None) -> dict:
        """Drop orphaned build debris and enforce a disk budget.

        Removes stale ``.tmp-put-*`` directories (dead writers), object
        directories the index no longer references, and — when a budget is
        given (argument overrides the construction-time one) — evicts LRU
        entries until under it.  Returns a summary dict.
        """
        removed_tmp = removed_orphans = 0
        for child in self.objects_dir.iterdir():
            if child.name.startswith(".tmp-put-"):
                shutil.rmtree(child, ignore_errors=True)
                removed_tmp += 1
            elif child.is_dir() and child.name not in self._lru:
                shutil.rmtree(child, ignore_errors=True)
                removed_orphans += 1
        budget = self.max_bytes if max_bytes is None else max_bytes
        evicted: list[str] = []
        if budget is not None:
            saved = self.max_bytes
            self.max_bytes = budget
            evicted = self._evict_over_budget()
            self.max_bytes = saved
        # Drop source-map rows whose fingerprint no longer exists.
        live = {d: f for d, f in self._sources.items() if f in self._lru}
        if len(live) != len(self._sources):
            self._sources = live
            with self.sources_path.open("w") as fh:
                for d, f in live.items():
                    fh.write(
                        json.dumps({"source": d, "fingerprint": f}) + "\n"
                    )
        return {
            "removed_tmp": removed_tmp,
            "removed_orphans": removed_orphans,
            "evicted": evicted,
            "entries": len(self._lru),
            "disk_bytes": self.disk_usage(),
        }

    def stats(self) -> dict:
        """Disk usage, entry count, and a per-fingerprint size table."""
        entries = []
        for key, nbytes in self._lru.items():
            try:
                meta = read_meta(self.root, key)
            except (StoreMissError, json.JSONDecodeError):
                meta = {}
            entries.append(
                {
                    "fingerprint": key,
                    "n": meta.get("n"),
                    "m": meta.get("m"),
                    "bytes": nbytes,
                    "shards": len(meta.get("shards", [])),
                    "source": meta.get("source", ""),
                }
            )
        return {
            "root": os.fspath(self.root),
            "entries": len(self._lru),
            "disk_bytes": self.disk_usage(),
            "max_bytes": self.max_bytes,
            "objects": entries,
        }


def _source_digest_raw(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()
