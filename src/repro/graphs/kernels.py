"""Vectorized CSR solver kernels shared by the baselines and simulators.

The per-iteration primitives every Luby-style solver needs -- neighbour
minima, neighbourhood membership counts, "k-th live incident edge" lookups
-- are expressed here as whole-array operations over a :class:`Graph`'s CSR
arrays.  Two implementation tiers:

* ``np.minimum.reduceat`` / ``np.add.reduceat`` over the arc arrays, which
  replaces the ufunc ``.at`` scatter calls the legacy paths used (reduceat
  runs an order of magnitude faster than ``np.minimum.at`` on large inputs);
* exact int64 sparse mat-vec products through the graph's cached
  ``scipy.sparse`` adjacency (:meth:`Graph.adjacency_csr`) for neighbourhood
  counting, with a pure-numpy reduceat fallback when scipy is unavailable.

All kernels are *exact*: they use only integer arithmetic and order-free
reductions (min / integer sum), so solvers built on them draw the same RNG
stream and return bit-identical solutions to the legacy per-iteration
rebuild paths.  That equivalence is enforced by property tests and by the
``bench_kernels`` regression gate.

Backend selection: solvers take ``backend="csr" | "legacy" | None``; ``None``
resolves through the ``REPRO_KERNEL_BACKEND`` environment variable and
defaults to ``"csr"``.
"""

from __future__ import annotations

import os

import numpy as np

from .graph import Graph

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "HAS_SCIPY",
    "alive_arc_select",
    "alive_edge_degrees",
    "neighbor_count_toward",
    "neighbor_min",
    "resolve_backend",
    "segment_min",
    "segment_sum",
]

BACKENDS = ("csr", "legacy")
DEFAULT_BACKEND = "csr"

try:  # scipy is an optional accelerator, not a hard dependency
    import scipy.sparse as _sparse  # noqa: F401

    HAS_SCIPY = True
except ImportError:  # pragma: no cover - scipy ships in the standard env
    HAS_SCIPY = False


def resolve_backend(backend: str | None = None) -> str:
    """Resolve an explicit or environment-selected kernel backend."""
    resolved = backend or os.environ.get("REPRO_KERNEL_BACKEND", DEFAULT_BACKEND)
    if resolved not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {resolved!r}; expected one of {BACKENDS}"
        )
    return resolved


# ---------------------------------------------------------------------- #
# Segment reductions over CSR-style offset arrays
# ---------------------------------------------------------------------- #


def segment_min(values: np.ndarray, indptr: np.ndarray, fill) -> np.ndarray:
    """Per-segment minimum of ``values[indptr[i]:indptr[i+1]]``.

    Empty segments yield ``fill``.  ``reduceat`` runs over the *nonempty*
    segment starts only: consecutive nonempty starts are exactly segment
    boundaries (empty segments have zero width), which sidesteps reduceat's
    out-of-bounds / single-element semantics at empty positions.
    """
    n = indptr.size - 1
    out = np.full(n, fill, dtype=values.dtype)
    if values.size == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    out[nonempty] = np.minimum.reduceat(values, indptr[:-1][nonempty])
    return out


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sum of ``values[indptr[i]:indptr[i+1]]`` (0 when empty)."""
    n = indptr.size - 1
    out = np.zeros(n, dtype=values.dtype)
    if values.size == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    out[nonempty] = np.add.reduceat(values, indptr[:-1][nonempty])
    return out


# ---------------------------------------------------------------------- #
# Graph-level kernels
# ---------------------------------------------------------------------- #


def neighbor_min(
    g: Graph, values: np.ndarray, *, exclude: np.ndarray | None = None, fill=None
) -> np.ndarray:
    """Per-node minimum of ``values[u]`` over neighbours ``u``.

    ``exclude`` masks nodes whose values are ignored (treated as ``fill``)
    -- the Luby solvers pass the removed-node mask so dead neighbours never
    win a local minimum.  ``fill`` defaults to the dtype's max (or ``inf``
    for floats) and is returned for nodes with no (surviving) neighbour.
    """
    if fill is None:
        fill = (
            np.inf
            if np.issubdtype(values.dtype, np.floating)
            else np.iinfo(values.dtype).max
        )
    vals = values if exclude is None else np.where(exclude, fill, values)
    return segment_min(vals[g.indices], g.indptr, fill)


def neighbor_count_toward(g: Graph, node_mask: np.ndarray) -> np.ndarray:
    """int64[n]: for each ``v``, number of neighbours ``u`` with ``mask[u]``.

    Semantically :meth:`Graph.degrees_toward`, computed through the cached
    scipy CSR adjacency (exact int64 mat-vec) when scipy is available and
    through a reduceat fallback otherwise.
    """
    x = np.asarray(node_mask).astype(np.int64, copy=False)
    if HAS_SCIPY:
        return np.asarray(g.adjacency_csr() @ x, dtype=np.int64)
    return segment_sum(x[g.indices], g.indptr)


def alive_edge_degrees(g: Graph, alive_edges: np.ndarray) -> np.ndarray:
    """int64[n]: per-node count of incident edges with ``alive_edges`` set.

    The residual-graph degree ``d_{E'}(v)`` without rebuilding the residual
    graph; equals ``g.remove_vertices(...).degrees()`` when ``alive_edges``
    is the surviving-edge mask of that removal.
    """
    arc_alive = np.asarray(alive_edges, dtype=bool)[g.arc_edge_ids]
    return segment_sum(arc_alive.astype(np.int64), g.indptr)


def alive_arc_select(
    g: Graph, alive_edges: np.ndarray, nodes: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Edge id of each node's ``offsets[i]``-th surviving incident edge.

    ``nodes`` must have ``offsets[i] < alive_degree(nodes[i])``.  Arc order
    is CSR order restricted to surviving edges, which matches the arc order
    of the rebuilt residual graph -- so proposal-style solvers (Israeli-
    Itai) pick the same edge for the same RNG draw on either path.
    """
    arc_alive = np.asarray(alive_edges, dtype=bool)[g.arc_edge_ids]
    alive_pos = np.nonzero(arc_alive)[0]
    counts = segment_sum(arc_alive.astype(np.int64), g.indptr)
    new_indptr = np.zeros(g.n + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    return g.arc_edge_ids[alive_pos[new_indptr[nodes] + offsets]]
