"""Vectorized CSR solver kernels shared by the baselines and simulators.

The per-iteration primitives every Luby-style solver needs -- neighbour
minima, neighbourhood membership counts, "k-th live incident edge" lookups
-- are expressed here as whole-array operations over a :class:`Graph`'s CSR
arrays.  Two implementation tiers:

* ``np.minimum.reduceat`` / ``np.add.reduceat`` over the arc arrays, which
  replaces the ufunc ``.at`` scatter calls the legacy paths used (reduceat
  runs an order of magnitude faster than ``np.minimum.at`` on large inputs);
* exact int64 sparse mat-vec products through the graph's cached
  ``scipy.sparse`` adjacency (:meth:`Graph.adjacency_csr`) for neighbourhood
  counting, with a pure-numpy reduceat fallback when scipy is unavailable.

All kernels are *exact*: they use only integer arithmetic and order-free
reductions (min / integer sum), so solvers built on them draw the same RNG
stream and return bit-identical solutions to the legacy per-iteration
rebuild paths.  That equivalence is enforced by property tests and by the
``bench_kernels`` regression gate.

Backend selection: solvers take ``backend="csr" | "legacy" | "jit" | None``;
``None`` resolves through a process-local override (see
:func:`kernel_backend_scope`, which :func:`repro.api.solve` uses to apply a
consolidated :class:`~repro.api.ExecutionConfig`), then the
``REPRO_KERNEL_BACKEND`` environment variable, and defaults to ``"csr"``.
The ``jit`` backend (numba-compiled fused loops, see
:mod:`repro.graphs.kernels_jit`) resolves to ``"csr"`` with a one-time
warning when numba is unavailable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar

import numpy as np

from .graph import Graph

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "HAS_SCIPY",
    "alive_arc_select",
    "alive_edge_degrees",
    "group_order_indptr",
    "neighbor_count_toward",
    "neighbor_min",
    "kernel_backend_scope",
    "resolve_backend",
    "segment_any_block_fn",
    "segment_count_2d",
    "segment_min",
    "segment_min_2d",
    "segment_min_block_fn",
    "segment_sum",
    "segment_sum_2d",
]

BACKENDS = ("csr", "legacy", "jit")
DEFAULT_BACKEND = "csr"

try:  # scipy is an optional accelerator, not a hard dependency
    import scipy.sparse as _sparse  # noqa: F401

    HAS_SCIPY = True
except ImportError:  # pragma: no cover - scipy ships in the standard env
    HAS_SCIPY = False


_BACKEND_OVERRIDE: ContextVar[str | None] = ContextVar(
    "repro_kernel_backend_override", default=None
)


def resolve_backend(backend: str | None = None) -> str:
    """Resolve an explicit, scoped, or environment-selected kernel backend.

    ``"jit"`` degrades gracefully: when numba is missing or import-broken
    the resolved backend is ``"csr"`` (one-time ``JitFallbackWarning`` plus
    a ``kernels.jit_fallbacks`` counter per fallback), so downstream branch
    sites never see an unusable backend name.
    """
    resolved = (
        backend
        or _BACKEND_OVERRIDE.get()
        or os.environ.get("REPRO_KERNEL_BACKEND", DEFAULT_BACKEND)
    )
    if resolved not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {resolved!r}; expected one of {BACKENDS}"
        )
    if resolved == "jit":
        from . import kernels_jit

        if not kernels_jit.available():
            kernels_jit.note_fallback("kernel backend resolution")
            return DEFAULT_BACKEND
    return resolved


@contextmanager
def kernel_backend_scope(backend: str | None):
    """Pin the kernel backend for every ``resolve_backend(None)`` call inside.

    ``None`` is a no-op scope (environment fallback stays live).  This is how
    an :class:`~repro.api.ExecutionConfig` reaches kernel call sites that do
    not thread an explicit ``backend`` argument, without mutating
    ``os.environ``.  Scopes nest (the innermost non-``None`` value wins) and
    the override is a :class:`~contextvars.ContextVar`, so concurrent
    ``solve()`` calls in different threads or tasks cannot contaminate each
    other.
    """
    if backend is None:
        yield
        return
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {BACKENDS}"
        )
    token = _BACKEND_OVERRIDE.set(backend)
    try:
        yield
    finally:
        _BACKEND_OVERRIDE.reset(token)


# ---------------------------------------------------------------------- #
# Segment reductions over CSR-style offset arrays
# ---------------------------------------------------------------------- #


def segment_min(values: np.ndarray, indptr: np.ndarray, fill) -> np.ndarray:
    """Per-segment minimum of ``values[indptr[i]:indptr[i+1]]``.

    Empty segments yield ``fill``.  ``reduceat`` runs over the *nonempty*
    segment starts only: consecutive nonempty starts are exactly segment
    boundaries (empty segments have zero width), which sidesteps reduceat's
    out-of-bounds / single-element semantics at empty positions.
    """
    n = indptr.size - 1
    out = np.full(n, fill, dtype=values.dtype)
    if values.size == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    out[nonempty] = np.minimum.reduceat(values, indptr[:-1][nonempty])
    return out


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sum of ``values[indptr[i]:indptr[i+1]]`` (0 when empty)."""
    n = indptr.size - 1
    out = np.zeros(n, dtype=values.dtype)
    if values.size == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    out[nonempty] = np.add.reduceat(values, indptr[:-1][nonempty])
    return out


# ---------------------------------------------------------------------- #
# 2-D (seed-block) segment reductions
#
# The batched seed-search engine evaluates a whole block of hash seeds at
# once, producing ``(S, T)`` value grids whose columns are grouped by the
# same CSR-style ``indptr`` as the 1-D kernels above.  ``reduceat`` along
# ``axis=1`` reduces every seed row independently in one pass, so row ``i``
# of each 2-D kernel is bit-identical to the 1-D kernel applied to row ``i``.
# ---------------------------------------------------------------------- #


def segment_min_2d(values: np.ndarray, indptr: np.ndarray, fill) -> np.ndarray:
    """Per-segment minimum along axis 1: ``out[s, i] = min(values[s, indptr[i]:indptr[i+1]])``.

    Empty segments yield ``fill``.  Row ``s`` equals
    ``segment_min(values[s], indptr, fill)``.
    """
    n = indptr.size - 1
    out = np.full((values.shape[0], n), fill, dtype=values.dtype)
    if values.shape[1] == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    out[:, nonempty] = np.minimum.reduceat(values, indptr[:-1][nonempty], axis=1)
    return out


def segment_sum_2d(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sum along axis 1 (0 when empty); rows reduce independently."""
    n = indptr.size - 1
    out = np.zeros((values.shape[0], n), dtype=values.dtype)
    if values.shape[1] == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    out[:, nonempty] = np.add.reduceat(values, indptr[:-1][nonempty], axis=1)
    return out


def segment_count_2d(
    mask: np.ndarray, indptr: np.ndarray, *, backend: str | None = None
) -> np.ndarray:
    """int32[S, n]: per-segment count of True along axis 1 (0 when empty).

    Exact integer sums via a per-row prefix sum plus boundary differences
    -- one contiguous pass over the block instead of a ``reduceat`` per
    segment start, which matters when segments are small and numerous
    (machine groups, neighbourhood lists).  Under the ``jit`` backend the
    count runs as one compiled loop with no prefix-sum intermediate.
    """
    s, width = mask.shape
    n = indptr.size - 1
    if width == 0 or n == 0:
        return np.zeros((s, n), dtype=np.int32)
    if resolve_backend(backend) == "jit":
        from . import kernels_jit

        return kernels_jit.segment_count_2d(mask, indptr)
    # Contiguous cumsum (the fast path), then gather the prefix value at
    # every segment boundary: prefix(j) = cum[:, j-1] with prefix(0) = 0.
    cum = np.cumsum(mask, axis=1, dtype=np.int32)
    bounds = cum[:, np.maximum(indptr - 1, 0)]
    bounds[:, indptr == 0] = 0
    return bounds[:, 1:] - bounds[:, :-1]


def group_order_indptr(
    groups: np.ndarray, num_groups: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stable sort order plus CSR offsets for an arbitrary grouping array.

    Returns ``(order, indptr)`` with ``groups[order]`` sorted ascending and
    ``order[indptr[i]:indptr[i+1]]`` the positions of group ``i`` in input
    order -- the precomputation that turns per-group scatter reductions
    (``np.minimum.at`` / ``np.add.at`` / ``np.logical_or.at``) into
    block reductions along the seed axis.
    """
    if groups.size == 0 or bool(np.all(groups[1:] >= groups[:-1])):
        order = np.arange(groups.size, dtype=np.int64)  # already sorted
    else:
        order = np.argsort(groups, kind="stable")
    counts = np.bincount(groups, minlength=num_groups)
    indptr = np.zeros(num_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return order, indptr


#: Padded-table kernels are used while the padded grid is at most this many
#: times the number of arcs; beyond that (high degree skew) the per-row
#: scatter fallback wins on memory traffic.
PAD_FACTOR = 4


def _padded_table(
    cols: np.ndarray, indptr: np.ndarray, sentinel: int
) -> np.ndarray | None:
    """(M, w_max) table of ``cols`` positions per segment, or None if too wide.

    Row ``i`` lists ``cols[indptr[i]:indptr[i+1]]`` padded with ``sentinel``.
    Turning ragged segments into a fixed-width gather lets per-segment
    min/any reductions run as one contiguous ``.min(axis=2)`` /
    ``.any(axis=2)`` over the seed block -- the layout numpy actually
    vectorises, unlike ``reduceat`` with many short segments.
    """
    m = indptr.size - 1
    sizes = np.diff(indptr)
    w_max = int(sizes.max(initial=0))
    if w_max == 0 or w_max * m > PAD_FACTOR * max(cols.size, 1):
        return None
    table = np.full((m, w_max), sentinel, dtype=np.int64)
    rank = np.arange(cols.size, dtype=np.int64) - np.repeat(indptr[:-1], sizes)
    table[np.repeat(np.arange(m, dtype=np.int64), sizes), rank] = cols
    return table


def segment_min_block_fn(
    cols: np.ndarray, indptr: np.ndarray, width: int, *, backend: str | None = None
):
    """Build ``f(values, fill) -> (S, M)``: per-segment min of ``values[:, cols]``.

    ``values`` is an ``(S, width)`` seed block; segment ``i`` reduces
    ``cols[indptr[i]:indptr[i+1]]``.  The returned callable is built once
    per search (precomputing the padded table or scatter owners) and
    called once per seed chunk.  Empty segments yield ``fill``; row ``s``
    equals the scalar per-seed reduction bit-for-bit.  The ``jit`` backend
    swaps in the compiled fused loop (no padded gather table).
    """
    if resolve_backend(backend) == "jit":
        from . import kernels_jit

        return kernels_jit.segment_min_block_fn(cols, indptr, width)
    m = indptr.size - 1
    table = _padded_table(cols, indptr, width)
    if table is not None:

        def f_padded(values: np.ndarray, fill) -> np.ndarray:
            ext = np.concatenate(
                [values, np.full((values.shape[0], 1), fill, dtype=values.dtype)],
                axis=1,
            )
            return ext[:, table].min(axis=2)

        return f_padded

    owners = np.repeat(np.arange(m, dtype=np.int64), np.diff(indptr))

    def f_scatter(values: np.ndarray, fill) -> np.ndarray:
        out = np.full((values.shape[0], m), fill, dtype=values.dtype)
        gathered = values[:, cols]
        for s in range(values.shape[0]):
            np.minimum.at(out[s], owners, gathered[s])
        return out

    return f_scatter


def segment_any_block_fn(
    cols: np.ndarray, indptr: np.ndarray, width: int, *, backend: str | None = None
):
    """Build ``f(mask) -> (S, M)`` bool: per-segment OR of ``mask[:, cols]``.

    Same construction/trade-offs as :func:`segment_min_block_fn`; empty
    segments yield False.
    """
    if resolve_backend(backend) == "jit":
        from . import kernels_jit

        return kernels_jit.segment_any_block_fn(cols, indptr, width)
    m = indptr.size - 1
    table = _padded_table(cols, indptr, width)
    if table is not None:

        def f_padded(mask: np.ndarray) -> np.ndarray:
            ext = np.concatenate(
                [mask, np.zeros((mask.shape[0], 1), dtype=bool)], axis=1
            )
            return ext[:, table].any(axis=2)

        return f_padded

    def f_fallback(mask: np.ndarray) -> np.ndarray:
        return segment_count_2d(mask[:, cols], indptr) > 0

    return f_fallback


def neighbor_min(
    g: Graph, values: np.ndarray, *, exclude: np.ndarray | None = None, fill=None
) -> np.ndarray:
    """Per-node minimum of ``values[u]`` over neighbours ``u``.

    ``exclude`` masks nodes whose values are ignored (treated as ``fill``)
    -- the Luby solvers pass the removed-node mask so dead neighbours never
    win a local minimum.  ``fill`` defaults to the dtype's max (or ``inf``
    for floats) and is returned for nodes with no (surviving) neighbour.
    """
    if fill is None:
        fill = (
            np.inf
            if np.issubdtype(values.dtype, np.floating)
            else np.iinfo(values.dtype).max
        )
    vals = values if exclude is None else np.where(exclude, fill, values)
    return segment_min(vals[g.indices], g.indptr, fill)


def neighbor_count_toward(g: Graph, node_mask: np.ndarray) -> np.ndarray:
    """int64[n]: for each ``v``, number of neighbours ``u`` with ``mask[u]``.

    Semantically :meth:`Graph.degrees_toward`, computed through the cached
    scipy CSR adjacency (exact int64 mat-vec) when scipy is available and
    through a reduceat fallback otherwise.
    """
    x = np.asarray(node_mask).astype(np.int64, copy=False)
    if HAS_SCIPY:
        return np.asarray(g.adjacency_csr() @ x, dtype=np.int64)
    return segment_sum(x[g.indices], g.indptr)


def alive_edge_degrees(g: Graph, alive_edges: np.ndarray) -> np.ndarray:
    """int64[n]: per-node count of incident edges with ``alive_edges`` set.

    The residual-graph degree ``d_{E'}(v)`` without rebuilding the residual
    graph; equals ``g.remove_vertices(...).degrees()`` when ``alive_edges``
    is the surviving-edge mask of that removal.
    """
    arc_alive = np.asarray(alive_edges, dtype=bool)[g.arc_edge_ids]
    return segment_sum(arc_alive.astype(np.int64), g.indptr)


def alive_arc_select(
    g: Graph, alive_edges: np.ndarray, nodes: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Edge id of each node's ``offsets[i]``-th surviving incident edge.

    ``nodes`` must have ``offsets[i] < alive_degree(nodes[i])``.  Arc order
    is CSR order restricted to surviving edges, which matches the arc order
    of the rebuilt residual graph -- so proposal-style solvers (Israeli-
    Itai) pick the same edge for the same RNG draw on either path.
    """
    arc_alive = np.asarray(alive_edges, dtype=bool)[g.arc_edge_ids]
    alive_pos = np.nonzero(arc_alive)[0]
    counts = segment_sum(arc_alive.astype(np.int64), g.indptr)
    new_indptr = np.zeros(g.n + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    return g.arc_edge_ids[alive_pos[new_indptr[nodes] + offsets]]
