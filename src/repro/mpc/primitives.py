"""Lemma-4 communication primitives on the literal MPC engine.

Goodrich et al. [30] show sorting and prefix sums take O(1) rounds with
``S = n^eps`` space.  We implement executable versions with real message
passing on :class:`~repro.mpc.engine.MPCEngine`:

* :func:`distributed_sort` -- PSRS-style sample sort: local sort, regular
  samples to a coordinator, splitter broadcast, bucket exchange, local sort.
  4 rounds, independent of input size whenever ``M <= S`` (one level of the
  Goodrich tree; the general case recurses, adding O(1/eps) = O(1) levels).
* :func:`distributed_prefix_sums` -- local sums up a machine tree of fan-out
  ``S``, offsets back down: ``2 * ceil(log_S M) + O(1)`` rounds = O(1).
* :func:`broadcast_word` -- S-ary broadcast tree.

These functions both *do* the communication and return the exact number of
engine rounds consumed, so tests can assert the O(1) claims numerically.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..models.plane import MessageBlock, Plane, concat_planes
from .engine import MPCEngine

__all__ = [
    "broadcast_word",
    "distributed_prefix_sums",
    "distributed_sort",
    "distributed_sort_packed",
]


def broadcast_word(engine: MPCEngine, value: Any, root: int = 0) -> int:
    """Deliver ``value`` from ``root`` to every machine; returns rounds used.

    Uses an S-ary doubling tree over machine ids: in each round every machine
    that already holds the token forwards it to up to ``fanout`` new
    machines.  ``ceil(log_fanout M)`` rounds.
    """
    m = engine.num_machines
    fanout = max(2, engine.space // 2)  # each message is ("bcast", value): 2 words
    holders = {root}
    engine.storage[root].append(("bcast", value))
    rounds0 = engine.rounds_executed

    while len(holders) < m:
        frontier = sorted(holders)
        new_targets: dict[int, list[int]] = {}
        next_id = 0
        pending = [mid for mid in range(m) if mid not in holders]
        for h in frontier:
            new_targets[h] = pending[next_id : next_id + fanout]
            next_id += fanout
        targets_snapshot = dict(new_targets)

        def step(mid: int, items: list[Any]):
            sends = []
            if mid in targets_snapshot:
                token = next(x for x in items if isinstance(x, tuple) and x[0] == "bcast")
                for dest in targets_snapshot[mid]:
                    sends.append((dest, token))
            return items, sends

        engine.round(step)
        for h in frontier:
            holders.update(targets_snapshot.get(h, []))
    return engine.rounds_executed - rounds0


def distributed_prefix_sums(engine: MPCEngine) -> int:
    """Replace each machine's numeric items with their global prefix sums.

    Item order is machine-major (machine 0's items first).  Returns rounds.
    Implementation: one round sends local sums up a fan-out-``S/2`` tree;
    coordinator levels compute running offsets; offsets flow back down; a
    final local pass rewrites items.  Round count is
    ``2 * ceil(log_fanout M)``, constant for ``M <= poly(S)``.
    """
    m = engine.num_machines
    # Each ("sum", src, value) message costs 3 words and a leader also keeps
    # its own items, so a fan-out of S/6 keeps every aggregator within S.
    fanout = max(2, engine.space // 6)
    levels = max(1, math.ceil(math.log(max(m, 2), fanout)))
    rounds0 = engine.rounds_executed

    # ---- upsweep: leaves send ("sum", mid, value) to their level parent ----
    # Tree: parent of machine x at level l is x // fanout^(l+1) * fanout^l ...
    # With m small relative to fanout in practice this is a single round to
    # machine 0; we implement the general multi-level loop.
    local_sums = {}

    def collect_step(mid: int, items: list[Any]):
        s = sum(x for x in items if not isinstance(x, tuple))
        local_sums[mid] = s
        return items, ([(0, ("sum", mid, s))] if mid != 0 else [])

    # For m > fanout the single coordinator would exceed capacity; stage the
    # upsweep through intermediate aggregators.
    if m <= fanout:
        engine.round(collect_step)
        # machine 0 computes offsets and sends them back
        def offsets_step(mid: int, items: list[Any]):
            if mid != 0:
                return items, []
            sums = {0: sum(x for x in items if not isinstance(x, tuple))}
            keep = []
            for it in items:
                if isinstance(it, tuple) and it[0] == "sum":
                    sums[it[1]] = it[2]
                else:
                    keep.append(it)
            running = 0
            sends = []
            for j in range(m):
                if j == 0:
                    offset0 = running
                else:
                    sends.append((j, ("offset", running)))
                running += sums.get(j, 0)
            keep.append(("offset", offset0))
            return keep, sends

        engine.round(offsets_step)
    else:
        # Multi-level: group machines into blocks of `fanout`; block leaders
        # aggregate, then leaders aggregate at machine 0, then offsets fan
        # back out through leaders.  (Two extra rounds; still O(1).)
        def to_leader(mid: int, items: list[Any]):
            s = sum(x for x in items if not isinstance(x, tuple))
            leader = (mid // fanout) * fanout
            if mid == leader:
                return items + [("sum", mid, s)], []
            return items, [(leader, ("sum", mid, s))]

        engine.round(to_leader)

        def leaders_to_root(mid: int, items: list[Any]):
            if mid % fanout != 0:
                return items, []
            block_total = sum(it[2] for it in items if isinstance(it, tuple) and it[0] == "sum")
            if mid == 0:
                return items + [("blocksum", mid, block_total)], []
            return items, [(0, ("blocksum", mid, block_total))]

        engine.round(leaders_to_root)

        def root_offsets(mid: int, items: list[Any]):
            if mid != 0:
                return items, []
            blocks = {}
            keep = []
            for it in items:
                if isinstance(it, tuple) and it[0] == "blocksum":
                    blocks[it[1]] = it[2]
                else:
                    keep.append(it)
            running = 0
            sends = []
            for leader in range(0, m, fanout):
                if leader == 0:
                    keep.append(("blockoffset", running))
                else:
                    sends.append((leader, ("blockoffset", running)))
                running += blocks.get(leader, 0)
            return keep, sends

        engine.round(root_offsets)

        def leaders_fan_out(mid: int, items: list[Any]):
            if mid % fanout != 0:
                return items, []
            block_off = next(
                it[1] for it in items if isinstance(it, tuple) and it[0] == "blockoffset"
            )
            sums = {
                it[1]: it[2] for it in items if isinstance(it, tuple) and it[0] == "sum"
            }
            keep = [
                it
                for it in items
                if not (isinstance(it, tuple) and it[0] in ("sum", "blockoffset", "blocksum"))
            ]
            running = block_off
            sends = []
            for j in range(mid, min(mid + fanout, m)):
                if j == mid:
                    keep.append(("offset", running))
                else:
                    sends.append((j, ("offset", running)))
                running += sums.get(j, 0)
            return keep, sends

        engine.round(leaders_fan_out)

    # ---- local rewrite: items -> prefix sums using the received offset ----
    def rewrite_step(mid: int, items: list[Any]):
        offset = 0
        values = []
        for it in items:
            if isinstance(it, tuple) and it[0] == "offset":
                offset = it[1]
            elif isinstance(it, tuple) and it[0] == "sum":
                continue
            else:
                values.append(it)
        if not values:
            return [], []
        prefixed = (offset + np.cumsum(np.asarray(values))).tolist()
        return prefixed, []

    engine.round(rewrite_step)
    used = engine.rounds_executed - rounds0
    assert used <= 2 * levels + 3, "prefix sums exceeded O(1)-round budget"
    return used


def distributed_sort(engine: MPCEngine) -> int:
    """Sort all numeric items globally (machine-major order after the call).

    PSRS sample sort in 4 rounds:
      1. local sort; each machine sends M-1 regular samples to machine 0
      2. machine 0 picks M-1 splitters, broadcasts them
      3. machines partition locally, send each bucket to its machine
      4. machines sort received buckets locally (free: local computation)

    Requires ``M * (M - 1) <= S`` (coordinator holds all samples) -- one
    level of the Goodrich construction, which is the regime all tests and
    experiments run in.  Returns rounds used.
    """
    m = engine.num_machines
    if m == 1:
        engine.storage[0].sort()
        return 0
    if m * (m - 1) > engine.space:
        raise ValueError(
            "single-level sample sort requires M*(M-1) <= S; "
            "use more space or fewer machines"
        )
    rounds0 = engine.rounds_executed

    def sample_step(mid: int, items: list[Any]):
        items = sorted(items)
        k = len(items)
        sends = []
        if k:
            # m-1 regular samples
            samples = [items[(j * k) // m] for j in range(1, m)]
        else:
            samples = []
        for s in samples:
            sends.append((0, ("sample", s)))
        return items, sends

    engine.round(sample_step)

    def splitter_step(mid: int, items: list[Any]):
        if mid != 0:
            return items, []
        samples = sorted(it[1] for it in items if isinstance(it, tuple) and it[0] == "sample")
        keep = [it for it in items if not (isinstance(it, tuple) and it[0] == "sample")]
        k = len(samples)
        if k:
            splitters = tuple(samples[(j * k) // m] for j in range(1, m))
        else:
            splitters = tuple()
        sends = [(j, ("splitters",) + splitters) for j in range(1, m)]
        keep.append(("splitters",) + splitters)
        return keep, sends

    engine.round(splitter_step)

    def partition_step(mid: int, items: list[Any]):
        splitters = []
        values = []
        for it in items:
            if isinstance(it, tuple) and it[0] == "splitters":
                splitters = list(it[1:])
            else:
                values.append(it)
        sends = []
        keep = []
        # Vectorised bucket assignment (one searchsorted instead of a
        # per-item bisect); messages stay item-granular per the model.
        dests = np.searchsorted(np.asarray(splitters), np.asarray(values), side="right")
        for v, dest in zip(values, dests.tolist()):
            if dest == mid:
                keep.append(v)
            else:
                sends.append((int(dest), v))
        return keep, sends

    engine.round(partition_step)

    # Local sort of received buckets (local computation, no round charge in
    # the model; we do it in-place).
    for mid in range(m):
        engine.storage[mid] = sorted(
            x for x in engine.storage[mid] if not isinstance(x, tuple)
        )
    return engine.rounds_executed - rounds0


def _machine_values(items: list[Any]) -> np.ndarray:
    """Concatenation of a machine's packed scalar arrays (may be several
    after a routed round delivers one bucket per sender)."""
    parts = [it for it in items if isinstance(it, np.ndarray)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def distributed_sort_packed(engine: MPCEngine) -> int:
    """Columnar :func:`distributed_sort`: machines hold packed int64 arrays.

    Same PSRS schedule, same 3 rounds, same per-message word charges
    (samples are 2-word tagged rows, splitter vectors ``M`` words, bucket
    values 1 word each) -- but every step moves whole arrays through
    :meth:`~repro.mpc.engine.MPCEngine.round_packed`, so the interpreter
    never touches an individual item.  Post-condition matches the object
    path: globally sorted values in machine-major order, one packed array
    per machine.
    """
    m = engine.num_machines
    if m == 1:
        engine.storage[0] = [np.sort(_machine_values(engine.storage[0]))]
        return 0
    if m * (m - 1) > engine.space:
        raise ValueError(
            "single-level sample sort requires M*(M-1) <= S; "
            "use more space or fewer machines"
        )
    rounds0 = engine.rounds_executed

    def sample_step(mid: int, items: list[Any]):
        values = np.sort(_machine_values(items))
        blocks = []
        if values.size:
            picks = (np.arange(1, m) * values.size) // m
            samples = values[picks]
            blocks.append(
                MessageBlock(
                    "sample", np.zeros(samples.size, dtype=np.int64), samples
                )
            )
        return [values], blocks

    engine.round_packed(sample_step)

    def splitter_step(mid: int, items: list[Any]):
        keep = [it for it in items if isinstance(it, np.ndarray)]
        if mid != 0:
            return keep, []
        samples = np.sort(concat_planes(items, "sample", 1)[:, 0])
        if samples.size:
            picks = (np.arange(1, m) * samples.size) // m
            splitters = samples[picks]
        else:
            splitters = np.empty(0, dtype=np.int64)
        row = splitters[None, :]
        keep.append(Plane("splitters", row))
        dests = np.arange(1, m, dtype=np.int64)
        blocks = [
            MessageBlock("splitters", dests, np.repeat(row, m - 1, axis=0))
        ]
        return keep, blocks

    engine.round_packed(splitter_step)

    def partition_step(mid: int, items: list[Any]):
        splitters = concat_planes(items, "splitters", m - 1).ravel()
        values = _machine_values(items)
        dests = np.searchsorted(splitters, values, side="right")
        return [], [MessageBlock("", dests, values)]

    engine.round_packed(partition_step)

    # Local sort of received buckets (local computation, no round charge).
    for mid in range(m):
        engine.storage[mid] = [np.sort(_machine_values(engine.storage[mid]))]
    return engine.rounds_executed - rounds0
