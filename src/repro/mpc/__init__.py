"""MPC model substrate: machines, rounds, Lemma-4 primitives, accounting."""

from .context import MPCContext
from .distributed_graph import distributed_degrees, distributed_node_aggregate
from .distributed_luby import distributed_luby_mis, packed_arc_plane
from .engine import MPCEngine, word_size
from .exceptions import CapacityExceededError, MPCModelError, SpaceExceededError
from .ledger import RoundCosts, RoundLedger, SpaceTracker
from .partition import MachineGrouping, chunk_items_by_group
from .primitives import (
    broadcast_word,
    distributed_prefix_sums,
    distributed_sort,
    distributed_sort_packed,
)

__all__ = [
    "CapacityExceededError",
    "MPCContext",
    "MPCEngine",
    "MPCModelError",
    "MachineGrouping",
    "RoundCosts",
    "RoundLedger",
    "SpaceExceededError",
    "SpaceTracker",
    "broadcast_word",
    "chunk_items_by_group",
    "distributed_degrees",
    "distributed_luby_mis",
    "distributed_node_aggregate",
    "distributed_prefix_sums",
    "distributed_sort",
    "distributed_sort_packed",
    "packed_arc_plane",
    "word_size",
]
