"""A complete Luby MIS run executed on the literal MPC engine.

Everything the accounting layer charges for is *performed* here with real
machine-to-machine messages on :class:`~repro.mpc.engine.MPCEngine` -- no
central shortcuts.  One phase:

1. the phase seed is broadcast (machines evaluate the pairwise hash locally,
   so z-values need no communication -- the small-seed point of the paper);
2. every arc holder sends ``min z(dst)`` partials per source node to the
   node's *home machine* (1 round);
3. home machines decide ``v in I``  iff  ``z(v) < min over neighbours``;
4. arc holders query the ``in I`` bit of each endpoint they reference
   (request + response: 2 rounds), then report "has a chosen neighbour"
   partials back to home machines (1 round);
5. home machines finalise ``killed(v) = in I or dominated``; arc holders
   query the killed bits (2 rounds) and locally drop dead arcs.

~7 engine rounds per phase, independent of the graph size -- the O(1)
rounds-per-iteration claim, executed.  Phases repeat until no arcs remain;
isolated/undecided nodes join the MIS at the end.

Demonstration-scale constraints (documented, enforced by the engine's
capacity checks): the request/response pattern needs roughly
``n / M + M <= S`` and ``Delta``-independent message counts hold because
each machine sends at most one query per distinct endpoint it stores.

Backends: two independent switches select how the run executes.

* The *engine* backend (``engine_backend="columnar" | "legacy"``, resolved
  through ``REPRO_ENGINE_BACKEND``, default ``columnar``) picks the round
  core.  ``columnar`` runs every step through
  :meth:`~repro.mpc.engine.MPCEngine.round_packed`: per-machine state and
  every message batch are struct-of-arrays planes, routed with one stable
  argsort + ``searchsorted`` split per batch -- interpreter cost per round
  is per *batch*, not per message.  ``legacy`` keeps the object-granular
  step functions.
* Under the legacy engine, the *kernel* backend (``backend="csr" |
  "legacy"``, via ``REPRO_KERNEL_BACKEND``) picks whole-array vs per-arc
  local computation, exactly as before.  Passing ``backend`` explicitly
  pins the object engine path so the historical comparisons keep working.

All paths exchange the same message multiset each round and charge the
same words, so round counts, capacity checks, ledger totals and the
returned MIS match exactly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

import numpy as np

from ..graphs.graph import Graph
from ..graphs.io import packed_arc_plane
from ..graphs.kernels import resolve_backend
from ..hashing.kwise import KWiseHashFamily, make_family
from ..models.plane import MessageBlock, Plane, concat_planes, resolve_engine_backend
from .engine import MPCEngine
from .primitives import broadcast_word

__all__ = ["distributed_luby_mis", "packed_arc_plane"]


def _home(node: int, num_machines: int) -> int:
    return node % num_machines


def distributed_luby_mis(
    g: Graph,
    num_machines: int,
    space: int,
    *,
    max_phases: int = 200,
    backend: str | None = None,
    engine_backend: str | None = None,
    arc_plane: np.ndarray | None = None,
    stats_out: dict | None = None,
) -> tuple[np.ndarray, int, int]:
    """Run Luby MIS end-to-end on the engine.

    Phase seeds are drawn deterministically (seed of phase ``t`` is
    ``1 + t * 7919 mod |H|`` -- any fixed schedule works; local minima exist
    for every hash, so progress never stalls).  Returns
    ``(mis_node_ids, total_engine_rounds, phases)``.

    ``arc_plane`` may carry a precomputed
    :func:`~repro.graphs.io.packed_arc_plane` (e.g. the buffer the runtime
    scheduler shipped); it must describe ``g``.  When ``stats_out`` is a
    dict, the engine's :class:`~repro.models.ledger.ModelSnapshot` is
    stored under ``stats_out["snapshot"]`` after the run (the return tuple
    stays stable for existing callers).
    """
    if arc_plane is None:
        arc_plane = packed_arc_plane(g)
    if engine_backend is None and backend is not None:
        engine = "legacy"  # explicit kernel backend pins the object path
    else:
        engine = resolve_engine_backend(engine_backend)
    if engine == "columnar":
        return _distributed_luby_mis_columnar(
            g, num_machines, space, max_phases, arc_plane, stats_out
        )
    if resolve_backend(backend) == "legacy":
        return _distributed_luby_mis_legacy(
            g, num_machines, space, max_phases, arc_plane, stats_out
        )
    return _distributed_luby_mis_vectorized(
        g, num_machines, space, max_phases, arc_plane, stats_out
    )


# ---------------------------------------------------------------------- #
# Columnar backend: packed planes routed by the engine's argsort core
# ---------------------------------------------------------------------- #


def _last_wins(keys: np.ndarray, vals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-key value of the *last* occurrence (sorted unique keys).

    Mirrors the object path's dict-comprehension semantics, where a fresh
    ``(key, value)`` appended after a stale one overwrites it.
    """
    rk, rv = keys[::-1], vals[::-1]
    uk, idx = np.unique(rk, return_index=True)
    return uk, rv[idx]


def _lookup_bits(table: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """``dict.get(v, 0)`` over a ``(k, 2)`` last-wins table, vectorised."""
    if table.shape[0] == 0:
        return np.zeros(queries.shape[0], dtype=np.int64)
    uk, uv = _last_wins(table[:, 0], table[:, 1])
    pos = np.minimum(np.searchsorted(uk, queries), uk.size - 1)
    return np.where(uk[pos] == queries, uv[pos], 0)


def _pairs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.stack(
        [a.astype(np.int64, copy=False), b.astype(np.int64, copy=False)], axis=1
    )


def _distributed_luby_mis_columnar(
    g: Graph,
    num_machines: int,
    space: int,
    max_phases: int,
    arc_plane: np.ndarray,
    stats_out: dict | None = None,
) -> tuple[np.ndarray, int, int]:
    engine = MPCEngine(num_machines=num_machines, space=space)
    n = max(g.n, 1)
    # Contiguous per-machine arc slices (identical word count to loading
    # the scalars item-by-item; local representation, no round charge).
    engine.load_balanced_packed(arc_plane)

    family: KWiseHashFamily = make_family(universe=n, k=2)
    m_machines = engine.num_machines
    in_mis = np.zeros(g.n, dtype=bool)
    decided = np.zeros(g.n, dtype=bool)
    rounds0 = engine.rounds_executed
    phases = 0

    def toks(items: list[Any]) -> list[Any]:
        return [it for it in items if isinstance(it, tuple)]

    def planes_except(items: list[Any], *drop: str) -> list[Plane]:
        return [
            it for it in items if isinstance(it, Plane) and it.tag not in drop
        ]

    def has_arcs() -> bool:
        return any(
            bool(it.size)
            for st in engine.storage
            for it in st
            if isinstance(it, np.ndarray)
        )

    while has_arcs():
        phases += 1
        if phases > max_phases:
            raise RuntimeError("distributed Luby failed to converge")
        seed = (1 + phases * 7919) % family.size
        broadcast_word(engine, seed)

        # ---- step 2: min-z partials to home machines ------------------ #
        def minz_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            keep = [arcs] + toks(items) + planes_except(items)
            blocks = []
            if arcs.size:
                src, dst = np.divmod(arcs, n)
                srcs, zmins = _group_minima(src, _keyed_z(family, seed, dst, n))
                blocks.append(
                    MessageBlock("minz", srcs % m_machines, _pairs(srcs, zmins))
                )
            return keep, blocks

        engine.round_packed(minz_step)

        # ---- step 3: home machines decide membership in I ------------- #
        def decide_step(mid: int, items: list[Any]):
            keep = (
                [_machine_arcs(items)]
                + toks(items)
                + planes_except(items, "minz")
            )
            mz = concat_planes(items, "minz", 2)
            if mz.shape[0]:
                vs, zmin = _group_minima(mz[:, 0], mz[:, 1])
                bits = _keyed_z(family, seed, vs, n) < zmin.astype(np.uint64)
                keep.append(Plane("inI", _pairs(vs, bits)))
            return keep, []

        engine.round_packed(decide_step)

        # ---- step 4a: arc holders query in-I bits ---------------------- #
        def query_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            keep = [arcs] + toks(items) + planes_except(items)
            blocks = []
            if arcs.size:
                src, dst = np.divmod(arcs, n)
                wanted = np.unique(np.concatenate([src, dst]))
                blocks.append(
                    MessageBlock(
                        "q",
                        wanted % m_machines,
                        _pairs(wanted, np.full(wanted.size, mid, dtype=np.int64)),
                    )
                )
            return keep, blocks

        engine.round_packed(query_step)

        def answer_step(mid: int, items: list[Any]):
            keep = [_machine_arcs(items)] + toks(items) + planes_except(items, "q")
            q = concat_planes(items, "q", 2)
            blocks = []
            if q.shape[0]:
                bits = _lookup_bits(concat_planes(items, "inI", 2), q[:, 0])
                blocks.append(MessageBlock("a", q[:, 1], _pairs(q[:, 0], bits)))
            return keep, blocks

        engine.round_packed(answer_step)

        # ---- step 4b: dominated partials back to homes ----------------- #
        def dominated_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            answers = concat_planes(items, "a", 2)
            keep = [arcs] + toks(items) + planes_except(items, "a", "minz")
            keep.append(Plane("a", answers))
            blocks = []
            if arcs.size and answers.shape[0]:
                src, dst = np.divmod(arcs, n)
                chosen = answers[answers[:, 1] != 0, 0]
                dom_srcs = np.unique(src[np.isin(dst, chosen)])
                if dom_srcs.size:
                    blocks.append(
                        MessageBlock(
                            "dom",
                            dom_srcs % m_machines,
                            _pairs(dom_srcs, np.ones(dom_srcs.size, dtype=np.int64)),
                        )
                    )
            return keep, blocks

        engine.round_packed(dominated_step)

        # ---- step 5: homes finalise killed bits; holders re-query ------ #
        def finalize_step(mid: int, items: list[Any]):
            # The broadcast token dies here: the object path rebuilds its
            # keep list from the partial dicts, dropping passthrough tuples.
            keep: list[Any] = [_machine_arcs(items)]
            ii = concat_planes(items, "inI", 2)
            keep.append(Plane("a", concat_planes(items, "a", 2)))
            if ii.shape[0]:
                vs, bits = _last_wins(ii[:, 0], ii[:, 1])
                dom_vs = np.unique(concat_planes(items, "dom", 2)[:, 0])
                killed = (bits != 0) | np.isin(vs, dom_vs)
                keep.append(Plane("inI", _pairs(vs, bits)))
                keep.append(Plane("killed", _pairs(vs, killed)))
            return keep, []

        engine.round_packed(finalize_step)

        def kill_query_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            keep = [arcs] + toks(items) + planes_except(items)
            blocks = []
            if arcs.size:
                src, dst = np.divmod(arcs, n)
                wanted = np.unique(np.concatenate([src, dst]))
                blocks.append(
                    MessageBlock(
                        "kq",
                        wanted % m_machines,
                        _pairs(wanted, np.full(wanted.size, mid, dtype=np.int64)),
                    )
                )
            return keep, blocks

        engine.round_packed(kill_query_step)

        def kill_answer_and_filter(mid: int, items: list[Any]):
            # The answer planes die here, exactly like the object path's
            # keep filter.
            keep = [_machine_arcs(items)] + [
                it
                for it in items
                if isinstance(it, Plane) and it.tag in ("killed", "inI")
            ]
            kq = concat_planes(items, "kq", 2)
            blocks = []
            if kq.shape[0]:
                bits = _lookup_bits(concat_planes(items, "killed", 2), kq[:, 0])
                blocks.append(MessageBlock("ka", kq[:, 1], _pairs(kq[:, 0], bits)))
            return keep, blocks

        engine.round_packed(kill_answer_and_filter)

        def filter_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            keep = planes_except(items, "ka")
            if arcs.size:
                ka = concat_planes(items, "ka", 2)
                dead = ka[ka[:, 1] != 0, 0]
                src, dst = np.divmod(arcs, n)
                arcs = arcs[~(np.isin(src, dead) | np.isin(dst, dead))]
            return [arcs] + keep, []

        engine.round_packed(filter_step)

        # Harvest decisions (observation only; no engine communication).
        for mid in range(m_machines):
            ii = concat_planes(engine.storage[mid], "inI", 2)
            chosen = ii[ii[:, 1] != 0, 0]
            in_mis[chosen] = True
            decided[chosen] = True
            kk = concat_planes(engine.storage[mid], "killed", 2)
            decided[kk[kk[:, 1] != 0, 0]] = True

    # Undecided nodes are isolated in the residual graph: they join the MIS.
    in_mis |= ~decided
    total_rounds = engine.rounds_executed - rounds0
    if stats_out is not None:
        stats_out["snapshot"] = engine.model_snapshot()
    return np.nonzero(in_mis)[0].astype(np.int64), total_rounds, phases


# ---------------------------------------------------------------------- #
# Vectorized backend: packed arc arrays per machine
# ---------------------------------------------------------------------- #


def _machine_arcs(items: list[Any]) -> np.ndarray:
    """The machine's packed arc array (empty if it holds none)."""
    for it in items:
        if isinstance(it, np.ndarray):
            return it
    return np.empty(0, dtype=np.int64)


def _keyed_z(family: KWiseHashFamily, seed: int, nodes: np.ndarray, n: int):
    """Total-order z-keys ``z(v) * (n + 1) + v`` for a node id array."""
    z = family.evaluate(seed, nodes.astype(np.int64))
    return z.astype(np.uint64) * np.uint64(n + 1) + nodes.astype(np.uint64)


def _group_minima(src: np.ndarray, vals: np.ndarray):
    """(sorted unique srcs, per-src minimum of vals)."""
    order = np.argsort(src, kind="stable")
    s, v = src[order], vals[order]
    starts = np.nonzero(np.concatenate([[True], s[1:] != s[:-1]]))[0]
    return s[starts], np.minimum.reduceat(v, starts)


def _distributed_luby_mis_vectorized(
    g: Graph,
    num_machines: int,
    space: int,
    max_phases: int,
    arc_plane: np.ndarray,
    stats_out: dict | None = None,
) -> tuple[np.ndarray, int, int]:
    engine = MPCEngine(num_machines=num_machines, space=space)
    n = max(g.n, 1)
    # Contiguous per-machine arc slices (identical word count to loading
    # the scalars item-by-item; local representation, no round charge).
    engine.load_balanced_packed(arc_plane)

    family: KWiseHashFamily = make_family(universe=n, k=2)
    m_machines = engine.num_machines
    in_mis = np.zeros(g.n, dtype=bool)
    decided = np.zeros(g.n, dtype=bool)
    rounds0 = engine.rounds_executed
    phases = 0

    def has_arcs() -> bool:
        return any(
            bool(it.size)
            for st in engine.storage
            for it in st
            if isinstance(it, np.ndarray)
        )

    while has_arcs():
        phases += 1
        if phases > max_phases:
            raise RuntimeError("distributed Luby failed to converge")
        seed = (1 + phases * 7919) % family.size
        broadcast_word(engine, seed)

        # ---- step 2: min-z partials to home machines ------------------ #
        def minz_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            keep = [it for it in items if isinstance(it, tuple)]
            sends = []
            if arcs.size:
                src, dst = np.divmod(arcs, n)
                srcs, zmins = _group_minima(src, _keyed_z(family, seed, dst, n))
                homes = srcs % m_machines
                for s_, zmin, home in zip(
                    srcs.tolist(), zmins.tolist(), homes.tolist()
                ):
                    msg = ("minz", s_, zmin)
                    if home == mid:
                        keep.append(msg)
                    else:
                        sends.append((home, msg))
            return [arcs] + keep, sends

        engine.round(minz_step)

        # ---- step 3: home machines decide membership in I ------------- #
        def decide_step(mid: int, items: list[Any]):
            passthrough = [
                it
                for it in items
                if not (isinstance(it, tuple) and it[0] == "minz")
            ]
            mins: dict[int, int] = {}
            for it in items:
                if isinstance(it, tuple) and it[0] == "minz":
                    v, zmin = it[1], it[2]
                    if v not in mins or zmin < mins[v]:
                        mins[v] = zmin
            ii: list[tuple] = []
            if mins:
                vs = np.fromiter(mins.keys(), dtype=np.int64, count=len(mins))
                zv = _keyed_z(family, seed, vs, n)
                bits = zv < np.fromiter(
                    (np.uint64(z) for z in mins.values()),
                    dtype=np.uint64,
                    count=len(mins),
                )
                ii = [
                    ("inI", v, int(b))
                    for v, b in zip(vs.tolist(), bits.tolist())
                ]
            return passthrough + ii, []

        engine.round(decide_step)

        # ---- step 4a: arc holders query in-I bits ---------------------- #
        def query_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            keep = [it for it in items if isinstance(it, tuple)]
            sends = []
            if arcs.size:
                src, dst = np.divmod(arcs, n)
                wanted = np.unique(np.concatenate([src, dst]))
                homes = wanted % m_machines
                for v, home in zip(wanted.tolist(), homes.tolist()):
                    msg = ("q", v, mid)
                    if home == mid:
                        keep.append(msg)
                    else:
                        sends.append((home, msg))
            return [arcs] + keep, sends

        engine.round(query_step)

        def answer_step(mid: int, items: list[Any]):
            in_i = {
                it[1]: it[2]
                for it in items
                if isinstance(it, tuple) and it[0] == "inI"
            }
            keep = [
                it
                for it in items
                if not (isinstance(it, tuple) and it[0] == "q")
            ]
            sends = []
            for it in items:
                if isinstance(it, tuple) and it[0] == "q":
                    v, asker = it[1], it[2]
                    msg = ("a", v, in_i.get(v, 0))
                    if asker == mid:
                        keep.append(msg)
                    else:
                        sends.append((asker, msg))
            return keep, sends

        engine.round(answer_step)

        # ---- step 4b: dominated partials back to homes ----------------- #
        def dominated_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            answers = {
                it[1]: it[2]
                for it in items
                if isinstance(it, tuple) and it[0] == "a"
            }
            keep = [
                it
                for it in items
                if isinstance(it, tuple) and it[0] not in ("a", "minz")
            ]
            # retain answers for the kill step
            keep += [("a", v, bit) for v, bit in answers.items()]
            sends = []
            if arcs.size and answers:
                src, dst = np.divmod(arcs, n)
                chosen = np.fromiter(
                    (v for v, bit in answers.items() if bit),
                    dtype=np.int64,
                )
                dom_srcs = np.unique(src[np.isin(dst, chosen)])
                homes = dom_srcs % m_machines
                for v, home in zip(dom_srcs.tolist(), homes.tolist()):
                    msg = ("dom", v, 1)
                    if home == mid:
                        keep.append(msg)
                    else:
                        sends.append((home, msg))
            return [arcs] + keep, sends

        engine.round(dominated_step)

        # ---- step 5: homes finalise killed bits; holders re-query ------ #
        def finalize_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            in_i = {}
            dom = {}
            answers = {}
            for it in items:
                if isinstance(it, tuple):
                    if it[0] == "inI":
                        in_i[it[1]] = it[2]
                    elif it[0] == "dom":
                        dom[it[1]] = max(dom.get(it[1], 0), it[2])
                    elif it[0] == "a":
                        answers[it[1]] = it[2]
            killed = [
                ("killed", v, 1 if (bit or dom.get(v, 0)) else 0)
                for v, bit in in_i.items()
            ]
            keep = [("a", v, b) for v, b in answers.items()]
            keep += [("inI", v, b) for v, b in in_i.items()]
            return [arcs] + keep + killed, []

        engine.round(finalize_step)

        def kill_query_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            keep = [it for it in items if isinstance(it, tuple)]
            sends = []
            if arcs.size:
                src, dst = np.divmod(arcs, n)
                wanted = np.unique(np.concatenate([src, dst]))
                homes = wanted % m_machines
                for v, home in zip(wanted.tolist(), homes.tolist()):
                    msg = ("kq", v, mid)
                    if home == mid:
                        keep.append(msg)
                    else:
                        sends.append((home, msg))
            return [arcs] + keep, sends

        engine.round(kill_query_step)

        def kill_answer_and_filter(mid: int, items: list[Any]):
            killed_bits = {
                it[1]: it[2]
                for it in items
                if isinstance(it, tuple) and it[0] == "killed"
            }
            sends = []
            keep: list[Any] = []
            for it in items:
                if isinstance(it, tuple) and it[0] == "kq":
                    v, asker = it[1], it[2]
                    msg = ("ka", v, killed_bits.get(v, 0))
                    if asker == mid:
                        keep.append(msg)
                    else:
                        sends.append((asker, msg))
                elif isinstance(it, tuple) and it[0] in ("killed", "inI"):
                    keep.append(it)
                elif isinstance(it, np.ndarray):
                    keep.append(it)
            return keep, sends

        engine.round(kill_answer_and_filter)

        def filter_step(mid: int, items: list[Any]):
            arcs = _machine_arcs(items)
            keep = [
                it
                for it in items
                if isinstance(it, tuple) and it[0] in ("killed", "inI")
            ]
            if arcs.size:
                src, dst = np.divmod(arcs, n)
                dead = np.fromiter(
                    (
                        it[1]
                        for it in items
                        if isinstance(it, tuple) and it[0] == "ka" and it[2]
                    ),
                    dtype=np.int64,
                )
                alive = ~(np.isin(src, dead) | np.isin(dst, dead))
                arcs = arcs[alive]
            return [arcs] + keep, []

        engine.round(filter_step)

        # Harvest decisions (observation only; no engine communication).
        for mid in range(m_machines):
            for it in engine.storage[mid]:
                if isinstance(it, tuple) and it[0] == "inI" and it[2]:
                    in_mis[it[1]] = True
                    decided[it[1]] = True
                if isinstance(it, tuple) and it[0] == "killed" and it[2]:
                    decided[it[1]] = True

    # Undecided nodes are isolated in the residual graph: they join the MIS.
    in_mis |= ~decided
    total_rounds = engine.rounds_executed - rounds0
    if stats_out is not None:
        stats_out["snapshot"] = engine.model_snapshot()
    return np.nonzero(in_mis)[0].astype(np.int64), total_rounds, phases


# ---------------------------------------------------------------------- #
# Legacy backend: one storage item per arc, per-arc Python loops
# ---------------------------------------------------------------------- #


def _distributed_luby_mis_legacy(
    g: Graph,
    num_machines: int,
    space: int,
    max_phases: int,
    arc_plane: np.ndarray,
    stats_out: dict | None = None,
) -> tuple[np.ndarray, int, int]:
    engine = MPCEngine(num_machines=num_machines, space=space)
    n = max(g.n, 1)
    engine.load_balanced([int(a) for a in arc_plane.tolist()])

    family: KWiseHashFamily = make_family(universe=n, k=2)
    m_machines = engine.num_machines
    in_mis = np.zeros(g.n, dtype=bool)
    decided = np.zeros(g.n, dtype=bool)
    rounds0 = engine.rounds_executed
    phases = 0

    def z_of(seed: int, node: int) -> int:
        # strict total order: (hash value, node id)
        return int(family.evaluate(seed, np.array([node]))[0]) * (n + 1) + node

    while any(
        any(not isinstance(it, tuple) for it in st) for st in engine.storage
    ):
        phases += 1
        if phases > max_phases:
            raise RuntimeError("distributed Luby failed to converge")
        seed = (1 + phases * 7919) % family.size
        broadcast_word(engine, seed)

        # ---- step 2: min-z partials to home machines ------------------ #
        def minz_step(mid: int, items: list[Any]):
            arcs = [it for it in items if not isinstance(it, tuple)]
            keep = [it for it in items if isinstance(it, tuple)]
            mins: dict[int, int] = {}
            for arc in arcs:
                src, dst = divmod(arc, n)
                zd = z_of(seed, dst)
                if src not in mins or zd < mins[src]:
                    mins[src] = zd
            sends = []
            for src, zmin in sorted(mins.items()):
                msg = ("minz", src, zmin)
                home = _home(src, m_machines)
                if home == mid:
                    keep.append(msg)
                else:
                    sends.append((home, msg))
            return arcs + keep, sends

        engine.round(minz_step)

        # ---- step 3: home machines decide membership in I ------------- #
        def decide_step(mid: int, items: list[Any]):
            arcs = [it for it in items if not isinstance(it, tuple)]
            other = [
                it for it in items if isinstance(it, tuple) and it[0] != "minz"
            ]
            mins: dict[int, int] = {}
            for it in items:
                if isinstance(it, tuple) and it[0] == "minz":
                    v, zmin = it[1], it[2]
                    if v not in mins or zmin < mins[v]:
                        mins[v] = zmin
            ii = [("inI", v, 1 if z_of(seed, v) < zmin else 0) for v, zmin in mins.items()]
            return arcs + other + ii, []

        engine.round(decide_step)

        # ---- step 4a: arc holders query in-I bits ---------------------- #
        def query_step(mid: int, items: list[Any]):
            arcs = [it for it in items if not isinstance(it, tuple)]
            keep = [it for it in items if isinstance(it, tuple)]
            wanted: set[int] = set()
            for arc in arcs:
                src, dst = divmod(arc, n)
                wanted.add(src)
                wanted.add(dst)
            sends = []
            for v in sorted(wanted):
                home = _home(v, m_machines)
                msg = ("q", v, mid)
                if home == mid:
                    keep.append(msg)
                else:
                    sends.append((home, msg))
            return arcs + keep, sends

        engine.round(query_step)

        def answer_step(mid: int, items: list[Any]):
            arcs = [it for it in items if not isinstance(it, tuple)]
            in_i = {
                it[1]: it[2]
                for it in items
                if isinstance(it, tuple) and it[0] == "inI"
            }
            keep = [
                it
                for it in items
                if isinstance(it, tuple) and it[0] != "q"
            ]
            sends = []
            for it in items:
                if isinstance(it, tuple) and it[0] == "q":
                    v, asker = it[1], it[2]
                    msg = ("a", v, in_i.get(v, 0))
                    if asker == mid:
                        keep.append(msg)
                    else:
                        sends.append((asker, msg))
            return arcs + keep, sends

        engine.round(answer_step)

        # ---- step 4b: dominated partials back to homes ----------------- #
        def dominated_step(mid: int, items: list[Any]):
            arcs = [it for it in items if not isinstance(it, tuple)]
            answers = {
                it[1]: it[2]
                for it in items
                if isinstance(it, tuple) and it[0] == "a"
            }
            keep = [
                it
                for it in items
                if isinstance(it, tuple) and it[0] not in ("a", "minz")
            ]
            dom: dict[int, int] = defaultdict(int)
            for arc in arcs:
                src, dst = divmod(arc, n)
                if answers.get(dst, 0):
                    dom[src] = 1
            # retain answers for the kill step
            keep += [("a", v, bit) for v, bit in answers.items()]
            sends = []
            for v, bit in sorted(dom.items()):
                home = _home(v, m_machines)
                msg = ("dom", v, bit)
                if home == mid:
                    keep.append(msg)
                else:
                    sends.append((home, msg))
            return arcs + keep, sends

        engine.round(dominated_step)

        # ---- step 5: homes finalise killed bits; holders re-query ------ #
        def finalize_step(mid: int, items: list[Any]):
            arcs = [it for it in items if not isinstance(it, tuple)]
            in_i = {}
            dom = {}
            answers = {}
            for it in items:
                if isinstance(it, tuple):
                    if it[0] == "inI":
                        in_i[it[1]] = it[2]
                    elif it[0] == "dom":
                        dom[it[1]] = max(dom.get(it[1], 0), it[2])
                    elif it[0] == "a":
                        answers[it[1]] = it[2]
            killed = [
                ("killed", v, 1 if (bit or dom.get(v, 0)) else 0)
                for v, bit in in_i.items()
            ]
            keep = [("a", v, b) for v, b in answers.items()]
            keep += [("inI", v, b) for v, b in in_i.items()]
            return arcs + keep + killed, []

        engine.round(finalize_step)

        def kill_query_step(mid: int, items: list[Any]):
            arcs = [it for it in items if not isinstance(it, tuple)]
            keep = [it for it in items if isinstance(it, tuple)]
            wanted = set()
            for arc in arcs:
                src, dst = divmod(arc, n)
                wanted.add(src)
                wanted.add(dst)
            sends = []
            for v in sorted(wanted):
                home = _home(v, m_machines)
                msg = ("kq", v, mid)
                if home == mid:
                    keep.append(msg)
                else:
                    sends.append((home, msg))
            return arcs + keep, sends

        engine.round(kill_query_step)

        def kill_answer_and_filter(mid: int, items: list[Any]):
            killed_bits = {
                it[1]: it[2]
                for it in items
                if isinstance(it, tuple) and it[0] == "killed"
            }
            sends = []
            keep = []
            for it in items:
                if isinstance(it, tuple) and it[0] == "kq":
                    v, asker = it[1], it[2]
                    msg = ("ka", v, killed_bits.get(v, 0))
                    if asker == mid:
                        keep.append(msg)
                    else:
                        sends.append((asker, msg))
                elif isinstance(it, tuple) and it[0] in ("killed", "inI"):
                    keep.append(it)
                elif not isinstance(it, tuple):
                    keep.append(it)
            return keep, sends

        engine.round(kill_answer_and_filter)

        def filter_step(mid: int, items: list[Any]):
            ka = {
                it[1]: it[2]
                for it in items
                if isinstance(it, tuple) and it[0] == "ka"
            }
            keep = []
            for it in items:
                if isinstance(it, tuple):
                    if it[0] in ("killed", "inI"):
                        keep.append(it)
                    continue
                src, dst = divmod(it, n)
                if not ka.get(src, 0) and not ka.get(dst, 0):
                    keep.append(it)
            return keep, []

        engine.round(filter_step)

        # Harvest decisions (observation only; no engine communication).
        for mid in range(m_machines):
            for it in engine.storage[mid]:
                if isinstance(it, tuple) and it[0] == "inI" and it[2]:
                    in_mis[it[1]] = True
                    decided[it[1]] = True
                if isinstance(it, tuple) and it[0] == "killed" and it[2]:
                    decided[it[1]] = True

    # Undecided nodes are isolated in the residual graph: they join the MIS.
    in_mis |= ~decided
    total_rounds = engine.rounds_executed - rounds0
    if stats_out is not None:
        stats_out["snapshot"] = engine.model_snapshot()
    return np.nonzero(in_mis)[0].astype(np.int64), total_rounds, phases
