"""A literal message-passing MPC engine (machines, rounds, capacity checks).

This is the faithful, executable version of the model of Section "The MPC
model": ``M`` machines with ``S`` words of local space compute in synchronous
rounds; between rounds each machine sends messages addressed to single
machines, and all messages sent and received by a machine in a round must fit
in ``S`` words.

The engine is used to *demonstrate* the Lemma-4 communication primitives
(sorting, prefix sums, broadcast -- see :mod:`repro.mpc.primitives`) with
real message passing and exact round counting.  The graph algorithms
themselves run against the vectorised accounting layer
(:mod:`repro.mpc.context`) for speed; both layers share the same model
constants so the round/space numbers agree.

Storage granularity: each stored item costs ``word_size(item)`` words, where
scalars cost 1 and tuples cost their length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .exceptions import CapacityExceededError, SpaceExceededError

__all__ = ["MPCEngine", "word_size"]


def word_size(item: Any) -> int:
    """Number of machine words an item occupies.

    Tuples/lists cost their length and scalars cost 1.  A numpy array costs
    one word per element: algorithms may store a machine's whole scalar
    buffer as a single packed array (the vectorised simulators do this for
    their arc sets), and the space accounting must be identical to storing
    the same scalars item-by-item.
    """
    if isinstance(item, (tuple, list)):
        return len(item)
    if isinstance(item, np.ndarray):
        return int(item.size)
    return 1


#: A step function maps (machine_id, local_items) to
#: (items_to_keep, [(dest_machine, item), ...]).
StepFn = Callable[[int, list[Any]], tuple[list[Any], list[tuple[int, Any]]]]


@dataclass
class MPCEngine:
    """``M`` machines of ``S`` words each, executing synchronous rounds."""

    num_machines: int
    space: int
    rounds_executed: int = 0
    storage: list[list[Any]] = field(default_factory=list)
    max_load_seen: int = 0

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ValueError("need at least one machine")
        if self.space < 1:
            raise ValueError("space must be >= 1 word")
        if not self.storage:
            self.storage = [[] for _ in range(self.num_machines)]

    # ------------------------------------------------------------------ #
    # Input loading / inspection
    # ------------------------------------------------------------------ #

    def load_balanced(self, items: Iterable[Any]) -> None:
        """Distribute input items across machines in contiguous blocks,
        ``ceil(N / M)`` per machine (the model's arbitrary initial split).

        Loading new input starts a fresh computation: the round counter and
        the space high-water mark are reset, so an engine instance can be
        reused across demonstrations without stale accounting.
        """
        self.rounds_executed = 0
        self.max_load_seen = 0
        data = list(items)
        per = -(-len(data) // self.num_machines) if data else 0
        for mid in range(self.num_machines):
            block = data[mid * per : (mid + 1) * per]
            self._check_store(mid, block)
            self.storage[mid] = block

    def machine_load(self, mid: int) -> int:
        return sum(word_size(x) for x in self.storage[mid])

    def all_items(self) -> list[Any]:
        """Concatenation of all machines' storage, machine order."""
        out: list[Any] = []
        for st in self.storage:
            out.extend(st)
        return out

    def _check_store(self, mid: int, items: Sequence[Any]) -> None:
        words = sum(word_size(x) for x in items)
        if words > self.space:
            raise SpaceExceededError(mid, words, self.space, "storing")
        self.max_load_seen = max(self.max_load_seen, words)

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #

    def round(self, step: StepFn) -> None:
        """Run one synchronous round with full capacity checking.

        Every machine's step executes on its pre-round storage; messages are
        delivered after all steps complete (appended to the receiver's kept
        items, visible next round).
        """
        keeps: list[list[Any]] = []
        inboxes: list[list[Any]] = [[] for _ in range(self.num_machines)]
        for mid in range(self.num_machines):
            keep, sends = step(mid, list(self.storage[mid]))
            sent_words = sum(word_size(msg) for _, msg in sends)
            if sent_words > self.space:
                raise CapacityExceededError(mid, sent_words, self.space, "sent")
            for dest, msg in sends:
                if not 0 <= dest < self.num_machines:
                    raise ValueError(f"message to nonexistent machine {dest}")
                inboxes[dest].append(msg)
            keeps.append(keep)
        for mid in range(self.num_machines):
            recv_words = sum(word_size(msg) for msg in inboxes[mid])
            if recv_words > self.space:
                raise CapacityExceededError(mid, recv_words, self.space, "received")
            new_store = keeps[mid] + inboxes[mid]
            self._check_store(mid, new_store)
            self.storage[mid] = new_store
        self.rounds_executed += 1
