"""A literal message-passing MPC engine (machines, rounds, capacity checks).

This is the faithful, executable version of the model of Section "The MPC
model": ``M`` machines with ``S`` words of local space compute in synchronous
rounds; between rounds each machine sends messages addressed to single
machines, and all messages sent and received by a machine in a round must fit
in ``S`` words.

The engine is used to *demonstrate* the Lemma-4 communication primitives
(sorting, prefix sums, broadcast -- see :mod:`repro.mpc.primitives`) with
real message passing and exact round counting.  The graph algorithms
themselves run against the vectorised accounting layer
(:mod:`repro.mpc.context`) for speed; both layers share the same model
constants so the round/space numbers agree.

Two round-execution backends share every model check:

* :meth:`MPCEngine.round` -- the object-granular path: a step maps
  ``(machine, items)`` to kept items plus ``(dest, item)`` message pairs,
  and the engine dispatches each message individually.
* :meth:`MPCEngine.round_packed` -- the columnar path: a step maps
  ``(machine, items)`` to kept items plus
  :class:`~repro.models.plane.MessageBlock` batches; the engine routes each
  batch with one stable argsort + ``searchsorted`` split, so interpreter
  cost is per *batch*, not per message.  Word charges are bit-identical to
  sending the same rows as tuples.

Storage granularity: each stored item costs ``word_size(item)`` words, where
scalars cost 1 and containers cost the recursive word count of their
contents.  The engine also implements the cross-model
:class:`~repro.models.ledger.RoundLedgerProtocol` (rounds, words moved,
ceilings, per-category charges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..models.ledger import ModelSnapshot
from ..models.plane import MessageBlock, Plane, route_block
from ..obs import trace as _obs
from .exceptions import CapacityExceededError, SpaceExceededError
from .ledger import RoundLedger

__all__ = ["MPCEngine", "word_size"]


def word_size(item: Any) -> int:
    """Number of machine words an item occupies.

    Scalars cost 1; tuples/lists cost the *recursive* word count of their
    contents (a tuple is a record, and a record holding an array holds the
    array's words -- charging ``len(tuple)`` would let an algorithm smuggle
    arbitrarily large payloads inside 3-word messages).  A numpy array
    costs one word per element, and a :class:`~repro.models.plane.Plane`
    costs ``rows * (width + 1)`` -- identical to storing its rows as
    ``(tag, *row)`` tuples item-by-item, so the columnar and object
    backends are charged the same words for the same state.
    """
    if isinstance(item, (tuple, list)):
        return sum(word_size(x) for x in item)
    if isinstance(item, Plane):
        return item.word_cost
    if isinstance(item, np.ndarray):
        return int(item.size)
    return 1


#: A step function maps (machine_id, local_items) to
#: (items_to_keep, [(dest_machine, item), ...]).
StepFn = Callable[[int, list[Any]], tuple[list[Any], list[tuple[int, Any]]]]

#: The columnar variant maps (machine_id, local_items) to
#: (items_to_keep, [MessageBlock, ...]); rows destined to the sender are
#: kept locally (never charged as communication), exactly like a legacy
#: step appending its own-home messages to ``keep``.
PackedStepFn = Callable[[int, list[Any]], tuple[list[Any], list[MessageBlock]]]


@dataclass
class MPCEngine:
    """``M`` machines of ``S`` words each, executing synchronous rounds."""

    num_machines: int
    space: int
    rounds_executed: int = 0
    storage: list[list[Any]] = field(default_factory=list)
    max_load_seen: int = 0
    ledger: RoundLedger = field(default_factory=RoundLedger)

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ValueError("need at least one machine")
        if self.space < 1:
            raise ValueError("space must be >= 1 word")
        if not self.storage:
            self.storage = [[] for _ in range(self.num_machines)]

    # ------------------------------------------------------------------ #
    # Cross-model ledger protocol
    # ------------------------------------------------------------------ #

    @property
    def rounds(self) -> int:
        """Total charged rounds: one per executed round (:meth:`round` /
        :meth:`round_packed` charge the ledger) plus any manual charges."""
        return self.ledger.total

    @property
    def words_moved(self) -> int:
        return self.ledger.words_moved

    @property
    def space_ceiling(self) -> int | None:
        return self.space

    @property
    def bandwidth_ceiling(self) -> int | None:
        """Per-round send/receive cap: ``S`` words per machine."""
        return self.space

    def charge(self, category: str, rounds: int = 1, *, words: int = 0) -> None:
        self.ledger.charge(category, rounds, words=words)

    def rounds_by_category(self) -> dict[str, int]:
        return dict(self.ledger.by_category)

    def model_snapshot(self) -> ModelSnapshot:
        return ModelSnapshot(
            model="mpc-engine",
            rounds=self.rounds,
            words_moved=self.words_moved,
            by_category=self.rounds_by_category(),
            space_ceiling=self.space,
            bandwidth_ceiling=self.space,
            max_words_seen=self.max_load_seen,
            detail={"num_machines": self.num_machines},
        )

    # ------------------------------------------------------------------ #
    # Input loading / inspection
    # ------------------------------------------------------------------ #

    def load_balanced(self, items: Iterable[Any]) -> None:
        """Distribute input items across machines in contiguous blocks,
        ``ceil(N / M)`` per machine (the model's arbitrary initial split).

        Loading new input starts a fresh computation: the round counter,
        the ledger and the space high-water mark are reset, so an engine
        instance can be reused across demonstrations without stale
        accounting.
        """
        self.rounds_executed = 0
        self.max_load_seen = 0
        self.ledger = RoundLedger(costs=self.ledger.costs)
        data = list(items)
        per = -(-len(data) // self.num_machines) if data else 0
        for mid in range(self.num_machines):
            block = data[mid * per : (mid + 1) * per]
            self._check_store(mid, block)
            self.storage[mid] = block

    def load_balanced_packed(self, values: np.ndarray) -> None:
        """:meth:`load_balanced` for a packed scalar array: each machine
        receives one contiguous int64 slice instead of a list of boxed
        ints.  Word charges and the contiguous ``ceil(N / M)`` split are
        identical; interpreter cost is ``O(M)`` instead of ``O(N)``.
        """
        self.rounds_executed = 0
        self.max_load_seen = 0
        self.ledger = RoundLedger(costs=self.ledger.costs)
        data = np.asarray(values, dtype=np.int64)
        per = -(-data.size // self.num_machines) if data.size else 0
        for mid in range(self.num_machines):
            block = data[mid * per : (mid + 1) * per]
            self._check_store(mid, [block])
            self.storage[mid] = [block]

    def machine_load(self, mid: int) -> int:
        return sum(word_size(x) for x in self.storage[mid])

    def all_items(self) -> list[Any]:
        """Concatenation of all machines' storage, machine order."""
        out: list[Any] = []
        for st in self.storage:
            out.extend(st)
        return out

    def _check_store(self, mid: int, items: Sequence[Any]) -> None:
        words = sum(word_size(x) for x in items)
        if words > self.space:
            raise SpaceExceededError(mid, words, self.space, "storing")
        self.max_load_seen = max(self.max_load_seen, words)

    # ------------------------------------------------------------------ #
    # Round execution: object-granular backend
    # ------------------------------------------------------------------ #

    def round(self, step: StepFn, category: str = "round") -> None:
        """Run one synchronous round with full capacity checking.

        Every machine's step executes on its pre-round storage; messages are
        delivered after all steps complete (appended to the receiver's kept
        items, visible next round).
        """
        t_round = _obs.clock() if _obs._TRACING else 0.0
        keeps: list[list[Any]] = []
        inboxes: list[list[Any]] = [[] for _ in range(self.num_machines)]
        total_sent = 0
        for mid in range(self.num_machines):
            keep, sends = step(mid, list(self.storage[mid]))
            sent_words = sum(word_size(msg) for _, msg in sends)
            if sent_words > self.space:
                raise CapacityExceededError(mid, sent_words, self.space, "sent")
            for dest, msg in sends:
                if not 0 <= dest < self.num_machines:
                    raise ValueError(f"message to nonexistent machine {dest}")
                inboxes[dest].append(msg)
            keeps.append(keep)
            total_sent += sent_words
        for mid in range(self.num_machines):
            recv_words = sum(word_size(msg) for msg in inboxes[mid])
            if recv_words > self.space:
                raise CapacityExceededError(mid, recv_words, self.space, "received")
            new_store = keeps[mid] + inboxes[mid]
            self._check_store(mid, new_store)
            self.storage[mid] = new_store
        self.rounds_executed += 1
        self.ledger.charge(category, 1, words=total_sent)
        if _obs._TRACING:
            self._record_round_span(t_round, category, total_sent)

    def _record_round_span(
        self, t_round: float, category: str, total_sent: int
    ) -> None:
        """One completed ``engine.round`` span with word/space attributes."""
        _obs.record_span(
            "engine.round",
            t_round,
            {
                "round": self.rounds_executed,
                "category": category,
                "words_sent": total_sent,
                "space_high_water": self.max_load_seen,
                "machines": self.num_machines,
                "space_limit": self.space,
            },
        )

    # ------------------------------------------------------------------ #
    # Round execution: columnar backend
    # ------------------------------------------------------------------ #

    def round_packed(self, step: PackedStepFn, category: str = "round") -> None:
        """One synchronous round over packed message blocks.

        Model semantics are identical to :meth:`round` -- same send /
        receive / storage ceilings, same destination validation, same
        delivery timing -- but a block's rows are counted, routed and
        delivered as arrays.  Rows a machine addresses to itself are split
        off into kept :class:`~repro.models.plane.Plane`s before routing,
        mirroring the object path's convention of appending own-home
        messages to ``keep`` (they are storage, not communication).
        """
        t_round = _obs.clock() if _obs._TRACING else 0.0
        m = self.num_machines
        keeps: list[list[Any]] = []
        inboxes: list[list[Any]] = [[] for _ in range(m)]
        total_sent = 0
        for mid in range(m):
            keep, blocks = step(mid, list(self.storage[mid]))
            sent_words = 0
            outgoing: list[MessageBlock] = []
            for blk in blocks:
                if blk.rows == 0:
                    continue
                self_rows = blk.dest == mid
                if self_rows.any():
                    kept = blk.data[self_rows]
                    keep.append(
                        kept[:, 0] if blk.tag == "" else Plane(blk.tag, kept)
                    )
                    if not self_rows.all():
                        ext = ~self_rows
                        blk = MessageBlock(blk.tag, blk.dest[ext], blk.data[ext])
                    else:
                        continue
                sent_words += blk.rows * blk.words_per_row
                outgoing.append(blk)
            if sent_words > self.space:
                raise CapacityExceededError(mid, sent_words, self.space, "sent")
            for blk in outgoing:
                for dest, plane in route_block(blk, m):
                    inboxes[dest].append(
                        plane.data[:, 0] if blk.tag == "" else plane
                    )
            keeps.append(keep)
            total_sent += sent_words
        for mid in range(m):
            recv_words = sum(word_size(p) for p in inboxes[mid])
            if recv_words > self.space:
                raise CapacityExceededError(mid, recv_words, self.space, "received")
            new_store = keeps[mid] + inboxes[mid]
            self._check_store(mid, new_store)
            self.storage[mid] = new_store
        self.rounds_executed += 1
        self.ledger.charge(category, 1, words=total_sent)
        if _obs._TRACING:
            self._record_round_span(t_round, category, total_sent)
