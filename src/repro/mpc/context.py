"""Execution context tying together model parameters, ledger and space.

An :class:`MPCContext` fixes the instance-level model quantities -- ``n``,
``S = space_factor * n^eps`` (words per machine), the machine count -- and
owns the :class:`~repro.mpc.ledger.RoundLedger` and
:class:`~repro.mpc.ledger.SpaceTracker` an algorithm run charges against.

The total-space budget follows Theorems 7/14: ``O(m + n^{1+eps})`` words; we
instantiate the O(.) with an explicit ``total_factor`` so violations fail
loudly rather than being absorbed into asymptotics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..models.ledger import ModelSnapshot
from .ledger import RoundCosts, RoundLedger, SpaceTracker

__all__ = ["MPCContext"]


@dataclass
class MPCContext:
    """Model state for one algorithm run on an ``n``-vertex, ``m``-edge input.

    Parameters
    ----------
    n, m:
        Input size.
    eps:
        Local-space exponent (``S = Theta(n^eps)``).
    space_factor:
        The constant in ``S = space_factor * n^eps`` (the paper needs
        ``S = O(n^{8 delta}) = O(n^eps)`` to hold 2-hop neighbourhoods after
        sparsification; the constant absorbs the factor 4 from the
        ``2 n^{4 delta} x 2 n^{4 delta}`` bound of Section 3.3).
    total_factor:
        The constant in the global budget ``total_factor * (m + n^{1+eps})``.
    """

    n: int
    m: int
    eps: float = 0.5
    space_factor: float = 32.0
    total_factor: float = 16.0
    costs: RoundCosts = field(default_factory=RoundCosts)
    ledger: RoundLedger = field(init=False)
    space: SpaceTracker = field(init=False)
    #: Longest seed (in bits) any conditional-expectations fix handled —
    #: the instance value of the ``seed_bits`` cost-model symbol.
    seed_bits_seen: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not 0 < self.eps <= 1:
            raise ValueError(f"eps must be in (0, 1], got {self.eps}")
        if self.n < 0 or self.m < 0:
            raise ValueError("n, m must be non-negative")
        self.ledger = RoundLedger(costs=self.costs)
        self.space = SpaceTracker(
            limit_per_machine=self.S,
            limit_total=self.total_space_budget,
        )

    # ------------------------------------------------------------------ #
    # Model quantities
    # ------------------------------------------------------------------ #

    @property
    def S(self) -> int:
        """Words of space per machine."""
        base = max(self.n, 2)
        return max(4, math.ceil(self.space_factor * base**self.eps))

    @property
    def num_machines(self) -> int:
        """Machines needed to hold the input: ``ceil((n + 2m) / S)``-ish."""
        return max(1, math.ceil((self.n + 2 * self.m + 1) / self.S))

    @property
    def total_space_budget(self) -> int:
        base = max(self.n, 2)
        return math.ceil(
            self.total_factor * (self.m + base ** (1.0 + self.eps) + self.S)
        )

    @property
    def chunk_bits(self) -> int:
        """Seed bits fixable per conditional-expectations step: ``log2 S``."""
        return max(1, int(math.log2(max(self.S, 2))))

    def fits_on_machine(self, words: int) -> bool:
        return words <= self.S

    def assert_fits(self, words: int, what: str = "") -> None:
        self.space.observe_single(-1, words, what)

    # ------------------------------------------------------------------ #
    # Cross-model ledger protocol
    # ------------------------------------------------------------------ #

    @property
    def words_moved(self) -> int:
        return self.ledger.words_moved

    @property
    def space_ceiling(self) -> int | None:
        return self.S

    @property
    def bandwidth_ceiling(self) -> int | None:
        """Per-round send/receive cap: ``S`` words per machine."""
        return self.S

    def charge(self, category: str, rounds: int = 1, *, words: int = 0) -> None:
        self.ledger.charge(category, rounds, words=words)

    def rounds_by_category(self) -> dict[str, int]:
        return dict(self.ledger.by_category)

    def model_snapshot(self) -> ModelSnapshot:
        return ModelSnapshot(
            model="mpc",
            rounds=self.ledger.total,
            words_moved=self.words_moved,
            by_category=self.rounds_by_category(),
            space_ceiling=self.S,
            bandwidth_ceiling=self.S,
            max_words_seen=self.space.max_machine_words,
            detail={
                "n": self.n,
                "m": self.m,
                "eps": self.eps,
                "num_machines": self.num_machines,
                "seed_bits": self.seed_bits_seen,
            },
        )

    # ------------------------------------------------------------------ #
    # Charging helpers (delegate to the ledger with model constants)
    #
    # Each helper also bills *communication volume* (``words_moved``):
    # aggregation-shaped primitives default to one word per machine per
    # round (partials up / winner down); data-shuffling primitives (sort,
    # gather) take the item count from the call site, which knows it.
    # ------------------------------------------------------------------ #

    def charge_sort(self, category: str = "sort", *, words: int = 0) -> None:
        self.ledger.charge_sort(category, words=words)

    def charge_prefix_sum(
        self, category: str = "prefix_sum", *, words: int | None = None
    ) -> None:
        words = self.num_machines if words is None else words
        self.ledger.charge_prefix_sum(category, words=words)

    def charge_aggregate(
        self, category: str = "aggregate", *, words: int | None = None
    ) -> None:
        words = self.num_machines if words is None else words
        self.ledger.charge_aggregate(category, words=words)

    def charge_broadcast(
        self, category: str = "broadcast", *, words: int | None = None
    ) -> None:
        words = self.num_machines if words is None else words
        self.ledger.charge_broadcast(category, words=words)

    def charge_gather_2hop(self, category: str = "gather", *, words: int = 0) -> None:
        self.ledger.charge_gather_2hop(category, words=words)

    def charge_gather_rhop(
        self, r: int, category: str = "gather", *, words: int = 0
    ) -> None:
        self.ledger.charge_gather_rhop(r, category, words=words)

    def charge_seed_fix(self, seed_bits: int, category: str = "seed_fix") -> None:
        # Conditional expectations: every chunk aggregates one partial per
        # machine and broadcasts the winning extension back.
        self.seed_bits_seen = max(self.seed_bits_seen, int(seed_bits))
        chunks = max(1, math.ceil(max(1, seed_bits) / self.chunk_bits))
        self.ledger.charge_seed_fix(
            seed_bits, self.chunk_bits, category, words=chunks * 2 * self.num_machines
        )

    @property
    def rounds(self) -> int:
        return self.ledger.total
