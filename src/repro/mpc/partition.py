"""Distributing per-node item groups across machine groups (Sections 3.2, 4.2).

The sparsification stages allocate, for every node ``v``, the edges (or
candidate neighbours) of ``v`` across a dedicated *group* of machines with
exactly ``chunk_size`` items per machine, except at most one remainder
machine -- the paper's "type A / type B / type Q machine" layout.  The
goodness test and the invariant algebra (Lemmas 10/11/17/18) are phrased per
machine of these groups, so the grouping itself is a first-class object here.

Everything is computed vectorised: one stable sort by group id, then
rank-in-group arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MachineGrouping", "chunk_items_by_group"]


@dataclass(frozen=True)
class MachineGrouping:
    """Placement of ``num_items`` items onto ``num_machines`` machines.

    ``machine_of_item[i]`` is the (dense) machine id of item ``i``;
    ``group_of_machine[x]`` is the group (node) a machine serves;
    ``loads[x]`` is the number of items on machine ``x``.
    """

    machine_of_item: np.ndarray  # int64[num_items]
    group_of_machine: np.ndarray  # int64[num_machines]
    loads: np.ndarray  # int64[num_machines]
    chunk_size: int

    @property
    def num_machines(self) -> int:
        return int(self.loads.size)

    @property
    def num_items(self) -> int:
        return int(self.machine_of_item.size)

    def max_load(self) -> int:
        return int(self.loads.max(initial=0))

    def machines_of_group(self, group: int) -> np.ndarray:
        """Machine ids serving ``group`` (sorted)."""
        return np.nonzero(self.group_of_machine == group)[0].astype(np.int64)


def chunk_items_by_group(group_ids: np.ndarray, chunk_size: int) -> MachineGrouping:
    """Chunk items into machines of ``chunk_size`` items per group.

    ``group_ids[i]`` is the group (typically: the node whose adjacency list
    item ``i`` belongs to).  Within each group, items fill machines of
    exactly ``chunk_size`` items, with one remainder machine ("all but at
    most one machine" in the paper).  Machine ids are dense, ordered by
    (group, chunk index).
    """
    gids = np.asarray(group_ids, dtype=np.int64)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    num_items = gids.size
    if num_items == 0:
        return MachineGrouping(
            machine_of_item=np.empty(0, dtype=np.int64),
            group_of_machine=np.empty(0, dtype=np.int64),
            loads=np.empty(0, dtype=np.int64),
            chunk_size=chunk_size,
        )
    order = np.argsort(gids, kind="stable")
    sorted_gids = gids[order]
    # boundaries of each group's run in the sorted order
    starts = np.nonzero(np.concatenate([[True], sorted_gids[1:] != sorted_gids[:-1]]))[0]
    group_sizes = np.diff(np.concatenate([starts, [num_items]]))
    unique_groups = sorted_gids[starts]
    # rank of each item within its group
    rank = np.arange(num_items, dtype=np.int64) - np.repeat(starts, group_sizes)
    chunk_in_group = rank // chunk_size
    chunks_per_group = (group_sizes + chunk_size - 1) // chunk_size
    machine_offset = np.concatenate([[0], np.cumsum(chunks_per_group)])
    machine_sorted = np.repeat(machine_offset[:-1], group_sizes) + chunk_in_group
    machine_of_item = np.empty(num_items, dtype=np.int64)
    machine_of_item[order] = machine_sorted
    num_machines = int(machine_offset[-1])
    loads = np.bincount(machine_sorted, minlength=num_machines).astype(np.int64)
    group_of_machine = np.repeat(unique_groups, chunks_per_group)
    return MachineGrouping(
        machine_of_item=machine_of_item,
        group_of_machine=group_of_machine,
        loads=loads,
        chunk_size=chunk_size,
    )
