"""Round and space accounting for the simulated MPC execution.

The reproduction executes data-parallel steps centrally (numpy) for speed but
charges *rounds* and checks *space* exactly as the paper's accounting does:

* every Lemma-4 primitive (sort / prefix sums / aggregation over machine
  groups) costs ``O(1)`` MPC rounds -- one ledger unit per invocation, with
  the constant configurable via :class:`RoundCosts`;
* gathering 2-hop neighbourhoods costs ``O(1)`` (sort + request round);
* gathering ``r``-hop neighbourhoods costs ``ceil(log2 r)`` units (graph
  exponentiation by doubling, Section 5.2.1);
* fixing one ``O(log n)``-bit seed by conditional expectations costs
  ``ceil(seed_bits / chunk_bits)`` units where ``chunk_bits = log2 S``
  (Section 2.4: "chunks of log S = Theta(log n) bits at a time").

The ledger keeps per-category tallies so benchmarks can report where rounds
go, and the :class:`SpaceTracker` records the high-water marks that the
space theorems (``O(n^eps)`` per machine, ``O(m + n^{1+eps})`` total) are
checked against.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from ..obs import trace as _obs
from .exceptions import SpaceExceededError

__all__ = ["RoundCosts", "RoundLedger", "SpaceTracker"]


@dataclass(frozen=True)
class RoundCosts:
    """Unit costs (in MPC rounds) of the charged primitives.

    The defaults charge one round per O(1)-round primitive, i.e. they count
    *primitive invocations*.  Setting e.g. ``sort=3`` would model a sorting
    network that takes 3 physical rounds; all theorems are invariant to
    these constants.
    """

    sort: int = 1
    prefix_sum: int = 1
    aggregate: int = 1
    broadcast: int = 1
    gather_2hop: int = 2  # sort to collect 1-hop + one request/response round
    local: int = 0  # purely local recomputation is free

    def gather_rhop(self, r: int) -> int:
        """Cost of collecting r-hop balls by doubling (Section 5.2.1)."""
        if r <= 1:
            return self.gather_2hop
        return self.gather_2hop * max(1, math.ceil(math.log2(r)))

    def seed_fix(self, seed_bits: int, chunk_bits: int) -> int:
        """Cost of one conditional-expectations seed selection (Sec 2.4)."""
        chunk = max(1, chunk_bits)
        chunks = max(1, math.ceil(seed_bits / chunk))
        # Each chunk needs one aggregate (sum E[q_x | prefix+i] over machines)
        # and one broadcast of the winning extension.
        return chunks * (self.aggregate + self.broadcast)


@dataclass
class RoundLedger:
    """Accumulates charged MPC rounds, tagged by category.

    ``words_moved`` tracks communication volume alongside rounds: call
    sites that know how many ``O(log n)``-bit words a charged primitive
    moved pass it through ``charge(..., words=...)``; accounting-only call
    sites leave it at 0.  This is the backing store for the cross-model
    :class:`~repro.models.ledger.RoundLedgerProtocol`.
    """

    costs: RoundCosts = field(default_factory=RoundCosts)
    total: int = 0
    by_category: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    events: list[tuple[str, int]] = field(default_factory=list)
    words_moved: int = 0

    def charge(self, category: str, rounds: int, *, words: int = 0) -> None:
        if rounds < 0:
            raise ValueError("cannot charge negative rounds")
        if words < 0:
            raise ValueError("cannot charge negative words")
        self.total += rounds
        self.by_category[category] += rounds
        self.events.append((category, rounds))
        self.words_moved += words
        if _obs._TRACING:
            _obs.ledger_event(category, rounds, words)

    # Convenience wrappers keeping call sites declarative -------------- #

    def charge_sort(self, category: str = "sort", *, words: int = 0) -> None:
        self.charge(category, self.costs.sort, words=words)

    def charge_prefix_sum(
        self, category: str = "prefix_sum", *, words: int = 0
    ) -> None:
        self.charge(category, self.costs.prefix_sum, words=words)

    def charge_aggregate(self, category: str = "aggregate", *, words: int = 0) -> None:
        self.charge(category, self.costs.aggregate, words=words)

    def charge_broadcast(self, category: str = "broadcast", *, words: int = 0) -> None:
        self.charge(category, self.costs.broadcast, words=words)

    def charge_gather_2hop(self, category: str = "gather", *, words: int = 0) -> None:
        self.charge(category, self.costs.gather_2hop, words=words)

    def charge_gather_rhop(
        self, r: int, category: str = "gather", *, words: int = 0
    ) -> None:
        self.charge(category, self.costs.gather_rhop(r), words=words)

    def charge_seed_fix(
        self,
        seed_bits: int,
        chunk_bits: int,
        category: str = "seed_fix",
        *,
        words: int = 0,
    ) -> None:
        self.charge(category, self.costs.seed_fix(seed_bits, chunk_bits), words=words)

    def snapshot(self) -> dict[str, int]:
        out = dict(self.by_category)
        out["total"] = self.total
        return out


@dataclass
class SpaceTracker:
    """Tracks per-machine and total space high-water marks.

    ``limit_per_machine`` is ``S`` in words; ``limit_total`` (optional) is
    the global budget ``O(m + n^{1+eps})``.  Algorithms call
    :meth:`observe_loads` whenever data placement changes; violations raise
    immediately so an unsound layout cannot silently pass benchmarks.
    """

    limit_per_machine: int
    limit_total: int | None = None
    max_machine_words: int = 0
    max_total_words: int = 0
    observations: int = 0

    def observe_loads(self, loads, what: str = "") -> None:
        """``loads``: iterable/array of per-machine word counts."""
        import numpy as _np

        self.observations += 1
        arr = _np.asarray(list(loads) if not hasattr(loads, "__array__") else loads)
        if arr.size == 0:
            return
        total = int(arr.sum())
        worst_idx = int(arr.argmax())
        worst = int(arr[worst_idx])
        if worst > self.limit_per_machine:
            raise SpaceExceededError(worst_idx, worst, self.limit_per_machine, what)
        self.max_machine_words = max(self.max_machine_words, worst)
        self.max_total_words = max(self.max_total_words, total)
        if self.limit_total is not None and total > self.limit_total:
            raise SpaceExceededError(-1, total, self.limit_total, f"total {what}")

    def observe_single(self, machine: int, words: int, what: str = "") -> None:
        words = int(words)
        if words > self.limit_per_machine:
            raise SpaceExceededError(machine, words, self.limit_per_machine, what)
        self.max_machine_words = max(self.max_machine_words, words)
