"""Exceptions raised by the MPC/CONGESTED-CLIQUE simulators."""

from __future__ import annotations

__all__ = [
    "CapacityExceededError",
    "MPCModelError",
    "SpaceExceededError",
]


class MPCModelError(RuntimeError):
    """Base class: a simulated algorithm violated a model constraint."""


class SpaceExceededError(MPCModelError):
    """A machine was asked to hold more than ``S`` words."""

    def __init__(self, machine: int, words: int, limit: int, what: str = "") -> None:
        self.machine = machine
        self.words = words
        self.limit = limit
        suffix = f" while {what}" if what else ""
        super().__init__(
            f"machine {machine} holds {words} words > S = {limit}{suffix}"
        )


class CapacityExceededError(MPCModelError):
    """A machine sent or received more than ``S`` words in one round."""

    def __init__(self, machine: int, words: int, limit: int, direction: str) -> None:
        self.machine = machine
        self.words = words
        self.limit = limit
        super().__init__(
            f"machine {machine} {direction} {words} words > per-round cap S = {limit}"
        )
