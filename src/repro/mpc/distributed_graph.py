"""Graph bookkeeping on the literal MPC engine (Section 3.1, executed).

Section 3.1: *"a straightforward application of Lemma 4 allows all nodes to
determine their degrees ... in a constant number of rounds"*.  This module
performs exactly that computation with real message passing on
:class:`~repro.mpc.engine.MPCEngine` -- no central shortcuts -- so the claim
is demonstrated end to end:

1. edges arrive split arbitrarily across machines as directed arcs,
   encoded as sortable integers ``src * n + dst``;
2. :func:`~repro.mpc.primitives.distributed_sort` groups each node's arcs
   onto contiguous machines (3 rounds);
3. each machine counts its local runs and sends one ``(node, count)``
   partial per node to the node's *home machine* (``node % M``), which sums
   the partials (1 round).

Total: 4 engine rounds independent of the input size (for ``M^2 <= S``),
matching the O(1) bound.  The same skeleton computes any per-node
aggregate (the ``sum_{u ~ v} 1/d(u)`` of Section 4.1, the class weights of
Corollary 8, ...); :func:`distributed_node_aggregate` generalises it to
arbitrary per-arc values.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

import numpy as np

from ..graphs.graph import Graph
from ..graphs.io import packed_arc_plane
from ..models.plane import MessageBlock, concat_planes, resolve_engine_backend
from .engine import MPCEngine
from .primitives import distributed_sort, distributed_sort_packed

__all__ = ["distributed_degrees", "distributed_node_aggregate"]


def _load_arcs(engine: MPCEngine, g: Graph) -> None:
    """Distribute the directed arc list (encoded as integers) evenly."""
    engine.load_balanced([int(a) for a in packed_arc_plane(g).tolist()])


def _load_arcs_packed(engine: MPCEngine, g: Graph) -> None:
    """Same contiguous split, but each machine holds one packed slice."""
    engine.load_balanced_packed(packed_arc_plane(g))


def _harvest_pairs(engine: MPCEngine, tag: str, n: int) -> np.ndarray:
    """Sum per-node partials from ``tag`` planes across all machines."""
    out = np.zeros(n, dtype=np.int64)
    for st in engine.storage:
        pairs = concat_planes(st, tag, 2)
        np.add.at(out, pairs[:, 0], pairs[:, 1])
    return out


def distributed_degrees(
    g: Graph, num_machines: int, space: int, *, engine_backend: str | None = None
) -> tuple[np.ndarray, int]:
    """Compute all vertex degrees with real message passing.

    Returns ``(degrees, engine_rounds)``.  Raises the engine's capacity
    errors if the configuration genuinely cannot support the computation --
    the caller picks ``M``/``S`` like an MPC deployment would.
    """
    if resolve_engine_backend(engine_backend) == "columnar":
        return _distributed_degrees_columnar(g, num_machines, space)
    engine = MPCEngine(num_machines=num_machines, space=space)
    _load_arcs(engine, g)
    rounds0 = engine.rounds_executed
    distributed_sort(engine)

    n = max(g.n, 1)
    m_machines = engine.num_machines

    def count_step(mid: int, items: list[Any]):
        counts: dict[int, int] = defaultdict(int)
        for arc in items:
            counts[arc // n] += 1
        sends = []
        keep: list[Any] = []
        for node, cnt in sorted(counts.items()):
            home = node % m_machines
            msg = ("deg", node, cnt)
            if home == mid:
                keep.append(msg)
            else:
                sends.append((home, msg))
        return keep, sends

    engine.round(count_step)

    degrees = np.zeros(g.n, dtype=np.int64)
    for mid in range(m_machines):
        for item in engine.storage[mid]:
            if isinstance(item, tuple) and item[0] == "deg":
                degrees[item[1]] += item[2]
    return degrees, engine.rounds_executed - rounds0


def _distributed_degrees_columnar(
    g: Graph, num_machines: int, space: int
) -> tuple[np.ndarray, int]:
    """The same 4-round schedule over packed planes (identical charges)."""
    engine = MPCEngine(num_machines=num_machines, space=space)
    _load_arcs_packed(engine, g)
    rounds0 = engine.rounds_executed
    distributed_sort_packed(engine)
    n = max(g.n, 1)
    m_machines = engine.num_machines

    def count_step(mid: int, items: list[Any]):
        arcs = next(it for it in items if isinstance(it, np.ndarray))
        blocks = []
        if arcs.size:
            nodes, counts = np.unique(arcs // n, return_counts=True)
            blocks.append(
                MessageBlock(
                    "deg",
                    nodes % m_machines,
                    np.stack([nodes, counts.astype(np.int64)], axis=1),
                )
            )
        return [], blocks

    engine.round_packed(count_step)
    return _harvest_pairs(engine, "deg", g.n), engine.rounds_executed - rounds0


def distributed_node_aggregate(
    g: Graph,
    arc_value: Callable[[int, int], float],
    num_machines: int,
    space: int,
    scale: int = 10**6,
    *,
    engine_backend: str | None = None,
) -> tuple[np.ndarray, int]:
    """Per-node sums ``out[v] = sum_{u ~ v} arc_value(v, u)`` on the engine.

    Values are fixed-point encoded (``scale`` ticks per unit) so messages
    stay integral words.  Same 4-round skeleton as degree computation.
    """
    if resolve_engine_backend(engine_backend) == "columnar":
        return _distributed_node_aggregate_columnar(
            g, arc_value, num_machines, space, scale
        )
    engine = MPCEngine(num_machines=num_machines, space=space)
    _load_arcs(engine, g)
    rounds0 = engine.rounds_executed
    distributed_sort(engine)
    n = max(g.n, 1)
    m_machines = engine.num_machines

    def agg_step(mid: int, items: list[Any]):
        sums: dict[int, int] = defaultdict(int)
        for arc in items:
            src, dst = divmod(arc, n)
            sums[src] += int(round(arc_value(src, dst) * scale))
        sends = []
        keep: list[Any] = []
        for node, total in sorted(sums.items()):
            home = node % m_machines
            msg = ("agg", node, total)
            if home == mid:
                keep.append(msg)
            else:
                sends.append((home, msg))
        return keep, sends

    engine.round(agg_step)

    out = np.zeros(g.n, dtype=np.float64)
    for mid in range(m_machines):
        for item in engine.storage[mid]:
            if isinstance(item, tuple) and item[0] == "agg":
                out[item[1]] += item[2] / scale
    return out, engine.rounds_executed - rounds0


def _distributed_node_aggregate_columnar(
    g: Graph,
    arc_value: Callable[[int, int], float],
    num_machines: int,
    space: int,
    scale: int,
) -> tuple[np.ndarray, int]:
    engine = MPCEngine(num_machines=num_machines, space=space)
    _load_arcs_packed(engine, g)
    rounds0 = engine.rounds_executed
    distributed_sort_packed(engine)
    n = max(g.n, 1)
    m_machines = engine.num_machines

    def agg_step(mid: int, items: list[Any]):
        arcs = next(it for it in items if isinstance(it, np.ndarray))
        blocks = []
        if arcs.size:
            src, dst = np.divmod(arcs, n)
            # ``arc_value`` is a caller-supplied scalar function (the model
            # contract); fixed-point rounding matches the object path so
            # both backends harvest identical integer partials.
            vals = np.fromiter(
                (
                    int(round(arc_value(int(s), int(d)) * scale))
                    for s, d in zip(src.tolist(), dst.tolist())
                ),
                dtype=np.int64,
                count=arcs.size,
            )
            order = np.argsort(src, kind="stable")
            s_sorted = src[order]
            starts = np.nonzero(
                np.concatenate([[True], s_sorted[1:] != s_sorted[:-1]])
            )[0]
            nodes = s_sorted[starts]
            sums = np.add.reduceat(vals[order], starts)
            blocks.append(
                MessageBlock("agg", nodes % m_machines, np.stack([nodes, sums], axis=1))
            )
        return [], blocks

    engine.round_packed(agg_step)
    out = _harvest_pairs(engine, "agg", g.n).astype(np.float64) / scale
    return out, engine.rounds_executed - rounds0
