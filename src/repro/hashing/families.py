"""Composite hash families and the small-seed family of paper Section 5.

Two constructions on top of :class:`~repro.hashing.kwise.KWiseHashFamily`:

* :class:`ProductHashFamily` -- pairs two independent k-wise families to get
  k-wise independent values over the product range ``[q0 * q1]``.  This gives
  the "wide" value range the paper gets from ``[n^3]``: with
  ``q0, q1 = Theta(n)`` the combined range is ``Theta(n^2)`` and ties among
  distinct ids occur with probability ``O(1/n^2)`` per pair, so the
  local-minimum selection of Luby's algorithm is effectively tie-free (we
  additionally break residual ties by id, which only helps progress).

* :class:`ColorHashFamily` -- the Section-5 family ``H*``: a pairwise family
  over the *color space* ``[O(Delta^4)]`` of a distance-2 coloring, so a seed
  costs only ``O(log Delta)`` bits instead of ``O(log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .kwise import KWiseHashFamily, make_family
from .primes import next_prime


@dataclass(frozen=True)
class ProductHashFamily:
    """k-wise independent ``h : [min(q0,q1)] -> [q0*q1]`` from two fields.

    A seed is ``s = s1 * size0 + s0`` combining seeds of the two component
    families; the value is ``h(x) = h1(x) * q0 + h0(x)``.  Since the two
    component coefficient vectors are chosen independently and each family is
    k-wise independent over its own field, the pair ``(h1(x), h0(x))`` is
    k-wise independent and uniform over ``[q1] x [q0]``, hence ``h(x)`` is
    k-wise independent and uniform over ``[q0 * q1]``.
    """

    f0: KWiseHashFamily
    f1: KWiseHashFamily

    def __post_init__(self) -> None:
        if self.f0.k != self.f1.k:
            raise ValueError("component families must share independence k")

    @property
    def k(self) -> int:
        return self.f0.k

    @property
    def independence(self) -> int:
        return self.f0.k

    @property
    def domain(self) -> int:
        return min(self.f0.q, self.f1.q)

    @property
    def range(self) -> int:
        return self.f0.q * self.f1.q

    @property
    def size(self) -> int:
        return self.f0.size * self.f1.size

    @property
    def seed_bits(self) -> int:
        return max(1, (self.size - 1).bit_length())

    def seeds(self) -> Iterator[int]:
        return iter(range(self.size))

    def split_seed(self, seed: int) -> tuple[int, int]:
        if not 0 <= seed < self.size:
            raise ValueError(f"seed {seed} out of range [0, {self.size})")
        return seed % self.f0.size, seed // self.f0.size

    def evaluate(self, seed: int, xs: np.ndarray | int) -> np.ndarray:
        s0, s1 = self.split_seed(seed)
        v0 = self.f0.evaluate(s0, xs)
        v1 = self.f1.evaluate(s1, xs)
        return v1 * np.uint64(self.f0.q) + v0

    def split_seeds(self, seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`split_seed` over an int64 seed block."""
        seed_arr = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
        if seed_arr.size and (
            int(seed_arr.min()) < 0 or int(seed_arr.max()) >= self.size
        ):
            raise ValueError(f"seed out of range [0, {self.size})")
        if self.f0.size < 2**62:
            size0 = np.int64(self.f0.size)
            return seed_arr % size0, seed_arr // size0
        s0 = np.empty(seed_arr.size, dtype=np.int64)
        s1 = np.empty(seed_arr.size, dtype=np.int64)
        for i, s in enumerate(seed_arr.tolist()):  # exact for huge components
            s0[i], s1[i] = self.split_seed(int(s))
        return s0, s1

    def evaluate_batch(self, seeds: np.ndarray, xs: np.ndarray | int) -> np.ndarray:
        """``(S, N)`` uint64 block evaluation; row ``i`` == ``evaluate(seeds[i], xs)``.

        Contiguous seed blocks (the scan case) decompose into a contiguous
        ``f0`` run and an ``f1`` component that is *constant* until ``s0``
        wraps around ``f0.size`` -- so the second field is evaluated once
        per run and broadcast, and ``f0`` takes its own incremental path.
        """
        s0, s1 = self.split_seeds(seeds)
        v0 = self.f0.evaluate_batch(s0, xs)
        if s1.size > 1 and int(s1[0]) == int(s1[-1]) and bool(np.all(s1 == s1[0])):
            v1_row = self.f1.evaluate(int(s1[0]), xs)
            return np.atleast_1d(v1_row)[None, :] * np.uint64(self.f0.q) + v0
        v1 = self.f1.evaluate_batch(s1, xs)
        return v1 * np.uint64(self.f0.q) + v0

    def threshold(self, prob: float) -> int:
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {prob}")
        return min(self.range, int(prob * self.range))

    def sample_indicator(self, seed: int, xs: np.ndarray, prob: float) -> np.ndarray:
        t = self.threshold(prob)
        return self.evaluate(seed, xs) < np.uint64(t)


def make_product_family(universe: int, k: int, *, min_q: int = 257) -> ProductHashFamily:
    """Product family with both fields covering ``[0, universe)``.

    The two fields are chosen as *distinct* consecutive primes so the
    component families are not trivially correlated under the canonical
    seed-scan order used by deterministic search.
    """
    q0 = next_prime(max(universe, min_q, 2))
    q1 = next_prime(q0 + 1)
    return ProductHashFamily(KWiseHashFamily(q=q0, k=k), KWiseHashFamily(q=q1, k=k))


@dataclass(frozen=True)
class ColorHashFamily:
    """Section-5 family ``H*``: pairwise functions over a color space.

    Nodes are renamed by a distance-2 coloring ``chi`` with ``C`` colors
    (``C = O(Delta^4)`` after Linial coloring of ``G^2``); hashing the color
    instead of the id shrinks the seed to ``2 ceil(log2 C')`` bits where
    ``C'`` is the field covering the colors.  Because any two nodes within
    two hops have distinct colors, the pairwise independence *within every
    2-hop neighbourhood* -- all that Luby's analysis needs -- is preserved.
    """

    base: KWiseHashFamily
    num_colors: int

    @property
    def size(self) -> int:
        return self.base.size

    @property
    def seed_bits(self) -> int:
        return self.base.seed_bits

    @property
    def range(self) -> int:
        return self.base.q

    def seeds(self) -> Iterator[int]:
        return self.base.seeds()

    def evaluate_colors(self, seed: int, colors: np.ndarray) -> np.ndarray:
        """Hash an array of node colors to z-values in ``[q)``."""
        return self.base.evaluate(seed, colors)

    def evaluate_colors_batch(self, seeds: np.ndarray, colors: np.ndarray) -> np.ndarray:
        """``(S, N)`` uint64 block of color hashes (batched :meth:`evaluate_colors`)."""
        return self.base.evaluate_batch(seeds, colors)


def make_color_family(num_colors: int) -> ColorHashFamily:
    """Pairwise family over ``[num_colors]`` (seed length ``O(log Delta)``)."""
    base = make_family(num_colors, k=2, min_q=max(num_colors, 5))
    return ColorHashFamily(base=base, num_colors=num_colors)
