"""k-wise independent hash families (paper Definition 5 / Lemma 6).

We implement the classical degree-``(k-1)`` polynomial construction over a
prime field ``Z_q``:

    ``h_{a_0..a_{k-1}}(x) = a_{k-1} x^{k-1} + ... + a_1 x + a_0  (mod q)``

For uniformly random coefficients, the values ``h(x_1), ..., h(x_k)`` at any
``k`` distinct points are independent and uniform over ``[q]`` -- exactly the
guarantee Definition 5 asks for, with seed length ``k * ceil(log2 q)`` bits,
matching Lemma 6's ``k * max{a, b}`` random bits.

Evaluation is fully vectorised (Horner's rule over ``uint64``); the field size
is capped below ``2**31`` so intermediate products fit in 64 bits.

The paper's family maps ``[n^3] -> [n^3]`` purely so that additive ``1/n^3``
error terms vanish asymptotically.  We keep the field size a parameter
(``q = Theta(n)`` by default in the algorithms) and track the ``O(1/q)`` bias
explicitly; :class:`~repro.hashing.families.ProductHashFamily` pairs two
independent copies when a wide, collision-free value range is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .primes import is_prime, next_prime

#: Largest permitted field size: keeps ``(q-1)**2 + (q-1) < 2**63`` so Horner
#: steps never overflow uint64.
MAX_FIELD = 2**31 - 1


def _as_uint64(xs: np.ndarray | int) -> np.ndarray:
    arr = np.asarray(xs, dtype=np.uint64)
    return arr


@dataclass(frozen=True)
class KWiseHashFamily:
    """Family of k-wise independent functions ``h : [q] -> [q]``.

    Parameters
    ----------
    q:
        Field size; must be prime and ``<= MAX_FIELD``.  The domain of the
        functions is ``[q]`` (callers hash ids ``< q``) and the raw output
        range is ``[q]``.
    k:
        Independence parameter (``k >= 1``).  ``k = 2`` is the pairwise
        family used by the Luby selection steps; the sparsification stages
        use ``k = c`` for a constant ``c >= 2`` (paper Section 3.2).

    A *seed* is an integer in ``[0, q**k)`` encoding the coefficient vector
    ``(a_0, ..., a_{k-1})`` in base ``q``.  For ``k >= 2`` the *linear*
    coefficient ``a_1`` occupies the least significant digit (then ``a_0``,
    then ``a_2, a_3, ...``): deterministic seed *scans* enumerate seeds in
    increasing order, and this digit order makes the first ``q`` functions
    scanned the non-degenerate linear maps ``x -> a_1 x`` rather than the
    constant functions ``x -> a_0``.  The family itself is unchanged (it is
    the same set of functions, re-indexed), so all independence guarantees
    are unaffected.
    """

    q: int
    k: int
    _powers: tuple[int, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"independence k must be >= 1, got {self.k}")
        if self.q > MAX_FIELD:
            raise ValueError(f"field size {self.q} exceeds MAX_FIELD={MAX_FIELD}")
        if not is_prime(self.q):
            raise ValueError(f"field size must be prime, got {self.q}")
        object.__setattr__(self, "_powers", tuple(self.q**j for j in range(self.k + 1)))

    # ------------------------------------------------------------------ #
    # Family metadata
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of functions in the family, ``q**k``."""
        return self._powers[self.k]

    @property
    def seed_bits(self) -> int:
        """Bits needed to specify a seed (paper: ``O(k log q)``)."""
        return max(1, (self.size - 1).bit_length())

    @property
    def domain(self) -> int:
        return self.q

    @property
    def range(self) -> int:
        return self.q

    @property
    def independence(self) -> int:
        return self.k

    # ------------------------------------------------------------------ #
    # Seed codec
    # ------------------------------------------------------------------ #

    def _digit_order(self) -> tuple[int, ...]:
        """Coefficient index stored in each base-q seed digit (see class doc)."""
        if self.k >= 2:
            return (1, 0) + tuple(range(2, self.k))
        return (0,)

    def coefficients(self, seed: int) -> tuple[int, ...]:
        """Decode a seed into its coefficient vector ``(a_0, ..., a_{k-1})``."""
        if not 0 <= seed < self.size:
            raise ValueError(f"seed {seed} out of range [0, {self.size})")
        coeffs = [0] * self.k
        s = seed
        for idx in self._digit_order():
            coeffs[idx] = s % self.q
            s //= self.q
        return tuple(coeffs)

    def seed_from_coefficients(self, coeffs: tuple[int, ...] | list[int]) -> int:
        """Inverse of :meth:`coefficients`."""
        if len(coeffs) != self.k:
            raise ValueError(f"expected {self.k} coefficients, got {len(coeffs)}")
        seed = 0
        for digit, idx in enumerate(self._digit_order()):
            a = coeffs[idx]
            if not 0 <= a < self.q:
                raise ValueError(f"coefficient {a} out of field [0, {self.q})")
            seed += a * self._powers[digit]
        return seed

    def seeds(self) -> Iterator[int]:
        """Iterate over every seed in a fixed (canonical) order."""
        return iter(range(self.size))

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, seed: int, xs: np.ndarray | int) -> np.ndarray:
        """Evaluate ``h_seed`` at the points ``xs`` (vectorised).

        ``xs`` must contain values in ``[0, q)``; the result is a uint64
        array of values in ``[0, q)``.
        """
        coeffs = self.coefficients(seed)
        x = _as_uint64(xs)
        if x.size and int(x.max(initial=0)) >= self.q:
            raise ValueError("hash input outside field domain; reduce ids first")
        q = np.uint64(self.q)
        # Horner: h = (((a_{k-1} x + a_{k-2}) x + ...) x + a_0)
        h = np.full_like(x, np.uint64(coeffs[-1]))
        for a in reversed(coeffs[:-1]):
            h = (h * x + np.uint64(a)) % q
        return h

    def evaluate_batch(self, seeds: np.ndarray, xs: np.ndarray | int) -> np.ndarray:
        """Evaluate ``S`` functions at ``N`` points: returns ``(S, N)`` uint64.

        Generalizes :meth:`evaluate` over a whole seed block (and
        :meth:`evaluate_many` over many points): row ``i`` equals
        ``evaluate(seeds[i], xs)`` bit-for-bit.

        Two evaluation tiers:

        * *contiguous seed runs* (what the deterministic scans produce):
          digit 0 of the seed is the linear coefficient (see the class
          doc), so ``h_{s+1}(x) = h_s(x) + x  (mod q)`` until the digit
          rolls over -- one Horner base evaluation per run, then a single
          add + conditional subtract per further seed, replacing the
          multiply-mod chain entirely;
        * arbitrary seed blocks: per-seed coefficient vectors stacked into
          ``(k, S)`` columns and one Horner recurrence over the ``(S, N)``
          grid.
        """
        seed_arr = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
        x = np.atleast_1d(_as_uint64(xs))
        if x.size and int(x.max(initial=0)) >= self.q:
            raise ValueError("hash input outside field domain; reduce ids first")
        S = seed_arr.size
        if S > 1 and int(seed_arr[-1]) - int(seed_arr[0]) == S - 1 and bool(
            np.all(np.diff(seed_arr) == 1)
        ):
            return self._evaluate_contiguous(int(seed_arr[0]), S, x)
        q = np.uint64(self.q)
        coeffs = self._stacked_coefficients(seed_arr)
        h = np.empty((S, x.size), dtype=np.uint64)
        h[:] = coeffs[self.k - 1][:, None]
        for j in range(self.k - 2, -1, -1):
            h = (h * x[None, :] + coeffs[j][:, None]) % q
        return h

    def _evaluate_contiguous(self, s0: int, count: int, x: np.ndarray) -> np.ndarray:
        """Incremental evaluation of the contiguous seed run ``[s0, s0+count)``.

        Digit 0 of the seed holds the linear coefficient ``a_1`` when
        ``k >= 2`` (``a_0`` when ``k == 1``), so stepping the seed by one
        adds ``x`` (resp. ``1``) to the hash value mod ``q`` -- until the
        digit rolls over, where a fresh Horner base is computed.  Values
        stay in ``[0, q)`` throughout, so the reduction is a single
        compare-and-subtract; the result is bit-identical to per-seed
        :meth:`evaluate`.
        """
        if not (0 <= s0 and s0 + count <= self.size):
            raise ValueError(f"seed run [{s0}, {s0 + count}) out of range")
        q = np.uint64(self.q)
        step = x if self.k >= 2 else np.ones_like(x)
        out = np.empty((count, x.size), dtype=np.uint64)
        tmp = np.empty(x.size, dtype=np.uint64)
        i = 0
        while i < count:
            s = s0 + i
            run = min(count - i, self.q - (s % self.q))
            out[i] = self.evaluate(s, x)
            for j in range(i + 1, i + run):
                # Branch-free mod-q step: t = h + step < 2q, and t - q
                # wraps around uint64 when t < q, so min(t, t - q) is the
                # reduced value either way.
                row = out[j]
                np.add(out[j - 1], step, out=tmp)
                np.subtract(tmp, q, out=row)
                np.minimum(tmp, row, out=row)
            i += run
        return out

    def _stacked_coefficients(self, seed_arr: np.ndarray) -> np.ndarray:
        """Decode a seed block to a ``(k, S)`` uint64 coefficient matrix."""
        if seed_arr.size and int(seed_arr.min()) < 0:
            raise ValueError("seeds must be non-negative")
        if seed_arr.size and int(seed_arr.max()) >= self.size:
            raise ValueError(f"seed out of range [0, {self.size})")
        q = np.uint64(self.q)
        coeffs = np.empty((self.k, seed_arr.size), dtype=np.uint64)
        if self._powers[self.k - 1] < 2**63:
            # Digit extraction stays exact in uint64 for every valid seed.
            s = seed_arr.astype(np.uint64)
            for digit, idx in enumerate(self._digit_order()):
                coeffs[idx] = (s // np.uint64(self._powers[digit])) % q
        else:  # huge families: decode with exact Python ints, seed by seed
            for i, s in enumerate(seed_arr.tolist()):
                for idx, a in enumerate(self.coefficients(int(s))):
                    coeffs[idx, i] = a
        return coeffs

    def evaluate_many(self, seed_values: np.ndarray, x: int) -> np.ndarray:
        """Evaluate many functions at a *single* point ``x``.

        Vectorised over seeds; used by exhaustive / conditional-expectation
        seed searches.  ``seed_values`` is an int64/uint64 array of seeds.
        """
        seeds = np.asarray(seed_values, dtype=np.uint64)
        q = np.uint64(self.q)
        xs = np.uint64(x % self.q)
        # Decode every coefficient (digit positions follow _digit_order).
        coeffs: dict[int, np.ndarray] = {}
        for digit, idx in enumerate(self._digit_order()):
            coeffs[idx] = (seeds // np.uint64(self._powers[digit])) % q
        h = coeffs[self.k - 1]
        for j in range(self.k - 2, -1, -1):
            h = (h * xs + coeffs[j]) % q
        return h

    def indicator_batch(
        self, seeds: np.ndarray, xs: np.ndarray | int, threshold: int
    ) -> np.ndarray:
        """``(S, N)`` bool block: ``evaluate_batch(seeds, xs) < threshold``.

        For contiguous seed runs the hash rows live in two rotating row
        buffers and only the boolean indicator is materialised -- the hash
        matrix itself (8 bytes/cell) never touches memory, which is what
        makes threshold-sampling scans bandwidth-proportional to the 1-bit
        output.  Bit-identical to comparing :meth:`evaluate_batch`.
        """
        seed_arr = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
        x = np.atleast_1d(_as_uint64(xs))
        if x.size and int(x.max(initial=0)) >= self.q:
            raise ValueError("hash input outside field domain; reduce ids first")
        S = seed_arr.size
        t = np.uint64(threshold)
        if S > 1 and int(seed_arr[-1]) - int(seed_arr[0]) == S - 1 and bool(
            np.all(np.diff(seed_arr) == 1)
        ):
            s0, count = int(seed_arr[0]), S
            if not (0 <= s0 and s0 + count <= self.size):
                raise ValueError(f"seed run [{s0}, {s0 + count}) out of range")
            q = np.uint64(self.q)
            step = x if self.k >= 2 else np.ones_like(x)
            out = np.empty((count, x.size), dtype=bool)
            prev = np.empty(x.size, dtype=np.uint64)
            tmp = np.empty(x.size, dtype=np.uint64)
            i = 0
            while i < count:
                s = s0 + i
                run = min(count - i, self.q - (s % self.q))
                prev[:] = self.evaluate(s, x)
                np.less(prev, t, out=out[i])
                for j in range(i + 1, i + run):
                    np.add(prev, step, out=tmp)
                    np.subtract(tmp, q, out=prev)
                    np.minimum(tmp, prev, out=prev)
                    np.less(prev, t, out=out[j])
                i += run
            return out
        return self.evaluate_batch(seed_arr, x) < t

    def threshold(self, prob: float) -> int:
        """Threshold ``t`` such that ``h(x) < t`` has probability ``~prob``.

        ``Pr[h(x) < t] = t / q`` exactly, so the realised probability is
        ``floor(prob * q) / q`` which differs from ``prob`` by less than
        ``1/q`` -- the additive error the paper bounds by ``1/n^3``.
        """
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {prob}")
        return min(self.q, int(prob * self.q))

    def sample_indicator(self, seed: int, xs: np.ndarray, prob: float) -> np.ndarray:
        """Boolean mask: which of ``xs`` are 'sampled' at rate ``prob``.

        This is the paper's subsampling primitive: ``e in E_h`` iff
        ``h(e) <= n^{3-delta}`` (Section 3.2), generalised to an arbitrary
        rate.
        """
        t = self.threshold(prob)
        return self.evaluate(seed, xs) < np.uint64(t)


def make_family(universe: int, k: int, *, min_q: int = 257) -> KWiseHashFamily:
    """Construct a k-wise family whose field covers ``[0, universe)``.

    ``min_q`` keeps the range granular enough for threshold sampling even on
    tiny inputs (the paper works with range ``n^3``; a floor of a few hundred
    keeps the ``1/q`` bias below half a percent on toy graphs).
    """
    q = next_prime(max(universe, min_q, 2))
    if q > MAX_FIELD:
        raise ValueError(
            f"universe {universe} needs field > MAX_FIELD; shard ids first"
        )
    return KWiseHashFamily(q=q, k=k)
