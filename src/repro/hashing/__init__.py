"""k-wise independent hash families (paper Section 2.3).

Public surface:

* :func:`make_family` / :class:`KWiseHashFamily` -- polynomial families over
  a prime field, the workhorse of every derandomization step.
* :func:`make_product_family` / :class:`ProductHashFamily` -- wide-range
  values for (near) tie-free Luby selection.
* :func:`make_color_family` / :class:`ColorHashFamily` -- the small-seed
  family ``H*`` of Section 5, hashing distance-2 colors.
* :func:`next_prime`, :func:`is_prime` -- field-size selection.
"""

from .primes import is_prime, next_prime, prev_prime
from .kwise import KWiseHashFamily, make_family, MAX_FIELD
from .families import (
    ColorHashFamily,
    ProductHashFamily,
    make_color_family,
    make_product_family,
)

__all__ = [
    "ColorHashFamily",
    "KWiseHashFamily",
    "MAX_FIELD",
    "ProductHashFamily",
    "is_prime",
    "make_color_family",
    "make_family",
    "make_product_family",
    "next_prime",
    "prev_prime",
]
