"""Prime utilities for constructing hash-function families over Z_q.

The polynomial hash families in this package (see :mod:`repro.hashing.kwise`)
work over a prime field ``Z_q``.  The paper (Lemma 6, citing Vadhan Cor. 3.34)
uses fields of characteristic 2; a prime field of comparable size gives the
identical k-wise independence guarantee and is much cheaper to evaluate with
vectorised integer arithmetic, so we use ``Z_q`` throughout and pick ``q`` as
the smallest prime at least as large as both the id universe and the value
range we need.

All primality testing is deterministic for 64-bit inputs (Miller-Rabin with
the standard proven witness set).
"""

from __future__ import annotations

# Witnesses proven sufficient for deterministic Miller-Rabin below 3.3 * 10^24
# (Sorenson & Webster 2015); far beyond the 64-bit inputs we use.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

# Primes smaller than the first witness-set threshold, handled directly.
_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministically test primality of ``n`` (valid for ``n < 3.3e24``)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^s with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime ``q >= n``.  ``next_prime(k) >= 2`` for all ``k``."""
    q = max(2, int(n))
    if q <= 2:
        return 2
    if q % 2 == 0:
        q += 1
    while not is_prime(q):
        q += 2
    return q


def prev_prime(n: int) -> int:
    """Largest prime ``q <= n``; raises ``ValueError`` if ``n < 2``."""
    q = int(n)
    if q < 2:
        raise ValueError(f"no prime <= {n}")
    if q == 2:
        return 2
    if q % 2 == 0:
        q -= 1
    while q >= 3 and not is_prime(q):
        q -= 2
    return q if q >= 2 else 2
