"""CONGEST model extension (the paper's conclusion, made executable)."""

from .model import CongestContext, bfs_depth
from .mis_congest import CongestMISResult, congest_maximal_matching, congest_mis

__all__ = [
    "CongestContext",
    "CongestMISResult",
    "bfs_depth",
    "congest_maximal_matching",
    "congest_mis",
]
