"""CONGEST model substrate (the paper's stated follow-up direction).

The conclusion of the paper: *"We expect our method of derandomizing the
sampling of a low-degree graph ... will prove useful for derandomizing many
more problems in low space or limited bandwidth models (e.g., the CONGEST
model)."*  This package carries the derandomized-Luby machinery into
CONGEST as that extension.

Model: the communication network *is* the input graph; per round every node
may send one ``O(log n)``-bit message over each incident edge.  Global
coordination (the aggregate/broadcast steps of the method of conditional
expectations) is no longer O(1): it costs ``Theta(D)`` rounds over a BFS
tree, where ``D`` is the graph's diameter -- the fundamental price CONGEST
pays relative to CONGESTED CLIQUE / MPC.

The context below computes the BFS-tree depth of the (connected components
of the) input once and charges ``upcast``/``downcast`` operations
accordingly.  It implements the cross-model
:class:`~repro.models.ledger.RoundLedgerProtocol`: ``words_moved`` counts
one word per message, the bandwidth ceiling is ``2 m`` words per round (one
message per edge direction), and an optional per-node storage ceiling makes
locality violations raise :class:`~repro.mpc.exceptions.SpaceExceededError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse.csgraph as csgraph

from ..graphs.graph import Graph
from ..graphs.power import adjacency_matrix
from ..models.ledger import ModelSnapshot
from ..mpc.exceptions import SpaceExceededError
from ..mpc.ledger import RoundLedger

__all__ = ["CongestContext", "bfs_depth"]


def bfs_depth(g: Graph) -> int:
    """Max BFS-tree depth over connected components (eccentricity of the
    per-component BFS roots; an upper bound within 2x of the diameter)."""
    if g.n == 0 or g.m == 0:
        return 0
    a = adjacency_matrix(g)
    n_comp, labels = csgraph.connected_components(a, directed=False)
    depth = 0
    for comp in range(n_comp):
        members = np.nonzero(labels == comp)[0]
        if members.size <= 1:
            continue
        dist = csgraph.shortest_path(
            a, method="BF", unweighted=True, indices=int(members[0])
        )
        finite = dist[np.isfinite(dist)]
        depth = max(depth, int(finite.max(initial=0)))
    return depth


@dataclass
class CongestContext:
    """Round accounting for a CONGEST run on communication graph ``g``."""

    graph: Graph
    ledger: RoundLedger = field(default_factory=RoundLedger)
    #: Optional per-node storage ceiling in words (``None`` = unbounded).
    space_per_node: int | None = None
    #: Ablation: pipeline the per-bit seed votes over the BFS tree so one
    #: phase's seed fix costs ``O(D + seed_bits)`` rounds instead of the
    #: sequential ``2 * D * seed_bits`` (see :meth:`charge_seed_fix`).
    pipeline_seed_fix: bool = False
    max_words_seen: int = 0
    #: Longest seed (in bits) any per-bit voting pass fixed — the instance
    #: value of the ``seed_bits`` cost-model symbol.
    seed_bits_seen: int = 0
    depth: int = field(init=False)

    def __post_init__(self) -> None:
        self.depth = bfs_depth(self.graph)

    @property
    def rounds(self) -> int:
        return self.ledger.total

    # ------------------------------------------------------------------ #
    # Cross-model ledger protocol
    # ------------------------------------------------------------------ #

    @property
    def words_moved(self) -> int:
        return self.ledger.words_moved

    @property
    def space_ceiling(self) -> int | None:
        return self.space_per_node

    @property
    def bandwidth_ceiling(self) -> int | None:
        """One word per edge direction per round: ``2 m`` words."""
        return 2 * self.graph.m

    def charge(self, category: str, rounds: int = 1, *, words: int = 0) -> None:
        self.ledger.charge(category, rounds, words=words)

    def rounds_by_category(self) -> dict[str, int]:
        return dict(self.ledger.by_category)

    def model_snapshot(self) -> ModelSnapshot:
        return ModelSnapshot(
            model="congest",
            rounds=self.rounds,
            words_moved=self.words_moved,
            by_category=self.rounds_by_category(),
            space_ceiling=self.space_per_node,
            bandwidth_ceiling=self.bandwidth_ceiling,
            max_words_seen=self.max_words_seen,
            detail={
                "n": self.graph.n,
                "m": self.graph.m,
                "bfs_depth": self.depth,
                "pipeline_seed_fix": self.pipeline_seed_fix,
                "seed_bits": self.seed_bits_seen,
            },
        )

    def observe_node_words(self, node: int, words: int, what: str = "") -> None:
        """Record a node's storage load; raise past ``space_per_node``."""
        words = int(words)
        if self.space_per_node is not None and words > self.space_per_node:
            raise SpaceExceededError(node, words, self.space_per_node, what)
        self.max_words_seen = max(self.max_words_seen, words)

    # ------------------------------------------------------------------ #
    # Model charging primitives
    # ------------------------------------------------------------------ #

    def charge_local(self, category: str = "local") -> None:
        """One message over every edge simultaneously: 1 round."""
        self.ledger.charge(category, 1, words=2 * self.graph.m)

    def charge_upcast(self, category: str = "aggregate") -> None:
        """Sum/min of one value per node to the BFS roots: depth rounds."""
        self.ledger.charge(category, max(1, self.depth), words=self.graph.n)

    def charge_downcast(self, category: str = "broadcast") -> None:
        """Roots broadcast one value down their trees: depth rounds."""
        self.ledger.charge(category, max(1, self.depth), words=self.graph.n)

    def charge_seed_fix(self, seed_bits: int, category: str = "seed_fix") -> None:
        """Conditional expectations in CONGEST: the O(log n)-bit seed is
        fixed in chunks of one *bit* (each edge carries O(log n) bits, but
        the vote aggregation is the bottleneck): per bit, one upcast + one
        downcast -> ``2 * depth * seed_bits`` rounds.

        This is exactly the round structure of the CHPS-style voting that
        the paper improves on in CLIQUE/MPC -- in CONGEST the tree cost is
        unavoidable without further ideas, which is why the paper flags the
        model as future work rather than claiming a bound.

        With ``pipeline_seed_fix`` the per-bit rounds overlap: bit ``b``'s
        votes start ascending one level behind bit ``b-1``'s broadcast
        (standard BFS-tree pipelining -- the votes for different bits use
        disjoint message slots per edge per round), so the phase costs
        ``2 * depth + 2 * (seed_bits - 1)`` rounds, i.e. ``O(D + seed_bits)``.
        The word volume is unchanged: the same votes move either way.
        """
        bits = max(1, seed_bits)
        self.seed_bits_seen = max(self.seed_bits_seen, bits)
        depth = max(1, self.depth)
        if self.pipeline_seed_fix:
            rounds = 2 * depth + 2 * (bits - 1)
        else:
            rounds = 2 * depth * bits
        self.ledger.charge(category, rounds, words=2 * self.graph.n * bits)
