"""Deterministic MIS in the CONGEST model (extension of the paper's method).

Carries the derandomized-Luby machinery into CONGEST with honest round
accounting: each Luby phase needs (a) one local exchange of z-values
(1 round -- z-values are O(log n)-bit and travel one edge), (b) a global
seed selection.  Two seed-selection pipelines are provided:

* ``voting`` -- bit-by-bit conditional-expectation voting over a BFS tree:
  ``2 D`` rounds per seed bit, i.e. ``Theta(D log n)`` per phase and
  ``Theta(D log^2 n)`` total.  This is the direct port of the classical
  technique ([15]-style) to CONGEST.
* ``color-compressed`` -- first compute a distance-2 coloring (Linial on
  ``G^2``, simulable in CONGEST in ``O(log* n)`` rounds for bounded
  degree), then hash *colors*: the seed shrinks to ``O(log Delta)`` bits,
  so a phase costs ``Theta(D log Delta)`` -- the paper's Section-5 seed
  compression paying off in a third model.  This is precisely the
  "useful for the CONGEST model" extension the conclusion anticipates.

Both produce identical (deterministic) independent sets; only the round
bill differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..derand.strategies import select_seed_batch
from ..graphs.coloring import distance2_coloring
from ..graphs.graph import Graph
from ..hashing.families import make_color_family, make_product_family
from ..models.ledger import ModelSnapshot
from ..models.phase import MAXKEY, LubyPhaseKernel
from .model import CongestContext

__all__ = ["CongestMISResult", "congest_maximal_matching", "congest_mis"]


@dataclass(frozen=True)
class CongestMISResult:
    """Outcome of a CONGEST MIS run."""

    independent_set: np.ndarray
    phases: int
    rounds: int
    bfs_depth: int
    seed_bits_per_phase: int
    mode: str
    edge_trace: tuple[int, ...]
    snapshot: ModelSnapshot | None = None


def congest_mis(
    graph: Graph,
    *,
    mode: str = "color-compressed",
    max_scan_trials: int = 512,
    max_phases: int = 10_000,
    ctx: CongestContext | None = None,
    pipeline_seed_fix: bool = False,
    seed_backend: str | None = None,
    seed_chunk: int | None = None,
) -> CongestMISResult:
    """Deterministic MIS with CONGEST round accounting.

    ``mode`` is ``"voting"`` (id-based seeds, Theta(D log n)/phase) or
    ``"color-compressed"`` (Section-5 style color seeds,
    Theta(D log Delta)/phase after O(log* n) preprocessing).  Passing a
    ``ctx`` lets callers (the cross-model runner, tests) own the ledger.
    ``pipeline_seed_fix`` bills the BFS-pipelined ``O(D + seed_bits)``
    seed broadcast instead of the sequential ``2 D seed_bits`` charge
    (ablation; ignored when an explicit ``ctx`` is supplied).

    .. note:: Prefer ``repro.api.solve(SolveRequest(problem="mis",
       model="congest", graph=g))``; this entry point stays as a
       bit-identical thin path for existing callers.
    """
    if mode not in ("voting", "color-compressed"):
        raise ValueError("mode must be 'voting' or 'color-compressed'")
    ctx = ctx or CongestContext(graph, pipeline_seed_fix=pipeline_seed_fix)
    n = graph.n

    if mode == "color-compressed" and graph.m > 0:
        coloring = distance2_coloring(graph)
        ctx.ledger.charge("coloring", max(1, coloring.iterations))
        family = make_color_family(coloring.num_colors)
        keys_of = coloring.colors.astype(np.int64)
        evaluate_batch = family.evaluate_colors_batch
        seed_bits = family.seed_bits
        fam_size = family.size
    else:
        family = make_product_family(max(n, 2), k=2)
        keys_of = np.arange(n, dtype=np.int64)
        evaluate_batch = family.evaluate_batch
        seed_bits = family.seed_bits
        fam_size = family.size

    stride = np.uint64(n + 1)
    in_mis = np.zeros(n, dtype=bool)
    removed = np.zeros(n, dtype=bool)
    g = graph
    trace: list[int] = []
    phase = 0

    while g.m > 0:
        phase += 1
        if phase > max_phases:
            raise RuntimeError("CONGEST MIS failed to converge")
        trace.append(g.m)
        iso = g.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso

        kernel = LubyPhaseKernel(g, n)
        live = np.nonzero(kernel.live)[0].astype(np.int64)
        live_u64 = live.astype(np.uint64)
        eu, ev = g.edges_u, g.edges_v

        def kill_of(seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            z = evaluate_batch(seeds, keys_of[live])
            key = np.full((z.shape[0], n), MAXKEY, dtype=np.uint64)
            key[:, live] = z * stride + live_u64[None, :]
            return kernel.masks(key)

        def batch_objective(seeds: np.ndarray) -> np.ndarray:
            _, kill = kill_of(seeds)
            return (kill[:, eu] | kill[:, ev]).sum(axis=1).astype(np.float64)

        # Phase-disjoint offsets; wrap-around inside the scan covers the
        # rest of the family when the offset lands near the end.
        start = 1 + ((phase - 1) * max_scan_trials) % max(1, fam_size - 1)
        sel = select_seed_batch(
            fam_size,
            batch_objective,
            strategy="scan",
            target=g.m / 120.0,  # conservative Luby-constant target
            max_trials=max_scan_trials,
            start=start,
            backend=seed_backend,
            chunk_size=seed_chunk,
        )
        i_masks, kills = kill_of(np.array([sel.seed], dtype=np.int64))
        i_mask, kill = i_masks[0], kills[0]
        in_mis |= i_mask
        removed |= kill
        g = g.remove_vertices(kill)

        # Round bill: one local z-exchange + the tree-based seed fix.
        ctx.charge_local("phase_local")
        ctx.charge_seed_fix(seed_bits, "phase_seed")

    in_mis |= ~removed
    return CongestMISResult(
        independent_set=np.nonzero(in_mis)[0].astype(np.int64),
        phases=phase,
        rounds=ctx.rounds,
        bfs_depth=ctx.depth,
        seed_bits_per_phase=seed_bits,
        mode=mode,
        edge_trace=tuple(trace),
        snapshot=ctx.model_snapshot(),
    )


def congest_maximal_matching(
    graph: Graph,
    *,
    mode: str = "color-compressed",
    max_scan_trials: int = 512,
    pipeline_seed_fix: bool = False,
    seed_backend: str | None = None,
    seed_chunk: int | None = None,
) -> CongestMISResult:
    """Maximal matching in CONGEST via MIS on the line graph.

    In CONGEST the line graph is simulable locally (each node knows its
    incident edges; an edge's "node" is simulated by its lower-id endpoint),
    so the round bill carries over with O(1) overhead per phase.  The
    ``independent_set`` of the returned record holds *edge ids* of ``graph``.
    """
    from ..graphs.linegraph import line_graph

    if graph.m == 0:
        return CongestMISResult(
            independent_set=np.empty(0, dtype=np.int64),
            phases=0,
            rounds=0,
            bfs_depth=0,
            seed_bits_per_phase=0,
            mode=mode,
            edge_trace=tuple(),
            snapshot=CongestContext(graph).model_snapshot(),
        )
    lg = line_graph(graph)
    return congest_mis(
        lg,
        mode=mode,
        max_scan_trials=max_scan_trials,
        pipeline_seed_fix=pipeline_seed_fix,
        seed_backend=seed_backend,
        seed_chunk=seed_chunk,
    )
