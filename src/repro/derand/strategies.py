"""Deterministic seed selection (the executable method of Section 2.4).

Every derandomization site in the paper has the same shape: a hash family
``H`` and an objective ``q(h)`` with ``E_h[q] >= Q``; the algorithm must
deterministically find ``h*`` with ``q(h*) >= Q`` in O(1) MPC rounds via the
method of conditional expectations.  This module provides three
interchangeable *deterministic* selectors (see DESIGN.md "Seed selection
fidelity" for the discussion):

``conditional_expectation``
    The literal Section-2.4 procedure.  The objective is evaluated for every
    seed once (vectorisable); the seed is then located by *prefix descent*:
    fix ``chunk_bits`` of the seed at a time, always choosing the extension
    whose exact conditional expectation (mean over consistent suffixes) is
    maximal.  Guarantees ``q(h*) >= E[q]``.  Cost Theta(|H|) objective
    evaluations, so it is used when the family is enumerable.

``scan``
    Deterministic scan of seeds in canonical order, stopping at the first
    seed whose objective meets an explicit ``target`` (which the existence
    argument guarantees some seed satisfies).  Expected O(1) trials when
    good seeds are abundant -- which the paper's lemmas establish -- and the
    trial count is returned so benchmarks can report it.  A ``start`` offset
    rotates the canonical order: the scan covers ``[start, |H|)`` first and
    then *wraps around* to ``[1, start)`` (seed 0 stays skipped whenever
    ``start >= 1`` -- it encodes the constant-zero hash), so a start past
    the end of the family or a late-phase offset never silently shrinks the
    searched region.  If the trial cap is exhausted the best seed seen is
    returned with ``satisfied=False``.

``best_of``
    Evaluate a fixed-size canonical prefix of the family and take the best.
    Cheap, deterministic, no a-priori guarantee; used in ablations.

Batched objectives
------------------
The engine underneath all three selectors consumes a :data:`BatchObjective`
-- ``seeds: int64[S] -> float64[S]`` -- evaluated in fixed-size seed chunks
with early exit on the first chunk containing a target hit.  Call sites
provide natively vectorised kernels (one hash ``evaluate_batch`` plus 2-D
segment reductions per chunk); :func:`select_seed` keeps the scalar
``Objective`` API by adapting it one seed at a time, and the two paths are
*bit-identical*: same selected seed, value, trial count, ``satisfied`` flag
and ``family_mean``, enforced by property tests and the
``bench_seed_search`` parity gate.

Backend selection mirrors the PR-2 kernel switch: ``backend="batched" |
"scalar" | "jit" | None``, where ``None`` resolves through
``REPRO_SEED_BACKEND`` and defaults to ``"batched"``.  The ``"scalar"``
backend runs the same engine with chunk size 1 (lazy, one objective
evaluation per trial) and exists as the like-for-like baseline / bisection
fallback.  The ``"jit"`` backend keeps the batched engine but lets call
sites swap in fused compiled objectives (:mod:`repro.derand.seed_jit`); it
degrades to ``"batched"`` when numba is unavailable.

The round cost of a selection is charged by the *caller* through the ledger
(``charge_seed_fix``), because it depends on model constants, not on which
selector ran.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from ..obs import trace as _obs
from ..obs.metrics import METRICS

__all__ = [
    "BatchObjective",
    "ConditionalExpectationError",
    "DEFAULT_SEED_CHUNK",
    "SEED_BACKENDS",
    "SeedSelection",
    "Strategy",
    "batched_from_scalar",
    "fold_scan",
    "iter_seed_blocks",
    "resolve_seed_backend",
    "resolve_seed_chunk",
    "resolve_seed_workers",
    "scan_regions",
    "select_seed",
    "select_seed_batch",
]

Strategy = str  # "conditional_expectation" | "scan" | "best_of"

#: Objective: maps a seed (int) to a float score; larger is better.
Objective = Callable[[int], float]

#: Batched objective: maps an int64 seed block to per-seed float64 scores.
BatchObjective = Callable[[np.ndarray], np.ndarray]

SEED_BACKENDS = ("batched", "scalar", "jit")
DEFAULT_SEED_BACKEND = "batched"
DEFAULT_SEED_CHUNK = 64


class ConditionalExpectationError(RuntimeError):
    """The prefix-descent invariant ``q(h*) >= E[q]`` failed.

    This indicates a non-deterministic or mis-specified objective (the
    descent itself preserves "conditional mean >= global mean" by
    construction); it is raised as a real exception rather than an
    ``assert`` so the check survives ``python -O``.
    """


def resolve_seed_backend(backend: str | None = None) -> str:
    """Resolve an explicit or environment-selected seed-search backend.

    ``"jit"`` (fused compiled seed-scan objectives, see
    :mod:`repro.derand.seed_jit`) degrades to ``"batched"`` when numba is
    unavailable -- same one-time warning + ``kernels.jit_fallbacks``
    counter as the kernel-backend resolver, never an error.
    """
    resolved = backend or os.environ.get("REPRO_SEED_BACKEND", DEFAULT_SEED_BACKEND)
    if resolved not in SEED_BACKENDS:
        raise ValueError(
            f"unknown seed backend {resolved!r}; expected one of {SEED_BACKENDS}"
        )
    if resolved == "jit":
        from ..graphs import kernels_jit

        if not kernels_jit.available():
            kernels_jit.note_fallback("seed backend resolution")
            return DEFAULT_SEED_BACKEND
    return resolved


def resolve_seed_chunk(chunk_size: int | None = None) -> int:
    """Seed-block size for batched evaluation (``REPRO_SEED_CHUNK``)."""
    resolved = chunk_size or int(os.environ.get("REPRO_SEED_CHUNK", DEFAULT_SEED_CHUNK))
    if resolved < 1:
        raise ValueError(f"seed chunk size must be >= 1, got {resolved}")
    return resolved


def resolve_seed_workers(workers: int | None = None) -> int:
    """Process count for the parallel stage scan (``REPRO_SEED_WORKERS``).

    ``0`` / ``None`` falls back to the environment; the serial scan runs
    unless the resolved value is ``> 1``.  This is the single place the
    variable is read (``ExecutionConfig`` and the stage search both resolve
    through it).
    """
    resolved = workers or int(os.environ.get("REPRO_SEED_WORKERS", "0") or 0)
    if resolved < 0:
        raise ValueError(f"seed scan workers must be >= 0, got {resolved}")
    return resolved


def batched_from_scalar(objective: Objective) -> BatchObjective:
    """Adapt a scalar ``Objective`` to the :data:`BatchObjective` protocol."""

    def batch(seeds: np.ndarray) -> np.ndarray:
        return np.array([objective(int(s)) for s in seeds], dtype=np.float64)

    return batch


@dataclass(frozen=True)
class SeedSelection:
    """Outcome of a deterministic seed search."""

    seed: int
    value: float
    trials: int  # objective evaluations performed
    strategy: str
    satisfied: bool  # True iff the strategy's own guarantee was met
    family_mean: float | None = None  # exact E[q] when it was computed


# --------------------------------------------------------------------- #
# Canonical scan order
# --------------------------------------------------------------------- #


def scan_regions(family_size: int, start: int) -> tuple[list[tuple[int, int]], int]:
    """Half-open seed ranges covering the canonical (wrapped) scan order.

    The order is ``start, start+1, ..., family_size-1`` followed by the
    wrap region ``wrap_base, ..., start-1`` where ``wrap_base = 1`` when
    ``start >= 1`` (preserving the skip-the-constant-zero-hash convention)
    and ``0`` otherwise.  A ``start`` at or past the end of the family is
    reduced modulo the scannable span instead of silently clamping the
    region to a single seed.  Returns ``(regions, normalized_start)``.
    """
    if family_size < 1:
        raise ValueError("empty family")
    if start < 0:
        raise ValueError(f"start must be >= 0, got {start}")
    wrap_base = 1 if start >= 1 else 0
    span = family_size - wrap_base
    if span <= 0:  # family is {0} but the caller asked to skip seed 0
        return [(0, family_size)], 0
    start = wrap_base + (start - wrap_base) % span
    regions = [(start, family_size)]
    if start > wrap_base:
        regions.append((wrap_base, start))
    return regions, start


#: First block size of the geometric ramp (see :func:`iter_seed_blocks`).
#: Starting at 1 makes the overwhelmingly common case -- the paper's lemmas
#: guarantee good seeds are abundant, so scans usually satisfy within the
#: first seed or two -- cost exactly what the lazy scalar scan costs, while
#: doubling reaches full vectorisation within ~log2(chunk) blocks.
RAMP_START = 1


def iter_seed_blocks(
    regions: list[tuple[int, int]], max_trials: int, chunk_size: int
) -> Iterator[np.ndarray]:
    """Yield int64 seed blocks along the scan order, ramping up to ``chunk_size``.

    Block sizes start at ``min(RAMP_START, chunk_size)`` and double per
    block: an early-exit scan evaluates at most twice the trials it would
    have spent one seed at a time, while long scans reach full
    ``chunk_size`` vectorisation within a few blocks.  The total
    number of seeds yielded is capped at ``max_trials``; block boundaries
    never affect which seeds are visited, only how many are evaluated per
    objective call.
    """
    budget = max_trials
    size = min(RAMP_START, chunk_size)
    for lo, hi in regions:
        s = lo
        while s < hi and budget > 0:
            c = min(size, hi - s, budget)
            yield np.arange(s, s + c, dtype=np.int64)
            budget -= c
            s += c
            size = min(size * 2, chunk_size)
        if budget <= 0:
            return


# --------------------------------------------------------------------- #
# Engine: every selector folds (seed block, value block) streams
# --------------------------------------------------------------------- #


def fold_scan(
    evaluated: Iterable[tuple[np.ndarray, np.ndarray]],
    target: float,
    first_seed: int,
) -> SeedSelection:
    """Fold evaluated seed blocks (in canonical order) into a scan outcome.

    Deterministic first-satisfying-seed resolution: the first seed in scan
    order whose value meets ``target`` wins, and ``trials`` counts only the
    seeds at or before it -- independent of how the stream was chunked or
    whether later blocks were evaluated speculatively (the parallel scanner
    reuses this fold for exactly that reason).
    """
    best_seed, best_val = first_seed, -np.inf
    trials = 0
    for seeds, vals in evaluated:
        hits = np.nonzero(vals >= target)[0]
        if hits.size:
            i = int(hits[0])
            METRICS.inc("seed_scan.early_exits")
            METRICS.observe("seed_scan.early_exit_depth", trials + i + 1)
            return SeedSelection(
                seed=int(seeds[i]),
                value=float(vals[i]),
                trials=trials + i + 1,
                strategy="scan",
                satisfied=True,
            )
        trials += int(seeds.size)
        if vals.size:
            j = int(np.argmax(vals))
            if vals[j] > best_val:
                best_seed, best_val = int(seeds[j]), float(vals[j])
    return SeedSelection(
        seed=best_seed,
        value=float(best_val),
        trials=trials,
        strategy="scan",
        satisfied=bool(best_val >= target),
    )


def _evaluate_stream(
    batch_objective: BatchObjective, blocks: Iterator[np.ndarray]
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    for seeds in blocks:
        vals = np.asarray(batch_objective(seeds), dtype=np.float64)
        if vals.shape != seeds.shape:
            raise ValueError(
                f"batch objective returned shape {vals.shape} for "
                f"{seeds.size} seeds"
            )
        METRICS.inc("seed_scan.chunks")
        METRICS.inc("seed_scan.trials", int(seeds.size))
        yield seeds, vals


def _scan(
    family_size: int,
    batch_objective: BatchObjective,
    target: float,
    max_trials: int,
    start: int,
    chunk_size: int,
) -> SeedSelection:
    regions, first_seed = scan_regions(family_size, start)
    stream = _evaluate_stream(
        batch_objective, iter_seed_blocks(regions, max_trials, chunk_size)
    )
    return fold_scan(stream, target, first_seed)


def _evaluate_all(
    family_size: int, batch_objective: BatchObjective, chunk_size: int
) -> np.ndarray:
    values = np.empty(family_size, dtype=np.float64)
    for seeds, vals in _evaluate_stream(
        batch_objective,
        iter_seed_blocks([(0, family_size)], family_size, chunk_size),
    ):
        values[seeds[0] : seeds[-1] + 1] = vals
    return values


def _conditional_expectation(
    family_size: int, batch_objective: BatchObjective, chunk_size: int
) -> SeedSelection:
    """Prefix-descent with exact conditional expectations.

    Seeds are integers in ``[0, family_size)``.  We fix bits from the most
    significant end; the conditional expectation of a prefix is the mean of
    the objective over all seeds sharing it (suffix enumeration made cheap
    by evaluating the whole family once up front).  Non-power-of-two family
    sizes are handled by restricting every prefix interval to
    ``[0, family_size)`` and skipping empty branches.
    """
    if family_size < 1:
        raise ValueError("empty family")
    values = _evaluate_all(family_size, batch_objective, chunk_size)
    mean = float(values.mean())
    bits = max(1, (family_size - 1).bit_length())
    lo, hi = 0, family_size  # current consistent interval [lo, hi)
    for level in range(bits - 1, -1, -1):
        width = 1 << level
        # candidate sub-intervals: [lo, lo+width) and [lo+width, hi)
        mid = min(lo + width, hi)
        left_mean = float(values[lo:mid].mean()) if mid > lo else -np.inf
        right_mean = float(values[mid:hi].mean()) if hi > mid else -np.inf
        if left_mean >= right_mean:
            hi = mid
        else:
            lo = mid
        if hi - lo <= 1:
            break
    seed = int(lo)
    val = float(values[seed])
    # The probabilistic-method invariant: every descent step preserves
    # "conditional mean >= global mean", so the final seed meets the bound.
    if not val >= mean - 1e-9:
        raise ConditionalExpectationError(
            f"conditional expectation descent lost the bound: "
            f"q(h*) = {val} < E[q] = {mean}"
        )
    return SeedSelection(
        seed=seed,
        value=val,
        trials=family_size,
        strategy="conditional_expectation",
        satisfied=True,
        family_mean=mean,
    )


def _best_of(
    family_size: int, batch_objective: BatchObjective, k: int, chunk_size: int
) -> SeedSelection:
    k = min(k, family_size)
    best_seed, best_val = 0, -np.inf
    for seeds, vals in _evaluate_stream(
        batch_objective, iter_seed_blocks([(0, k)], k, chunk_size)
    ):
        if vals.size:
            j = int(np.argmax(vals))
            if vals[j] > best_val:
                best_seed, best_val = int(seeds[j]), float(vals[j])
    return SeedSelection(
        seed=best_seed,
        value=float(best_val),
        trials=k,
        strategy="best_of",
        satisfied=True,
    )


# --------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------- #


def select_seed_batch(
    family_size: int,
    batch_objective: BatchObjective,
    *,
    strategy: Strategy = "scan",
    target: float | None = None,
    max_trials: int = 512,
    enumeration_cap: int = 1 << 16,
    best_of_k: int = 64,
    start: int = 0,
    backend: str | None = None,
    chunk_size: int | None = None,
) -> SeedSelection:
    """Deterministically pick a seed using a natively batched objective.

    ``backend="batched"`` evaluates seed blocks of ``chunk_size``;
    ``backend="scalar"`` runs the identical engine one seed at a time.
    Both return the same :class:`SeedSelection` bit-for-bit.  ``scan``
    requires a ``target`` (the value the existence argument guarantees);
    the other strategies ignore it.  ``start`` rotates the canonical scan
    order (see :func:`scan_regions`) -- stage searches start at 1 because
    seed 0 encodes the constant-zero hash (an all-or-nothing sampler that
    can be vacuously "good" without making progress at finite sizes).
    """
    if family_size < 1:
        raise ValueError("family_size must be >= 1")
    chunk = 1 if resolve_seed_backend(backend) == "scalar" else resolve_seed_chunk(
        chunk_size
    )
    t_sel = _obs.clock() if _obs._TRACING else 0.0
    if strategy == "conditional_expectation":
        if family_size > enumeration_cap:
            raise ValueError(
                f"family of size {family_size} exceeds enumeration cap "
                f"{enumeration_cap}; use strategy='scan'"
            )
        sel = _conditional_expectation(family_size, batch_objective, chunk)
    elif strategy == "scan":
        if target is None:
            raise ValueError("scan strategy requires a target")
        sel = _scan(family_size, batch_objective, target, max_trials, start, chunk)
    elif strategy == "best_of":
        sel = _best_of(family_size, batch_objective, best_of_k, chunk)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    if _obs._TRACING:
        _obs.record_span(
            "seed.select",
            t_sel,
            {
                "strategy": sel.strategy,
                "family_size": family_size,
                "trials": sel.trials,
                "seed": sel.seed,
                "satisfied": sel.satisfied,
                "chunk": chunk,
            },
        )
    return sel


def select_seed(
    family_size: int,
    objective: Objective,
    *,
    strategy: Strategy = "scan",
    target: float | None = None,
    max_trials: int = 512,
    enumeration_cap: int = 1 << 16,
    best_of_k: int = 64,
    start: int = 0,
) -> SeedSelection:
    """Deterministically pick a seed from ``[0, family_size)``.

    Scalar-objective adapter around :func:`select_seed_batch`: the
    objective is evaluated lazily one seed at a time (exactly one call per
    reported trial), so existing scalar call sites keep their evaluation
    counts while sharing the batched engine's scan order and semantics.
    """
    return select_seed_batch(
        family_size,
        batched_from_scalar(objective),
        strategy=strategy,
        target=target,
        max_trials=max_trials,
        enumeration_cap=enumeration_cap,
        best_of_k=best_of_k,
        start=start,
        backend="scalar",
    )
