"""Deterministic seed selection (the executable method of Section 2.4).

Every derandomization site in the paper has the same shape: a hash family
``H`` and an objective ``q(h)`` with ``E_h[q] >= Q``; the algorithm must
deterministically find ``h*`` with ``q(h*) >= Q`` in O(1) MPC rounds via the
method of conditional expectations.  This module provides three
interchangeable *deterministic* selectors (see DESIGN.md for the fidelity
discussion):

``conditional_expectation``
    The literal Section-2.4 procedure.  The objective is evaluated for every
    seed once (vectorisable); the seed is then located by *prefix descent*:
    fix ``chunk_bits`` of the seed at a time, always choosing the extension
    whose exact conditional expectation (mean over consistent suffixes) is
    maximal.  Guarantees ``q(h*) >= E[q]``.  Cost Theta(|H|) objective
    evaluations, so it is used when the family is enumerable.

``scan``
    Deterministic scan of seeds in canonical order, stopping at the first
    seed whose objective meets an explicit ``target`` (which the existence
    argument guarantees some seed satisfies).  Expected O(1) trials when
    good seeds are abundant -- which the paper's lemmas establish -- and the
    trial count is returned so benchmarks can report it.  If the trial cap
    is exhausted the best seed seen is returned with ``satisfied=False``.

``best_of``
    Evaluate a fixed-size canonical prefix of the family and take the best.
    Cheap, deterministic, no a-priori guarantee; used in ablations.

The round cost of a selection is charged by the *caller* through the ledger
(``charge_seed_fix``), because it depends on model constants, not on which
selector ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "SeedSelection",
    "Strategy",
    "select_seed",
]

Strategy = str  # "conditional_expectation" | "scan" | "best_of"

#: Objective: maps a seed (int) to a float score; larger is better.
Objective = Callable[[int], float]


@dataclass(frozen=True)
class SeedSelection:
    """Outcome of a deterministic seed search."""

    seed: int
    value: float
    trials: int  # objective evaluations performed
    strategy: str
    satisfied: bool  # True iff the strategy's own guarantee was met
    family_mean: float | None = None  # exact E[q] when it was computed


def _evaluate_all(family_size: int, objective: Objective) -> np.ndarray:
    values = np.empty(family_size, dtype=np.float64)
    for s in range(family_size):
        values[s] = objective(s)
    return values


def _conditional_expectation(
    family_size: int, objective: Objective
) -> SeedSelection:
    """Prefix-descent with exact conditional expectations.

    Seeds are integers in ``[0, family_size)``.  We fix bits from the most
    significant end; the conditional expectation of a prefix is the mean of
    the objective over all seeds sharing it (suffix enumeration made cheap
    by evaluating the whole family once up front).  Non-power-of-two family
    sizes are handled by restricting every prefix interval to
    ``[0, family_size)`` and skipping empty branches.
    """
    if family_size < 1:
        raise ValueError("empty family")
    values = _evaluate_all(family_size, objective)
    mean = float(values.mean())
    bits = max(1, (family_size - 1).bit_length())
    lo, hi = 0, family_size  # current consistent interval [lo, hi)
    for level in range(bits - 1, -1, -1):
        width = 1 << level
        # candidate sub-intervals: [lo, lo+width) and [lo+width, hi)
        mid = min(lo + width, hi)
        left_mean = float(values[lo:mid].mean()) if mid > lo else -np.inf
        right_mean = float(values[mid:hi].mean()) if hi > mid else -np.inf
        if left_mean >= right_mean:
            hi = mid
        else:
            lo = mid
        if hi - lo <= 1:
            break
    seed = int(lo)
    val = float(values[seed])
    # The probabilistic-method invariant: every descent step preserves
    # "conditional mean >= global mean", so the final seed meets the bound.
    assert val >= mean - 1e-9, "conditional expectation descent lost the bound"
    return SeedSelection(
        seed=seed,
        value=val,
        trials=family_size,
        strategy="conditional_expectation",
        satisfied=True,
        family_mean=mean,
    )


def _scan(
    family_size: int,
    objective: Objective,
    target: float,
    max_trials: int,
    start: int = 0,
) -> SeedSelection:
    best_seed, best_val = min(start, family_size - 1), -np.inf
    trials = 0
    for s in range(min(start, family_size - 1), min(family_size, start + max_trials)):
        v = objective(s)
        trials += 1
        if v > best_val:
            best_seed, best_val = s, v
        if v >= target:
            return SeedSelection(
                seed=s, value=float(v), trials=trials, strategy="scan", satisfied=True
            )
    return SeedSelection(
        seed=best_seed,
        value=float(best_val),
        trials=trials,
        strategy="scan",
        satisfied=bool(best_val >= target),
    )


def _best_of(family_size: int, objective: Objective, k: int) -> SeedSelection:
    k = min(k, family_size)
    best_seed, best_val = 0, -np.inf
    for s in range(k):
        v = objective(s)
        if v > best_val:
            best_seed, best_val = s, v
    return SeedSelection(
        seed=best_seed,
        value=float(best_val),
        trials=k,
        strategy="best_of",
        satisfied=True,
    )


def select_seed(
    family_size: int,
    objective: Objective,
    *,
    strategy: Strategy = "scan",
    target: float | None = None,
    max_trials: int = 512,
    enumeration_cap: int = 1 << 16,
    best_of_k: int = 64,
    start: int = 0,
) -> SeedSelection:
    """Deterministically pick a seed from ``[0, family_size)``.

    See the module docstring for the strategies.  ``scan`` requires a
    ``target`` (the value the existence argument guarantees); the other
    strategies ignore it.  ``start`` offsets the canonical scan order --
    stage searches start at 1 because seed 0 encodes the constant-zero hash
    (an all-or-nothing sampler that can be vacuously "good" without making
    progress at finite sizes).
    """
    if family_size < 1:
        raise ValueError("family_size must be >= 1")
    if strategy == "conditional_expectation":
        if family_size > enumeration_cap:
            raise ValueError(
                f"family of size {family_size} exceeds enumeration cap "
                f"{enumeration_cap}; use strategy='scan'"
            )
        return _conditional_expectation(family_size, objective)
    if strategy == "scan":
        if target is None:
            raise ValueError("scan strategy requires a target")
        return _scan(family_size, objective, target, max_trials, start)
    if strategy == "best_of":
        return _best_of(family_size, objective, best_of_k)
    raise ValueError(f"unknown strategy {strategy!r}")
