"""Fused JIT seed-scan objectives (the ``jit`` seed backend).

The batched seed engine in :mod:`repro.derand.strategies` evaluates
objectives chunk by chunk through numpy kernels: one ``(S, N)`` hash grid
per chunk, then 2-D segment reductions.  This module builds
:data:`~repro.derand.strategies.BatchObjective` closures over the compiled
loops in :mod:`repro.graphs.kernels_jit` that fuse the stacked-Horner
k-wise hash evaluation *into* the reduction -- one pass over
``(seed_chunk x items)`` with incremental per-seed hash stepping and no
``(S, N)`` intermediate:

* :func:`make_stage_objective` -- the all-machines-good count of one
  sparsification stage search (:class:`repro.core.stage.StageGoodness`),
  bit-identical to ``StageGoodness.counts`` by construction: integer
  sampled counts against the same integer window bounds.  Weighted groups
  (float64 ``reduceat`` accumulation, whose summation order a sequential
  loop would not replicate exactly) stay on the numpy path per group and
  the two contributions are summed -- good-machine counts are small-int
  float adds, so mixing paths cannot change any outcome.
* :func:`make_lowdeg_objective` -- the fused Luby-step select/reduce of one
  low-degree phase (:func:`repro.core.lowdeg.lowdeg_mis`): color-hash keys,
  local-minimum candidate mask, and the covered-degree objective in three
  O(n + arcs) passes over reusable scratch.

Both builders assume the caller resolved the ``jit`` seed backend (numba
present); without numba the closures still run through the plain-Python
kernel bodies, which is how the parity suite exercises them everywhere.
"""

from __future__ import annotations

import numpy as np

from ..graphs import kernels_jit

__all__ = ["make_stage_objective", "make_lowdeg_objective"]


def make_stage_objective(goodness, kappa: float):
    """Fused :data:`BatchObjective` twin of ``StageGoodness.counts``.

    ``goodness`` is a :class:`repro.core.stage.StageGoodness`; ``kappa`` is
    the current slack multiplier (the window bounds bake it in, so the
    builder is re-invoked per escalation -- it only redoes cheap bound
    arithmetic).
    """
    family = goodness.family
    q = np.uint64(family.q)
    threshold = np.uint64(goodness.threshold)
    run = kernels_jit.kernel("stage_goodness")
    fused = []
    weighted = []
    for grp in goodness.prepared:
        unit_sorted, w_sorted, indptr, _inc, mu, base, up, lo = grp
        if w_sorted is None:
            lam = kappa * base
            # Same integer windows as the numpy count path (int64 vs its
            # int32 is immaterial: the values are machine loads).
            hi_bound = np.floor(mu + lam + 1e-9).astype(np.int64)
            lo_bound = np.ceil(mu - lam - 1e-9).astype(np.int64)
            fused.append((
                np.ascontiguousarray(unit_sorted, dtype=np.uint64),
                np.ascontiguousarray(indptr, dtype=np.int64),
                hi_bound,
                lo_bound,
                bool(up),
                bool(lo),
            ))
        else:
            weighted.append(grp)

    def objective(seeds: np.ndarray) -> np.ndarray:
        seed_arr = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
        good = np.zeros(seed_arr.size, dtype=np.float64)
        if fused:
            coeffs = np.ascontiguousarray(
                family._stacked_coefficients(seed_arr)
            )
            # fresh[s]: seed s needs a fresh Horner base -- run start, a
            # non-contiguous jump, or a digit-0 rollover (digit 0 holds the
            # linear coefficient, so h_{s+1}(x) = h_s(x) + x mod q inside a
            # run; see KWiseHashFamily._evaluate_contiguous).
            fresh = np.empty(seed_arr.size, dtype=bool)
            fresh[0] = True
            fresh[1:] = np.diff(seed_arr) != 1
            fresh |= seed_arr % family.q == 0
            for units, indptr, hi_bound, lo_bound, up, lo in fused:
                run(coeffs, q, threshold, fresh, units, indptr, hi_bound,
                    lo_bound, up, lo, good)
        if weighted:
            from ..core.stage import _goodness_counts

            good += _goodness_counts(
                family, goodness.threshold, weighted, kappa, seed_arr
            )
        return good

    return objective


def make_lowdeg_objective(
    family,
    colors_live: np.ndarray,
    live: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    deg_sel: np.ndarray,
    n: int,
):
    """Fused :data:`BatchObjective` twin of the lowdeg phase objective.

    ``family`` is the phase's :class:`ColorHashFamily`; ``colors_live`` /
    ``live`` list the surviving nodes' colors and ids; ``indices`` /
    ``indptr`` are the current graph's CSR arrays; ``deg_sel[v]`` is the
    integer degree weight of the Section-4 ``A``-set objective.
    """
    base = family.base
    q = np.uint64(base.q)
    stride = np.uint64(n + 1)
    maxkey = np.uint64(np.iinfo(np.uint64).max)
    colors_u = np.ascontiguousarray(colors_live, dtype=np.uint64)
    live64 = np.ascontiguousarray(live, dtype=np.int64)
    idx64 = np.ascontiguousarray(indices, dtype=np.int64)
    iptr64 = np.ascontiguousarray(indptr, dtype=np.int64)
    deg64 = np.ascontiguousarray(deg_sel, dtype=np.int64)
    key = np.empty(n, dtype=np.uint64)
    imask = np.empty(n, dtype=bool)
    run = kernels_jit.kernel("lowdeg_phase")

    def objective(seeds: np.ndarray) -> np.ndarray:
        seed_arr = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
        coeffs = np.ascontiguousarray(base._stacked_coefficients(seed_arr))
        out = np.empty(seed_arr.size, dtype=np.float64)
        run(coeffs, q, colors_u, live64, idx64, iptr64, deg64, stride,
            maxkey, key, imask, out)
        return out

    return objective
