"""Derandomization toolkit: seed selection + concentration estimators."""

from .estimators import (
    bellare_rompel_bound,
    certified_slacks,
    chebyshev_bound,
    paper_nominal_slack,
    slack_for_failure,
    slack_for_failure_array,
)
from .strategies import (
    BatchObjective,
    ConditionalExpectationError,
    SeedSelection,
    Strategy,
    batched_from_scalar,
    resolve_seed_backend,
    resolve_seed_chunk,
    select_seed,
    select_seed_batch,
)

__all__ = [
    "BatchObjective",
    "ConditionalExpectationError",
    "SeedSelection",
    "Strategy",
    "batched_from_scalar",
    "bellare_rompel_bound",
    "certified_slacks",
    "chebyshev_bound",
    "paper_nominal_slack",
    "resolve_seed_backend",
    "resolve_seed_chunk",
    "select_seed",
    "select_seed_batch",
    "slack_for_failure",
    "slack_for_failure_array",
]
