"""Derandomization toolkit: seed selection + concentration estimators."""

from .estimators import (
    bellare_rompel_bound,
    chebyshev_bound,
    paper_nominal_slack,
    slack_for_failure,
)
from .strategies import SeedSelection, Strategy, select_seed

__all__ = [
    "SeedSelection",
    "Strategy",
    "bellare_rompel_bound",
    "chebyshev_bound",
    "paper_nominal_slack",
    "select_seed",
    "slack_for_failure",
]
