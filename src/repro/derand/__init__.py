"""Derandomization toolkit: seed selection + concentration estimators."""

from .estimators import (
    bellare_rompel_bound,
    certified_slacks,
    chebyshev_bound,
    paper_nominal_slack,
    slack_for_failure,
    slack_for_failure_array,
)
from .strategies import SeedSelection, Strategy, select_seed

__all__ = [
    "SeedSelection",
    "Strategy",
    "bellare_rompel_bound",
    "certified_slacks",
    "chebyshev_bound",
    "paper_nominal_slack",
    "select_seed",
    "slack_for_failure",
    "slack_for_failure_array",
]
