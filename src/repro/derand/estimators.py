"""Concentration bounds used to size goodness slacks (paper Lemma 9).

The sparsification stages declare a machine *good* for a hash function ``h``
when its sampled-item count lies within ``mu +- lambda``.  The paper sets
``lambda = n^{0.1 delta} sqrt(e_x)`` and invokes the Bellare-Rompel moment
bound (their Lemma 9) to get per-machine failure probability ``n^{-5}``.

At the finite sizes a simulation runs, the asymptotic slack can be smaller
than what existence of an all-good seed requires, so we expose *solvers*:
given the machine loads, the sampling rate and a target ``E[#bad] < 1``
budget, return the minimal slack the chosen independence level certifies.
The run then uses ``max(paper's nominal slack, certified slack)`` and the
invariant checks / benchmarks report both.

Functions
---------
``bellare_rompel_bound``   -- the tail bound of Lemma 9.
``chebyshev_bound``        -- the pairwise (c = 2) variance bound.
``slack_for_failure``      -- invert either bound for ``lambda``.
``paper_nominal_slack``    -- ``n^{0.1 delta} sqrt(e_x)``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "bellare_rompel_bound",
    "chebyshev_bound",
    "paper_nominal_slack",
    "slack_for_failure",
]


def bellare_rompel_bound(c: int, t: float, lam: float) -> float:
    """Lemma 9 tail: ``Pr[|Z - mu| >= lam] <= 2 (c t / lam^2)^{c/2}``.

    ``Z`` is a sum of ``t`` c-wise independent variables in [0, 1];
    ``c >= 4`` must be even.
    """
    if c < 4 or c % 2 != 0:
        raise ValueError("Bellare-Rompel requires even c >= 4")
    if lam <= 0:
        return 1.0
    return min(1.0, 2.0 * (c * t / (lam * lam)) ** (c / 2))


def chebyshev_bound(variance: float, lam: float) -> float:
    """Pairwise-independence tail: ``Pr[|Z - mu| >= lam] <= Var / lam^2``."""
    if lam <= 0:
        return 1.0
    return min(1.0, variance / (lam * lam))


def slack_for_failure(
    c: int, t: float, fail_prob: float, *, p: float | None = None
) -> float:
    """Minimal ``lam`` with tail probability ``<= fail_prob``.

    ``c = 2`` uses Chebyshev with variance ``t p (1 - p)`` (requires ``p``,
    the Bernoulli rate; falls back to the worst case ``t / 4``); ``c >= 4``
    inverts Bellare-Rompel: ``lam = sqrt(c t) * (2 / fail)^{1/c}``.
    """
    if fail_prob <= 0 or fail_prob > 1:
        raise ValueError("fail_prob must be in (0, 1]")
    if t <= 0:
        return 0.0
    if c == 2:
        var = t * p * (1.0 - p) if p is not None else t / 4.0
        return math.sqrt(var / fail_prob)
    return math.sqrt(c * t) * (2.0 / fail_prob) ** (1.0 / c)


def paper_nominal_slack(n: int, delta: float, loads: np.ndarray) -> np.ndarray:
    """The paper's slack ``n^{0.1 delta} sqrt(e_x)`` per machine load."""
    loads = np.asarray(loads, dtype=np.float64)
    return (max(n, 2) ** (0.1 * delta)) * np.sqrt(loads)
