"""Concentration bounds used to size goodness slacks (paper Lemma 9).

The sparsification stages declare a machine *good* for a hash function ``h``
when its sampled-item count lies within ``mu +- lambda``.  The paper sets
``lambda = n^{0.1 delta} sqrt(e_x)`` and invokes the Bellare-Rompel moment
bound (their Lemma 9) to get per-machine failure probability ``n^{-5}``.

At the finite sizes a simulation runs, the asymptotic slack can be smaller
than what existence of an all-good seed requires, so we expose *solvers*:
given the machine loads, the sampling rate and a target ``E[#bad] < 1``
budget, return the minimal slack the chosen independence level certifies.
The run then uses ``max(paper's nominal slack, certified slack)`` and the
invariant checks / benchmarks report both.

Functions
---------
``bellare_rompel_bound``   -- the tail bound of Lemma 9.
``chebyshev_bound``        -- the pairwise (c = 2) variance bound.
``slack_for_failure``      -- invert either bound for ``lambda``.
``slack_for_failure_array``-- the same inversion, vectorised per machine.
``certified_slacks``       -- per-machine certified slacks for a load vector
                              under an ``E[#bad] < budget`` split.
``paper_nominal_slack``    -- ``n^{0.1 delta} sqrt(e_x)``.

The array variants exist so the good-machine accounting of a whole stage
(hundreds of machines per group) is one whole-array expression instead of a
per-machine Python loop; benchmarks and the invariant reports consume them.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "bellare_rompel_bound",
    "certified_slacks",
    "chebyshev_bound",
    "paper_nominal_slack",
    "slack_for_failure",
    "slack_for_failure_array",
]


def bellare_rompel_bound(c: int, t: float, lam: float) -> float:
    """Lemma 9 tail: ``Pr[|Z - mu| >= lam] <= 2 (c t / lam^2)^{c/2}``.

    ``Z`` is a sum of ``t`` c-wise independent variables in [0, 1];
    ``c >= 4`` must be even.
    """
    if c < 4 or c % 2 != 0:
        raise ValueError("Bellare-Rompel requires even c >= 4")
    if lam <= 0:
        return 1.0
    return min(1.0, 2.0 * (c * t / (lam * lam)) ** (c / 2))


def chebyshev_bound(variance: float, lam: float) -> float:
    """Pairwise-independence tail: ``Pr[|Z - mu| >= lam] <= Var / lam^2``."""
    if lam <= 0:
        return 1.0
    return min(1.0, variance / (lam * lam))


def slack_for_failure(
    c: int, t: float, fail_prob: float, *, p: float | None = None
) -> float:
    """Minimal ``lam`` with tail probability ``<= fail_prob``.

    ``c = 2`` uses Chebyshev with variance ``t p (1 - p)`` (requires ``p``,
    the Bernoulli rate; falls back to the worst case ``t / 4``); ``c >= 4``
    inverts Bellare-Rompel: ``lam = sqrt(c t) * (2 / fail)^{1/c}``.
    """
    if fail_prob <= 0 or fail_prob > 1:
        raise ValueError("fail_prob must be in (0, 1]")
    if t <= 0:
        return 0.0
    if c == 2:
        var = t * p * (1.0 - p) if p is not None else t / 4.0
        return math.sqrt(var / fail_prob)
    return math.sqrt(c * t) * (2.0 / fail_prob) ** (1.0 / c)


def slack_for_failure_array(
    c: int,
    t: np.ndarray,
    fail_prob: float,
    *,
    p: float | None = None,
) -> np.ndarray:
    """Vectorised :func:`slack_for_failure` over a per-machine load array.

    ``t`` is the vector of per-machine item counts (``e_x``); the returned
    vector is the minimal ``lambda_x`` certifying per-machine failure
    probability ``<= fail_prob`` at independence ``c``.
    """
    if fail_prob <= 0 or fail_prob > 1:
        raise ValueError("fail_prob must be in (0, 1]")
    t = np.asarray(t, dtype=np.float64)
    out = np.zeros_like(t)
    pos = t > 0
    if c == 2:
        var = t * p * (1.0 - p) if p is not None else t / 4.0
        out[pos] = np.sqrt(var[pos] / fail_prob)
        return out
    if c < 4 or c % 2 != 0:
        raise ValueError("Bellare-Rompel requires even c >= 4")
    out[pos] = np.sqrt(c * t[pos]) * (2.0 / fail_prob) ** (1.0 / c)
    return out


def certified_slacks(
    loads: np.ndarray,
    p: float,
    *,
    budget: float = 1.0,
    c: int = 2,
) -> np.ndarray:
    """Per-machine slacks making ``E[#bad machines] < budget`` certifiable.

    The budget is split evenly over the machines (any split works; even is
    the standard choice), each machine's share is inverted through the
    chosen concentration bound, and the whole computation is one array
    expression -- the vectorised form of the module docstring's solver
    recipe.  Returns zeros for an empty machine group.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        return loads.copy()
    if budget <= 0:
        raise ValueError("budget must be positive")
    share = min(1.0, budget / loads.size)
    return slack_for_failure_array(c, loads, share, p=p if c == 2 else None)


def paper_nominal_slack(n: int, delta: float, loads: np.ndarray) -> np.ndarray:
    """The paper's slack ``n^{0.1 delta} sqrt(e_x)`` per machine load."""
    loads = np.asarray(loads, dtype=np.float64)
    return (max(n, 2) ** (0.1 * delta)) * np.sqrt(loads)
