"""Baselines: randomized comparators and sequential oracles."""

from .ghaffari import ghaffari_mis
from .greedy import greedy_matching, greedy_mis
from .israeli_itai import israeli_itai_matching
from .luby import (
    BaselineResult,
    luby_matching_randomized,
    luby_mis_pairwise,
    luby_mis_randomized,
)
from .pram_derand import pram_bitwise_derandomized_mis

__all__ = [
    "BaselineResult",
    "ghaffari_mis",
    "greedy_matching",
    "greedy_mis",
    "israeli_itai_matching",
    "luby_matching_randomized",
    "luby_mis_pairwise",
    "luby_mis_randomized",
    "pram_bitwise_derandomized_mis",
]
