"""Randomized Luby baselines (Algorithm 1 of the paper, [44]).

Three variants, all returning a :class:`BaselineResult` with per-iteration
edge counts so benchmarks can compare progress rates against the
deterministic algorithms:

* ``luby_mis_randomized`` -- fully independent uniform z-values (the
  textbook algorithm; the randomized yardstick for T1/T2).
* ``luby_mis_pairwise`` -- z-values from a *random seed* of a pairwise
  family: the randomness-efficient variant whose derandomization is the
  paper's subject.  Comparing it against the fully independent variant
  shows pairwise independence loses (essentially) nothing -- Luby's key
  observation.
* ``luby_matching_randomized`` -- Luby on edges (local-minimum edges join
  the matching), the matching analogue.

Round accounting: one charged round per iteration (each Luby iteration is
O(1) MPC rounds for a randomized algorithm; no seed search is needed).

Backends
--------
Each solver takes ``backend="csr" | "legacy" | None`` (``None`` resolves via
``REPRO_KERNEL_BACKEND``, default ``"csr"``).  The legacy path rebuilds the
residual graph every iteration (an O(m log m) canonicalisation sort) and
aggregates with ``np.minimum.at`` scatters; the CSR path runs against the
*original* graph's CSR arrays with an alive-edge mask, using the reduceat /
sparse mat-vec kernels of :mod:`repro.graphs.kernels`.  Both paths draw the
identical RNG stream and return bit-identical results -- the CSR kernels
use only order-free exact reductions -- which the property tests and the
``bench_kernels`` gate verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..graphs.kernels import (
    alive_edge_degrees,
    neighbor_min,
    resolve_backend,
    segment_min,
    segment_sum,
)
from ..hashing.kwise import make_family

__all__ = [
    "BaselineResult",
    "luby_matching_randomized",
    "luby_mis_pairwise",
    "luby_mis_randomized",
]


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a baseline run."""

    solution: np.ndarray  # node ids (MIS) or (k, 2) pairs (matching)
    iterations: int
    rounds: int
    edge_trace: tuple[int, ...]  # |E| before each iteration
    algorithm: str


#: Compact the working graph once fewer than this fraction of its edges
#: survive.  Amortised O(m) total rebuild work over a whole solve while
#: keeping every per-iteration kernel O(current edges).
_COMPACT_RATIO = 4


def _maybe_compact(cur, alive_e, m_alive):
    """Re-materialise the surviving subgraph when it has shrunk enough.

    Node ids are stable (``keep_edges`` preserves the vertex set) and the
    canonical edge order of the compacted graph equals the original order
    restricted to survivors, so RNG-indexed logic is unchanged.
    """
    if m_alive * _COMPACT_RATIO < cur.m:
        cur = cur.keep_edges(alive_e)
        alive_e = np.ones(cur.m, dtype=bool)
    return cur, alive_e


def _maybe_compact_flagged(cur, alive_e, m_alive):
    """:func:`_maybe_compact` variant that also reports whether it fired."""
    compacted = m_alive * _COMPACT_RATIO < cur.m
    return compacted, _maybe_compact(cur, alive_e, m_alive)


# ---------------------------------------------------------------------- #
# MIS, fresh uniform randomness
# ---------------------------------------------------------------------- #


def luby_mis_randomized(
    g: Graph,
    seed: int,
    *,
    max_iterations: int = 10_000,
    backend: str | None = None,
) -> BaselineResult:
    """Textbook Luby MIS with fresh uniform randomness each iteration."""
    if resolve_backend(backend) == "legacy":
        return _luby_mis_randomized_legacy(g, seed, max_iterations)
    rng = np.random.default_rng(seed)
    in_mis = np.zeros(g.n, dtype=bool)
    removed = np.zeros(g.n, dtype=bool)
    cur = g
    alive_e = np.ones(cur.m, dtype=bool)
    m_alive = cur.m
    trace: list[int] = []
    it = 0
    while m_alive > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("randomized Luby failed to converge")
        cur, alive_e = _maybe_compact(cur, alive_e, m_alive)
        trace.append(m_alive)
        deg_alive = alive_edge_degrees(cur, alive_e)
        iso = (deg_alive == 0) & ~removed
        in_mis |= iso
        removed |= iso
        z = rng.random(g.n)
        nbr_min = neighbor_min(cur, z, exclude=removed, fill=np.inf)
        i_mask = (deg_alive > 0) & (z < nbr_min)
        dominated = _dominated_by(cur, alive_e, i_mask)
        kill = i_mask | dominated
        in_mis |= i_mask
        removed |= kill
        alive_e &= ~(removed[cur.edges_u] | removed[cur.edges_v])
        m_alive = int(np.count_nonzero(alive_e))
    in_mis |= ~removed
    return BaselineResult(
        solution=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="luby_mis_randomized",
    )


def _luby_mis_randomized_legacy(
    g: Graph, seed: int, max_iterations: int
) -> BaselineResult:
    rng = np.random.default_rng(seed)
    in_mis = np.zeros(g.n, dtype=bool)
    removed = np.zeros(g.n, dtype=bool)
    cur = g
    trace: list[int] = []
    it = 0
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("randomized Luby failed to converge")
        trace.append(cur.m)
        iso = cur.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso
        z = rng.random(g.n)
        nbr_min = np.full(g.n, np.inf)
        np.minimum.at(nbr_min, cur.edges_u, z[cur.edges_v])
        np.minimum.at(nbr_min, cur.edges_v, z[cur.edges_u])
        live = cur.degrees() > 0
        i_mask = live & (z < nbr_min)
        dominated = cur.degrees_toward(i_mask) > 0
        kill = i_mask | dominated
        in_mis |= i_mask
        removed |= kill
        cur = cur.remove_vertices(kill)
    in_mis |= ~removed
    return BaselineResult(
        solution=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="luby_mis_randomized",
    )


def _dominated_by(g: Graph, alive_e: np.ndarray, i_mask: np.ndarray) -> np.ndarray:
    """bool[n]: nodes with a surviving-edge neighbour in ``i_mask``.

    Exact residual-graph ``degrees_toward(i_mask) > 0`` without the rebuild:
    arcs are filtered by the alive-edge mask, so removed nodes (whose edges
    are all dead) can never be flagged.
    """
    arc_hit = alive_e[g.arc_edge_ids] & i_mask[g.indices]
    return segment_sum(arc_hit.astype(np.int64), g.indptr) > 0


# ---------------------------------------------------------------------- #
# MIS, pairwise z-values from a small seed
# ---------------------------------------------------------------------- #


def luby_mis_pairwise(
    g: Graph,
    seed: int,
    *,
    max_iterations: int = 10_000,
    backend: str | None = None,
) -> BaselineResult:
    """Luby MIS where each iteration's z-values come from one random seed of
    a pairwise-independent family (O(log n) random bits per iteration)."""
    if resolve_backend(backend) == "legacy":
        return _luby_mis_pairwise_legacy(g, seed, max_iterations)
    rng = np.random.default_rng(seed)
    family = make_family(universe=max(g.n, 2), k=2)
    ids = np.arange(g.n, dtype=np.int64)
    in_mis = np.zeros(g.n, dtype=bool)
    removed = np.zeros(g.n, dtype=bool)
    cur = g
    alive_e = np.ones(cur.m, dtype=bool)
    m_alive = cur.m
    trace: list[int] = []
    it = 0
    maxkey = np.uint64(2**63 - 1)
    stride = np.uint64(g.n + 1)
    while m_alive > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("pairwise Luby failed to converge")
        cur, alive_e = _maybe_compact(cur, alive_e, m_alive)
        trace.append(m_alive)
        deg_alive = alive_edge_degrees(cur, alive_e)
        iso = (deg_alive == 0) & ~removed
        in_mis |= iso
        removed |= iso
        s = int(rng.integers(0, family.size))
        key = family.evaluate(s, ids) * stride + ids.astype(np.uint64)
        nbr_min = neighbor_min(cur, key, exclude=removed, fill=maxkey)
        i_mask = (deg_alive > 0) & (key < nbr_min)
        dominated = _dominated_by(cur, alive_e, i_mask)
        kill = i_mask | dominated
        in_mis |= i_mask
        removed |= kill
        alive_e &= ~(removed[cur.edges_u] | removed[cur.edges_v])
        m_alive = int(np.count_nonzero(alive_e))
    in_mis |= ~removed
    return BaselineResult(
        solution=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="luby_mis_pairwise",
    )


def _luby_mis_pairwise_legacy(
    g: Graph, seed: int, max_iterations: int
) -> BaselineResult:
    rng = np.random.default_rng(seed)
    family = make_family(universe=max(g.n, 2), k=2)
    ids = np.arange(g.n, dtype=np.int64)
    in_mis = np.zeros(g.n, dtype=bool)
    removed = np.zeros(g.n, dtype=bool)
    cur = g
    trace: list[int] = []
    it = 0
    maxkey = np.uint64(2**63 - 1)
    stride = np.uint64(g.n + 1)
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("pairwise Luby failed to converge")
        trace.append(cur.m)
        iso = cur.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso
        s = int(rng.integers(0, family.size))
        key = family.evaluate(s, ids) * stride + ids.astype(np.uint64)
        nbr_min = np.full(g.n, maxkey, dtype=np.uint64)
        np.minimum.at(nbr_min, cur.edges_u, key[cur.edges_v])
        np.minimum.at(nbr_min, cur.edges_v, key[cur.edges_u])
        live = cur.degrees() > 0
        i_mask = live & (key < nbr_min)
        dominated = cur.degrees_toward(i_mask) > 0
        kill = i_mask | dominated
        in_mis |= i_mask
        removed |= kill
        cur = cur.remove_vertices(kill)
    in_mis |= ~removed
    return BaselineResult(
        solution=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="luby_mis_pairwise",
    )


# ---------------------------------------------------------------------- #
# Matching
# ---------------------------------------------------------------------- #


def luby_matching_randomized(
    g: Graph,
    seed: int,
    *,
    max_iterations: int = 10_000,
    backend: str | None = None,
) -> BaselineResult:
    """Luby-style matching: local-minimum edges join; matched nodes leave."""
    if resolve_backend(backend) == "legacy":
        return _luby_matching_randomized_legacy(g, seed, max_iterations)
    rng = np.random.default_rng(seed)
    cur = g
    alive_e = np.ones(cur.m, dtype=bool)
    alive_ids = np.nonzero(alive_e)[0]
    pairs: list[np.ndarray] = []
    trace: list[int] = []
    it = 0
    while alive_ids.size > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("randomized Luby matching failed to converge")
        compacted, (cur, alive_e) = _maybe_compact_flagged(
            cur, alive_e, alive_ids.size
        )
        if compacted:
            alive_ids = np.nonzero(alive_e)[0]
        eu, ev = cur.edges_u, cur.edges_v
        trace.append(alive_ids.size)
        z = rng.random(alive_ids.size)
        z_full = np.full(cur.m, np.inf)
        z_full[alive_ids] = z
        node_min = segment_min(z_full[cur.arc_edge_ids], cur.indptr, np.inf)
        au, av = eu[alive_ids], ev[alive_ids]
        matched = (z == node_min[au]) & (z == node_min[av])
        # Ties (prob 0 in theory, possible in floats): break by edge id.
        # Winners are node-disjoint except under an exact float tie, so
        # detect conflicts vectorized and fall back to the sequential
        # tie-break (identical output) only when one actually occurred.
        if matched.any():
            eids = alive_ids[matched]
            ends = np.concatenate([eu[eids], ev[eids]])
            if np.bincount(ends, minlength=g.n).max() <= 1:
                pass  # conflict-free: keep every winner
            else:
                used = np.zeros(g.n, dtype=bool)
                keep = []
                for e in eids.tolist():
                    a, b = int(eu[e]), int(ev[e])
                    if not used[a] and not used[b]:
                        used[a] = used[b] = True
                        keep.append(e)
                eids = np.asarray(keep, dtype=np.int64)
        else:
            eids = np.empty(0, dtype=np.int64)
        if eids.size == 0:
            continue  # resample (vanishingly rare)
        pairs.append(np.stack([eu[eids], ev[eids]], axis=1))
        kill = np.zeros(g.n, dtype=bool)
        kill[eu[eids]] = True
        kill[ev[eids]] = True
        alive_e &= ~(kill[eu] | kill[ev])
        alive_ids = np.nonzero(alive_e)[0]
    sol = (
        np.concatenate(pairs, axis=0) if pairs else np.empty((0, 2), dtype=np.int64)
    )
    return BaselineResult(
        solution=sol,
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="luby_matching_randomized",
    )


def _luby_matching_randomized_legacy(
    g: Graph, seed: int, max_iterations: int
) -> BaselineResult:
    rng = np.random.default_rng(seed)
    pairs: list[np.ndarray] = []
    cur = g
    trace: list[int] = []
    it = 0
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("randomized Luby matching failed to converge")
        trace.append(cur.m)
        z = rng.random(cur.m)
        node_min = np.full(g.n, np.inf)
        np.minimum.at(node_min, cur.edges_u, z)
        np.minimum.at(node_min, cur.edges_v, z)
        matched = (z == node_min[cur.edges_u]) & (z == node_min[cur.edges_v])
        # Ties (prob 0 in theory, possible in floats): break by edge id.
        if matched.any():
            eids = np.nonzero(matched)[0]
            used = np.zeros(g.n, dtype=bool)
            keep = []
            for e in eids.tolist():
                a, b = int(cur.edges_u[e]), int(cur.edges_v[e])
                if not used[a] and not used[b]:
                    used[a] = used[b] = True
                    keep.append(e)
            eids = np.asarray(keep, dtype=np.int64)
        else:
            eids = np.empty(0, dtype=np.int64)
        if eids.size == 0:
            continue  # resample (vanishingly rare)
        pairs.append(np.stack([cur.edges_u[eids], cur.edges_v[eids]], axis=1))
        kill = np.zeros(g.n, dtype=bool)
        kill[cur.edges_u[eids]] = True
        kill[cur.edges_v[eids]] = True
        cur = cur.remove_vertices(kill)
    sol = (
        np.concatenate(pairs, axis=0) if pairs else np.empty((0, 2), dtype=np.int64)
    )
    return BaselineResult(
        solution=sol,
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="luby_matching_randomized",
    )
