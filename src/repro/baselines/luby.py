"""Randomized Luby baselines (Algorithm 1 of the paper, [44]).

Three variants, all returning a :class:`BaselineResult` with per-iteration
edge counts so benchmarks can compare progress rates against the
deterministic algorithms:

* ``luby_mis_randomized`` -- fully independent uniform z-values (the
  textbook algorithm; the randomized yardstick for T1/T2).
* ``luby_mis_pairwise`` -- z-values from a *random seed* of a pairwise
  family: the randomness-efficient variant whose derandomization is the
  paper's subject.  Comparing it against the fully independent variant
  shows pairwise independence loses (essentially) nothing -- Luby's key
  observation.
* ``luby_matching_randomized`` -- Luby on edges (local-minimum edges join
  the matching), the matching analogue.

Round accounting: one charged round per iteration (each Luby iteration is
O(1) MPC rounds for a randomized algorithm; no seed search is needed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..hashing.kwise import make_family

__all__ = [
    "BaselineResult",
    "luby_matching_randomized",
    "luby_mis_pairwise",
    "luby_mis_randomized",
]


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a baseline run."""

    solution: np.ndarray  # node ids (MIS) or (k, 2) pairs (matching)
    iterations: int
    rounds: int
    edge_trace: tuple[int, ...]  # |E| before each iteration
    algorithm: str


def luby_mis_randomized(
    g: Graph, seed: int, *, max_iterations: int = 10_000
) -> BaselineResult:
    """Textbook Luby MIS with fresh uniform randomness each iteration."""
    rng = np.random.default_rng(seed)
    in_mis = np.zeros(g.n, dtype=bool)
    removed = np.zeros(g.n, dtype=bool)
    cur = g
    trace: list[int] = []
    it = 0
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("randomized Luby failed to converge")
        trace.append(cur.m)
        iso = cur.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso
        z = rng.random(g.n)
        nbr_min = np.full(g.n, np.inf)
        np.minimum.at(nbr_min, cur.edges_u, z[cur.edges_v])
        np.minimum.at(nbr_min, cur.edges_v, z[cur.edges_u])
        live = cur.degrees() > 0
        i_mask = live & (z < nbr_min)
        dominated = cur.degrees_toward(i_mask) > 0
        kill = i_mask | dominated
        in_mis |= i_mask
        removed |= kill
        cur = cur.remove_vertices(kill)
    in_mis |= ~removed
    return BaselineResult(
        solution=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="luby_mis_randomized",
    )


def luby_mis_pairwise(
    g: Graph, seed: int, *, max_iterations: int = 10_000
) -> BaselineResult:
    """Luby MIS where each iteration's z-values come from one random seed of
    a pairwise-independent family (O(log n) random bits per iteration)."""
    rng = np.random.default_rng(seed)
    family = make_family(universe=max(g.n, 2), k=2)
    ids = np.arange(g.n, dtype=np.int64)
    in_mis = np.zeros(g.n, dtype=bool)
    removed = np.zeros(g.n, dtype=bool)
    cur = g
    trace: list[int] = []
    it = 0
    maxkey = np.uint64(2**63 - 1)
    stride = np.uint64(g.n + 1)
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("pairwise Luby failed to converge")
        trace.append(cur.m)
        iso = cur.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso
        s = int(rng.integers(0, family.size))
        key = family.evaluate(s, ids) * stride + ids.astype(np.uint64)
        nbr_min = np.full(g.n, maxkey, dtype=np.uint64)
        np.minimum.at(nbr_min, cur.edges_u, key[cur.edges_v])
        np.minimum.at(nbr_min, cur.edges_v, key[cur.edges_u])
        live = cur.degrees() > 0
        i_mask = live & (key < nbr_min)
        dominated = cur.degrees_toward(i_mask) > 0
        kill = i_mask | dominated
        in_mis |= i_mask
        removed |= kill
        cur = cur.remove_vertices(kill)
    in_mis |= ~removed
    return BaselineResult(
        solution=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="luby_mis_pairwise",
    )


def luby_matching_randomized(
    g: Graph, seed: int, *, max_iterations: int = 10_000
) -> BaselineResult:
    """Luby-style matching: local-minimum edges join; matched nodes leave."""
    rng = np.random.default_rng(seed)
    pairs: list[np.ndarray] = []
    cur = g
    trace: list[int] = []
    it = 0
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("randomized Luby matching failed to converge")
        trace.append(cur.m)
        z = rng.random(cur.m)
        node_min = np.full(g.n, np.inf)
        np.minimum.at(node_min, cur.edges_u, z)
        np.minimum.at(node_min, cur.edges_v, z)
        matched = (z == node_min[cur.edges_u]) & (z == node_min[cur.edges_v])
        # Ties (prob 0 in theory, possible in floats): break by edge id.
        if matched.any():
            eids = np.nonzero(matched)[0]
            used = np.zeros(g.n, dtype=bool)
            keep = []
            for e in eids.tolist():
                a, b = int(cur.edges_u[e]), int(cur.edges_v[e])
                if not used[a] and not used[b]:
                    used[a] = used[b] = True
                    keep.append(e)
            eids = np.asarray(keep, dtype=np.int64)
        else:
            eids = np.empty(0, dtype=np.int64)
        if eids.size == 0:
            continue  # resample (vanishingly rare)
        pairs.append(np.stack([cur.edges_u[eids], cur.edges_v[eids]], axis=1))
        kill = np.zeros(g.n, dtype=bool)
        kill[cur.edges_u[eids]] = True
        kill[cur.edges_v[eids]] = True
        cur = cur.remove_vertices(kill)
    sol = (
        np.concatenate(pairs, axis=0) if pairs else np.empty((0, 2), dtype=np.int64)
    )
    return BaselineResult(
        solution=sol,
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="luby_matching_randomized",
    )
